// Package slab implements a pointer-free segmented value arena in the
// bigcache/fastcache mould: payloads are packed into a small number of
// large []byte segments and located through an open-addressing
// int64 → packed(segment, offset, length) index held in flat integer
// slices. Neither the segments nor the index contain pointers, so the
// garbage collector's mark phase scans O(#segments) words instead of
// O(#entries) boxed values — residency becomes GC-free no matter how
// many objects the store holds.
//
// Reclamation is segment rotation: Put appends at a write cursor, and
// when every segment is full the cursor wraps onto the oldest segment,
// evicts whatever entries still live there (reporting each id through
// the OnEvict callback so an external policy/accounting layer can keep
// itself consistent) and resets it. Rotation always makes progress —
// there is no free-list fragmentation state in which a Put can wedge —
// and approximates FIFO-by-write-age eviction for the byte budget,
// while the caller's count-bounded policy layer (LRU/SLRU/…) drives
// recency-based eviction through Delete.
//
// A Store is not safe for concurrent use; in the prefetch engine each
// shard owns one behind its shard mutex.
package slab

import "encoding/binary"

const (
	// headerBytes precedes every payload inside a segment:
	// [id int64 LE][payload length uint32 LE]. The header lets rotation
	// walk a segment and name the entries it is about to evict.
	headerBytes = 12

	// DefaultSegmentBytes is the segment size used when New is given a
	// non-positive one — large enough that GC scan cost is negligible,
	// small enough that one rotation evicts a modest slice of the cache.
	DefaultSegmentBytes = 1 << 20

	// maxSegmentBytes bounds segBytes so a payload offset and length
	// always fit the 24-bit fields of a packed reference.
	maxSegmentBytes = 1<<24 - 1

	// minSegmentBytes keeps degenerate segment sizes (tests aside,
	// nobody wants 64-byte segments) from making every value oversized.
	minSegmentBytes = 64

	// maxSegments bounds the segment count so a segment number fits the
	// 16-bit field of a packed reference.
	maxSegments = 1 << 16

	// Index slot states. A live reference's offset field (bits 24–47)
	// is always ≥ headerBytes, which keeps the whole packed word
	// disjoint from these sentinels; the low 24 bits hold the payload
	// length and CAN be 0 or 1, so the invariant rests on the offset
	// field alone.
	refEmpty = 0
	refTomb  = 1

	// minIndexSlots is the initial open-addressing table size.
	minIndexSlots = 64
)

// Stats is a point-in-time snapshot of a Store's occupancy and churn.
type Stats struct {
	Entries       int   // live entries
	Segments      int   // segments allocated (≤ the capacity-derived max)
	SegmentBytes  int   // size of each segment
	LiveBytes     int64 // bytes referenced by live entries, headers included
	Rotations     int64 // segments recycled by the write cursor wrapping
	RotateEvicted int64 // live entries evicted by rotation
}

// Store is the arena. The zero value is not usable; call New.
type Store struct {
	segBytes int
	maxSegs  int

	segs    [][]byte // the pointer-free payload arena
	fill    []int    // write offset per segment
	liveSeg []int    // live-entry count per segment
	cur     int      // segment the write cursor is on

	// Open-addressing index: keys[i] is meaningful iff refs[i] is a
	// live packed reference. Flat int slices — no pointers for GC.
	keys []int64
	refs []uint64
	live int // live entries
	used int // live + tombstoned slots (drives rehash)

	liveBytes     int64
	rotations     int64
	rotateEvicted int64

	onEvict func(id int64)
}

// New sizes a Store for roughly capacityBytes of payload split into
// segBytes segments (both clamped to sane ranges; pass 0 for the
// defaults). The capacity is a ceiling on allocated arena memory, not a
// guarantee: rotation may evict before the ceiling is reached when
// entries skew large.
func New(capacityBytes, segBytes int) *Store {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if segBytes < minSegmentBytes {
		segBytes = minSegmentBytes
	}
	if segBytes > maxSegmentBytes {
		segBytes = maxSegmentBytes
	}
	if capacityBytes < segBytes {
		capacityBytes = segBytes
	}
	maxSegs := capacityBytes / segBytes
	if capacityBytes%segBytes != 0 {
		maxSegs++
	}
	if maxSegs > maxSegments {
		maxSegs = maxSegments
	}
	return &Store{
		segBytes: segBytes,
		maxSegs:  maxSegs,
		keys:     make([]int64, minIndexSlots),
		refs:     make([]uint64, minIndexSlots),
	}
}

// OnEvict registers the callback rotation invokes, synchronously from
// inside Put, once per live entry it displaces. The callback must not
// call back into the Store.
func (s *Store) OnEvict(fn func(id int64)) { s.onEvict = fn }

// Len returns the number of live entries.
func (s *Store) Len() int { return s.live }

// Fits reports whether a payload of n bytes can be stored at all
// (header included it must fit a single segment).
func (s *Store) Fits(n int) bool { return n >= 0 && headerBytes+n <= s.segBytes }

// Stats returns an occupancy/churn snapshot.
func (s *Store) Stats() Stats {
	return Stats{
		Entries:       s.live,
		Segments:      len(s.segs),
		SegmentBytes:  s.segBytes,
		LiveBytes:     s.liveBytes,
		Rotations:     s.rotations,
		RotateEvicted: s.rotateEvicted,
	}
}

// pack encodes (segment, payload offset, payload length) into one
// word: seg<<48 | off<<24 | len. The offset field carries the sentinel
// invariant: off ≥ headerBytes makes every live word ≥ headerBytes<<24,
// disjoint from refEmpty/refTomb even when len is 0 or 1. A layout
// change that moves or shrinks the offset field must re-derive this.
func pack(seg, off, n int) uint64 {
	return uint64(seg)<<48 | uint64(off)<<24 | uint64(n)
}

//prefetch:hotpath
func unpack(ref uint64) (seg, off, n int) {
	return int(ref >> 48), int(ref >> 24 & 0xFFFFFF), int(ref & 0xFFFFFF)
}

// slot hashes an id to its starting probe slot (Fibonacci hashing with
// a high-bit fold, like the engine's shard selector).
//
//prefetch:hotpath
func (s *Store) slot(id int64) uint64 {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return (h ^ h>>32) & uint64(len(s.refs)-1)
}

// findSlot locates id's index slot. Rehash keeps used < ¾ of the
// table, so an empty slot always terminates the probe.
//
//prefetch:hotpath
func (s *Store) findSlot(id int64) (int, bool) {
	mask := uint64(len(s.refs) - 1)
	i := s.slot(id)
	for {
		switch ref := s.refs[i]; {
		case ref == refEmpty:
			return 0, false
		case ref != refTomb && s.keys[i] == id:
			return int(i), true
		}
		i = (i + 1) & mask
	}
}

// insert adds a reference for an id that is NOT currently indexed
// (callers drop any existing entry first), reusing the first tombstone
// on the probe path.
func (s *Store) insert(id int64, ref uint64) {
	if (s.used+1)*4 >= len(s.refs)*3 {
		s.rehash()
	}
	mask := uint64(len(s.refs) - 1)
	i := s.slot(id)
	for {
		switch s.refs[i] {
		case refEmpty:
			s.used++
			fallthrough
		case refTomb:
			s.keys[i], s.refs[i] = id, ref
			s.live++
			return
		}
		i = (i + 1) & mask
	}
}

// rehash rebuilds the index — doubling it when live entries genuinely
// crowd the table, or at the same size when tombstones do.
func (s *Store) rehash() {
	size := len(s.refs)
	if (s.live+1)*2 >= size {
		size *= 2
	}
	oldKeys, oldRefs := s.keys, s.refs
	s.keys = make([]int64, size)
	s.refs = make([]uint64, size)
	s.used = s.live
	mask := uint64(size - 1)
	for j, ref := range oldRefs {
		if ref == refEmpty || ref == refTomb {
			continue
		}
		i := s.slot(oldKeys[j])
		for s.refs[i] != refEmpty {
			i = (i + 1) & mask
		}
		s.keys[i], s.refs[i] = oldKeys[j], ref
	}
}

// dropSlot tombstones index slot i and debits the segment accounting
// for its reference.
func (s *Store) dropSlot(i int) {
	seg, _, n := unpack(s.refs[i])
	s.refs[i] = refTomb
	s.live--
	s.liveSeg[seg]--
	s.liveBytes -= int64(headerBytes + n)
}

// Delete removes id if present. No eviction callback fires — this is
// the path the external policy layer drives, and it already knows.
func (s *Store) Delete(id int64) bool {
	i, ok := s.findSlot(id)
	if !ok {
		return false
	}
	s.dropSlot(i)
	return true
}

// Put stores a copy of v under id, overwriting any previous value.
// It returns false — storing nothing — only when the payload can never
// fit a segment (see Fits). Rotation may evict other entries to make
// room; the id being written is immune (its stale copy is dropped from
// the index before space is claimed, so the rotation walk cannot
// surface it).
func (s *Store) Put(id int64, v []byte) bool {
	need := headerBytes + len(v)
	if len(v) > maxSegmentBytes || need > s.segBytes {
		return false
	}
	if i, ok := s.findSlot(id); ok {
		s.dropSlot(i)
	}
	s.ensure(need)
	seg, off := s.cur, s.fill[s.cur]
	buf := s.segs[seg]
	binary.LittleEndian.PutUint64(buf[off:], uint64(id))
	binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(v)))
	copy(buf[off+headerBytes:], v)
	s.fill[seg] = off + need
	s.insert(id, pack(seg, off+headerBytes, len(v)))
	s.liveSeg[seg]++
	s.liveBytes += int64(need)
	return true
}

// ensure positions the write cursor on a segment with room for need
// bytes: the current one, a freshly allocated one while under the
// capacity ceiling, or — once all segments exist — the next segment in
// the ring, evicted and reset.
func (s *Store) ensure(need int) {
	if len(s.segs) > 0 && s.fill[s.cur]+need <= s.segBytes {
		return
	}
	if len(s.segs) < s.maxSegs {
		s.segs = append(s.segs, make([]byte, s.segBytes))
		s.fill = append(s.fill, 0)
		s.liveSeg = append(s.liveSeg, 0)
		s.cur = len(s.segs) - 1
		return
	}
	next := s.cur + 1
	if next >= len(s.segs) {
		next = 0
	}
	s.rotate(next)
	s.cur = next
}

// rotate evicts every entry still live in segment seg — walking its
// headers and tombstoning the index slots that still reference it —
// and resets it for reuse. Each displaced id is reported through the
// OnEvict callback.
func (s *Store) rotate(seg int) {
	s.rotations++
	if s.liveSeg[seg] > 0 {
		buf := s.segs[seg]
		for off, end := 0, s.fill[seg]; off < end; {
			id := int64(binary.LittleEndian.Uint64(buf[off:]))
			n := int(binary.LittleEndian.Uint32(buf[off+8:]))
			poff := off + headerBytes
			// Only the entry's CURRENT index slot counts: an id
			// overwritten into a later segment left a stale record here
			// whose packed reference no longer matches.
			if i, ok := s.findSlot(id); ok && s.refs[i] == pack(seg, poff, n) {
				s.dropSlot(i)
				s.rotateEvicted++
				if s.onEvict != nil {
					s.onEvict(id)
				}
			}
			off = poff + n
		}
	}
	s.fill[seg] = 0
	s.liveSeg[seg] = 0
}

// Get appends id's payload to dst and reports whether id was present.
// The payload is copied out under the caller's lock discipline; dst is
// the caller's buffer (typically pooled), so a hit allocates nothing
// once dst has grown to working size.
//
//prefetch:hotpath
func (s *Store) Get(id int64, dst []byte) ([]byte, bool) {
	i, ok := s.findSlot(id)
	if !ok {
		return dst, false
	}
	seg, off, n := unpack(s.refs[i])
	return append(dst, s.segs[seg][off:off+n]...), true
}

// View returns a zero-copy window onto id's payload. The slice aliases
// the arena: it is valid only until the next Put or Delete, and the
// caller must not retain or mutate it. The three-index form keeps an
// append through the view from clobbering a neighbouring entry.
//
//prefetch:hotpath
func (s *Store) View(id int64) ([]byte, bool) {
	i, ok := s.findSlot(id)
	if !ok {
		return nil, false
	}
	seg, off, n := unpack(s.refs[i])
	return s.segs[seg][off : off+n : off+n], true
}

// BytesLen returns the stored payload length for id.
//
//prefetch:hotpath
func (s *Store) BytesLen(id int64) (int, bool) {
	i, ok := s.findSlot(id)
	if !ok {
		return 0, false
	}
	_, _, n := unpack(s.refs[i])
	return n, true
}
