package slab

import (
	"bytes"
	"fmt"
	"testing"
)

// payload builds a deterministic value for (id, n) so cross-checks can
// regenerate the expected bytes without storing them.
func payload(id int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(uint64(id)*31 + uint64(i)*7 + 1)
	}
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New(1<<20, 4096)
	for id := int64(0); id < 200; id++ {
		if !s.Put(id, payload(id, int(id)%257)) {
			t.Fatalf("Put(%d) refused", id)
		}
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	dst := make([]byte, 0, 512)
	for id := int64(0); id < 200; id++ {
		got, ok := s.Get(id, dst[:0])
		if !ok {
			t.Fatalf("Get(%d) missing", id)
		}
		if want := payload(id, int(id)%257); !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) = %x, want %x", id, got, want)
		}
		n, ok := s.BytesLen(id)
		if !ok || n != int(id)%257 {
			t.Fatalf("BytesLen(%d) = %d,%t; want %d,true", id, n, ok, int(id)%257)
		}
		view, ok := s.View(id)
		if !ok || !bytes.Equal(view, payload(id, int(id)%257)) {
			t.Fatalf("View(%d) mismatch", id)
		}
	}
	if _, ok := s.Get(999, nil); ok {
		t.Fatal("Get(999) found an entry that was never put")
	}
}

// TestGetAppends pins the dst contract: Get appends, preserving what
// the caller already accumulated (the GetMultiBytes gather relies on
// this to pack a whole session into one buffer).
func TestGetAppends(t *testing.T) {
	s := New(1<<20, 4096)
	s.Put(1, []byte("alpha"))
	s.Put(2, []byte("beta"))
	buf := []byte("x")
	buf, ok := s.Get(1, buf)
	if !ok {
		t.Fatal("Get(1) missing")
	}
	buf, ok = s.Get(2, buf)
	if !ok {
		t.Fatal("Get(2) missing")
	}
	if string(buf) != "xalphabeta" {
		t.Fatalf("accumulated buffer = %q, want %q", buf, "xalphabeta")
	}
}

func TestOverwrite(t *testing.T) {
	s := New(1<<20, 4096)
	var evicted []int64
	s.OnEvict(func(id int64) { evicted = append(evicted, id) })
	s.Put(7, []byte("old"))
	s.Put(7, []byte("newer-value"))
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
	got, ok := s.Get(7, nil)
	if !ok || string(got) != "newer-value" {
		t.Fatalf("Get(7) = %q,%t after overwrite", got, ok)
	}
	if len(evicted) != 0 {
		t.Fatalf("overwrite fired eviction callback for %v", evicted)
	}
}

func TestDelete(t *testing.T) {
	s := New(1<<20, 4096)
	s.Put(1, []byte("a"))
	if !s.Delete(1) {
		t.Fatal("Delete(1) = false for a present id")
	}
	if s.Delete(1) {
		t.Fatal("Delete(1) = true for an absent id")
	}
	if _, ok := s.Get(1, nil); ok {
		t.Fatal("Get(1) found a deleted entry")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", s.Len())
	}
}

func TestOversizedRefused(t *testing.T) {
	s := New(4096, 256)
	big := make([]byte, 256) // 256+12 > segment
	if s.Put(1, big) {
		t.Fatal("Put accepted a payload that cannot fit a segment")
	}
	if s.Fits(len(big)) {
		t.Fatal("Fits accepted an oversized payload")
	}
	if !s.Fits(200) {
		t.Fatal("Fits refused a payload that fits")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after refused put, want 0", s.Len())
	}
}

// TestRotationEvicts fills a deliberately tiny arena far past its
// capacity: the ring must recycle segments, every displaced id must be
// reported exactly once while still live, and the survivors must be the
// most recently written ids with intact payloads.
func TestRotationEvicts(t *testing.T) {
	s := New(1024, 256) // 4 segments of 256B
	live := map[int64][]byte{}
	s.OnEvict(func(id int64) {
		if _, ok := live[id]; !ok {
			t.Fatalf("evicted id %d that was not live", id)
		}
		delete(live, id)
	})
	const n = 500
	for id := int64(0); id < n; id++ {
		v := payload(id, 20+int(id)%40)
		if !s.Put(id, v) {
			t.Fatalf("Put(%d) refused", id)
		}
		live[id] = v
	}
	st := s.Stats()
	if st.Rotations == 0 || st.RotateEvicted == 0 {
		t.Fatalf("no rotation churn on an over-capacity fill: %+v", st)
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, model has %d live", s.Len(), len(live))
	}
	if len(live) == 0 {
		t.Fatal("rotation evicted everything, including the newest entries")
	}
	for id, want := range live {
		got, ok := s.Get(id, nil)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("survivor %d: got %x,%t want %x", id, got, ok, want)
		}
	}
	// The newest id is always among the survivors.
	if _, ok := live[n-1]; !ok {
		t.Fatal("newest id was evicted")
	}
}

// TestRotationSkipsOverwrittenStaleRecords pins the header-walk
// subtlety: an id overwritten into a later segment leaves a stale
// in-segment record behind; rotating the old segment must not evict
// the id's current copy.
func TestRotationSkipsOverwrittenStaleRecords(t *testing.T) {
	s := New(512, 256) // 2 segments
	var evicted []int64
	s.OnEvict(func(id int64) { evicted = append(evicted, id) })
	s.Put(1, payload(1, 100)) // seg 0
	s.Put(2, payload(2, 100)) // seg 0 (fills it)
	s.Put(1, payload(1, 90))  // moves id 1 to seg 1
	// Force rotation back onto seg 0: only id 2 still lives there.
	s.Put(3, payload(3, 100))
	s.Put(4, payload(4, 100))
	for _, id := range evicted {
		if id == 1 {
			t.Fatalf("rotation evicted id 1 via its stale record (evicted: %v)", evicted)
		}
	}
	if got, ok := s.Get(1, nil); !ok || !bytes.Equal(got, payload(1, 90)) {
		t.Fatalf("id 1 lost after rotation over its stale record: %x,%t", got, ok)
	}
}

func TestStatsLiveBytes(t *testing.T) {
	s := New(1<<20, 4096)
	s.Put(1, make([]byte, 100))
	s.Put(2, make([]byte, 50))
	if got, want := s.Stats().LiveBytes, int64(100+50+2*headerBytes); got != want {
		t.Fatalf("LiveBytes = %d, want %d", got, want)
	}
	s.Delete(1)
	if got, want := s.Stats().LiveBytes, int64(50+headerBytes); got != want {
		t.Fatalf("LiveBytes after delete = %d, want %d", got, want)
	}
}

func TestZeroLengthValue(t *testing.T) {
	s := New(1<<20, 4096)
	if !s.Put(5, nil) {
		t.Fatal("Put(5, nil) refused")
	}
	got, ok := s.Get(5, nil)
	if !ok || len(got) != 0 {
		t.Fatalf("Get(5) = %x,%t; want empty,true", got, ok)
	}
	n, ok := s.BytesLen(5)
	if !ok || n != 0 {
		t.Fatalf("BytesLen(5) = %d,%t; want 0,true", n, ok)
	}
}

// TestIndexChurnRehash hammers put/delete cycles over a small id space
// so tombstones accumulate and the same-size rehash purge path runs.
func TestIndexChurnRehash(t *testing.T) {
	s := New(1<<20, 1<<16)
	for round := 0; round < 2000; round++ {
		id := int64(round % 97)
		s.Put(id, payload(id, 16))
		if round%3 == 0 {
			s.Delete(int64((round * 7) % 97))
		}
	}
	dst := make([]byte, 0, 32)
	seen := 0
	for id := int64(0); id < 97; id++ {
		if got, ok := s.Get(id, dst[:0]); ok {
			seen++
			if !bytes.Equal(got, payload(id, 16)) {
				t.Fatalf("id %d corrupted after churn", id)
			}
		}
	}
	if seen != s.Len() {
		t.Fatalf("probed %d live ids, Len says %d", seen, s.Len())
	}
}

// FuzzSlabStore interleaves put/get/delete (with rotation-driven
// eviction folded in through the callback) against a map reference
// model: after every op the store and model agree on membership,
// payloads and length, and at the end the full live set round-trips.
func FuzzSlabStore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 200, 1, 200, 2, 1, 0, 31, 255})
	f.Add(bytes.Repeat([]byte{0, 255}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(2048, 256) // tiny: rotation fires constantly
		model := map[int64][]byte{}
		s.OnEvict(func(id int64) {
			if _, ok := model[id]; !ok {
				t.Fatalf("evicted id %d not in model", id)
			}
			delete(model, id)
		})
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			id := int64(arg % 37) // small space: collisions and overwrites
			switch op % 4 {
			case 0, 1: // put, length from arg (kept under the segment size)
				v := payload(id, int(arg)%200)
				if !s.Put(id, v) {
					t.Fatalf("Put(%d, %dB) refused", id, len(v))
				}
				model[id] = v
			case 2:
				got, ok := s.Get(id, nil)
				want, wok := model[id]
				if ok != wok {
					t.Fatalf("Get(%d) presence %t, model %t", id, ok, wok)
				}
				if ok && !bytes.Equal(got, want) {
					t.Fatalf("Get(%d) = %x, model %x", id, got, want)
				}
			case 3:
				_, wok := model[id]
				if s.Delete(id) != wok {
					t.Fatalf("Delete(%d) disagreed with model presence %t", id, wok)
				}
				delete(model, id)
			}
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", s.Len(), len(model))
			}
		}
		for id, want := range model {
			got, ok := s.Get(id, nil)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("final check id %d: %x,%t want %x", id, got, ok, want)
			}
			n, ok := s.BytesLen(id)
			if !ok || n != len(want) {
				t.Fatalf("final BytesLen(%d) = %d,%t want %d", id, n, ok, len(want))
			}
		}
	})
}

// TestFuzzSeedsDirect runs the seed corpus through the fuzz body so a
// plain `go test` exercises it without the fuzzing engine.
func TestFuzzSeedsDirect(t *testing.T) {
	seeds := [][]byte{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{1, 200, 1, 200, 2, 1, 0, 31, 255},
		bytes.Repeat([]byte{0, 255}, 64),
	}
	for i, seed := range seeds {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			runRef(t, seed)
		})
	}
}

// runRef mirrors the FuzzSlabStore body for direct seed execution.
func runRef(t *testing.T, data []byte) {
	s := New(2048, 256)
	model := map[int64][]byte{}
	s.OnEvict(func(id int64) { delete(model, id) })
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		id := int64(arg % 37)
		switch op % 4 {
		case 0, 1:
			v := payload(id, int(arg)%200)
			s.Put(id, v)
			model[id] = v
		case 2:
			got, ok := s.Get(id, nil)
			want, wok := model[id]
			if ok != wok || (ok && !bytes.Equal(got, want)) {
				t.Fatalf("Get(%d) diverged from model", id)
			}
		case 3:
			s.Delete(id)
			delete(model, id)
		}
		if s.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", s.Len(), len(model))
		}
	}
}
