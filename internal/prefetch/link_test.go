package prefetch

import (
	"math"
	"sync"
	"testing"
)

// driveLink records steady demand traffic: one size-s fetch every dt
// seconds from t0, returning the time of the last dispatch.
func driveLink(l *Link, t0, dt, size float64, n int) float64 {
	t := t0
	for i := 0; i < n; i++ {
		l.RecordDemand(t)
		l.RecordDemandSize(size)
		t += dt
	}
	return t - dt
}

func TestLinkRhoPrimeSteadyState(t *testing.T) {
	// 10 fetches/s of size 2 on a b=100 link: ρ′ = 10·2/100 = 0.2.
	l := NewLink(100, 0.5) // fast alpha so the EWMA converges in-test
	last := driveLink(l, 0, 0.1, 2, 200)
	got := l.RhoPrime(last)
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("RhoPrime = %v, want ≈ 0.2", got)
	}
	if rho := l.Rho(last); math.Abs(rho-got) > 1e-12 {
		t.Fatalf("Rho = %v, want %v with no speculative traffic", rho, got)
	}
}

func TestLinkRhoDecaysWhenIdle(t *testing.T) {
	l := NewLink(10, 0.5)
	last := driveLink(l, 0, 0.01, 1, 100) // 100/s of size 1 on b=10: saturated
	if rho := l.Rho(last); rho != 1 {
		t.Fatalf("Rho under overload = %v, want clamp at 1", rho)
	}
	// After 10 idle seconds the elapsed gap bounds the rate: ρ̂ =
	// 1/(10·10) = 0.01.
	if rho := l.Rho(last + 10); math.Abs(rho-0.01) > 0.005 {
		t.Fatalf("Rho after 10s idle = %v, want ≈ 0.01", rho)
	}
}

func TestLinkSpeculativeTrafficSplitsRhoFromRhoPrime(t *testing.T) {
	l := NewLink(100, 0.5)
	t0 := 0.0
	for i := 0; i < 200; i++ {
		l.RecordDemand(t0)
		l.RecordDemandSize(1)
		t0 += 0.05
		l.RecordSpeculative(t0)
		l.RecordSpeculativeSize(1)
		t0 += 0.05
	}
	now := t0 - 0.05
	rhoP, rho := l.RhoPrime(now), l.Rho(now)
	// Demand alone is 10/s·1/100 = 0.1; total traffic 20/s → 0.2.
	if math.Abs(rhoP-0.1) > 0.02 {
		t.Fatalf("RhoPrime = %v, want ≈ 0.1", rhoP)
	}
	if math.Abs(rho-0.2) > 0.04 {
		t.Fatalf("Rho = %v, want ≈ 0.2", rho)
	}
	if rho <= rhoP {
		t.Fatalf("Rho %v must exceed RhoPrime %v under speculative load", rho, rhoP)
	}
}

func TestLinkUnknownBandwidthReadsZeroUntilSet(t *testing.T) {
	l := NewLink(0, 0.5)
	last := driveLink(l, 0, 0.1, 5, 50)
	if rho := l.RhoPrime(last); rho != 0 {
		t.Fatalf("RhoPrime with unknown bandwidth = %v, want 0", rho)
	}
	l.SetBandwidth(100)
	if rho := l.RhoPrime(last); rho <= 0 {
		t.Fatalf("RhoPrime after SetBandwidth = %v, want > 0", rho)
	}
	l.SetBandwidth(-1) // ignored
	l.SetBandwidth(math.NaN())
	if b := l.Bandwidth(); b != 100 {
		t.Fatalf("Bandwidth = %v, want 100 (bad values ignored)", b)
	}
}

func TestLinkIdleWait(t *testing.T) {
	l := NewLink(10, 0.5)
	last := driveLink(l, 0, 0.01, 1, 100) // saturated: ρ̂ = 1
	const wm = 0.5
	wait := l.IdleWait(last, wm)
	if wait <= 0 {
		t.Fatalf("IdleWait under saturation = %v, want > 0", wait)
	}
	// Sleeping the advertised wait must bring ρ̂ to (or below) the
	// watermark; a hair before it must not.
	if rho := l.Rho(last + wait + 1e-9); rho > wm {
		t.Fatalf("Rho after advertised wait = %v, want <= %v", rho, wm)
	}
	if rho := l.Rho(last + wait/2); rho <= wm {
		t.Fatalf("Rho halfway through the wait = %v, want > %v", rho, wm)
	}
	if w := l.IdleWait(last+wait+1, wm); w != 0 {
		t.Fatalf("IdleWait once idle = %v, want 0", w)
	}
}

func TestStateForLinkUsesLinkUtilisation(t *testing.T) {
	c := NewController(1000, 0.5)
	// Global traffic is heavy…
	for i := 0; i < 100; i++ {
		c.RecordRequest(float64(i)*0.001, 5)
	}
	// …but this link sees a trickle.
	l := NewLink(1000, 0.5)
	last := driveLink(l, 0, 1, 1, 20)

	st := c.StateForLink(l, last, 3)
	global := c.State(3)
	if st.RhoPrime >= global.RhoPrime {
		t.Fatalf("link ρ̂′ %v must sit below the global %v", st.RhoPrime, global.RhoPrime)
	}
	if st.HPrime != global.HPrime || st.NF != global.NF || st.NC != 3 {
		t.Fatalf("cache-side estimates must stay global: link %+v vs global %+v", st, global)
	}
}

func TestLinkConcurrentRecording(t *testing.T) {
	l := NewLink(100, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := float64(g)
			for i := 0; i < 1000; i++ {
				now := base + float64(i)*0.001
				if i%2 == 0 {
					l.RecordDemand(now)
					l.RecordDemandSize(1)
				} else {
					l.RecordSpeculative(now)
					l.RecordSpeculativeSize(2)
				}
				_ = l.Rho(now)
				_ = l.RhoPrime(now)
				_ = l.IdleWait(now, 0.5)
			}
		}(g)
	}
	wg.Wait()
	if rho := l.Rho(8); rho < 0 || rho > 1 {
		t.Fatalf("Rho out of range after concurrent load: %v", rho)
	}
}
