package prefetch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/predict"
	"repro/internal/rng"
)

func cands(ps ...float64) []predict.Prediction {
	out := make([]predict.Prediction, len(ps))
	for i, p := range ps {
		out[i] = predict.Prediction{Item: cache.ID(i), Prob: p}
	}
	return out
}

func TestNonePolicy(t *testing.T) {
	if got := (None{}).Select(cands(0.9, 0.8), State{}); got != nil {
		t.Errorf("None selected %v", got)
	}
	if None.Name(None{}) != "none" {
		t.Error("name wrong")
	}
}

func TestStaticPolicy(t *testing.T) {
	p := Static{Theta: 0.5}
	got := p.Select(cands(0.9, 0.6, 0.5, 0.4), State{})
	if len(got) != 2 {
		t.Fatalf("selected %d, want 2 (strictly above 0.5)", len(got))
	}
	if got[0].Prob != 0.9 || got[1].Prob != 0.6 {
		t.Errorf("selection = %v", got)
	}
}

func TestTopKPolicy(t *testing.T) {
	p := TopK{K: 2}
	got := p.Select(cands(0.9, 0.6, 0.5), State{})
	if len(got) != 2 {
		t.Fatalf("selected %d, want 2", len(got))
	}
	if got := (TopK{K: 5}).Select(cands(0.9), State{}); len(got) != 1 {
		t.Error("K beyond candidates should return all")
	}
	if got := (TopK{K: 0}).Select(cands(0.9), State{}); got != nil {
		t.Error("K=0 should select nothing")
	}
}

func TestThresholdPolicyModelA(t *testing.T) {
	p := Threshold{Model: analytic.ModelA{}}
	st := State{RhoPrime: 0.6}
	got := p.Select(cands(0.9, 0.7, 0.6, 0.5), st)
	if len(got) != 2 {
		t.Fatalf("selected %d, want 2 (p > 0.6 strictly)", len(got))
	}
	// Exactly at the threshold is excluded (G would be zero).
	if got[len(got)-1].Prob <= 0.6 {
		t.Errorf("selection includes p <= p_th: %v", got)
	}
}

func TestThresholdPolicyModelB(t *testing.T) {
	p := Threshold{Model: analytic.ModelB{}}
	st := State{RhoPrime: 0.6, HPrime: 0.4, NC: 10} // p_th = 0.64
	got := p.Select(cands(0.9, 0.62, 0.5), st)
	if len(got) != 1 || got[0].Prob != 0.9 {
		t.Errorf("model B selection = %v, want only p=0.9", got)
	}
	// Without NC the correction silently degrades to model A behaviour.
	stNoNC := State{RhoPrime: 0.6, HPrime: 0.4}
	if got := p.Select(cands(0.62), stNoNC); len(got) != 1 {
		t.Error("NC=0 should fall back to ρ′ threshold")
	}
}

func TestThresholdPolicyModelAB(t *testing.T) {
	p := Threshold{Model: analytic.ModelAB{Alpha: 0.5}}
	st := State{RhoPrime: 0.6, HPrime: 0.4, NC: 10} // p_th = 0.6 + 0.02
	got := p.Select(cands(0.63, 0.61), st)
	if len(got) != 1 {
		t.Errorf("AB selection = %v, want only 0.63", got)
	}
}

func TestThresholdPolicyMargin(t *testing.T) {
	p := Threshold{Model: analytic.ModelA{}, Margin: 0.1}
	got := p.Select(cands(0.75, 0.65), State{RhoPrime: 0.6})
	if len(got) != 1 || got[0].Prob != 0.75 {
		t.Errorf("margin not applied: %v", got)
	}
}

func TestThresholdPolicySaturated(t *testing.T) {
	p := Threshold{Model: analytic.ModelA{}}
	if got := p.Select(cands(0.99), State{RhoPrime: 1.0}); got != nil {
		t.Error("ρ′ >= 1 should disable prefetching entirely")
	}
}

// Property: every selection is a prefix of the sorted candidates, and
// every selected probability strictly exceeds the effective threshold.
func TestQuickThresholdSelection(t *testing.T) {
	f := func(probs []uint8, rhoRaw uint8) bool {
		in := make([]predict.Prediction, len(probs))
		for i, pr := range probs {
			in[i] = predict.Prediction{Item: cache.ID(i), Prob: float64(pr) / 255}
		}
		// sort descending as Predict guarantees
		for i := 1; i < len(in); i++ {
			for j := i; j > 0 && in[j].Prob > in[j-1].Prob; j-- {
				in[j], in[j-1] = in[j-1], in[j]
			}
		}
		rho := float64(rhoRaw) / 255
		sel := (Threshold{Model: analytic.ModelA{}}).Select(in, State{RhoPrime: rho})
		for i, s := range sel {
			if s != in[i] {
				return false // not a prefix
			}
			if s.Prob <= rho && rho < 1 {
				return false
			}
		}
		// Nothing past the selection should qualify.
		if len(sel) < len(in) && rho < 1 && in[len(sel)].Prob > rho {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedyFirstAdmissionMatchesPaperRule(t *testing.T) {
	// With a single candidate the greedy rule degenerates to the
	// paper's threshold: the first admission is judged at θ(h′, 0) = p_th.
	st := State{RhoPrime: 0.42, HPrime: 0.3}
	paper := Threshold{Model: analytic.ModelA{}}
	greedy := Greedy{Model: analytic.ModelA{}}
	for _, p := range []float64{0.1, 0.41, 0.43, 0.9} {
		in := cands(p)
		got := len(greedy.Select(in, st))
		want := len(paper.Select(in, st))
		if got != want {
			t.Errorf("p=%v: greedy %d vs paper %d", p, got, want)
		}
	}
}

func TestGreedyAdmitsBelowPaperThresholdAfterGoodAdmissions(t *testing.T) {
	// ρ′=0.42 (h′=0.3, λs̄/b=0.6): the paper rejects p=0.35, but after
	// admitting p=0.9 and p=0.8 the local threshold falls below 0.35.
	st := State{RhoPrime: 0.42, HPrime: 0.3}
	in := cands(0.9, 0.8, 0.35)
	paper := (Threshold{Model: analytic.ModelA{}}).Select(in, st)
	greedy := (Greedy{Model: analytic.ModelA{}}).Select(in, st)
	if len(paper) != 2 {
		t.Fatalf("paper rule selected %d, want 2", len(paper))
	}
	if len(greedy) != 3 {
		t.Fatalf("greedy rule selected %d, want 3 (p=0.35 admitted after load relief)", len(greedy))
	}
}

func TestGreedyNeverSelectsLessThanPaper(t *testing.T) {
	// Property: whenever the paper's selection is itself feasible (its
	// projected prefetch load stays under capacity), the greedy
	// selection is a superset — each of the paper's candidates beats
	// p_th, and the local threshold only falls below p_th as they are
	// admitted. When the paper's selection would saturate the link the
	// greedy rule may (correctly) stop earlier, so those inputs are
	// excluded.
	f := func(probs []uint8, rhoRaw, hRaw uint8) bool {
		in := make([]predict.Prediction, len(probs))
		for i, pr := range probs {
			in[i] = predict.Prediction{Item: cache.ID(i), Prob: float64(pr%101) / 100}
		}
		for i := 1; i < len(in); i++ {
			for j := i; j > 0 && in[j].Prob > in[j-1].Prob; j-- {
				in[j], in[j-1] = in[j-1], in[j]
			}
		}
		st := State{
			RhoPrime: float64(rhoRaw%100) / 100,
			HPrime:   float64(hRaw%95) / 100,
		}
		paper := (Threshold{Model: analytic.ModelA{}}).Select(in, st)
		if st.HPrime < 1 && st.RhoPrime > 0 {
			const w = 0.25 // the greedy default weight
			load := st.RhoPrime / (1 - st.HPrime)
			if float64(len(paper))*w*load >= 1 {
				return true // paper's own selection saturates: skip
			}
			gain := 0.0
			for _, c := range paper {
				gain += w * c.Prob
			}
			if st.HPrime+gain > 1 {
				return true // paper's selection breaks eq. 6: skip
			}
		}
		greedy := (Greedy{Model: analytic.ModelA{}}).Select(in, st)
		return len(greedy) >= len(paper)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedyConsistencyGuard(t *testing.T) {
	// Enough high-p candidates to exceed the consistency bound: with
	// weight 0.25 the projected hit ratio reaches 1 after three
	// admissions (0.3 + 3×0.25×0.99 ≈ 1.04 > 1), so the fourth must be
	// refused even though its probability clears the local threshold.
	st := State{RhoPrime: 0.42, HPrime: 0.3}
	in := cands(0.99, 0.98, 0.97, 0.96, 0.95)
	got := (Greedy{Model: analytic.ModelA{}}).Select(in, st)
	if len(got) != 2 {
		t.Errorf("greedy selected %d candidates, want 2 (h projection capped at 1)", len(got))
	}
}

func TestGreedyVanishingWeightIsPaperRule(t *testing.T) {
	// As the per-candidate weight vanishes, the local threshold never
	// moves and the greedy rule degenerates to the paper's fixed
	// threshold — the correct continuum between the two.
	st := State{RhoPrime: 0.42, HPrime: 0.3}
	paper := Threshold{Model: analytic.ModelA{}}
	greedy := Greedy{Model: analytic.ModelA{}, Weight: 1e-9}
	// Inputs avoid candidates exactly at p_th = 0.42: for any positive
	// weight the local threshold falls *strictly* below p_th after one
	// admission, so an exactly-at-threshold candidate is (correctly)
	// admitted by greedy while the strict paper rule rejects it.
	inputs := [][]predict.Prediction{
		cands(0.9, 0.8, 0.3, 0.25, 0.2),
		cands(0.5, 0.43, 0.41, 0.1),
		cands(0.41),
		cands(0.99, 0.98, 0.97),
	}
	for i, in := range inputs {
		p := paper.Select(in, st)
		g := greedy.Select(in, st)
		if len(p) != len(g) {
			t.Errorf("input %d: paper %d vs vanishing-weight greedy %d", i, len(p), len(g))
		}
	}
}

func TestGreedyModelBDisplacement(t *testing.T) {
	stA := State{RhoPrime: 0.42, HPrime: 0.3}
	stB := State{RhoPrime: 0.42, HPrime: 0.3, NC: 5} // d = 0.06
	in := cands(0.45)
	if got := (Greedy{Model: analytic.ModelA{}}).Select(in, stA); len(got) != 1 {
		t.Error("model A should admit p=0.45 at p_th=0.42")
	}
	if got := (Greedy{Model: analytic.ModelB{}}).Select(in, stB); len(got) != 0 {
		t.Error("model B with d=0.06 should reject p=0.45 (p_th=0.48)")
	}
}

func TestGreedyName(t *testing.T) {
	if (Greedy{Model: analytic.ModelA{}}).Name() != "greedy-threshold(model=A)" {
		t.Error("greedy name wrong")
	}
}

func TestControllerLambdaEstimate(t *testing.T) {
	c := NewController(50, 0.5)
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 1.0 / 30 // deterministic rate 30
		c.RecordRequest(now, 1)
	}
	if math.Abs(c.Lambda()-30)/30 > 0.01 {
		t.Errorf("λ̂ = %v, want ~30", c.Lambda())
	}
	if math.Abs(c.MeanSize()-1) > 1e-9 {
		t.Errorf("ŝ̄ = %v, want 1", c.MeanSize())
	}
}

func TestControllerLambdaPoisson(t *testing.T) {
	c := NewController(50, 0.02)
	src := rng.New(41)
	inter := rng.Exponential{Rate: 30}
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += inter.Sample(src)
		c.RecordRequest(now, 1)
	}
	if math.Abs(c.Lambda()-30)/30 > 0.15 {
		t.Errorf("λ̂ = %v, want ~30", c.Lambda())
	}
}

func TestControllerRhoPrime(t *testing.T) {
	c := NewController(50, 1) // alpha=1: use latest observation directly
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 1.0 / 30
		c.RecordRequest(now, 1)
	}
	// h′ estimate is 0 (no cache events yet) → ρ̂′ = 1·30·1/50 = 0.6.
	if math.Abs(c.RhoPrime()-0.6) > 0.01 {
		t.Errorf("ρ̂′ = %v, want 0.6", c.RhoPrime())
	}
	// Now report cache hits raising ĥ′ to 0.5: ρ̂′ halves.
	est := c.Estimator()
	for i := 0; i < 10; i++ {
		est.OnRemoteAccess(cache.ID(i), true)
		est.OnHit(cache.ID(i))
	}
	if math.Abs(c.HPrime()-0.5) > 1e-12 {
		t.Fatalf("ĥ′ = %v, want 0.5", c.HPrime())
	}
	if math.Abs(c.RhoPrime()-0.3) > 0.01 {
		t.Errorf("ρ̂′ = %v, want 0.3", c.RhoPrime())
	}
}

func TestControllerNF(t *testing.T) {
	// alpha=1: n̄(F) is exactly the prefetch count folded at the latest
	// arrival, so the EWMA semantics are directly observable.
	c := NewController(50, 1)
	c.RecordRequest(1, 1) // folds the 0 prefetches seen so far
	c.RecordPrefetch()
	c.RecordPrefetch()
	c.RecordPrefetch()
	if c.NF() != 0 {
		t.Errorf("n̄(F) = %v before the next arrival folds, want 0", c.NF())
	}
	c.RecordRequest(2, 1) // folds the 3 pending prefetches
	if math.Abs(c.NF()-3) > 1e-12 {
		t.Errorf("n̄(F) = %v, want 3", c.NF())
	}
	if c.Requests() != 2 || c.Prefetches() != 3 {
		t.Errorf("lifetime counters = %d/%d, want 2/3", c.Requests(), c.Prefetches())
	}
}

// TestControllerNFConverges drives a steady two-prefetches-per-request
// pattern and checks the EWMA converges to 2 — then shuts prefetching
// off and checks n̄(F) decays toward 0, the adaptivity the lifetime
// ratio prefetches/requests could never show.
func TestControllerNFConverges(t *testing.T) {
	c := NewController(50, 0.2)
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 0.1
		c.RecordRequest(now, 1)
		c.RecordPrefetch()
		c.RecordPrefetch()
	}
	if math.Abs(c.NF()-2) > 0.01 {
		t.Fatalf("n̄(F) = %v after steady 2/request, want ~2", c.NF())
	}
	// Prefetch volume collapses; the lifetime ratio would stay pinned
	// near 2 but the EWMA must track the shift.
	for i := 0; i < 200; i++ {
		now += 0.1
		c.RecordRequest(now, 1)
	}
	if c.NF() > 0.01 {
		t.Fatalf("n̄(F) = %v after prefetching stopped, want ~0", c.NF())
	}
	if lifetime := float64(c.Prefetches()) / float64(c.Requests()); lifetime < 0.9 {
		t.Fatalf("lifetime ratio = %v, expected ~1 (sanity: shift really happened)", lifetime)
	}
}

func TestControllerState(t *testing.T) {
	c := NewController(50, 0)
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 1.0 / 30
		c.RecordRequest(now, 1)
	}
	st := c.State(200)
	if st.NC != 200 {
		t.Error("NC not propagated")
	}
	if st.RhoPrime <= 0 {
		t.Error("RhoPrime missing from state")
	}
}

func TestControllerClamps(t *testing.T) {
	c := NewController(1, 1) // tiny bandwidth → huge ρ′
	now := 0.0
	for i := 0; i < 10; i++ {
		now += 0.001
		c.RecordRequest(now, 5)
	}
	if c.RhoPrime() != 1 {
		t.Errorf("ρ̂′ should clamp to 1, got %v", c.RhoPrime())
	}
}

func TestControllerEmpty(t *testing.T) {
	c := NewController(10, 0)
	if c.Lambda() != 0 || c.MeanSize() != 0 || c.RhoPrime() != 0 || c.NF() != 0 {
		t.Error("fresh controller should report zeros")
	}
}

func TestControllerPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bandwidth 0 should panic")
			}
		}()
		NewController(0, 0.1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("alpha > 1 should panic")
			}
		}()
		NewController(10, 1.5)
	}()
}

// End-to-end adaptivity: when load doubles, the controller's threshold
// rises, and the paper policy stops prefetching items it previously
// accepted — the behaviour a static threshold cannot reproduce.
func TestThresholdAdaptsToLoad(t *testing.T) {
	c := NewController(50, 0.2)
	pol := Threshold{Model: analytic.ModelA{}}
	candidates := cands(0.5)

	now := 0.0
	for i := 0; i < 300; i++ {
		now += 1.0 / 15 // λ=15 → ρ′=0.3
		c.RecordRequest(now, 1)
	}
	if got := pol.Select(candidates, c.State(0)); len(got) != 1 {
		t.Fatalf("at ρ′≈0.3 a p=0.5 item should be prefetched (ρ̂′=%v)", c.RhoPrime())
	}

	for i := 0; i < 600; i++ {
		now += 1.0 / 35 // λ=35 → ρ′=0.7
		c.RecordRequest(now, 1)
	}
	if got := pol.Select(candidates, c.State(0)); len(got) != 0 {
		t.Fatalf("at ρ′≈0.7 a p=0.5 item must not be prefetched (ρ̂′=%v)", c.RhoPrime())
	}
}
