package prefetch

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cache"
)

// Controller maintains the online estimates a Threshold policy needs:
// the request rate λ, the mean item size s̄, the no-prefetch hit ratio
// h′ (via the paper's Section-4 tagged-cache estimator), and hence
// ρ′ = (1−ĥ′)·λ̂·ŝ̄/b. It also tracks n̄(F), the recent prefetches per
// request, for the model-B correction.
//
// Rate and size estimates use exponentially-weighted moving averages so
// the threshold adapts when load shifts — the property that
// distinguishes the paper's rule from a static cutoff.
//
// Controller is safe for concurrent use: every method may be called
// from multiple goroutines (the public prefetcher engine records
// requests and prefetch completions concurrently). The embedded
// Estimator carries its own lock, so wiring cache events directly to it
// remains safe too.
type Controller struct {
	mu        sync.Mutex
	bandwidth float64
	alpha     float64 // EWMA weight for new observations

	est *cache.Estimator

	lastArrival float64
	interEWMA   float64 // smoothed inter-arrival time
	haveArrival bool
	haveInter   bool

	sizeEWMA float64
	haveSize bool

	requests   int64
	prefetches int64
}

// NewController creates a controller for a link of the given bandwidth.
// alpha is the EWMA weight in (0,1]; 0 selects the default 0.05 (slow,
// stable adaptation).
func NewController(bandwidth, alpha float64) *Controller {
	if bandwidth <= 0 || math.IsNaN(bandwidth) {
		panic(fmt.Sprintf("prefetch: bandwidth %v must be positive", bandwidth))
	}
	if alpha == 0 {
		alpha = 0.05
	}
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("prefetch: EWMA weight %v must be in (0,1]", alpha))
	}
	return &Controller{
		bandwidth: bandwidth,
		alpha:     alpha,
		est:       cache.NewEstimator(),
	}
}

// Estimator exposes the tagged-cache h′ estimator so the cache layer can
// report hits, misses, prefetches and evictions to it.
func (c *Controller) Estimator() *cache.Estimator { return c.est }

// Bandwidth returns the configured link bandwidth b.
func (c *Controller) Bandwidth() float64 { return c.bandwidth }

// RecordRequest notes a user request at time now with the requested
// item's size. Call once per request, before the prefetch decision.
func (c *Controller) RecordRequest(now, size float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.haveArrival {
		inter := now - c.lastArrival
		if inter >= 0 {
			if !c.haveInter {
				c.interEWMA = inter
				c.haveInter = true
			} else {
				c.interEWMA = (1-c.alpha)*c.interEWMA + c.alpha*inter
			}
		}
	}
	c.lastArrival = now
	c.haveArrival = true

	if size > 0 {
		if !c.haveSize {
			c.sizeEWMA = size
			c.haveSize = true
		} else {
			c.sizeEWMA = (1-c.alpha)*c.sizeEWMA + c.alpha*size
		}
	}
	c.requests++
}

// RecordPrefetch notes that one item was prefetched as a consequence of
// a request.
func (c *Controller) RecordPrefetch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prefetches++
}

// Lambda returns the estimated request rate λ̂ (0 until two requests
// have been seen).
func (c *Controller) Lambda() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lambdaLocked()
}

func (c *Controller) lambdaLocked() float64 {
	if !c.haveInter || c.interEWMA <= 0 {
		return 0
	}
	return 1 / c.interEWMA
}

// MeanSize returns the estimated mean item size ŝ̄ (0 until a sized
// request has been seen).
func (c *Controller) MeanSize() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sizeEWMA
}

// HPrime returns the Section-4 estimate ĥ′ under model A. The
// estimator has its own lock, so this does not take the controller's.
func (c *Controller) HPrime() float64 { return c.est.EstimateA() }

// NF returns the observed average number of prefetched items per user
// request.
func (c *Controller) NF() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nfLocked()
}

func (c *Controller) nfLocked() float64 {
	if c.requests == 0 {
		return 0
	}
	return float64(c.prefetches) / float64(c.requests)
}

// RhoPrime returns the estimated no-prefetch utilisation
// ρ̂′ = (1−ĥ′)·λ̂·ŝ̄/b, clamped to [0, 1].
func (c *Controller) RhoPrime() float64 {
	hp := c.est.EstimateA() // estimator lock; take before the controller's
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rhoPrimeLocked(hp)
}

func (c *Controller) rhoPrimeLocked(hPrime float64) float64 {
	rho := (1 - hPrime) * c.lambdaLocked() * c.sizeEWMA / c.bandwidth
	if rho < 0 {
		return 0
	}
	if rho > 1 {
		return 1
	}
	return rho
}

// State snapshots the current estimates for a Policy decision; nc is the
// caller's cache-occupancy estimate (model B only; pass 0 for model A).
func (c *Controller) State(nc float64) State {
	hp := c.est.EstimateA()
	c.mu.Lock()
	defer c.mu.Unlock()
	return State{
		RhoPrime: c.rhoPrimeLocked(hp),
		HPrime:   hp,
		NC:       nc,
		NF:       c.nfLocked(),
	}
}
