package prefetch

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/cache"
)

// ewma is a lock-free exponentially-weighted moving average: the current
// value is stored as float64 bits in an atomic word, NaN meaning "no
// observation yet", and each fold is a compare-and-swap loop. Concurrent
// folds may apply in either order, but every sample is folded exactly
// once, which is all the estimators need.
type ewma struct {
	bits atomic.Uint64
}

var unsetBits = math.Float64bits(math.NaN())

func (e *ewma) init() { e.bits.Store(unsetBits) }

// value returns the current average, or 0 before any observation.
func (e *ewma) value() float64 {
	v := math.Float64frombits(e.bits.Load())
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// fold mixes one sample in with weight alpha; the first sample seeds the
// average directly.
func (e *ewma) fold(sample, alpha float64) {
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		next := sample
		if !math.IsNaN(cur) {
			next = (1-alpha)*cur + alpha*sample
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Controller maintains the online estimates a Threshold policy needs:
// the request rate λ, the mean item size s̄, the no-prefetch hit ratio
// h′ (via the paper's Section-4 tagged-cache estimator), and hence
// ρ′ = (1−ĥ′)·λ̂·ŝ̄/b. It also tracks n̄(F), the recent prefetches per
// request, for the model-B correction.
//
// Rate, size and n̄(F) estimates use exponentially-weighted moving
// averages so the threshold adapts when load shifts — the property that
// distinguishes the paper's rule from a static cutoff.
//
// Controller is safe for concurrent use and, unlike the earlier
// mutex-based version, never serialises its callers: every estimate
// lives in an atomic word, so the sharded engine's hot paths can record
// requests and prefetch completions from many shards without contending
// on a controller lock, while Lambda/State/Stats readers still observe
// globally consistent aggregates. The embedded Estimator carries its own
// striped locks, so wiring cache events directly to it remains safe too.
type Controller struct {
	bandwidth float64
	alpha     float64 // EWMA weight for new observations

	est *cache.Estimator

	lastArrival atomic.Uint64 // float64 bits of the last arrival time; NaN = none
	interEWMA   ewma          // smoothed inter-arrival time
	sizeEWMA    ewma          // smoothed item size
	nfEWMA      ewma          // smoothed prefetches per request

	// nfPending counts prefetches recorded since the last request; each
	// arrival folds it into nfEWMA as one sample.
	nfPending  atomic.Int64
	requests   atomic.Int64
	prefetches atomic.Int64
}

// NewController creates a controller for a link of the given bandwidth.
// alpha is the EWMA weight in (0,1]; 0 selects the default 0.05 (slow,
// stable adaptation).
func NewController(bandwidth, alpha float64) *Controller {
	if bandwidth <= 0 || math.IsNaN(bandwidth) {
		panic(fmt.Sprintf("prefetch: bandwidth %v must be positive", bandwidth))
	}
	if alpha == 0 {
		alpha = 0.05
	}
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("prefetch: EWMA weight %v must be in (0,1]", alpha))
	}
	c := &Controller{
		bandwidth: bandwidth,
		alpha:     alpha,
		est:       cache.NewEstimator(),
	}
	c.lastArrival.Store(unsetBits)
	c.interEWMA.init()
	c.sizeEWMA.init()
	c.nfEWMA.init()
	return c
}

// Estimator exposes the tagged-cache h′ estimator so the cache layer can
// report hits, misses, prefetches and evictions to it.
func (c *Controller) Estimator() *cache.Estimator { return c.est }

// Bandwidth returns the configured link bandwidth b.
func (c *Controller) Bandwidth() float64 { return c.bandwidth }

// RecordRequest notes a user request at time now. Call once per request,
// as soon as the request arrives — before any fetch, so that λ̂ and the
// request count stay consistent even when the origin later fails. size
// is the requested item's size if already known; pass 0 (skipped by the
// size estimator) when it is not, and report it via RecordSize once the
// fetch resolves.
func (c *Controller) RecordRequest(now, size float64) {
	prev := math.Float64frombits(c.lastArrival.Swap(math.Float64bits(now)))
	if !math.IsNaN(prev) {
		// Concurrent arrivals can swap out of order; a negative gap
		// carries no rate information, so skip it.
		if inter := now - prev; inter >= 0 {
			c.interEWMA.fold(inter, c.alpha)
		}
	}
	if size > 0 {
		c.sizeEWMA.fold(size, c.alpha)
	}
	c.nfEWMA.fold(float64(c.nfPending.Swap(0)), c.alpha)
	c.requests.Add(1)
}

// RecordSize folds one observed item size into ŝ̄ for a request whose
// size was unknown at arrival time (demand fetches learn the size only
// when the origin responds). Sizes <= 0 are ignored.
func (c *Controller) RecordSize(size float64) {
	if size > 0 {
		c.sizeEWMA.fold(size, c.alpha)
	}
}

// RecordPrefetch notes that one item was prefetched as a consequence of
// a request.
func (c *Controller) RecordPrefetch() {
	c.nfPending.Add(1)
	c.prefetches.Add(1)
}

// Requests returns the number of arrivals recorded. It matches the
// engine-level request count (minus requests rejected before admission),
// including requests whose fetch subsequently failed.
func (c *Controller) Requests() int64 { return c.requests.Load() }

// Prefetches returns the lifetime number of prefetches recorded.
func (c *Controller) Prefetches() int64 { return c.prefetches.Load() }

// Lambda returns the estimated request rate λ̂ (0 until two requests
// have been seen).
func (c *Controller) Lambda() float64 {
	inter := c.interEWMA.value()
	if inter <= 0 {
		return 0
	}
	return 1 / inter
}

// MeanSize returns the estimated mean item size ŝ̄ (0 until a sized
// request has been seen).
func (c *Controller) MeanSize() float64 { return c.sizeEWMA.value() }

// HPrime returns the Section-4 estimate ĥ′ under model A.
func (c *Controller) HPrime() float64 { return c.est.EstimateA() }

// NF returns the *recent* average number of prefetched items per user
// request n̄(F): an EWMA, folded at each arrival with the same alpha as
// λ̂ and ŝ̄, of the prefetches recorded since the previous arrival. It
// adapts when prefetch volume shifts, unlike the lifetime ratio
// prefetches/requests.
func (c *Controller) NF() float64 { return c.nfEWMA.value() }

// RhoPrime returns the estimated no-prefetch utilisation
// ρ̂′ = (1−ĥ′)·λ̂·ŝ̄/b, clamped to [0, 1].
func (c *Controller) RhoPrime() float64 {
	return c.rhoPrime(c.est.EstimateA())
}

func (c *Controller) rhoPrime(hPrime float64) float64 {
	rho := (1 - hPrime) * c.Lambda() * c.MeanSize() / c.bandwidth
	if rho < 0 {
		return 0
	}
	if rho > 1 {
		return 1
	}
	return rho
}

// State snapshots the current estimates for a Policy decision; nc is the
// caller's cache-occupancy estimate (model B only; pass 0 for model A).
func (c *Controller) State(nc float64) State {
	hp := c.est.EstimateA()
	return State{
		RhoPrime: c.rhoPrime(hp),
		HPrime:   hp,
		NC:       nc,
		NF:       c.NF(),
	}
}
