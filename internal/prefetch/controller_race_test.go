package prefetch

import (
	"sync"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/predict"
)

// TestControllerConcurrent hammers every Controller entry point from
// multiple goroutines; run under -race it proves the EWMA state and the
// tagged-cache estimator are properly synchronised (the concurrent
// engine calls them from its demand path and its prefetch workers).
func TestControllerConcurrent(t *testing.T) {
	ctrl := NewController(50, 0.05)
	pol := Threshold{Model: analytic.ModelA{}}
	cands := []predict.Prediction{
		{Item: 1, Prob: 0.9}, {Item: 2, Prob: 0.5}, {Item: 3, Prob: 0.1},
	}

	var wg sync.WaitGroup
	const workers = 8
	const iters = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			est := ctrl.Estimator()
			for i := 0; i < iters; i++ {
				id := cache.ID(w*iters + i)
				ctrl.RecordRequest(float64(i)*0.01, 1)
				switch i % 4 {
				case 0:
					est.OnHit(id)
				case 1:
					est.OnRemoteAccess(id, true)
				case 2:
					est.OnPrefetch(id)
					ctrl.RecordPrefetch()
				case 3:
					est.OnEvict(id)
				}
				st := ctrl.State(0)
				pol.Select(cands, st)
				_ = ctrl.RhoPrime()
				_ = ctrl.Lambda()
				_ = ctrl.MeanSize()
				_ = ctrl.NF()
				_ = ctrl.HPrime()
			}
		}(w)
	}
	wg.Wait()

	if got := ctrl.Estimator().Accesses(); got != workers*iters/2 {
		t.Fatalf("accesses = %d, want %d", got, workers*iters/2)
	}
	if rho := ctrl.RhoPrime(); rho < 0 || rho > 1 {
		t.Fatalf("ρ̂′ = %v out of [0,1]", rho)
	}
}
