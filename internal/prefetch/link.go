package prefetch

import (
	"fmt"
	"math"
	"sync/atomic"
)

// linkFlow is one traffic stream on a link: the dispatch rate (EWMA of
// inter-dispatch gaps, same fold as the controller's λ̂) and the mean
// item size, both lock-free. Unlike the controller's global λ̂, the
// rate a flow reports is evaluated *at* a point in time: once the link
// goes quiet, the elapsed gap since the last dispatch bounds the
// current rate, so utilisation decays toward zero during idle periods
// instead of holding the last busy-period estimate forever — which is
// what lets an idle-period dispatch gate ever reopen.
type linkFlow struct {
	last  atomic.Uint64 // float64 bits of the last dispatch time; NaN = none
	inter ewma          // smoothed inter-dispatch gap
	size  ewma          // smoothed item size
}

func (f *linkFlow) init() {
	f.last.Store(unsetBits)
	f.inter.init()
	f.size.init()
}

// record notes one dispatch on the flow at time now.
func (f *linkFlow) record(now, alpha float64) {
	prev := math.Float64frombits(f.last.Swap(math.Float64bits(now)))
	if !math.IsNaN(prev) {
		// Concurrent dispatches can swap out of order; a negative gap
		// carries no rate information, so skip it (as RecordRequest does).
		if inter := now - prev; inter >= 0 {
			f.inter.fold(inter, alpha)
		}
	}
}

// recordSize folds one observed item size (sizes become known only when
// the backend responds, after the dispatch was recorded).
func (f *linkFlow) recordSize(size, alpha float64) {
	if size > 0 {
		f.size.fold(size, alpha)
	}
}

// offered returns the flow's offered load in size units per second as
// of time now: ŝ̄ times the current rate, where the rate estimate is
// the smoothed inter-dispatch gap *bounded below by the elapsed gap
// since the last dispatch* — so it decays as the link idles.
func (f *linkFlow) offered(now float64) float64 {
	last := math.Float64frombits(f.last.Load())
	if math.IsNaN(last) {
		return 0
	}
	inter := f.inter.value()
	if gap := now - last; gap > inter {
		inter = gap
	}
	if inter <= 0 {
		return 0 // a single dispatch with no elapsed time: no rate estimate yet
	}
	return f.size.value() / inter
}

// sinceLast returns the elapsed time since the flow's last dispatch,
// or -1 before any dispatch.
func (f *linkFlow) sinceLast(now float64) float64 {
	last := math.Float64frombits(f.last.Load())
	if math.IsNaN(last) {
		return -1
	}
	return now - last
}

// Link tracks the online utilisation of one backend link, so a
// multi-backend fetch fabric can feed a *separate* ρ̂′ per link into
// the threshold rule — the admission decision then reflects the link a
// candidate's fetch would actually compete with, not a global average.
//
// Two flows are kept: demand (miss fetches only — the link's
// no-prefetch traffic, giving ρ̂′) and total (demand plus speculative,
// giving ρ̂, the quantity an idle-period dispatch gate compares against
// its watermark). Demand fetches are observed directly, so per-link
// ρ̂′ needs no (1−h′) correction — the cache has already absorbed the
// hits before traffic reaches the link.
//
// All methods are safe for concurrent use; the counters are the same
// lock-free EWMA words the Controller uses.
type Link struct {
	alpha  float64
	bw     atomic.Uint64 // float64 bits: configured or estimated bandwidth
	demand linkFlow
	total  linkFlow
}

// NewLink creates a link estimator. bandwidth is the link capacity in
// size units per second; pass 0 when unknown — utilisation then reads
// 0 until SetBandwidth supplies an online estimate. alpha is the EWMA
// weight in (0,1]; 0 selects the controller's default 0.05.
func NewLink(bandwidth, alpha float64) *Link {
	if bandwidth < 0 || math.IsNaN(bandwidth) {
		panic(fmt.Sprintf("prefetch: link bandwidth %v must be non-negative", bandwidth))
	}
	if alpha == 0 {
		alpha = 0.05
	}
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("prefetch: EWMA weight %v must be in (0,1]", alpha))
	}
	l := &Link{alpha: alpha}
	l.bw.Store(math.Float64bits(bandwidth))
	l.demand.init()
	l.total.init()
	return l
}

// SetBandwidth replaces the link's bandwidth estimate (size units per
// second). Non-positive and non-finite values are ignored.
func (l *Link) SetBandwidth(b float64) {
	if b > 0 && !math.IsInf(b, 0) && !math.IsNaN(b) {
		l.bw.Store(math.Float64bits(b))
	}
}

// Bandwidth returns the current bandwidth (configured or estimated);
// 0 means no estimate yet.
func (l *Link) Bandwidth() float64 { return math.Float64frombits(l.bw.Load()) }

// RecordDemand notes one demand (miss) fetch dispatched on the link at
// time now. Demand traffic contributes to both ρ̂′ and ρ̂.
func (l *Link) RecordDemand(now float64) {
	l.demand.record(now, l.alpha)
	l.total.record(now, l.alpha)
}

// RecordDemandSize folds the size of a completed demand fetch.
func (l *Link) RecordDemandSize(size float64) {
	l.demand.recordSize(size, l.alpha)
	l.total.recordSize(size, l.alpha)
}

// RecordSpeculative notes one speculative fetch dispatched on the link
// at time now. Speculative traffic contributes to ρ̂ only — ρ̂′ is by
// definition the utilisation prefetching would leave behind.
func (l *Link) RecordSpeculative(now float64) {
	l.total.record(now, l.alpha)
}

// RecordSpeculativeSize folds the size of a completed speculative
// fetch.
func (l *Link) RecordSpeculativeSize(size float64) {
	l.total.recordSize(size, l.alpha)
}

// RhoPrime returns the link's estimated demand-only utilisation ρ̂′ at
// time now, clamped to [0, 1]. 0 when the bandwidth is still unknown.
func (l *Link) RhoPrime(now float64) float64 {
	return clampRho(l.demand.offered(now), l.Bandwidth())
}

// Rho returns the link's estimated total utilisation ρ̂ (demand plus
// speculative traffic) at time now, clamped to [0, 1].
func (l *Link) Rho(now float64) float64 {
	return clampRho(l.total.offered(now), l.Bandwidth())
}

// IdleWait returns how many seconds past now the link's ρ̂ needs, with
// no further dispatches, to decay below watermark — 0 when it is
// already below (or no estimate exists). An idle-period gate can sleep
// exactly this long instead of polling.
func (l *Link) IdleWait(now, watermark float64) float64 {
	b := l.Bandwidth()
	if b <= 0 || watermark <= 0 {
		return 0
	}
	s := l.total.size.value()
	if s <= 0 {
		return 0
	}
	since := l.total.sinceLast(now)
	if since < 0 {
		return 0
	}
	// ρ̂(t) = ŝ̄ / (gap(t)·b) once the elapsed gap dominates the EWMA;
	// it crosses the watermark when gap > ŝ̄/(watermark·b).
	if wait := s/(watermark*b) - since; wait > 0 {
		return wait
	}
	return 0
}

func clampRho(offered, bandwidth float64) float64 {
	if bandwidth <= 0 || offered <= 0 {
		return 0
	}
	rho := offered / bandwidth
	if rho > 1 {
		return 1
	}
	return rho
}

// StateForLink snapshots a policy State whose utilisation term is the
// given link's ρ̂′ at time now instead of the global estimate — the
// cache-side quantities (ĥ′, n̄(F)) stay global, because hits and
// prefetch volume are properties of the client cache, not of any one
// link. nc is the caller's cache-occupancy estimate, as in State.
func (c *Controller) StateForLink(l *Link, now, nc float64) State {
	return State{
		RhoPrime: l.RhoPrime(now),
		HPrime:   c.est.EstimateA(),
		NC:       nc,
		NF:       c.NF(),
	}
}
