// Package prefetch turns the paper's analytical result into deployable
// prefetch policies. The paper's conclusion — "to maximise the access
// improvement, prefetch exclusively all items with access probabilities
// exceeding a certain threshold" where the threshold is p_th = ρ′ (model
// A) or ρ′ + h′/n̄(C) (model B) — becomes the Threshold policy, fed by
// an online Controller that estimates ρ′ and h′ while prefetching runs
// (using the Section-4 tagged-cache estimator).
//
// Baseline policies (no prefetching, a fixed threshold, top-k) are
// provided for the end-to-end comparison experiment (T7): the paper's
// rule should dominate a mis-set static threshold precisely because the
// right cutoff moves with network load.
package prefetch

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/predict"
)

// State carries the online estimates a policy may consult when deciding
// what to prefetch.
type State struct {
	// RhoPrime is the estimated no-prefetch utilisation ρ′ = f′λs̄/b.
	RhoPrime float64
	// HPrime is the estimated no-prefetch hit ratio h′.
	HPrime float64
	// NC is the estimated average cache occupancy n̄(C).
	NC float64
	// NF is the recent average number of prefetches per request n̄(F).
	NF float64
}

// Policy selects which predicted items to prefetch after a request.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the subset of candidates to prefetch. Candidates
	// arrive sorted by decreasing probability; the returned slice must
	// preserve that order.
	Select(cands []predict.Prediction, st State) []predict.Prediction
}

// None never prefetches — the demand-fetch baseline (the paper's
// "no prefetch" case).
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Select implements Policy.
func (None) Select([]predict.Prediction, State) []predict.Prediction { return nil }

// Static prefetches every candidate whose probability exceeds a fixed
// threshold Theta — the heuristic the paper's introduction says is
// "usually resorted to" before this analysis.
type Static struct {
	// Theta is the fixed probability cutoff in [0,1].
	Theta float64
}

// Name implements Policy.
func (s Static) Name() string { return fmt.Sprintf("static(θ=%g)", s.Theta) }

// Select implements Policy.
func (s Static) Select(cands []predict.Prediction, _ State) []predict.Prediction {
	return takeAbove(cands, s.Theta)
}

// TopK prefetches the K most probable candidates regardless of their
// absolute probability — a common aggressive heuristic that ignores
// network load entirely.
type TopK struct {
	// K is the number of items to prefetch per request.
	K int
}

// Name implements Policy.
func (t TopK) Name() string { return fmt.Sprintf("top%d", t.K) }

// Select implements Policy.
func (t TopK) Select(cands []predict.Prediction, _ State) []predict.Prediction {
	if t.K <= 0 || len(cands) == 0 {
		return nil
	}
	k := t.K
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k]
}

// Threshold is the paper's policy: prefetch exclusively all items with
// access probability above p_th, where p_th is recomputed from the
// current load estimates on every decision — ρ′ under model A (eq. 13),
// ρ′ + h′/n̄(C) under model B (eq. 21).
type Threshold struct {
	// Model chooses the interaction model used for the threshold
	// (analytic.ModelA{}, analytic.ModelB{} or analytic.ModelAB{...}).
	Model analytic.Model
	// Margin is an optional additive safety margin on the threshold
	// (0 reproduces the paper exactly).
	Margin float64
}

// Name implements Policy.
func (t Threshold) Name() string {
	return fmt.Sprintf("paper-threshold(model=%s)", t.Model.Name())
}

// Select implements Policy.
func (t Threshold) Select(cands []predict.Prediction, st State) []predict.Prediction {
	pth := ThresholdFor(t.Model, st) + t.Margin
	if pth >= 1 {
		return nil // no admissible probability can beat the threshold
	}
	return takeAbove(cands, pth)
}

// ThresholdFor returns the paper's cutoff p_th at the estimates in st:
// ρ′ plus the model's displacement term. The analytic models derive the
// displacement from Params, but at decision time only the online
// estimates exist, so the displacement definitions are replicated here
// — this is the single place they appear outside internal/analytic.
func ThresholdFor(m analytic.Model, st State) float64 {
	pth := st.RhoPrime
	switch mm := m.(type) {
	case analytic.ModelB:
		if st.NC > 0 {
			pth += st.HPrime / st.NC
		}
	case analytic.ModelAB:
		if st.NC > 0 {
			pth += mm.Alpha * st.HPrime / st.NC
		}
	}
	return pth
}

// takeAbove returns the prefix of the sorted candidate list with
// probability strictly greater than cut.
func takeAbove(cands []predict.Prediction, cut float64) []predict.Prediction {
	n := 0
	for _, c := range cands {
		if c.Prob <= cut {
			break // sorted descending: nothing further qualifies
		}
		n++
	}
	if n == 0 {
		return nil
	}
	return cands[:n]
}

// Greedy is the corrected mixed-probability rule
// (analytic.SelectClassesGreedy) as an online policy: it admits
// candidates in descending probability order against the *local*
// marginal threshold θ(h, n̄(F)) = d + (1−h)·λs̄/(b − n̄(F)·λs̄),
// updating the projected operating point after each admission. The
// first admission uses exactly the paper's p_th; subsequent ones see a
// lower bar because each admitted prefetch relieves demand load. See
// EXPERIMENTS.md (T10).
type Greedy struct {
	// Model chooses the interaction model for the displacement term.
	Model analytic.Model
	// Weight is the steady-state n̄(F) contribution projected per
	// admitted candidate — roughly, how many extra prefetched items per
	// request committing to this candidate class implies. In deployed
	// systems most selected candidates are already cached, so the
	// effective weight is well below 1; 0 selects the default 0.25
	// (calibrated against the full-system simulator's observed
	// n̄(F)/selection ratios).
	Weight float64
}

// Name implements Policy.
func (g Greedy) Name() string {
	return fmt.Sprintf("greedy-threshold(model=%s)", g.Model.Name())
}

// Select implements Policy.
func (g Greedy) Select(cands []predict.Prediction, st State) []predict.Prediction {
	w := g.Weight
	if w <= 0 {
		w = 0.25
	}
	d := 0.0
	switch m := g.Model.(type) {
	case analytic.ModelB:
		if st.NC > 0 {
			d = st.HPrime / st.NC
		}
	case analytic.ModelAB:
		if st.NC > 0 {
			d = m.Alpha * st.HPrime / st.NC
		}
	}
	if st.HPrime >= 1 || st.RhoPrime <= 0 {
		// Degenerate estimates: fall back to the paper's rule, which
		// handles them conservatively.
		return takeAbove(cands, st.RhoPrime+d)
	}
	// λs̄/b recovered from the controller's ρ′ = (1−h′)·λs̄/b. θ is
	// expressed via ρ′ and the projected hit-ratio gain Δh so that the
	// first step equals the paper's p_th = d + ρ′ *exactly* (no
	// floating-point round trip through load):
	//	(1−h)·load = (1−h′)·load − Δh·load = ρ′ − Δh·load.
	load := st.RhoPrime / (1 - st.HPrime)
	dh := 0.0
	nF := 0.0
	n := 0
	for _, c := range cands {
		den := 1 - nF*load
		if den <= 0 {
			break // committed prefetching alone would saturate the link
		}
		theta := d + (st.RhoPrime-dh*load)/den
		if c.Prob <= theta {
			break // descending order: no later candidate qualifies
		}
		// Project the operating point with this candidate class
		// contributing w items per request. Beyond h=1 the projection
		// is inconsistent (more hit gain than there are misses, eq. 6),
		// so stop.
		if st.HPrime+dh+w*(c.Prob-d) > 1 {
			break
		}
		dh += w * (c.Prob - d)
		nF += w
		n++
	}
	if n == 0 {
		return nil
	}
	return cands[:n]
}
