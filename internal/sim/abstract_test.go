package sim

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Paper operating point for the validation: λ=30, b=50, s̄=1.
func paperAbstract(hPrime, nF, p float64) AbstractConfig {
	return AbstractConfig{
		Lambda:    30,
		Bandwidth: 50,
		MeanSize:  1,
		HPrime:    hPrime,
		NF:        nF,
		P:         p,
		Requests:  120000,
		Warmup:    20000,
		Seed:      101,
	}
}

func TestAbstractValidation(t *testing.T) {
	bad := []AbstractConfig{
		{Lambda: 0, Bandwidth: 1, MeanSize: 1, Requests: 10},
		{Lambda: 1, Bandwidth: 0, MeanSize: 1, Requests: 10},
		{Lambda: 1, Bandwidth: 1, MeanSize: 0, Requests: 10},
		{Lambda: 1, Bandwidth: 1, MeanSize: 1, HPrime: 1, Requests: 10},
		{Lambda: 1, Bandwidth: 1, MeanSize: 1, NF: -1, Requests: 10},
		{Lambda: 1, Bandwidth: 1, MeanSize: 1, NF: 1, P: 0, Requests: 10},
		{Lambda: 1, Bandwidth: 1, MeanSize: 1, Requests: 0},
		{Lambda: 1, Bandwidth: 1, MeanSize: 1, Requests: 10, Warmup: 10},
	}
	for i, cfg := range bad {
		if _, err := RunAbstract(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestAbstractOverloadRejected(t *testing.T) {
	cfg := paperAbstract(0, 1, 0.1) // ρ = (0.9+1)·0.6 = 1.14
	if _, err := RunAbstract(cfg); err == nil {
		t.Error("saturating config should be rejected")
	}
}

// No prefetch: measured t̄′ must match eq. 5 = f′s̄/(b−f′λs̄).
func TestAbstractNoPrefetchMatchesEq5(t *testing.T) {
	for _, hPrime := range []float64{0, 0.3} {
		cfg := paperAbstract(hPrime, 0, 0)
		res, err := RunAbstract(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: hPrime}
		want, err := par.AccessTimeNoPrefetch()
		if err != nil {
			t.Fatal(err)
		}
		if rel := stats.RelErr(res.AccessTime, want); rel > 0.05 {
			t.Errorf("h′=%v: t̄′ sim %v vs eq.5 %v (rel %.3f)",
				hPrime, res.AccessTime, want, rel)
		}
		if math.Abs(res.HitRatio-hPrime) > 0.01 {
			t.Errorf("h′=%v: measured hit ratio %v", hPrime, res.HitRatio)
		}
		if stats.RelErr(res.Utilisation, par.RhoPrime()) > 0.05 {
			t.Errorf("h′=%v: utilisation %v vs ρ′ %v", hPrime, res.Utilisation, par.RhoPrime())
		}
	}
}

// With prefetch: measured t̄ must match eq. 10 (model A) at several
// operating points, and the measured G must match eq. 11.
func TestAbstractPrefetchMatchesEq10And11(t *testing.T) {
	cases := []struct{ hPrime, nF, p float64 }{
		{0, 0.5, 0.9},
		{0, 1.0, 0.9},
		{0, 0.5, 0.7},
		{0.3, 0.5, 0.6},
		{0.3, 1.0, 0.5},
	}
	par0 := analytic.Params{Lambda: 30, B: 50, SBar: 1}
	for _, c := range cases {
		par := par0
		par.HPrime = c.hPrime
		e, err := analytic.Evaluate(analytic.ModelA{}, par, c.nF, c.p)
		if err != nil {
			t.Fatalf("analytic eval (%+v): %v", c, err)
		}
		res, err := RunAbstract(paperAbstract(c.hPrime, c.nF, c.p))
		if err != nil {
			t.Fatalf("sim (%+v): %v", c, err)
		}
		if rel := stats.RelErr(res.AccessTime, e.TBar); rel > 0.08 {
			t.Errorf("%+v: t̄ sim %v vs eq.10 %v (rel %.3f)", c, res.AccessTime, e.TBar, rel)
		}
		if math.Abs(res.HitRatio-e.H) > 0.01 {
			t.Errorf("%+v: h sim %v vs eq.7 %v", c, res.HitRatio, e.H)
		}
		if rel := stats.RelErr(res.Utilisation, e.Rho); rel > 0.05 {
			t.Errorf("%+v: ρ sim %v vs eq.8 %v", c, res.Utilisation, e.Rho)
		}
		// G via baseline run.
		base, err := RunAbstract(paperAbstract(c.hPrime, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		gSim := base.AccessTime - res.AccessTime
		// G is a difference of two noisy means; compare with combined CI
		// slack plus 10% relative.
		slack := base.AccessTimeCI + res.AccessTimeCI + 0.1*math.Abs(e.G)
		if math.Abs(gSim-e.G) > slack {
			t.Errorf("%+v: G sim %v vs eq.11 %v (slack %v)", c, gSim, e.G, slack)
		}
	}
}

// Excess retrieval cost: measured R − R′ must match eq. 27.
func TestAbstractExcessCostMatchesEq27(t *testing.T) {
	c := struct{ hPrime, nF, p float64 }{0.3, 0.5, 0.6}
	par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: c.hPrime}
	e, err := analytic.Evaluate(analytic.ModelA{}, par, c.nF, c.p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAbstract(paperAbstract(c.hPrime, c.nF, c.p))
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunAbstract(paperAbstract(c.hPrime, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cSim := res.RetrievalPerRequest - base.RetrievalPerRequest
	if rel := stats.RelErr(cSim, e.C); rel > 0.15 {
		t.Errorf("C sim %v vs eq.27 %v (rel %.3f)", cSim, e.C, rel)
	}
	// Also check R itself against eq. 25.
	wantR, err := analytic.RetrievalPerRequest(30, e.Rho)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelErr(res.RetrievalPerRequest, wantR); rel > 0.08 {
		t.Errorf("R sim %v vs eq.25 %v", res.RetrievalPerRequest, wantR)
	}
}

// PS insensitivity carries to the full pipeline: exponential item sizes
// with the same mean give the same t̄ as deterministic sizes.
func TestAbstractInsensitivityToSizes(t *testing.T) {
	det := paperAbstract(0.3, 0.5, 0.6)
	exp := det
	exp.SizeDist = rng.Exponential{Rate: 1}
	exp.Seed = 202
	rdet, err := RunAbstract(det)
	if err != nil {
		t.Fatal(err)
	}
	rexp, err := RunAbstract(exp)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelErr(rexp.AccessTime, rdet.AccessTime); rel > 0.10 {
		t.Errorf("t̄ exp sizes %v vs det sizes %v (rel %.3f)",
			rexp.AccessTime, rdet.AccessTime, rel)
	}
}

// Determinism: identical configs give identical results.
func TestAbstractDeterministic(t *testing.T) {
	cfg := paperAbstract(0.3, 0.5, 0.7)
	cfg.Requests = 5000
	cfg.Warmup = 500
	a, err := RunAbstract(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAbstract(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := func(x, y AbstractResult) bool {
		return x.AccessTime == y.AccessTime && x.HitRatio == y.HitRatio &&
			x.RetrievalPerRequest == y.RetrievalPerRequest &&
			x.Utilisation == y.Utilisation && x.Requests == y.Requests &&
			x.Duration == y.Duration
	}
	if !same(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := RunAbstract(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if same(a, c) {
		t.Error("different seeds should differ")
	}
}

// The sign of the measured gain flips across the threshold p_th = ρ′,
// the paper's headline claim, observed in simulation.
func TestAbstractGainSignCrossesThreshold(t *testing.T) {
	base, err := RunAbstract(paperAbstract(0.3, 0, 0)) // ρ′ = 0.42
	if err != nil {
		t.Fatal(err)
	}
	above, err := RunAbstract(paperAbstract(0.3, 1.0, 0.7)) // p > p_th
	if err != nil {
		t.Fatal(err)
	}
	below, err := RunAbstract(paperAbstract(0.3, 1.0, 0.2)) // p < p_th
	if err != nil {
		t.Fatal(err)
	}
	if g := base.AccessTime - above.AccessTime; g <= 0 {
		t.Errorf("p=0.7 > p_th: G sim = %v, want > 0", g)
	}
	if g := base.AccessTime - below.AccessTime; g >= 0 {
		t.Errorf("p=0.2 < p_th: G sim = %v, want < 0", g)
	}
}

func TestAbstractKeepAccessTimes(t *testing.T) {
	cfg := paperAbstract(0.3, 0, 0)
	cfg.Requests, cfg.Warmup = 20000, 4000
	cfg.KeepAccessTimes = true
	res, err := RunAbstract(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.AccessTimes)) != res.Requests {
		t.Fatalf("kept %d access times for %d requests", len(res.AccessTimes), res.Requests)
	}
	// MissProb(0) counts every non-hit access; must equal 1 − h.
	p0, err := res.MissProb(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0-(1-res.HitRatio)) > 1e-12 {
		t.Errorf("MissProb(0) = %v, want 1−h = %v", p0, 1-res.HitRatio)
	}
	// Monotone in the deadline, reaching 0 at infinity.
	p1, _ := res.MissProb(0.05)
	p2, _ := res.MissProb(0.5)
	if !(p0 >= p1 && p1 >= p2) {
		t.Errorf("miss probability not monotone: %v %v %v", p0, p1, p2)
	}
	pInf, _ := res.MissProb(math.Inf(1))
	if pInf != 0 {
		t.Errorf("MissProb(inf) = %v, want 0", pInf)
	}
}

func TestMissProbWithoutKeeping(t *testing.T) {
	cfg := paperAbstract(0.3, 0, 0)
	cfg.Requests, cfg.Warmup = 5000, 1000
	res, err := RunAbstract(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.MissProb(0.1); err == nil {
		t.Error("MissProb without KeepAccessTimes should error")
	}
}

// Above-threshold prefetching must cut the deadline-miss probability;
// below-threshold prefetching must raise it — the QoS view of the
// paper's headline result.
func TestQoSDeadlineMissFollowsThreshold(t *testing.T) {
	run := func(nF, p float64) AbstractResult {
		cfg := paperAbstract(0.3, nF, p) // p_th = 0.42
		cfg.KeepAccessTimes = true
		res, err := RunAbstract(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	const deadline = 0.04
	base := run(0, 0)
	good := run(1, 0.7)
	bad := run(1, 0.2)
	pBase, _ := base.MissProb(deadline)
	pGood, _ := good.MissProb(deadline)
	pBad, _ := bad.MissProb(deadline)
	if pGood >= pBase {
		t.Errorf("good prefetching should cut misses: %v vs %v", pGood, pBase)
	}
	if pBad <= pBase {
		t.Errorf("bad prefetching should raise misses: %v vs %v", pBad, pBase)
	}
}

func TestPoissonMean(t *testing.T) {
	src := rng.New(7)
	for _, mean := range []float64{0.3, 1.0, 2.5} {
		sum := 0
		const n = 100000
		for i := 0; i < n; i++ {
			sum += poisson(src, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(src, 0) != 0 {
		t.Error("poisson(0) should be 0")
	}
}
