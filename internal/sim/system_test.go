package sim

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/predict"
	"repro/internal/prefetch"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// markovSystem is the standard full-system configuration for tests: a
// predictable Markov workload so the predictors have real signal.
func markovSystem(pol prefetch.Policy) SystemConfig {
	return SystemConfig{
		Users:     4,
		Lambda:    30,
		Bandwidth: 50,
		Catalog:   workload.NewUniformCatalog(500, 1),
		NewSource: func(u int, src *rng.Source) workload.Source {
			return workload.NewMarkov(workload.MarkovConfig{
				N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
			}, src)
		},
		NewPredictor:  func() predict.Predictor { return predict.NewMarkov1() },
		Policy:        pol,
		CacheCapacity: 80,
		MaxPrefetch:   2,
		Requests:      60000,
		Warmup:        15000,
		Seed:          77,
	}
}

func TestSystemValidation(t *testing.T) {
	good := markovSystem(nil)
	bad := []func(*SystemConfig){
		func(c *SystemConfig) { c.Users = 0 },
		func(c *SystemConfig) { c.Lambda = 0 },
		func(c *SystemConfig) { c.Bandwidth = 0 },
		func(c *SystemConfig) { c.Catalog = nil },
		func(c *SystemConfig) { c.NewSource = nil },
		func(c *SystemConfig) { c.CacheCapacity = 0 },
		func(c *SystemConfig) { c.Requests = 0 },
		func(c *SystemConfig) { c.Warmup = c.Requests },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := RunSystem(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSystemDeterministic(t *testing.T) {
	cfg := markovSystem(prefetch.Threshold{Model: analytic.ModelA{}})
	cfg.Requests, cfg.Warmup = 8000, 2000
	a, err := RunSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSystemNoPrefetchBaseline(t *testing.T) {
	res, err := RunSystem(markovSystem(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio <= 0.1 || res.HitRatio >= 1 {
		t.Errorf("baseline hit ratio %v implausible", res.HitRatio)
	}
	if res.AccessTime <= 0 {
		t.Errorf("baseline access time %v should be positive", res.AccessTime)
	}
	if res.PrefetchIssued != 0 || res.NFObserved != 0 {
		t.Error("no-prefetch run issued prefetches")
	}
	// Utilisation should be close to (1−h)λs̄/b.
	want := (1 - res.HitRatio) * 30 * 1 / 50
	if stats.RelErr(res.Utilisation, want) > 0.1 {
		t.Errorf("utilisation %v vs expected %v", res.Utilisation, want)
	}
	// The h′ estimator with no prefetching must agree with the measured
	// hit ratio (all entries are tagged).
	if math.Abs(res.HPrimeEstimate-res.HitRatio) > 0.02 {
		t.Errorf("ĥ′ = %v vs measured h = %v", res.HPrimeEstimate, res.HitRatio)
	}
}

// The paper's policy must beat no-prefetch on a predictable workload at
// moderate load: positive measured G and higher hit ratio.
func TestSystemThresholdPolicyImproves(t *testing.T) {
	base, err := RunSystem(markovSystem(nil))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := RunSystem(markovSystem(prefetch.Threshold{Model: analytic.ModelA{}}))
	if err != nil {
		t.Fatal(err)
	}
	if pf.PrefetchIssued == 0 {
		t.Fatal("threshold policy issued no prefetches")
	}
	if pf.HitRatio <= base.HitRatio {
		t.Errorf("hit ratio did not improve: %v vs %v", pf.HitRatio, base.HitRatio)
	}
	g := base.AccessTime - pf.AccessTime
	if g <= 0 {
		t.Errorf("measured G = %v, want > 0 (base t̄=%v, prefetch t̄=%v)",
			g, base.AccessTime, pf.AccessTime)
	}
	if pf.Accuracy() <= 0.3 {
		t.Errorf("prefetch accuracy %v suspiciously low", pf.Accuracy())
	}
}

// The estimator's job: ĥ′ measured *while prefetching* must recover the
// no-prefetch hit ratio (interaction model A).
func TestSystemEstimatorRecoversHPrime(t *testing.T) {
	base, err := RunSystem(markovSystem(nil))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := RunSystem(markovSystem(prefetch.Threshold{Model: analytic.ModelA{}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pf.HPrimeEstimate-base.HitRatio) > 0.06 {
		t.Errorf("ĥ′ while prefetching = %v, true h′ = %v",
			pf.HPrimeEstimate, base.HitRatio)
	}
}

// Interaction model B (random victims) must not beat model A
// (zero-value victims) in hit ratio, mirroring eq. 13 vs eq. 21.
func TestSystemInteractionAOverB(t *testing.T) {
	cfgA := markovSystem(prefetch.Threshold{Model: analytic.ModelA{}})
	cfgA.CacheCapacity = 60 // tighten so eviction pressure matters
	cfgB := cfgA
	cfgB.Interaction = InteractionB
	a, err := RunSystem(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSystem(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if b.HitRatio > a.HitRatio+0.01 {
		t.Errorf("model B hit ratio %v should not beat model A %v",
			b.HitRatio, a.HitRatio)
	}
}

// An aggressive load-blind policy at high load should do worse than the
// paper's load-aware threshold — the network-load effect the paper is
// about.
func TestSystemLoadAwareBeatsAggressiveUnderLoad(t *testing.T) {
	mk := func(pol prefetch.Policy) SystemConfig {
		cfg := markovSystem(pol)
		cfg.Lambda = 42 // raises ρ′ so indiscriminate prefetching saturates
		return cfg
	}
	paper, err := RunSystem(mk(prefetch.Threshold{Model: analytic.ModelA{}}))
	if err != nil {
		t.Fatal(err)
	}
	aggressive, err := RunSystem(mk(prefetch.TopK{K: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if aggressive.AccessTime <= paper.AccessTime {
		t.Errorf("top-4 under load (t̄=%v) should be worse than paper policy (t̄=%v)",
			aggressive.AccessTime, paper.AccessTime)
	}
	if aggressive.Utilisation <= paper.Utilisation {
		t.Errorf("top-4 should load the server more: %v vs %v",
			aggressive.Utilisation, paper.Utilisation)
	}
}

func TestSystemInteractionString(t *testing.T) {
	if InteractionA.String() != "A" || InteractionB.String() != "B" {
		t.Error("interaction names wrong")
	}
	if Interaction(9).String() == "" {
		t.Error("unknown interaction should still render")
	}
}

func TestSystemMaxPrefetchCap(t *testing.T) {
	cfg := markovSystem(prefetch.TopK{K: 10})
	cfg.MaxPrefetch = 1
	cfg.Requests, cfg.Warmup = 20000, 5000
	res, err := RunSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NFObserved > 1.0+1e-9 {
		t.Errorf("n̄(F) = %v exceeds MaxPrefetch=1", res.NFObserved)
	}
}

// genTrace records a Markov workload trace for the replay tests.
func genTrace(t *testing.T, n int, lambda float64) []workload.Record {
	t.Helper()
	src := workload.NewMarkov(workload.MarkovConfig{
		N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, rng.NewStream(123, "trace"))
	arr := workload.NewArrivals(lambda, rng.NewStream(123, "arrivals"))
	recs := make([]workload.Record, n)
	for i := range recs {
		id := src.Next()
		recs[i] = workload.Record{Time: arr.Next(), User: i % 4, Item: id, Size: 1}
	}
	return recs
}

func TestSystemTraceReplay(t *testing.T) {
	trace := genTrace(t, 30000, 30)
	cfg := markovSystem(prefetch.Threshold{Model: analytic.ModelA{}})
	cfg.NewSource = nil
	cfg.Trace = trace
	cfg.Requests = len(trace)
	cfg.Warmup = len(trace) / 4
	// A slow EWMA keeps the end-of-run λ̂ snapshot close to the true
	// mean (the default weight trades accuracy for adaptation speed).
	cfg.ControllerAlpha = 0.005
	res, err := RunSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != int64(len(trace)-cfg.Warmup) {
		t.Errorf("measured %d requests, want %d", res.Requests, len(trace)-cfg.Warmup)
	}
	if res.HitRatio <= 0.1 || res.AccessTime <= 0 {
		t.Errorf("trace replay metrics implausible: %+v", res)
	}
	// The controller's λ̂ should recover the trace's recorded rate.
	// (exposed via ρ̂′ = (1−ĥ′)·λ̂·ŝ̄/b; with s̄=1, b=50 invert.)
	lambdaHat := res.RhoPrimeEstimate * 50 / (1 - res.HPrimeEstimate)
	if math.Abs(lambdaHat-30)/30 > 0.25 {
		t.Errorf("replayed λ̂ ≈ %v, want ~30", lambdaHat)
	}
}

func TestSystemTraceReplayDeterministic(t *testing.T) {
	trace := genTrace(t, 5000, 30)
	mk := func() SystemConfig {
		cfg := markovSystem(prefetch.Threshold{Model: analytic.ModelA{}})
		cfg.NewSource = nil
		cfg.Trace = trace
		cfg.Requests = len(trace)
		cfg.Warmup = 1000
		return cfg
	}
	a, err := RunSystem(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSystem(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("trace replay nondeterministic:\n%+v\n%+v", a, b)
	}
}

// TimeScale re-runs the same reference stream at a different load: the
// stretched (slower) replay must see a lower utilisation and shorter
// access times than the compressed (faster) one.
func TestSystemTraceTimeScale(t *testing.T) {
	trace := genTrace(t, 30000, 30)
	run := func(scale float64) SystemResult {
		cfg := markovSystem(nil)
		cfg.NewSource = nil
		cfg.Trace = trace
		cfg.Requests = len(trace)
		cfg.Warmup = len(trace) / 4
		cfg.TimeScale = scale
		res, err := RunSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow := run(2.0)  // effective λ ≈ 15
	fast := run(0.75) // effective λ ≈ 40
	if slow.Utilisation >= fast.Utilisation {
		t.Errorf("stretched replay should be lighter: %v vs %v",
			slow.Utilisation, fast.Utilisation)
	}
	if slow.AccessTime >= fast.AccessTime {
		t.Errorf("stretched replay should be faster: %v vs %v",
			slow.AccessTime, fast.AccessTime)
	}
	// Reference behaviour (hit ratio) is scale-invariant: same stream,
	// same caches.
	if math.Abs(slow.HitRatio-fast.HitRatio) > 0.02 {
		t.Errorf("hit ratio should not depend on time scale: %v vs %v",
			slow.HitRatio, fast.HitRatio)
	}
}

func TestSystemTraceValidation(t *testing.T) {
	cfg := markovSystem(nil)
	cfg.NewSource = nil
	if _, err := RunSystem(cfg); err == nil {
		t.Error("neither source nor trace should be rejected")
	}
	cfg.Trace = genTrace(t, 100, 30)
	cfg.TimeScale = -1
	if _, err := RunSystem(cfg); err == nil {
		t.Error("negative time scale should be rejected")
	}
}

func TestSystemOccupancyBounded(t *testing.T) {
	cfg := markovSystem(prefetch.Threshold{Model: analytic.ModelA{}})
	cfg.Requests, cfg.Warmup = 20000, 5000
	res, err := RunSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOccupancy > float64(cfg.CacheCapacity)+1e-9 {
		t.Errorf("mean occupancy %v exceeds capacity %d",
			res.MeanOccupancy, cfg.CacheCapacity)
	}
	if res.MeanOccupancy <= 0 {
		t.Error("occupancy should be positive after warmup")
	}
}
