// Package sim provides two discrete-event simulators of the paper's
// multi-user proxy system.
//
// AbstractSim realises the paper's analytical model *exactly* as a
// stochastic system: Poisson requests at rate λ, cache hits as a
// Bernoulli(h) coin per request, demand misses and prefetches submitted
// as jobs to a shared M/G/1 processor-sharing server of bandwidth b. It
// exists to validate equations (5), (10), (11) and (27) empirically
// (experiment T2): whatever the closed forms predict, this simulator
// must measure, within confidence intervals.
//
// SystemSim (system.go) is the full system a practitioner would deploy:
// real per-client caches with replacement policies, an online access
// predictor, a prefetch policy with the Section-4 h′ estimator, and the
// same shared PS server. It exercises every substrate end-to-end
// (experiments T3 and T7, and the examples).
package sim

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/queue"
	"repro/internal/rng"
	"repro/internal/stats"
)

// AbstractConfig parameterises an AbstractSim run. Symbols follow the
// paper.
type AbstractConfig struct {
	// Lambda is the aggregate user request rate λ.
	Lambda float64
	// Bandwidth is the shared link capacity b.
	Bandwidth float64
	// MeanSize is the average item size s̄.
	MeanSize float64
	// SizeDist optionally overrides the item-size distribution (its
	// mean should equal MeanSize). Nil means deterministic sizes — the
	// paper's setting. The PS insensitivity property makes the means
	// agree either way; tests exploit this.
	SizeDist rng.Dist
	// HPrime is the no-prefetch hit ratio h′.
	HPrime float64
	// NF is the mean number of prefetched items per request n̄(F).
	NF float64
	// P is the access probability of each prefetched item.
	P float64
	// Requests is the number of user requests to simulate.
	Requests int
	// Warmup is the number of initial requests excluded from metrics.
	Warmup int
	// Seed drives all randomness; identical configs reproduce exactly.
	Seed uint64
	// KeepAccessTimes retains every measured access time in the result,
	// enabling tail/deadline (QoS) analysis — the multimedia-access
	// direction the paper's conclusion points at. Costs 8 bytes per
	// measured request.
	KeepAccessTimes bool
	// Arrivals optionally replaces the Poisson request process with an
	// arbitrary one (e.g. workload.MMPP for bursty traffic). Lambda
	// must still be set to the process's long-run mean rate: the
	// stability check and the prefetch stream (rate n̄(F)·λ) use it.
	Arrivals ArrivalProcess
}

// ArrivalProcess produces strictly increasing arrival epochs.
// workload.Arrivals and workload.MMPP implement it.
type ArrivalProcess interface {
	Next() float64
}

func (c AbstractConfig) validate() error {
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("sim: λ = %v must be positive", c.Lambda)
	case c.Bandwidth <= 0:
		return fmt.Errorf("sim: bandwidth = %v must be positive", c.Bandwidth)
	case c.MeanSize <= 0:
		return fmt.Errorf("sim: mean size = %v must be positive", c.MeanSize)
	case c.HPrime < 0 || c.HPrime >= 1:
		return fmt.Errorf("sim: h′ = %v must be in [0,1)", c.HPrime)
	case c.NF < 0:
		return fmt.Errorf("sim: n̄(F) = %v must be non-negative", c.NF)
	case c.NF > 0 && (c.P <= 0 || c.P > 1):
		return fmt.Errorf("sim: access probability %v must be in (0,1]", c.P)
	case c.Requests <= 0:
		return fmt.Errorf("sim: request count %d must be positive", c.Requests)
	case c.Warmup < 0 || c.Warmup >= c.Requests:
		return fmt.Errorf("sim: warmup %d must be in [0, requests)", c.Warmup)
	}
	return nil
}

// AbstractResult carries the measured steady-state quantities of one
// AbstractSim run, each with a 95% confidence half-width where
// meaningful.
type AbstractResult struct {
	// HitRatio is the measured hit ratio h (should match h′ + n̄(F)·p
	// under model A).
	HitRatio float64
	// AccessTime is the measured mean access time t̄ with its CI.
	AccessTime, AccessTimeCI float64
	// RetrievalPerRequest is the measured R: total retrieval time
	// (demand + prefetch) divided by user requests.
	RetrievalPerRequest float64
	// Utilisation is the server's busy fraction over the measured
	// window.
	Utilisation float64
	// Requests is the number of measured (post-warmup) requests.
	Requests int64
	// Duration is the simulated time span of the measured window.
	Duration float64
	// AccessTimes holds every measured access time (hits contribute 0)
	// when AbstractConfig.KeepAccessTimes is set; nil otherwise.
	AccessTimes []float64
}

// MissProb returns the fraction of measured accesses whose access time
// exceeded the deadline — the QoS metric for media with a playout
// budget. It requires the run to have kept access times.
func (r AbstractResult) MissProb(deadline float64) (float64, error) {
	if r.AccessTimes == nil {
		return 0, fmt.Errorf("sim: access times were not kept (set KeepAccessTimes)")
	}
	if len(r.AccessTimes) == 0 {
		return 0, nil
	}
	missed := 0
	for _, t := range r.AccessTimes {
		if t > deadline {
			missed++
		}
	}
	return float64(missed) / float64(len(r.AccessTimes)), nil
}

// RunAbstract executes the abstract model simulation.
//
// Hit mechanics: each request is a cache hit with probability
// h = h′ + n̄(F)·p (model A's eq. 7 — the abstract simulator bakes in
// model A; SystemSim realises the eviction disciplines operationally).
// Misses submit a demand job; independently, each request spawns a
// Poisson-split number of prefetch jobs with mean n̄(F). Access time is
// 0 for hits and the job response time for misses.
func RunAbstract(cfg AbstractConfig) (AbstractResult, error) {
	var res AbstractResult
	if err := cfg.validate(); err != nil {
		return res, err
	}
	h := cfg.HPrime + cfg.NF*cfg.P
	if h > 1 {
		return res, fmt.Errorf("sim: effective hit ratio h = %v > 1; lower n̄(F) or p", h)
	}
	// Steady state requires ρ = (1−h+n̄(F))λs̄/b < 1.
	rho := (1 - h + cfg.NF) * cfg.Lambda * cfg.MeanSize / cfg.Bandwidth
	if rho >= 1 {
		return res, fmt.Errorf("sim: offered load ρ = %v >= 1; no steady state", rho)
	}

	sd := cfg.SizeDist
	if sd == nil {
		sd = rng.Deterministic{Value: cfg.MeanSize}
	}

	sim := des.New()
	srv := queue.NewPSServer(sim, cfg.Bandwidth)
	arrivalSrc := rng.NewStream(cfg.Seed, "arrivals")
	hitSrc := rng.NewStream(cfg.Seed, "hits")
	sizeSrc := rng.NewStream(cfg.Seed, "sizes")
	pfSrc := rng.NewStream(cfg.Seed, "prefetch-count")
	inter := rng.Exponential{Rate: cfg.Lambda}

	var (
		access       stats.Running
		retrievalSum float64 // post-warmup total retrieval time
		hits, total  int64
		issued       int
		measuredFrom = math.Inf(1)
		busyAtStart  float64
	)
	record := func(v float64) {
		access.Add(v)
		if cfg.KeepAccessTimes {
			res.AccessTimes = append(res.AccessTimes, v)
		}
	}

	// User requests and prefetches form two independent Poisson streams
	// (rates λ and n̄(F)·λ respectively), matching the model's combined
	// Poisson arrival assumption. Submitting prefetches in batches at
	// request instants would create batch arrivals, which M/G/1-PS does
	// not describe (and measurably inflates delays).
	// scheduleNext books the next request arrival: Poisson by default,
	// or the caller-supplied process (absolute epochs).
	requestsDone := false
	var arrive func()
	scheduleNext := func() {
		if cfg.Arrivals != nil {
			next := cfg.Arrivals.Next()
			if next < sim.Now() {
				panic("sim: arrival process went backwards")
			}
			sim.Schedule(next, arrive)
			return
		}
		sim.After(inter.Sample(arrivalSrc), arrive)
	}
	arrive = func() {
		if issued >= cfg.Requests {
			requestsDone = true
			return
		}
		reqIdx := issued
		issued++
		measured := reqIdx >= cfg.Warmup
		if measured && math.IsInf(measuredFrom, 1) {
			measuredFrom = sim.Now()
			busyAtStart = srv.BusyTime()
		}
		if measured {
			total++
		}
		if rng.Bernoulli(hitSrc, h) {
			if measured {
				hits++
				record(0)
			}
		} else {
			sz := sd.Sample(sizeSrc)
			srv.Submit(&queue.Job{Size: sz, Done: func(resp float64) {
				if measured {
					record(resp)
					retrievalSum += resp
				}
			}})
		}
		scheduleNext()
	}
	scheduleNext()

	if cfg.NF > 0 {
		pfInter := rng.Exponential{Rate: cfg.NF * cfg.Lambda}
		var prefetchArrive func()
		prefetchArrive = func() {
			if requestsDone {
				return // prefetching stops with the request stream
			}
			measured := !math.IsInf(measuredFrom, 1)
			sz := sd.Sample(sizeSrc)
			srv.Submit(&queue.Job{Size: sz, Done: func(resp float64) {
				if measured {
					retrievalSum += resp
				}
			}})
			sim.After(pfInter.Sample(pfSrc), prefetchArrive)
		}
		sim.After(pfInter.Sample(pfSrc), prefetchArrive)
	}
	sim.Run() // drains all jobs after the last arrival

	if total == 0 {
		return res, fmt.Errorf("sim: no measured requests (warmup too large?)")
	}
	res.HitRatio = float64(hits) / float64(total)
	res.AccessTime = access.Mean()
	res.AccessTimeCI = access.CI95()
	res.RetrievalPerRequest = retrievalSum / float64(total)
	res.Requests = total
	res.Duration = sim.Now() - measuredFrom
	if res.Duration > 0 {
		res.Utilisation = (srv.BusyTime() - busyAtStart) / res.Duration
	}
	return res, nil
}

// poisson draws a Poisson(mean) variate by Knuth's method; mean is small
// (n̄(F) ≤ a few) so the loop is short.
func poisson(src *rng.Source, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
