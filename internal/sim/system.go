package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/predict"
	"repro/internal/prefetch"
	"repro/internal/queue"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Interaction selects how prefetched items displace cache occupants in
// the full-system simulator — the operational realisation of the
// paper's models A and B.
type Interaction int

const (
	// InteractionA evicts zero-value entries first: prefetched items
	// that were never used, then the LRU tail (Section 3.1's "evict
	// zero-value items").
	InteractionA Interaction = iota
	// InteractionB evicts a uniformly random resident entry, forfeiting
	// the average occupant value h′/n̄(C) (Section 3.2).
	InteractionB
)

// String names the interaction model.
func (i Interaction) String() string {
	switch i {
	case InteractionA:
		return "A"
	case InteractionB:
		return "B"
	default:
		return fmt.Sprintf("Interaction(%d)", int(i))
	}
}

// PredictorFactory builds one predictor per client (prediction context
// is per user, as in client-side prediction schemes).
type PredictorFactory func() predict.Predictor

// SourceFactory builds one request source per client.
type SourceFactory func(user int, src *rng.Source) workload.Source

// SystemConfig parameterises a full-system simulation.
type SystemConfig struct {
	// Users is the number of clients behind the proxy.
	Users int
	// Lambda is the aggregate request rate λ; each client issues
	// requests as Poisson(λ/Users).
	Lambda float64
	// Bandwidth is the shared link capacity b.
	Bandwidth float64
	// Catalog holds the item population and sizes.
	Catalog *workload.Catalog
	// NewSource builds each client's reference stream.
	NewSource SourceFactory
	// NewPredictor builds each client's access model. Nil disables
	// prediction (and hence prefetching).
	NewPredictor PredictorFactory
	// Policy decides what to prefetch. Nil means prefetch.None{}.
	Policy prefetch.Policy
	// Interaction selects the prefetch-cache interaction model.
	Interaction Interaction
	// CacheCapacity is each client's cache size in items (n̄(C)).
	CacheCapacity int
	// MaxPrefetch caps prefetches per request (0 = unlimited), a
	// practical guard the analysis shows is not needed for G > 0 but
	// real deployments still want.
	MaxPrefetch int
	// Requests is the total number of user requests across all clients.
	Requests int
	// Warmup is the number of initial requests excluded from metrics.
	Warmup int
	// Seed drives all randomness.
	Seed uint64
	// ControllerAlpha is the EWMA weight for the online estimates
	// (0 = default).
	ControllerAlpha float64
	// Trace, when non-nil, drives the simulation from recorded request
	// epochs instead of synthetic Poisson arrivals: each record fires
	// at Time×TimeScale for client (User mod Users) requesting Item.
	// NewSource is ignored; Requests caps how many records replay;
	// Lambda is still used for the closed-form comparisons only.
	Trace []workload.Record
	// TimeScale stretches (>1) or compresses (<1) trace time,
	// re-running the same reference stream at a different load.
	// 0 means 1.
	TimeScale float64
}

func (c SystemConfig) validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("sim: users = %d must be positive", c.Users)
	case c.Lambda <= 0:
		return fmt.Errorf("sim: λ = %v must be positive", c.Lambda)
	case c.Bandwidth <= 0:
		return fmt.Errorf("sim: bandwidth = %v must be positive", c.Bandwidth)
	case c.Catalog == nil:
		return fmt.Errorf("sim: catalog is required")
	case c.NewSource == nil && c.Trace == nil:
		return fmt.Errorf("sim: a source factory or a trace is required")
	case c.Trace != nil && c.TimeScale < 0:
		return fmt.Errorf("sim: time scale %v must be non-negative", c.TimeScale)
	case c.CacheCapacity <= 0:
		return fmt.Errorf("sim: cache capacity %d must be positive", c.CacheCapacity)
	case c.Requests <= 0:
		return fmt.Errorf("sim: request count %d must be positive", c.Requests)
	case c.Warmup < 0 || c.Warmup >= c.Requests:
		return fmt.Errorf("sim: warmup %d must be in [0, requests)", c.Warmup)
	}
	return nil
}

// SystemResult carries the measured quantities of one full-system run.
type SystemResult struct {
	// AccessTime is the measured mean access time t̄ (hits cost 0) and
	// its 95% CI half-width.
	AccessTime, AccessTimeCI float64
	// HitRatio is the measured hit ratio h over the window.
	HitRatio float64
	// RetrievalPerRequest is R: total retrieval time (demand +
	// prefetch) per user request.
	RetrievalPerRequest float64
	// Utilisation is the server busy fraction over the window.
	Utilisation float64
	// NFObserved is the measured n̄(F): prefetches issued per request
	// over the post-warmup window.
	NFObserved float64
	// PrefetchIssued and PrefetchUseful count issued prefetches and
	// those later requested before eviction, over the whole run
	// (including warmup, so Accuracy is well-defined).
	PrefetchIssued, PrefetchUseful int64
	// HPrimeEstimate is the controller's Section-4 estimate ĥ′ at the
	// end of the run (model-A form).
	HPrimeEstimate float64
	// RhoPrimeEstimate is the controller's ρ̂′ at the end of the run.
	RhoPrimeEstimate float64
	// MeanOccupancy is the time-averaged per-client cache occupancy
	// (an estimate of n̄(C)).
	MeanOccupancy float64
	// Requests is the number of measured requests; Duration the
	// measured time span.
	Requests int64
	Duration float64
}

// Accuracy returns the fraction of issued prefetches that were used
// before eviction (0 when none were issued).
func (r SystemResult) Accuracy() float64 {
	if r.PrefetchIssued == 0 {
		return 0
	}
	return float64(r.PrefetchUseful) / float64(r.PrefetchIssued)
}

// client is the per-user simulation state.
type client struct {
	store  *cache.Store
	source workload.Source
	pred   predict.Predictor

	// untagged is a FIFO of prefetched-never-used entries (model A's
	// zero-value candidates); isUntagged is the authoritative set, the
	// FIFO may carry stale ids that are skipped on pop.
	untagged   []cache.ID
	isUntagged map[cache.ID]bool

	// residents mirrors the cache contents for O(1) random victim
	// selection (model B).
	residents []cache.ID
	resIdx    map[cache.ID]int

	inflight  map[cache.ID]*flight
	pfPending map[cache.ID]bool // prefetch in flight, not yet claimed
}

type flight struct {
	waiters []func()
}

func (c *client) trackResident(id cache.ID) {
	if _, ok := c.resIdx[id]; ok {
		return
	}
	c.resIdx[id] = len(c.residents)
	c.residents = append(c.residents, id)
}

func (c *client) untrackResident(id cache.ID) {
	i, ok := c.resIdx[id]
	if !ok {
		return
	}
	last := len(c.residents) - 1
	c.residents[i] = c.residents[last]
	c.resIdx[c.residents[i]] = i
	c.residents = c.residents[:last]
	delete(c.resIdx, id)
}

func (c *client) pushUntagged(id cache.ID) {
	if !c.isUntagged[id] {
		c.isUntagged[id] = true
		c.untagged = append(c.untagged, id)
	}
}

func (c *client) dropUntagged(id cache.ID) {
	delete(c.isUntagged, id) // FIFO entry becomes stale; skipped on pop
}

// popUntagged returns the oldest live untagged id, or -1 when none.
func (c *client) popUntagged() cache.ID {
	for len(c.untagged) > 0 {
		id := c.untagged[0]
		c.untagged = c.untagged[1:]
		if c.isUntagged[id] {
			delete(c.isUntagged, id)
			return id
		}
	}
	return -1
}

// RunSystem executes a full-system simulation: per-client LRU caches and
// predictors, a shared processor-sharing server, a prefetch policy fed
// by online load estimates, and the Section-4 h′ estimator observing
// every cache event.
func RunSystem(cfg SystemConfig) (SystemResult, error) {
	var res SystemResult
	if err := cfg.validate(); err != nil {
		return res, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = prefetch.None{}
	}

	sim := des.New()
	srv := queue.NewPSServer(sim, cfg.Bandwidth)
	ctrl := prefetch.NewController(cfg.Bandwidth, cfg.ControllerAlpha)
	est := ctrl.Estimator()

	// The estimator is shared across clients, so cache ids are
	// namespaced per user to keep tag states independent.
	stride := cache.ID(cfg.Catalog.Len())
	ns := func(u int, id cache.ID) cache.ID { return cache.ID(u)*stride + id }

	clients := make([]*client, cfg.Users)
	for u := range clients {
		u := u
		cl := &client{
			store:      cache.NewStore(cfg.CacheCapacity, cache.NewLRU()),
			isUntagged: make(map[cache.ID]bool),
			resIdx:     make(map[cache.ID]int),
			inflight:   make(map[cache.ID]*flight),
			pfPending:  make(map[cache.ID]bool),
		}
		if cfg.NewSource != nil {
			cl.source = cfg.NewSource(u, rng.NewStream(cfg.Seed, fmt.Sprintf("source-%d", u)))
		}
		if cfg.NewPredictor != nil {
			cl.pred = cfg.NewPredictor()
		}
		cl.store.OnEvict(func(id cache.ID) {
			est.OnEvict(ns(u, id))
			cl.dropUntagged(id)
			cl.untrackResident(id)
		})
		clients[u] = cl
	}

	victimSrc := rng.NewStream(cfg.Seed, "victims")
	var (
		access         stats.Running
		occupancy      stats.Running
		retrieval      float64
		hits, total    int64
		issuedReqs     int
		issuedMeasured int64
		measStart      = -1.0
		busyAtStart    float64
	)

	// admitPrefetched inserts a completed prefetch into the client
	// cache under the configured interaction model.
	admitPrefetched := func(u int, cl *client, id cache.ID) {
		if cl.store.Contains(id) {
			return
		}
		if cl.store.Len() >= cl.store.Capacity() {
			switch cfg.Interaction {
			case InteractionA:
				// Zero-value first: displace the oldest never-used
				// prefetched entry if one exists; otherwise Admit will
				// evict the LRU tail (the closest thing to worthless).
				if v := cl.popUntagged(); v >= 0 && cl.store.Contains(v) {
					cl.store.Remove(v)
					est.OnEvict(ns(u, v))
					cl.untrackResident(v)
				}
			case InteractionB:
				// Average-value: displace a uniformly random occupant.
				if len(cl.residents) > 0 {
					v := cl.residents[victimSrc.Intn(len(cl.residents))]
					cl.store.Remove(v)
					est.OnEvict(ns(u, v))
					cl.dropUntagged(v)
					cl.untrackResident(v)
				}
			}
		}
		cl.store.Admit(id)
		est.OnPrefetch(ns(u, id))
		cl.trackResident(id)
		cl.pushUntagged(id)
	}

	var handleRequest func(u int, cl *client, id cache.ID, measured bool)
	handleRequest = func(u int, cl *client, id cache.ID, measured bool) {
		now := sim.Now()
		item := cfg.Catalog.Item(id)
		ctrl.RecordRequest(now, item.Size)
		if measured {
			total++
		}

		switch {
		case cl.store.Access(id):
			// Cache hit: zero access time.
			if cl.isUntagged[id] {
				res.PrefetchUseful++
			}
			est.OnHit(ns(u, id))
			cl.dropUntagged(id)
			if measured {
				hits++
				access.Add(0)
			}
		case cl.inflight[id] != nil:
			// Already being fetched (demand or prefetch): wait for the
			// remaining transfer time.
			fl := cl.inflight[id]
			est.OnRemoteAccess(ns(u, id), true)
			if cl.pfPending[id] {
				res.PrefetchUseful++ // prefetch claimed while in flight
				delete(cl.pfPending, id)
			}
			fl.waiters = append(fl.waiters, func() {
				if measured {
					access.Add(sim.Now() - now)
				}
			})
		default:
			// Demand fetch through the shared server.
			est.OnRemoteAccess(ns(u, id), true)
			fl := &flight{}
			cl.inflight[id] = fl
			srv.Submit(&queue.Job{Size: item.Size, Done: func(resp float64) {
				delete(cl.inflight, id)
				if measured {
					retrieval += resp
					access.Add(resp)
				}
				cl.store.Admit(id)
				cl.trackResident(id)
				for _, w := range fl.waiters {
					w()
				}
			}})
		}

		// Learn, then decide what to prefetch.
		if cl.pred == nil {
			return
		}
		cl.pred.Observe(id)
		preds := cl.pred.Predict()
		if len(preds) == 0 {
			return
		}
		st := ctrl.State(float64(cfg.CacheCapacity))
		selected := policy.Select(preds, st)
		count := 0
		for _, s := range selected {
			if cfg.MaxPrefetch > 0 && count >= cfg.MaxPrefetch {
				break
			}
			pid := s.Item
			if cl.store.Contains(pid) || cl.inflight[pid] != nil {
				continue
			}
			count++
			ctrl.RecordPrefetch()
			res.PrefetchIssued++
			if measured {
				issuedMeasured++
			}
			fl := &flight{}
			cl.inflight[pid] = fl
			cl.pfPending[pid] = true
			pItem := cfg.Catalog.Item(pid)
			srv.Submit(&queue.Job{Size: pItem.Size, Done: func(resp float64) {
				delete(cl.inflight, pid)
				stillSpeculative := cl.pfPending[pid]
				delete(cl.pfPending, pid)
				if measured {
					retrieval += resp
				}
				if stillSpeculative {
					admitPrefetched(u, cl, pid)
				} else {
					// A demand request claimed it mid-flight; admit as a
					// normal (tagged) entry.
					cl.store.Admit(pid)
					cl.trackResident(pid)
					est.OnRemoteAccess(ns(u, pid), true)
				}
				for _, w := range fl.waiters {
					w()
				}
			}})
		}
	}

	// dispatch performs the shared per-request bookkeeping around
	// handleRequest: warm-up windowing and occupancy sampling.
	dispatch := func(u int, cl *client, id cache.ID) {
		reqIdx := issuedReqs
		issuedReqs++
		measured := reqIdx >= cfg.Warmup
		if measured && measStart < 0 {
			measStart = sim.Now()
			busyAtStart = srv.BusyTime()
			est.Reset()
		}
		handleRequest(u, cl, id, measured)
		if measured {
			occ := 0.0
			for _, c := range clients {
				occ += float64(c.store.Len())
			}
			occupancy.Add(occ / float64(len(clients)))
		}
	}

	if cfg.Trace != nil {
		// Trace-driven arrivals: replay recorded epochs (scaled).
		scale := cfg.TimeScale
		if scale == 0 {
			scale = 1
		}
		n := len(cfg.Trace)
		if n > cfg.Requests {
			n = cfg.Requests
		}
		for i := 0; i < n; i++ {
			rec := cfg.Trace[i]
			u := rec.User % cfg.Users
			if u < 0 {
				u = 0
			}
			cl := clients[u]
			id := rec.Item
			sim.Schedule(rec.Time*scale, func() { dispatch(u, cl, id) })
		}
	} else {
		// Per-client Poisson arrival processes sharing a global request
		// budget.
		perClient := cfg.Lambda / float64(cfg.Users)
		inter := rng.Exponential{Rate: perClient}
		for u := range clients {
			u := u
			cl := clients[u]
			arrSrc := rng.NewStream(cfg.Seed, fmt.Sprintf("arrivals-%d", u))
			var arrive func()
			arrive = func() {
				if issuedReqs >= cfg.Requests {
					return
				}
				dispatch(u, cl, cl.source.Next())
				sim.After(inter.Sample(arrSrc), arrive)
			}
			sim.After(inter.Sample(arrSrc), arrive)
		}
	}
	sim.Run()

	if total == 0 {
		return res, fmt.Errorf("sim: no measured requests")
	}
	res.AccessTime = access.Mean()
	res.AccessTimeCI = access.CI95()
	res.HitRatio = float64(hits) / float64(total)
	res.RetrievalPerRequest = retrieval / float64(total)
	res.Requests = total
	res.Duration = sim.Now() - measStart
	if res.Duration > 0 {
		res.Utilisation = (srv.BusyTime() - busyAtStart) / res.Duration
	}
	res.NFObserved = float64(issuedMeasured) / float64(total)
	res.HPrimeEstimate = ctrl.HPrime()
	res.RhoPrimeEstimate = ctrl.RhoPrime()
	res.MeanOccupancy = occupancy.Mean()
	return res, nil
}
