package experiments

import (
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/stats"
)

// paperPanelHPrimes are the two panels of every figure: h′ = 0.0 (no
// baseline caching) and h′ = 0.3.
var paperPanelHPrimes = []float64{0.0, 0.3}

// fig2Params returns the operating point of Figures 2 and 3:
// s̄=1, λ=30, b=50.
func fig2Params(hPrime float64) analytic.Params {
	return analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: hPrime}
}

// fmtOrSat formats a point, rendering saturated (invalid) points as
// "sat" — where the paper's curves exit the plotted range.
func fmtOrSat(p analytic.Point) string {
	if !p.Valid || math.IsNaN(p.Y) {
		return "sat"
	}
	return fmt.Sprintf("%.6g", p.Y)
}

// seriesTable renders a family of curves as a table with the shared X
// in the first column.
func seriesTable(title, xName string, series []analytic.Series) *stats.Table {
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, xName)
	for _, s := range series {
		cols = append(cols, s.Label)
	}
	t := stats.NewTable(title, cols...)
	if len(series) == 0 {
		return t
	}
	for i := range series[0].Points {
		row := make([]string, 0, len(cols))
		row = append(row, fmt.Sprintf("%.4g", series[0].Points[i].X))
		for _, s := range series {
			row = append(row, fmtOrSat(s.Points[i]))
		}
		t.AddRow(row...)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Figure 1: p_th vs s̄ for b=50..450, λ=30, h′∈{0,0.3} (model A)",
		Run:   runFigure1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "Figure 2: G vs n̄(F) for p=0.1..0.9 at s̄=1, λ=30, b=50, h′∈{0,0.3} (model A)",
		Run:   runFigure2,
	})
	register(Experiment{
		ID:    "F3",
		Title: "Figure 3: C vs n̄(F) for p=0.1..0.9 at s̄=1, λ=30, b=50, h′∈{0,0.3} (model A)",
		Run:   runFigure3,
	})
}

// Panel is one sub-plot of a figure: a labelled curve family, exposed
// so cmd/prefetchbench can render figures as ASCII plots as well as
// tables.
type Panel struct {
	Title  string
	XLabel string
	YLabel string
	Series []analytic.Series
	// ClipY fixes the plotted y-range to [YMin, YMax], reproducing the
	// paper's axis limits (curves exit the frame where the paper's do).
	ClipY      bool
	YMin, YMax float64
}

// FigurePanels returns the raw curve families of figure id ("F1", "F2"
// or "F3"); table experiments have no panels.
func FigurePanels(id string) ([]Panel, error) {
	switch id {
	case "F1":
		return figure1Panels()
	case "F2":
		return figure2Panels()
	case "F3":
		return figure3Panels()
	default:
		return nil, fmt.Errorf("experiments: %s has no figure panels", id)
	}
}

func figure1Panels() ([]Panel, error) {
	bs := []float64{50, 100, 150, 200, 250, 300, 350, 400, 450}
	sizes := analytic.Linspace(0, 10, 21)
	var out []Panel
	for _, h := range paperPanelHPrimes {
		series, err := analytic.ThresholdVsSize(analytic.ModelA{}, 30, h, bs, sizes)
		if err != nil {
			return nil, err
		}
		out = append(out, Panel{
			Title:  fmt.Sprintf("Figure 1 (λ=30, h′=%.1f): threshold p_th vs item size s̄", h),
			XLabel: "s̄", YLabel: "p_th", Series: series,
			ClipY: true, YMin: 0, YMax: 1,
		})
	}
	return out, nil
}

func runFigure1(Options) ([]*stats.Table, error) {
	panels, err := figure1Panels()
	if err != nil {
		return nil, err
	}
	var out []*stats.Table
	for _, p := range panels {
		tb := seriesTable(p.Title, p.XLabel, p.Series)
		tb.AddNote("p_th = f′λs̄/b clamped at 1 (eq. 13); straight lines, steeper for smaller b")
		out = append(out, tb)
	}
	return out, nil
}

// fig23Ps are the per-curve access probabilities of Figures 2 and 3.
var fig23Ps = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

func figure2Panels() ([]Panel, error) {
	nFs := analytic.Linspace(0, 2, 21)
	var out []Panel
	for _, h := range paperPanelHPrimes {
		par := fig2Params(h)
		series, err := analytic.GainVsNF(analytic.ModelA{}, par, fig23Ps, nFs)
		if err != nil {
			return nil, err
		}
		out = append(out, Panel{
			Title:  fmt.Sprintf("Figure 2 (s̄=1, λ=30, b=50, h′=%.1f): access improvement G vs n̄(F)", h),
			XLabel: "n̄(F)", YLabel: "G", Series: series,
			ClipY: true, YMin: -0.1, YMax: 0.1, // the paper's axis limits
		})
	}
	return out, nil
}

func runFigure2(Options) ([]*stats.Table, error) {
	panels, err := figure2Panels()
	if err != nil {
		return nil, err
	}
	var out []*stats.Table
	for i, p := range panels {
		tb := seriesTable(p.Title, p.XLabel, p.Series)
		pth, _ := analytic.Threshold(analytic.ModelA{}, fig2Params(paperPanelHPrimes[i]))
		tb.AddNote("p_th = ρ′ = %.2f: curves with p > p_th are positive and increase monotonically; p < p_th negative; 'sat' marks saturation (ρ ≥ 1)", pth)
		out = append(out, tb)
	}
	return out, nil
}

func figure3Panels() ([]Panel, error) {
	nFs := analytic.Linspace(0, 2, 21)
	var out []Panel
	for _, h := range paperPanelHPrimes {
		par := fig2Params(h)
		series, err := analytic.CostVsNF(analytic.ModelA{}, par, fig23Ps, nFs)
		if err != nil {
			return nil, err
		}
		out = append(out, Panel{
			Title:  fmt.Sprintf("Figure 3 (s̄=1, λ=30, b=50, h′=%.1f): excess retrieval cost C vs n̄(F)", h),
			XLabel: "n̄(F)", YLabel: "C", Series: series,
			ClipY: true, YMin: 0, YMax: 0.1, // the paper's axis limits
		})
	}
	return out, nil
}

func runFigure3(Options) ([]*stats.Table, error) {
	panels, err := figure3Panels()
	if err != nil {
		return nil, err
	}
	var out []*stats.Table
	for _, p := range panels {
		tb := seriesTable(p.Title, p.XLabel, p.Series)
		tb.AddNote("C = (ρ−ρ′)/(λ(1−ρ)(1−ρ′)) (eq. 27); increasing and convex in n̄(F); low-p curves saturate early")
		out = append(out, tb)
	}
	return out, nil
}

// PanelPlot renders a Panel as an ASCII plot of the given size.
func PanelPlot(p Panel, width, height int) string {
	plot := stats.NewPlot(p.Title, p.XLabel, p.YLabel)
	if p.ClipY {
		plot.ClipY(p.YMin, p.YMax)
	}
	for _, s := range p.Series {
		xs := make([]float64, len(s.Points))
		ys := make([]float64, len(s.Points))
		for i, pt := range s.Points {
			xs[i] = pt.X
			if pt.Valid {
				ys[i] = pt.Y
			} else {
				ys[i] = math.NaN()
			}
		}
		plot.AddSeries(s.Label, xs, ys)
	}
	return plot.Render(width, height)
}
