package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"F1", "F2", "F3", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "T12", "T13", "T14"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("position %d: id %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("F9"); err == nil {
		t.Error("unknown id should error")
	}
	e, err := Get("F1")
	if err != nil || e.ID != "F1" {
		t.Errorf("Get(F1) = %+v, %v", e, err)
	}
}

// Every experiment must run in quick mode and produce non-empty tables
// with consistent columns.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Quick: true, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tb.Title)
				}
				if len(tb.Columns) < 2 {
					t.Errorf("%s: table %q has too few columns", e.ID, tb.Title)
				}
				// Rendering must not panic and must include the title.
				if !strings.Contains(tb.Text(), tb.Columns[0]) {
					t.Errorf("%s: text rendering broken", e.ID)
				}
			}
		})
	}
}

func TestFigure1Panels(t *testing.T) {
	tables, err := mustRun(t, "F1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Figure 1 should have 2 panels, got %d", len(tables))
	}
	// 9 bandwidth curves + the s̄ column.
	if len(tables[0].Columns) != 10 {
		t.Errorf("panel has %d columns, want 10", len(tables[0].Columns))
	}
	// At b=50 (column 1), λ=30, h′=0: p_th = 0.6·s̄ clamped; s̄=10 → 1.
	last := tables[0].Rows[tables[0].NumRows()-1]
	if last[1] != "1" {
		t.Errorf("p_th at s̄=10, b=50 should clamp to 1, got %s", last[1])
	}
}

func TestFigure2SignStructure(t *testing.T) {
	tables, err := mustRun(t, "F2")
	if err != nil {
		t.Fatal(err)
	}
	panel := tables[0] // h′ = 0, p_th = 0.6
	// Columns: nF, p=0.1 .. p=0.9. Beyond nF=0, p=0.9 (col 9) positive,
	// p=0.1 (col 1) negative or saturated.
	for r := 1; r < panel.NumRows(); r++ {
		if v, err := strconv.ParseFloat(panel.Cell(r, 9), 64); err == nil && v <= 0 {
			t.Errorf("row %d: G(p=0.9) = %v, want positive", r, v)
		}
		cell := panel.Cell(r, 1)
		if cell == "sat" {
			continue
		}
		if v, err := strconv.ParseFloat(cell, 64); err == nil && v >= 0 {
			t.Errorf("row %d: G(p=0.1) = %v, want negative", r, v)
		}
	}
}

func TestFigure3Saturation(t *testing.T) {
	tables, err := mustRun(t, "F3")
	if err != nil {
		t.Fatal(err)
	}
	panel := tables[0] // h′ = 0
	saw := false
	for r := 0; r < panel.NumRows(); r++ {
		if panel.Cell(r, 1) == "sat" { // p=0.1 column
			saw = true
		}
	}
	if !saw {
		t.Error("Figure 3 (h′=0) should mark saturated points for p=0.1")
	}
}

func TestTableConditionsNoViolations(t *testing.T) {
	tables, err := mustRun(t, "T5")
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cell(r, 3) != "0" || tb.Cell(r, 4) != "0" {
			t.Errorf("row %d: redundancy violations: c1∧¬c2=%s c1∧¬c3=%s",
				r, tb.Cell(r, 3), tb.Cell(r, 4))
		}
	}
}

func TestTableLoadImpedanceMonotone(t *testing.T) {
	tables, err := mustRun(t, "T6")
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	prev := -1.0
	for r := 0; r < tb.NumRows(); r++ {
		c, err := strconv.ParseFloat(tb.Cell(r, 2), 64)
		if err != nil {
			t.Fatalf("row %d: bad C cell %q", r, tb.Cell(r, 2))
		}
		if c <= prev {
			t.Errorf("C not increasing with background load at row %d", r)
		}
		prev = c
	}
}

func TestTableValidationRelErrSmall(t *testing.T) {
	tables, err := (registry["T2"]).Run(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for r := 0; r < tb.NumRows(); r++ {
		rel, err := strconv.ParseFloat(tb.Cell(r, 9), 64)
		if err != nil {
			t.Fatalf("row %d: bad rel cell %q", r, tb.Cell(r, 9))
		}
		if rel > 0.15 {
			t.Errorf("row %d: t̄ relative error %v too large even for quick mode", r, rel)
		}
	}
}

func TestFigurePanelsAndPlots(t *testing.T) {
	for _, id := range []string{"F1", "F2", "F3"} {
		panels, err := FigurePanels(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(panels) != 2 {
			t.Errorf("%s: %d panels, want 2", id, len(panels))
		}
		for _, p := range panels {
			out := PanelPlot(p, 60, 16)
			if !strings.Contains(out, p.Title) {
				t.Errorf("%s: plot missing title", id)
			}
			for _, s := range p.Series {
				if !strings.Contains(out, s.Label) {
					t.Errorf("%s: plot legend missing %s", id, s.Label)
				}
			}
		}
	}
	if _, err := FigurePanels("T1"); err == nil {
		t.Error("table experiments should have no panels")
	}
}

func mustRun(t *testing.T, id string) ([]*stats.Table, error) {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(Options{Quick: true, Seed: 7})
}
