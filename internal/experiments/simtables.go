package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/des"
	"repro/internal/predict"
	"repro/internal/prefetch"
	"repro/internal/queue"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "T2",
		Title: "Abstract simulation vs closed forms: eqs. 5, 7, 8, 10, 11, 27 (model A)",
		Run:   runTableValidation,
	})
	register(Experiment{
		ID:    "T3",
		Title: "Section-4 h′ estimator accuracy while prefetching (full system)",
		Run:   runTableEstimator,
	})
	register(Experiment{
		ID:    "T7",
		Title: "End-to-end policy comparison on a Markov workload (full system)",
		Run:   runTablePolicies,
	})
	register(Experiment{
		ID:    "T8",
		Title: "PS server validation: r̄ = x̄/(1−ρ) and insensitivity (exp vs Pareto sizes)",
		Run:   runTablePS,
	})
}

func runTableValidation(o Options) ([]*stats.Table, error) {
	tb := stats.NewTable("T2: abstract simulation vs paper equations (λ=30, b=50, s̄=1, model A)",
		"h′", "n̄(F)", "p",
		"h sim", "h eq7", "ρ sim", "ρ eq8",
		"t̄ sim", "t̄ eq10", "rel",
		"G sim", "G eq11", "C sim", "C eq27")
	cases := []struct{ hPrime, nF, p float64 }{
		{0, 0, 0}, // baseline row: eq. 5
		{0, 0.5, 0.9},
		{0, 1.0, 0.9},
		{0, 0.5, 0.7},
		{0.3, 0, 0},
		{0.3, 0.5, 0.6},
		{0.3, 1.0, 0.5},
		{0.3, 1.0, 0.7},
	}
	requests := o.requests(200000)
	warm := requests / 5
	baselines := map[float64]sim.AbstractResult{}
	for _, c := range cases {
		cfg := sim.AbstractConfig{
			Lambda: 30, Bandwidth: 50, MeanSize: 1,
			HPrime: c.hPrime, NF: c.nF, P: c.p,
			Requests: requests, Warmup: warm, Seed: o.seed(),
		}
		res, err := sim.RunAbstract(cfg)
		if err != nil {
			return nil, fmt.Errorf("T2 case %+v: %w", c, err)
		}
		if c.nF == 0 {
			baselines[c.hPrime] = res
		}
		par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: c.hPrime}
		var want analytic.Eval
		if c.nF == 0 {
			tPrime, err := par.AccessTimeNoPrefetch()
			if err != nil {
				return nil, err
			}
			want = analytic.Eval{H: c.hPrime, Rho: par.RhoPrime(), TBar: tPrime}
		} else {
			want, err = analytic.Evaluate(analytic.ModelA{}, par, c.nF, c.p)
			if err != nil {
				return nil, err
			}
		}
		base := baselines[c.hPrime]
		gSim := base.AccessTime - res.AccessTime
		cSim := res.RetrievalPerRequest - base.RetrievalPerRequest
		tb.AddRowValues(c.hPrime, c.nF, c.p,
			res.HitRatio, want.H, res.Utilisation, want.Rho,
			res.AccessTime, want.TBar, stats.RelErr(res.AccessTime, want.TBar),
			gSim, want.G, cSim, want.C)
	}
	tb.AddNote("every simulated quantity matches its closed form; G and C rows compare against the h′-matched baseline run")
	return []*stats.Table{tb}, nil
}

// estimatorSystem is the shared full-system configuration for T3/T7.
func estimatorSystem(o Options, pol prefetch.Policy, inter sim.Interaction, lambda float64) sim.SystemConfig {
	return sim.SystemConfig{
		Users:     4,
		Lambda:    lambda,
		Bandwidth: 50,
		Catalog:   workload.NewUniformCatalog(500, 1),
		NewSource: func(u int, src *rng.Source) workload.Source {
			return workload.NewMarkov(workload.MarkovConfig{
				N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
			}, src)
		},
		NewPredictor:  func() predict.Predictor { return predict.NewMarkov1() },
		Policy:        pol,
		Interaction:   inter,
		CacheCapacity: 80,
		MaxPrefetch:   2,
		Requests:      o.requests(80000),
		Warmup:        o.requests(80000) / 4,
		Seed:          o.seed(),
	}
}

func runTableEstimator(o Options) ([]*stats.Table, error) {
	tb := stats.NewTable("T3: ĥ′ estimated while prefetching vs true no-prefetch h′",
		"interaction", "policy", "true h′ (baseline run)", "ĥ′ (Section 4)", "abs err",
		"h with prefetch", "n̄(F)")
	for _, inter := range []sim.Interaction{sim.InteractionA, sim.InteractionB} {
		base, err := sim.RunSystem(estimatorSystem(o, nil, inter, 30))
		if err != nil {
			return nil, err
		}
		pf, err := sim.RunSystem(estimatorSystem(o,
			prefetch.Threshold{Model: analytic.ModelA{}}, inter, 30))
		if err != nil {
			return nil, err
		}
		errAbs := pf.HPrimeEstimate - base.HitRatio
		if errAbs < 0 {
			errAbs = -errAbs
		}
		tb.AddRowValues(inter.String(), "paper-threshold",
			base.HitRatio, pf.HPrimeEstimate, errAbs, pf.HitRatio, pf.NFObserved)
	}
	tb.AddNote("the estimator recovers the hypothetical no-prefetch hit ratio while prefetching runs; prefetching itself raises the realised h above h′")
	return []*stats.Table{tb}, nil
}

func runTablePolicies(o Options) ([]*stats.Table, error) {
	var out []*stats.Table
	for _, lambda := range []float64{30, 42} {
		tb := stats.NewTable(
			fmt.Sprintf("T7: policy comparison, λ=%g, b=50 (Markov workload, Markov-1 predictor, model A)", lambda),
			"policy", "h", "t̄", "G vs none", "R/req", "C vs none", "ρ", "n̄(F)", "accuracy")
		base, err := sim.RunSystem(estimatorSystem(o, nil, sim.InteractionA, lambda))
		if err != nil {
			return nil, err
		}
		policies := []prefetch.Policy{
			prefetch.None{},
			prefetch.Threshold{Model: analytic.ModelA{}},
			prefetch.Threshold{Model: analytic.ModelB{}},
			prefetch.Greedy{Model: analytic.ModelA{}},
			prefetch.Static{Theta: 0.05},
			prefetch.Static{Theta: 0.5},
			prefetch.TopK{K: 2},
		}
		for _, pol := range policies {
			res, err := sim.RunSystem(estimatorSystem(o, pol, sim.InteractionA, lambda))
			if err != nil {
				return nil, err
			}
			tb.AddRowValues(pol.Name(),
				res.HitRatio, res.AccessTime,
				base.AccessTime-res.AccessTime,
				res.RetrievalPerRequest,
				res.RetrievalPerRequest-base.RetrievalPerRequest,
				res.Utilisation, res.NFObserved, res.Accuracy())
		}
		tb.AddNote("the paper's load-adaptive threshold sustains its gain as λ rises, while load-blind policies (low static θ, top-k) pay growing excess cost")
		out = append(out, tb)
	}
	return out, nil
}

func runTablePS(o Options) ([]*stats.Table, error) {
	tb := stats.NewTable("T8: M/G/1-PS server validation (capacity 1, mean size 1)",
		"ρ", "r̄ analytic", "r̄ sim (exp)", "r̄ sim (Pareto α=2.2)",
		"rel(exp)", "rel(Pareto)", "r̄ FCFS sim (Pareto)")
	jobs := o.requests(60000)
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		want, err := queue.PSMeanResponse(1, rho)
		if err != nil {
			return nil, err
		}
		exp := runPS(o.seed(), rho, rng.Exponential{Rate: 1}, jobs, false)
		par := runPS(o.seed()+1, rho, rng.NewParetoMean(1, 2.2), jobs, false)
		fcfs := runPS(o.seed()+2, rho, rng.NewParetoMean(1, 2.2), jobs, true)
		tb.AddRowValues(rho, want, exp, par,
			stats.RelErr(exp, want), stats.RelErr(par, want), fcfs)
	}
	tb.AddNote("PS response time is insensitive to the size distribution (both columns match x̄/(1−ρ)); FCFS under heavy-tailed sizes is far worse — why the shared link is modelled as PS")
	return []*stats.Table{tb}, nil
}

// runPS drives one M/G/1 queue at utilisation rho and returns the mean
// response time.
func runPS(seed uint64, rho float64, size rng.Dist, jobs int, fcfs bool) float64 {
	s := des.New()
	arrivals := rng.NewStream(seed, "arrivals")
	sizes := rng.NewStream(seed, "sizes")
	inter := rng.Exponential{Rate: rho} // capacity 1, mean size 1
	submitted := 0
	var submit func(j *queue.Job)
	var mean func() float64
	if fcfs {
		srv := queue.NewFCFSServer(s, 1)
		submit = srv.Submit
		mean = func() float64 { return srv.Response.Mean() }
	} else {
		srv := queue.NewPSServer(s, 1)
		submit = srv.Submit
		mean = func() float64 { return srv.Response.Mean() }
	}
	var arrive func()
	arrive = func() {
		if submitted >= jobs {
			return
		}
		submitted++
		submit(&queue.Job{Size: size.Sample(sizes)})
		s.After(inter.Sample(arrivals), arrive)
	}
	s.After(inter.Sample(arrivals), arrive)
	s.Run()
	return mean()
}
