package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/des"
	"repro/internal/queue"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "T9",
		Title: "Round-robin quantum ablation: RR converges to the PS idealisation as the quantum shrinks",
		Run:   runTableRRQuantum,
	})
	register(Experiment{
		ID:    "T10",
		Title: "Mixed-probability candidates: the paper's fixed threshold vs the greedy local-threshold rule",
		Run:   runTableMixed,
	})
	register(Experiment{
		ID:    "T11",
		Title: "QoS deadline-miss probability under prefetching (paper's future-work direction)",
		Run:   runTableQoS,
	})
}

// runTableQoS takes the conclusion's multimedia-QoS direction one step:
// a media client misses its playout budget when the access time exceeds
// a deadline. Above-threshold prefetching cuts the miss probability
// (more hits, tolerable queueing); below-threshold prefetching raises
// it at every deadline (the extra load outweighs the extra hits).
func runTableQoS(o Options) ([]*stats.Table, error) {
	deadlines := []float64{0.01, 0.02, 0.05, 0.1, 0.2}
	cols := []string{"config", "h", "t̄"}
	for _, d := range deadlines {
		cols = append(cols, fmt.Sprintf("P(t>%g)", d))
	}
	tb := stats.NewTable("T11: deadline-miss probability (λ=30, b=50, s̄=1, h′=0.3; p_th=0.42)", cols...)
	cases := []struct {
		label  string
		nF, pp float64
	}{
		{"no prefetch", 0, 0},
		{"prefetch p=0.7 > p_th, n̄(F)=0.8", 0.8, 0.7},
		{"prefetch p=0.6 > p_th, n̄(F)=0.5", 0.5, 0.6},
		{"prefetch p=0.2 < p_th, n̄(F)=1", 1, 0.2},
	}
	requests := o.requests(200000)
	for _, c := range cases {
		cfg := sim.AbstractConfig{
			Lambda: 30, Bandwidth: 50, MeanSize: 1, HPrime: 0.3,
			NF: c.nF, P: c.pp,
			Requests: requests, Warmup: requests / 5,
			Seed: o.seed(), KeepAccessTimes: true,
		}
		res, err := sim.RunAbstract(cfg)
		if err != nil {
			return nil, fmt.Errorf("T11 %s: %w", c.label, err)
		}
		row := []string{c.label,
			fmt.Sprintf("%.4f", res.HitRatio),
			fmt.Sprintf("%.5f", res.AccessTime)}
		for _, d := range deadlines {
			p, err := res.MissProb(d)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", p))
		}
		tb.AddRow(row...)
	}
	tb.AddNote("above-threshold prefetching slashes misses at tight deadlines (more hits) but the higher utilisation fattens the queueing tail, so at long deadlines a small crossover appears — the paper's rule optimises the mean, not the tail; below-threshold prefetching is worse at every deadline")
	return []*stats.Table{tb}, nil
}

// runTableRRQuantum justifies the paper's Section 2.1 identification of
// "round-robin" service with the processor-sharing formula r̄ = x/(1−ρ):
// the identification is the quantum→0 limit. Heavy-tailed job sizes are
// essential for the ablation — with exponential sizes M/G/1 FCFS and PS
// have identical *means* and no quantum could tell them apart; under a
// bounded-Pareto load a coarse quantum (≈ FCFS) inflates mean response
// far above PS, and refining the quantum walks it back down.
func runTableRRQuantum(o Options) ([]*stats.Table, error) {
	const rho = 0.6
	sizeDist := rng.BoundedPareto{L: 0.2, H: 50, Alpha: 1.2}
	xbar := sizeDist.Mean()
	want, err := queue.PSMeanResponse(xbar, rho)
	if err != nil {
		return nil, err
	}
	jobs := o.requests(200000)
	tb := stats.NewTable(
		fmt.Sprintf("T9: M/G/1 round robin vs PS at ρ=%.1f, bounded-Pareto sizes (PS analytic r̄ = %.4f)", rho, want),
		"quantum", "r̄ RR sim", "rel vs PS")
	for _, q := range []float64{16, 4, 1, 0.25, 0.0625} {
		got := runRRQueue(o.seed(), rho/xbar, sizeDist, q, jobs)
		tb.AddRowValues(q, got, stats.RelErr(got, want))
	}
	tb.AddNote("coarse quanta behave like FCFS (sensitive to the size tail); the error shrinks as the quantum refines — fine-grained round robin is processor sharing, as the paper assumes")
	return []*stats.Table{tb}, nil
}

// runRRQueue drives an M/G/1 round-robin queue at arrival rate lambda
// and returns the mean response time.
func runRRQueue(seed uint64, lambda float64, size rng.Dist, quantum float64, jobs int) float64 {
	s := des.New()
	srv := queue.NewRRServer(s, 1, quantum)
	arrivals := rng.NewStream(seed, "arrivals")
	sizes := rng.NewStream(seed, "sizes")
	inter := rng.Exponential{Rate: lambda}
	submitted := 0
	var arrive func()
	arrive = func() {
		if submitted >= jobs {
			return
		}
		submitted++
		srv.Submit(&queue.Job{Size: size.Sample(sizes)})
		s.After(inter.Sample(arrivals), arrive)
	}
	s.After(inter.Sample(arrivals), arrive)
	s.Run()
	return srv.Response.Mean()
}

// runTableMixed quantifies the reproduction finding on heterogeneous
// candidates: the paper's threshold (exact in its single-p setting) is
// conservative when candidate probabilities differ, because prefetching
// the high-p classes lowers the marginal (local) threshold below ρ′.
func runTableMixed(Options) ([]*stats.Table, error) {
	// A ladder of candidate classes, 0.1 items/request each
	// (constructed from integers so the probabilities are exact).
	var classes []analytic.Class
	for i := 9; i >= 1; i-- {
		classes = append(classes, analytic.Class{NF: 0.1, P: float64(i) / 10})
	}
	tb := stats.NewTable("T10: paper rule vs greedy local-threshold rule on a candidate ladder (λ=30, b=50, s̄=1; classes of n̄(F)=0.1 at p=0.9..0.1)",
		"h′", "p_th (paper)", "classes (paper)", "G (paper)",
		"lowest p (greedy)", "classes (greedy)", "G (greedy)", "gain ratio")
	// h′ is capped at 0.3 here: with h′=0.6 (f′=0.4) the full ladder
	// would itself violate the consistency bound Σ n̄(F)ᵢ·pᵢ ≤ f′
	// (eq. 6) — there cannot be that many probable-but-unhit items.
	for _, hPrime := range []float64{0, 0.3} {
		par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: hPrime}
		pth, err := analytic.Threshold(analytic.ModelA{}, par)
		if err != nil {
			return nil, err
		}
		paper, err := analytic.SelectClasses(analytic.ModelA{}, par, classes)
		if err != nil {
			return nil, err
		}
		greedy, err := analytic.SelectClassesGreedy(analytic.ModelA{}, par, classes)
		if err != nil {
			return nil, err
		}
		ePaper, err := analytic.EvaluateMixed(analytic.ModelA{}, par, paper)
		if err != nil {
			return nil, err
		}
		eGreedy, err := analytic.EvaluateMixed(analytic.ModelA{}, par, greedy)
		if err != nil {
			return nil, err
		}
		lowest := 0.0
		if len(greedy) > 0 {
			lowest = greedy[len(greedy)-1].P
		}
		ratio := 0.0
		if ePaper.G > 0 {
			ratio = eGreedy.G / ePaper.G
		}
		tb.AddRowValues(hPrime, pth, len(paper), ePaper.G,
			lowest, len(greedy), eGreedy.G, ratio)
	}
	tb.AddNote("the greedy rule admits every class the paper's rule admits plus lower-p ones once the load relief accumulates; both are loss-free, greedy extracts strictly more gain")
	return []*stats.Table{tb}, nil
}
