package experiments

import (
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "Thresholds p_th: model A (eq. 13) vs model B (eq. 21) across b, h′, n̄(C)",
		Run:   runTableThresholds,
	})
	register(Experiment{
		ID:    "T4",
		Title: "Section 6: models A/B/AB converge as n̄(C) grows",
		Run:   runTableModelCompare,
	})
	register(Experiment{
		ID:    "T5",
		Title: "Redundancy of conditions 2–3 (eqs. 12/14, 20/22) over a parameter grid",
		Run:   runTableConditions,
	})
	register(Experiment{
		ID:    "T6",
		Title: "Load impedance: cost C of the same prefetch at different background loads",
		Run:   runTableLoadImpedance,
	})
}

func runTableThresholds(Options) ([]*stats.Table, error) {
	tb := stats.NewTable("T1: prefetch thresholds p_th (λ=30, s̄=1)",
		"b", "h′", "n̄(C)", "ρ′", "p_th(A)", "p_th(B)", "gap=h′/n̄(C)")
	for _, b := range []float64{50, 150, 250, 350, 450} {
		for _, h := range []float64{0, 0.3, 0.6} {
			for _, nc := range []float64{10, 100, 1000} {
				par := analytic.Params{Lambda: 30, B: b, SBar: 1, HPrime: h, NC: nc}
				a, err := analytic.Threshold(analytic.ModelA{}, par)
				if err != nil {
					return nil, err
				}
				bth, err := analytic.Threshold(analytic.ModelB{}, par)
				if err != nil {
					return nil, err
				}
				tb.AddRowValues(b, h, nc, par.RhoPrime(), a, bth, bth-a)
			}
		}
	}
	tb.AddNote("gap is exactly h′/n̄(C) ≤ 1/n̄(C): significant only for meagre caches or very low ρ′ (Section 6)")
	return []*stats.Table{tb}, nil
}

func runTableModelCompare(Options) ([]*stats.Table, error) {
	par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: 0.3}
	const p, nF = 0.7, 0.5
	tb := stats.NewTable(
		fmt.Sprintf("T4: model A vs AB(α=0.5) vs B at h′=0.3, p=%g, n̄(F)=%g", p, nF),
		"n̄(C)", "G(A)", "G(AB½)", "G(B)", "|G(A)−G(B)|", "h(A)", "h(B)")
	for _, nc := range []float64{2, 5, 10, 50, 100, 1000, 10000} {
		par.NC = nc
		ea, err := analytic.Evaluate(analytic.ModelA{}, par, nF, p)
		if err != nil {
			return nil, err
		}
		eab, err := analytic.Evaluate(analytic.ModelAB{Alpha: 0.5}, par, nF, p)
		if err != nil {
			return nil, err
		}
		eb, err := analytic.Evaluate(analytic.ModelB{}, par, nF, p)
		if err != nil {
			return nil, err
		}
		tb.AddRowValues(nc, ea.G, eab.G, eb.G, math.Abs(ea.G-eb.G), ea.H, eb.H)
	}
	tb.AddNote("model AB lies between A and B; the gap shrinks as n̄(C) ≫ n̄(F) — model A approximates both (Section 6)")
	return []*stats.Table{tb}, nil
}

func runTableConditions(Options) ([]*stats.Table, error) {
	models := []analytic.Model{analytic.ModelA{}, analytic.ModelB{}, analytic.ModelAB{Alpha: 0.5}}
	tb := stats.NewTable("T5: condition redundancy sweep (eqs. 12, 20)",
		"model", "grid points", "c1 holds", "c1∧¬c2", "c1∧¬c3", "nF-limit ≥ max(np)")
	for _, m := range models {
		var points, c1Holds, violC2, violC3, limOK, limTotal int
		for _, b := range []float64{20, 50, 100, 200, 400} {
			for _, lambda := range []float64{5, 15, 30, 45} {
				for _, h := range []float64{0, 0.2, 0.5, 0.8} {
					for _, p := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95} {
						par := analytic.Params{Lambda: lambda, B: b, SBar: 1, HPrime: h, NC: 25}
						maxNP := par.MaxPrefetchable(p)
						for _, frac := range []float64{0.25, 0.5, 1.0} {
							nF := frac * maxNP
							points++
							c1, c2, c3, err := analytic.Conditions(m, par, nF, p)
							if err != nil {
								return nil, err
							}
							if c1 {
								c1Holds++
								if !c2 {
									violC2++
								}
								if !c3 {
									violC3++
								}
							}
						}
						lim, err := analytic.NFLimit(m, par, p)
						if err != nil {
							return nil, err
						}
						limTotal++
						if lim >= maxNP-1e-12 {
							limOK++
						}
					}
				}
			}
		}
		tb.AddRowValues(m.Name(), points, c1Holds, violC2, violC3,
			fmt.Sprintf("%d/%d", limOK, limTotal))
	}
	tb.AddNote("zero violations: whenever p > p_th and n̄(F) ≤ max(np), capacity conditions 2–3 hold automatically — the paper's redundancy claim")
	return []*stats.Table{tb}, nil
}

func runTableLoadImpedance(Options) ([]*stats.Table, error) {
	// One prefetched item per request with p just under useless
	// (worst case): Δρ = n̄(F)(1−p)λs̄/b fixed; vary background ρ′.
	tb := stats.NewTable("T6: load impedance of the excess retrieval cost (λ=30)",
		"ρ′ (background)", "ρ (with prefetch)", "C", "C per unit Δρ")
	const deltaRho = 0.08
	for _, rhoPrime := range []float64{0.05, 0.2, 0.4, 0.6, 0.75, 0.88} {
		rho := rhoPrime + deltaRho
		c, err := analytic.ExcessCost(30, rho, rhoPrime)
		if err != nil {
			return nil, err
		}
		tb.AddRowValues(rhoPrime, rho, c, c/deltaRho)
	}
	tb.AddNote("the same prefetch traffic (Δρ=%.2f) costs ~%.0f× more at ρ′=0.88 than at ρ′=0.05 — prefetch when the network is idle", deltaRho, impedanceRatio())
	return []*stats.Table{tb}, nil
}

// impedanceRatio computes the headline ratio quoted in the T6 note.
func impedanceRatio() float64 {
	lo, _ := analytic.ExcessCost(30, 0.05+0.08, 0.05)
	hi, _ := analytic.ExcessCost(30, 0.88+0.08, 0.88)
	return hi / lo
}
