// Package experiments regenerates every figure of the paper and the
// validation/comparison tables derived from its claims (DESIGN.md's
// experiment index). Each experiment is addressed by id — F1..F3 for
// the paper's figures, T1..T8 for the derived tables — and produces one
// or more stats.Tables that cmd/prefetchbench renders as text, CSV or
// markdown, and that bench_test.go regenerates under `go test -bench`.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks simulation sizes for smoke tests and benchmarks;
	// the full sizes are used for EXPERIMENTS.md numbers.
	Quick bool
	// Seed drives all simulation randomness (0 = default 1).
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// requests returns a simulation size scaled by Quick.
func (o Options) requests(full int) int {
	if o.Quick {
		return full / 10
	}
	return full
}

// Experiment is one regenerable artifact.
type Experiment struct {
	// ID is the experiment identifier (F1..F3, T1..T8).
	ID string
	// Title describes what it reproduces.
	Title string
	// Run generates the result tables.
	Run func(Options) ([]*stats.Table, error)
}

// registry holds all experiments keyed by id.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids())
	}
	return e, nil
}

// All returns every experiment sorted by id (figures first, then
// tables).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if a[0] != b[0] {
			return a[0] == 'F' // figures before tables
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

func ids() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}
