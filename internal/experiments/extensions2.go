package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "T12",
		Title: "Heterogeneous item sizes: the threshold is size-independent under model A",
		Run:   runTableSized,
	})
	register(Experiment{
		ID:    "T13",
		Title: "Access-model comparison: precision/recall/calibration of the related-work predictors",
		Run:   runTablePredictors,
	})
	register(Experiment{
		ID:    "T14",
		Title: "Bursty (MMPP) arrivals: which conclusions survive the Poisson assumption",
		Run:   runTableBursty,
	})
}

// runTableBursty stresses the paper's Poisson-arrival assumption with a
// two-state MMPP of the same mean rate: burstiness inflates every
// response time beyond the M/G/1 formulas, but the *decision* structure
// — prefetch above the threshold helps, below hurts — survives.
func runTableBursty(o Options) ([]*stats.Table, error) {
	const (
		hPrime = 0.3
		lambda = 30.0
	)
	mmppCfg := workload.MMPPConfig{RateHigh: 75, RateLow: 15, MeanHigh: 1, MeanLow: 3}
	if g := mmppCfg.MeanRate(); g != lambda {
		return nil, fmt.Errorf("T14: MMPP mean rate %v != λ %v", g, lambda)
	}
	requests := o.requests(200000)
	run := func(nF, p float64, bursty bool, seedOff uint64) (sim.AbstractResult, error) {
		cfg := sim.AbstractConfig{
			Lambda: lambda, Bandwidth: 50, MeanSize: 1, HPrime: hPrime,
			NF: nF, P: p,
			Requests: requests, Warmup: requests / 5, Seed: o.seed() + seedOff,
		}
		if bursty {
			cfg.Arrivals = workload.NewMMPP(mmppCfg, rng.NewStream(cfg.Seed, "mmpp"))
		}
		return sim.RunAbstract(cfg)
	}
	tb := stats.NewTable(
		"T14: Poisson vs MMPP arrivals at equal mean λ=30 (b=50, s̄=1, h′=0.3, p_th=0.42)",
		"config", "t̄ Poisson", "t̄ MMPP", "inflation", "G Poisson", "G MMPP")
	type cse struct {
		label  string
		nF, pp float64
	}
	cases := []cse{
		{"no prefetch", 0, 0},
		{"prefetch p=0.7, n̄(F)=0.5", 0.5, 0.7},
		{"prefetch p=0.2, n̄(F)=0.5", 0.5, 0.2},
	}
	var basePoisson, baseMMPP sim.AbstractResult
	for i, c := range cases {
		rp, err := run(c.nF, c.pp, false, uint64(i))
		if err != nil {
			return nil, err
		}
		rm, err := run(c.nF, c.pp, true, uint64(i))
		if err != nil {
			return nil, err
		}
		if c.nF == 0 {
			basePoisson, baseMMPP = rp, rm
		}
		tb.AddRowValues(c.label,
			rp.AccessTime, rm.AccessTime, rm.AccessTime/rp.AccessTime,
			basePoisson.AccessTime-rp.AccessTime,
			baseMMPP.AccessTime-rm.AccessTime)
	}
	tb.AddNote("burstiness inflates t̄ well beyond eq. 5/10 (the model understates delays under non-Poisson load), but sign(G) still follows the threshold — the rule is robust, the absolute predictions are not")
	return []*stats.Table{tb}, nil
}

// runTableSized demonstrates the sized extension (analytic.SizedClass):
// under processor sharing an item's prefetch benefit and cost both scale
// with its size, so model A's threshold does not depend on size at all,
// while model B's displacement term dilutes for large items.
func runTableSized(Options) ([]*stats.Table, error) {
	par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: 0.3, NC: 10}
	tb := stats.NewTable("T12: prefetch threshold p_th vs item size (λ=30, b=50, s̄=1, h′=0.3, n̄(C)=10)",
		"item size s", "p_th model A", "p_th model B", "G(A) for n̄(F)=0.05, p=0.7", "C(A)")
	for _, size := range []float64{0.1, 0.5, 1, 2, 5} {
		a, err := analytic.ThresholdSized(analytic.ModelA{}, par, size)
		if err != nil {
			return nil, err
		}
		b, err := analytic.ThresholdSized(analytic.ModelB{}, par, size)
		if err != nil {
			return nil, err
		}
		e, err := analytic.EvaluateSized(analytic.ModelA{}, par,
			[]analytic.SizedClass{{NF: 0.05, P: 0.7, Size: size}})
		if err != nil {
			return nil, err
		}
		tb.AddRowValues(size, a, b, e.G, e.C)
	}
	tb.AddNote("model A's column is constant (size cancels under PS); model B's threshold falls with size (a big item forfeits the same h′/n̄(C) eviction value but carries proportionally more benefit); G and C both scale with size")
	return []*stats.Table{tb}, nil
}

// runTablePredictors races the related-work access models on the
// standard Markov workload: the paper assumes *some* model supplies
// access probabilities; this table records how good each family's
// probabilities actually are, which determines how well the threshold
// rule works end-to-end (T7).
func runTablePredictors(o Options) ([]*stats.Table, error) {
	const n = 300
	requests := o.requests(200000)
	warmup := requests / 4

	wl := workload.NewMarkov(workload.MarkovConfig{
		N: n, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, rng.NewStream(o.seed(), "predictor-race"))
	stream := make([]cache.ID, requests)
	for i := range stream {
		stream[i] = wl.Next()
	}

	predictors := []func() predict.Predictor{
		func() predict.Predictor { return predict.NewMarkov1() },
		func() predict.Predictor { return predict.NewPPM(2) },
		func() predict.Predictor { return predict.NewPPM(3) },
		func() predict.Predictor { return predict.NewLZ78() },
		func() predict.Predictor { return predict.NewDependencyGraph(4) },
		func() predict.Predictor { return predict.NewPopularity(16) },
		func() predict.Predictor {
			return predict.NewEnsemble(predict.NewMarkov1(), predict.NewLZ78())
		},
	}
	const threshold = 0.4
	tb := stats.NewTable(
		fmt.Sprintf("T13: predictor quality on the Markov workload (θ=%.1f, %d requests)", threshold, requests),
		"model", "issued", "precision", "recall", "calibration gap")
	for _, mk := range predictors {
		p := mk()
		q := predict.Evaluate(p, stream, threshold, warmup)
		// Calibration: mean |claimed − empirical| over populated bins.
		cal := predict.EvaluateCalibration(mk(), stream, 10, warmup)
		claimed, empirical, counts := cal.Bins()
		var gap, weight float64
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			w := float64(counts[i])
			diff := claimed[i] - empirical[i]
			if diff < 0 {
				diff = -diff
			}
			gap += w * diff
			weight += w
		}
		if weight > 0 {
			gap /= weight
		}
		tb.AddRowValues(p.Name(), q.Issued, q.Precision(), q.Recall(), gap)
	}
	tb.AddNote("first-order Markov and PPM are near-calibrated on this workload (the threshold rule can trust their p); popularity ranks items but its global frequencies are poor next-access probabilities")
	return []*stats.Table{tb}, nil
}
