package cache

import "fmt"

// SLRU is segmented LRU: entries enter a probationary segment and are
// promoted to a protected segment on re-reference; victims come from
// the probationary segment first. SLRU resists the scan pollution that
// defeats plain LRU — relevant here because *speculative prefetches
// are exactly a pollution stream*: prefetched-but-never-used items
// churn through probation without ever displacing the protected
// working set, which makes SLRU a natural companion to interaction
// model A ("evict zero-value items first").
type SLRU struct {
	protectedCap int
	probation    *LRU
	protected    *LRU
	segment      map[ID]int // 0 = probation, 1 = protected
	protectedLen int
}

// NewSLRU creates an SLRU policy whose protected segment holds at most
// protectedCap entries. It panics if protectedCap < 1.
func NewSLRU(protectedCap int) *SLRU {
	if protectedCap < 1 {
		panic(fmt.Sprintf("cache: SLRU protected capacity %d must be >= 1", protectedCap))
	}
	return &SLRU{
		protectedCap: protectedCap,
		probation:    NewLRU(),
		protected:    NewLRU(),
		segment:      make(map[ID]int),
	}
}

// Name implements Policy.
func (p *SLRU) Name() string { return "slru" }

// Inserted implements Policy: new entries start on probation.
func (p *SLRU) Inserted(id ID) {
	p.probation.Inserted(id)
	p.segment[id] = 0
}

// Accessed implements Policy: probationary entries are promoted; a full
// protected segment demotes its LRU entry back to probation.
func (p *SLRU) Accessed(id ID) {
	seg, ok := p.segment[id]
	if !ok {
		return
	}
	if seg == 1 {
		p.protected.Accessed(id)
		return
	}
	p.probation.Removed(id)
	p.protected.Inserted(id)
	p.segment[id] = 1
	p.protectedLen++
	if p.protectedLen > p.protectedCap {
		demote := p.protected.Victim()
		p.protected.Removed(demote)
		p.probation.Inserted(demote) // most-recent end of probation
		p.segment[demote] = 0
		p.protectedLen--
	}
}

// Victim implements Policy: probationary LRU first, protected LRU only
// when probation is empty.
func (p *SLRU) Victim() ID {
	if p.probation.list.len > 0 {
		return p.probation.Victim()
	}
	return p.protected.Victim()
}

// Removed implements Policy.
func (p *SLRU) Removed(id ID) {
	seg, ok := p.segment[id]
	if !ok {
		return
	}
	if seg == 0 {
		p.probation.Removed(id)
	} else {
		p.protected.Removed(id)
		p.protectedLen--
	}
	delete(p.segment, id)
}

// ProtectedLen reports the number of protected entries (for tests).
func (p *SLRU) ProtectedLen() int { return p.protectedLen }
