package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Estimator implements the paper's Section-4 online estimator of h′ —
// the cache hit ratio that would be observed if prefetching were *not*
// running — while prefetching actually is running. The idea: entries
// that entered the cache through prefetching are "untagged" until a user
// request touches them. Hits on tagged entries are hits a no-prefetch
// cache would also have produced; the first hit on an untagged entry
// would have been a miss without prefetching (it counts toward naccess
// but not nhit) and promotes the entry to tagged, because from then on
// even a no-prefetch cache would have held it (it would have been
// demand-fetched and admitted).
//
// The algorithm transcribed from the paper:
//
//	When an item is prefetched:       insert as untagged.
//	When a tagged entry is accessed:  naccess++, nhit++.
//	When an untagged entry is hit:    naccess++; promote to tagged.
//	When a remote item is accessed:   naccess++; if admitted, tag it.
//
// Estimate (model A):  ĥ′ = nhit/naccess.
// Estimate (model B):  ĥ′ = nhit/naccess × n̄(C)/(n̄(C)−n̄(F)),
// compensating for the tagged occupants model B assumes were displaced
// by prefetched items.
//
// Estimator is safe for concurrent use: a live engine reports demand
// hits, remote fetches, prefetch completions and evictions from
// different goroutines. The tag state is striped across several
// independently-locked maps keyed by id, and the counters are atomics,
// so a sharded engine's hot paths do not serialise on one estimator
// lock. Each id's tag transitions stay ordered (one stripe owns each
// id); the aggregate counters are only ever read as a ratio, for which
// atomic adds suffice.
type Estimator struct {
	stripes [estimatorStripes]estimatorStripe
	naccess atomic.Int64
	nhit    atomic.Int64
}

// estimatorStripeBits sets the number of independently-locked tag maps
// (2^bits). 16 stripes is plenty to keep engine shards from colliding
// without bloating the zero-traffic footprint.
const (
	estimatorStripeBits = 4
	estimatorStripes    = 1 << estimatorStripeBits
)

type estimatorStripe struct {
	mu     sync.Mutex
	tagged map[ID]bool // resident → tagged?
}

// NewEstimator returns an empty estimator. It must observe every cache
// event; the simulator wires it to the client's cache.
func NewEstimator() *Estimator {
	e := &Estimator{}
	for i := range e.stripes {
		e.stripes[i].tagged = make(map[ID]bool)
	}
	return e
}

// stripe returns the stripe owning id. The multiplicative hash spreads
// sequential ids (the common dense-interned case) across stripes even
// when the caller's own sharding already used the low bits.
func (e *Estimator) stripe(id ID) *estimatorStripe {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &e.stripes[h>>(64-estimatorStripeBits)]
}

// OnPrefetch records that id entered the cache via prefetch (untagged).
func (e *Estimator) OnPrefetch(id ID) {
	s := e.stripe(id)
	s.mu.Lock()
	s.tagged[id] = false
	s.mu.Unlock()
}

// OnHit records a user request that hit the cache. It updates the
// counters per the paper's algorithm and reports whether the entry was
// tagged at the time of access.
func (e *Estimator) OnHit(id ID) (wasTagged bool) {
	s := e.stripe(id)
	s.mu.Lock()
	t, known := s.tagged[id]
	if !known || !t {
		s.tagged[id] = true // promote untagged → tagged (or adopt unknown)
	}
	s.mu.Unlock()

	e.naccess.Add(1)
	if !known {
		// The entry predates the estimator (e.g. warm-up admission
		// before estimation started). Treat it as tagged: a no-prefetch
		// cache would hold it too.
		e.nhit.Add(1)
		return true
	}
	if t {
		e.nhit.Add(1)
		return true
	}
	return false
}

// OnRemoteAccess records a user request that missed the cache and was
// fetched remotely; admitted says whether the item was then admitted to
// the cache (tagged if so).
func (e *Estimator) OnRemoteAccess(id ID, admitted bool) {
	if admitted {
		s := e.stripe(id)
		s.mu.Lock()
		s.tagged[id] = true
		s.mu.Unlock()
	}
	e.naccess.Add(1)
}

// OnEvict forgets the tag state of an evicted entry.
func (e *Estimator) OnEvict(id ID) {
	s := e.stripe(id)
	s.mu.Lock()
	delete(s.tagged, id)
	s.mu.Unlock()
}

// Accesses returns naccess, the total number of user requests observed.
func (e *Estimator) Accesses() int64 { return e.naccess.Load() }

// TaggedHits returns nhit, the number of requests serviced by tagged
// entries.
func (e *Estimator) TaggedHits() int64 { return e.nhit.Load() }

// Tagged reports whether id is currently resident-and-tagged.
func (e *Estimator) Tagged(id ID) bool {
	s := e.stripe(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tagged[id]
}

// Resident returns the number of entries the estimator is tracking.
func (e *Estimator) Resident() int {
	n := 0
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.Lock()
		n += len(s.tagged)
		s.mu.Unlock()
	}
	return n
}

// EstimateA returns the model-A estimate ĥ′ = nhit/naccess
// (0 before any access). nhit is loaded before naccess: OnHit
// increments naccess first, so nhit ≤ naccess at every instant and
// this load order keeps the concurrent snapshot's ratio within [0, 1].
func (e *Estimator) EstimateA() float64 {
	nh := e.nhit.Load()
	na := e.naccess.Load()
	if na == 0 {
		return 0
	}
	return float64(nh) / float64(na)
}

// EstimateB returns the model-B estimate
// ĥ′ = nhit/naccess × n̄(C)/(n̄(C)−n̄(F)), where nC is the average cache
// occupancy and nF the average number of prefetched items per request.
// It returns an error when nC−nF <= 0, where the correction is
// undefined (the cache would consist entirely of prefetched items).
func (e *Estimator) EstimateB(nC, nF float64) (float64, error) {
	if nC <= nF {
		return 0, fmt.Errorf("cache: model-B correction undefined for n̄(C)=%v <= n̄(F)=%v", nC, nF)
	}
	return e.EstimateA() * nC / (nC - nF), nil
}

// Reset zeroes the counters but keeps tag state, so estimation can be
// restarted after simulation warm-up without forgetting residency.
func (e *Estimator) Reset() {
	e.naccess.Store(0)
	e.nhit.Store(0)
}
