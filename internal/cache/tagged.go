package cache

import (
	"fmt"
	"sync"
)

// Estimator implements the paper's Section-4 online estimator of h′ —
// the cache hit ratio that would be observed if prefetching were *not*
// running — while prefetching actually is running. The idea: entries
// that entered the cache through prefetching are "untagged" until a user
// request touches them. Hits on tagged entries are hits a no-prefetch
// cache would also have produced; the first hit on an untagged entry
// would have been a miss without prefetching (it counts toward naccess
// but not nhit) and promotes the entry to tagged, because from then on
// even a no-prefetch cache would have held it (it would have been
// demand-fetched and admitted).
//
// The algorithm transcribed from the paper:
//
//	When an item is prefetched:       insert as untagged.
//	When a tagged entry is accessed:  naccess++, nhit++.
//	When an untagged entry is hit:    naccess++; promote to tagged.
//	When a remote item is accessed:   naccess++; if admitted, tag it.
//
// Estimate (model A):  ĥ′ = nhit/naccess.
// Estimate (model B):  ĥ′ = nhit/naccess × n̄(C)/(n̄(C)−n̄(F)),
// compensating for the tagged occupants model B assumes were displaced
// by prefetched items.
//
// Estimator is safe for concurrent use: a live engine reports demand
// hits, remote fetches, prefetch completions and evictions from
// different goroutines.
type Estimator struct {
	mu      sync.Mutex
	tagged  map[ID]bool // resident → tagged?
	naccess int64
	nhit    int64
}

// NewEstimator returns an empty estimator. It must observe every cache
// event; the simulator wires it to the client's cache.
func NewEstimator() *Estimator {
	return &Estimator{tagged: make(map[ID]bool)}
}

// OnPrefetch records that id entered the cache via prefetch (untagged).
func (e *Estimator) OnPrefetch(id ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tagged[id] = false
}

// OnHit records a user request that hit the cache. It updates the
// counters per the paper's algorithm and reports whether the entry was
// tagged at the time of access.
func (e *Estimator) OnHit(id ID) (wasTagged bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, known := e.tagged[id]
	e.naccess++
	if !known {
		// The entry predates the estimator (e.g. warm-up admission
		// before estimation started). Treat it as tagged: a no-prefetch
		// cache would hold it too.
		e.tagged[id] = true
		e.nhit++
		return true
	}
	if t {
		e.nhit++
		return true
	}
	e.tagged[id] = true // promote untagged → tagged
	return false
}

// OnRemoteAccess records a user request that missed the cache and was
// fetched remotely; admitted says whether the item was then admitted to
// the cache (tagged if so).
func (e *Estimator) OnRemoteAccess(id ID, admitted bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.naccess++
	if admitted {
		e.tagged[id] = true
	}
}

// OnEvict forgets the tag state of an evicted entry.
func (e *Estimator) OnEvict(id ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.tagged, id)
}

// Accesses returns naccess, the total number of user requests observed.
func (e *Estimator) Accesses() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.naccess
}

// TaggedHits returns nhit, the number of requests serviced by tagged
// entries.
func (e *Estimator) TaggedHits() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nhit
}

// Tagged reports whether id is currently resident-and-tagged.
func (e *Estimator) Tagged(id ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tagged[id]
}

// Resident returns the number of entries the estimator is tracking.
func (e *Estimator) Resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tagged)
}

// EstimateA returns the model-A estimate ĥ′ = nhit/naccess
// (0 before any access).
func (e *Estimator) EstimateA() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.naccess == 0 {
		return 0
	}
	return float64(e.nhit) / float64(e.naccess)
}

// EstimateB returns the model-B estimate
// ĥ′ = nhit/naccess × n̄(C)/(n̄(C)−n̄(F)), where nC is the average cache
// occupancy and nF the average number of prefetched items per request.
// It returns an error when nC−nF <= 0, where the correction is
// undefined (the cache would consist entirely of prefetched items).
func (e *Estimator) EstimateB(nC, nF float64) (float64, error) {
	if nC <= nF {
		return 0, fmt.Errorf("cache: model-B correction undefined for n̄(C)=%v <= n̄(F)=%v", nC, nF)
	}
	return e.EstimateA() * nC / (nC - nF), nil
}

// Reset zeroes the counters but keeps tag state, so estimation can be
// restarted after simulation warm-up without forgetting residency.
func (e *Estimator) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.naccess, e.nhit = 0, 0
}
