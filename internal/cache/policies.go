package cache

import (
	"container/heap"
	"fmt"
)

// node is a doubly-linked-list element used by the LRU/FIFO policies.
// A hand-rolled list avoids container/list's interface{} boxing on this
// hot path.
type node struct {
	id         ID
	prev, next *node
}

// list is an intrusive doubly linked list with a sentinel root.
// root.next is the front (most recent), root.prev the back (victim end).
// Removed nodes are recycled through a free list (chained via next), so
// a policy at steady state — every eviction paired with an insertion —
// allocates no nodes at all; the free list is bounded by the peak
// resident count.
type list struct {
	root node
	len  int
	free *node
}

// newNode returns a node for id, reusing a recycled one when available.
func (l *list) newNode(id ID) *node {
	if n := l.free; n != nil {
		l.free = n.next
		n.id = id
		n.next = nil
		return n
	}
	return &node{id: id}
}

// recycle parks a removed node for reuse by the next insertion.
func (l *list) recycle(n *node) {
	n.prev = nil
	n.next = l.free
	l.free = n
}

func newList() *list {
	l := &list{}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

func (l *list) pushFront(n *node) {
	n.prev = &l.root
	n.next = l.root.next
	l.root.next.prev = n
	l.root.next = n
	l.len++
}

func (l *list) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	l.len--
}

func (l *list) back() *node {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// LRU evicts the least recently used item.
type LRU struct {
	list  *list
	nodes map[ID]*node
}

// NewLRU returns an LRU replacement policy.
func NewLRU() *LRU {
	return &LRU{list: newList(), nodes: make(map[ID]*node)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Inserted implements Policy.
func (p *LRU) Inserted(id ID) {
	n := p.list.newNode(id)
	p.nodes[id] = n
	p.list.pushFront(n)
}

// Accessed implements Policy.
func (p *LRU) Accessed(id ID) {
	n, ok := p.nodes[id]
	if !ok {
		return
	}
	p.list.remove(n)
	p.list.pushFront(n)
}

// Victim implements Policy.
func (p *LRU) Victim() ID { return p.list.back().id }

// Removed implements Policy.
func (p *LRU) Removed(id ID) {
	if n, ok := p.nodes[id]; ok {
		p.list.remove(n)
		p.list.recycle(n)
		delete(p.nodes, id)
	}
}

// FIFO evicts in insertion order, ignoring accesses.
type FIFO struct {
	list  *list
	nodes map[ID]*node
}

// NewFIFO returns a FIFO replacement policy.
func NewFIFO() *FIFO {
	return &FIFO{list: newList(), nodes: make(map[ID]*node)}
}

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// Inserted implements Policy.
func (p *FIFO) Inserted(id ID) {
	n := p.list.newNode(id)
	p.nodes[id] = n
	p.list.pushFront(n)
}

// Accessed implements Policy.
func (p *FIFO) Accessed(ID) {}

// Victim implements Policy.
func (p *FIFO) Victim() ID { return p.list.back().id }

// Removed implements Policy.
func (p *FIFO) Removed(id ID) {
	if n, ok := p.nodes[id]; ok {
		p.list.remove(n)
		p.list.recycle(n)
		delete(p.nodes, id)
	}
}

// lfuEntry is a heap element for the LFU policy. Ties on frequency are
// broken by insertion sequence (older first), making eviction
// deterministic.
type lfuEntry struct {
	id    ID
	freq  int64
	seq   uint64
	index int
}

type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }

func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}

func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// LFU evicts the least frequently used item (ties broken FIFO).
type LFU struct {
	heap    lfuHeap
	entries map[ID]*lfuEntry
	seq     uint64
}

// NewLFU returns an LFU replacement policy.
func NewLFU() *LFU {
	return &LFU{entries: make(map[ID]*lfuEntry)}
}

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// Inserted implements Policy.
func (p *LFU) Inserted(id ID) {
	e := &lfuEntry{id: id, freq: 1, seq: p.seq}
	p.seq++
	p.entries[id] = e
	heap.Push(&p.heap, e)
}

// Accessed implements Policy.
func (p *LFU) Accessed(id ID) {
	e, ok := p.entries[id]
	if !ok {
		return
	}
	e.freq++
	heap.Fix(&p.heap, e.index)
}

// Victim implements Policy.
func (p *LFU) Victim() ID { return p.heap[0].id }

// Removed implements Policy.
func (p *LFU) Removed(id ID) {
	e, ok := p.entries[id]
	if !ok {
		return
	}
	heap.Remove(&p.heap, e.index)
	delete(p.entries, id)
}

// Frequency reports the recorded reference count of a resident id
// (0 if unknown); exposed for tests.
func (p *LFU) Frequency(id ID) int64 {
	if e, ok := p.entries[id]; ok {
		return e.freq
	}
	return 0
}

// Clock is the classic second-chance approximation of LRU: items sit on
// a ring with a referenced bit; the hand sweeps, clearing bits, and
// evicts the first unreferenced item it finds.
type Clock struct {
	ring []ID
	ref  map[ID]bool
	pos  map[ID]int
	hand int
}

// NewClock returns a Clock (second chance) replacement policy.
func NewClock() *Clock {
	return &Clock{ref: make(map[ID]bool), pos: make(map[ID]int)}
}

// Name implements Policy.
func (p *Clock) Name() string { return "clock" }

// Inserted implements Policy.
func (p *Clock) Inserted(id ID) {
	p.pos[id] = len(p.ring)
	p.ring = append(p.ring, id)
	p.ref[id] = true
}

// Accessed implements Policy.
func (p *Clock) Accessed(id ID) {
	if _, ok := p.pos[id]; ok {
		p.ref[id] = true
	}
}

// Victim implements Policy. It advances the hand, clearing reference
// bits, until it finds a clear one; with all bits set it degrades to
// round-robin, as in real Clock implementations.
func (p *Clock) Victim() ID {
	if len(p.ring) == 0 {
		panic("cache: clock victim on empty ring")
	}
	for {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		id := p.ring[p.hand]
		if p.ref[id] {
			p.ref[id] = false
			p.hand++
			continue
		}
		return id
	}
}

// Removed implements Policy.
func (p *Clock) Removed(id ID) {
	i, ok := p.pos[id]
	if !ok {
		return
	}
	last := len(p.ring) - 1
	p.ring[i] = p.ring[last]
	p.pos[p.ring[i]] = i
	p.ring = p.ring[:last]
	delete(p.pos, id)
	delete(p.ref, id)
	if p.hand > last {
		p.hand = 0
	}
}

// NewPolicy constructs a policy by name: "lru", "fifo", "lfu" or
// "clock". (The "random" policy needs an RNG; construct it with
// NewRandomPolicy.) Unknown names return an error listing the options.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "lfu":
		return NewLFU(), nil
	case "clock":
		return NewClock(), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q (want lru, fifo, lfu or clock)", name)
	}
}
