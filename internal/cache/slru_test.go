package cache

import (
	"testing"

	"repro/internal/rng"
)

func TestSLRUNewEntriesProbationary(t *testing.T) {
	p := NewSLRU(2)
	s := NewStore(3, p)
	s.Admit(1)
	s.Admit(2)
	s.Admit(3)
	if p.ProtectedLen() != 0 {
		t.Errorf("no entry was re-referenced; protected len = %d", p.ProtectedLen())
	}
	// Victim is the probationary LRU: 1.
	s.Admit(4)
	if s.Contains(1) {
		t.Error("SLRU should evict the probationary LRU entry 1")
	}
}

func TestSLRUPromotionProtects(t *testing.T) {
	p := NewSLRU(2)
	s := NewStore(3, p)
	s.Admit(1)
	s.Access(1) // promote 1 to protected
	if p.ProtectedLen() != 1 {
		t.Fatalf("protected len = %d, want 1", p.ProtectedLen())
	}
	s.Admit(2)
	s.Admit(3)
	// A scan of new items must not evict the protected entry.
	for id := ID(10); id < 20; id++ {
		s.Admit(id)
	}
	if !s.Contains(1) {
		t.Error("protected entry was evicted by a scan")
	}
}

func TestSLRUProtectedCapDemotes(t *testing.T) {
	p := NewSLRU(2)
	s := NewStore(10, p)
	for id := ID(1); id <= 3; id++ {
		s.Admit(id)
		s.Access(id) // promote all three; cap is 2 → 1 is demoted
	}
	if p.ProtectedLen() != 2 {
		t.Errorf("protected len = %d, want 2 (cap)", p.ProtectedLen())
	}
	// 1 was demoted to probation (most recent end), so the probationary
	// victim is still 1 (it is the only probationary entry).
	if v := p.Victim(); v != 1 {
		t.Errorf("victim = %d, want demoted entry 1", v)
	}
}

func TestSLRUFallsBackToProtected(t *testing.T) {
	p := NewSLRU(5)
	s := NewStore(2, p)
	s.Admit(1)
	s.Access(1)
	s.Admit(2)
	s.Access(2) // both protected, probation empty
	s.Admit(3)  // must evict from protected (LRU = 1)
	if s.Contains(1) {
		t.Error("with empty probation the protected LRU should go")
	}
	if !s.Contains(2) || !s.Contains(3) {
		t.Error("wrong survivor set")
	}
}

func TestSLRUScanResistanceVsLRU(t *testing.T) {
	// A loyal working set accessed repeatedly, interleaved with a
	// one-shot scan: SLRU must retain more of the working set than LRU.
	run := func(p Policy) int {
		s := NewStore(8, p)
		work := []ID{1, 2, 3, 4}
		scan := ID(100)
		src := rng.New(7)
		for i := 0; i < 3000; i++ {
			w := work[src.Intn(len(work))]
			if !s.Access(w) {
				s.Admit(w)
			}
			// One-shot scan items, never re-referenced.
			s.Admit(scan)
			scan++
		}
		kept := 0
		for _, w := range work {
			if s.Contains(w) {
				kept++
			}
		}
		return kept
	}
	slruKept := run(NewSLRU(4))
	lruKept := run(NewLRU())
	if slruKept < len([]ID{1, 2, 3, 4}) {
		t.Errorf("SLRU kept only %d/4 working-set entries under scan", slruKept)
	}
	if slruKept < lruKept {
		t.Errorf("SLRU (%d) should keep at least as much as LRU (%d)", slruKept, lruKept)
	}
}

func TestSLRUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("protectedCap < 1 should panic")
		}
	}()
	NewSLRU(0)
}

func TestSLRUStoreInvariants(t *testing.T) {
	// Churn through random operations; the store invariant checks
	// (capacity, residency agreement) must hold with SLRU as with the
	// other policies.
	src := rng.New(9)
	s := NewStore(6, NewSLRU(3))
	for i := 0; i < 20000; i++ {
		id := ID(src.Intn(40))
		if src.Intn(2) == 0 {
			before := s.Contains(id)
			if s.Access(id) != before {
				t.Fatal("Access disagrees with Contains")
			}
		} else {
			s.Admit(id)
		}
		if s.Len() > 6 {
			t.Fatal("capacity exceeded")
		}
	}
}

func TestSLRURemovedCleansSegments(t *testing.T) {
	p := NewSLRU(2)
	s := NewStore(4, p)
	s.Admit(1)
	s.Access(1) // protected
	s.Admit(2)  // probation
	s.Remove(1)
	s.Remove(2)
	if p.ProtectedLen() != 0 {
		t.Errorf("protected len = %d after removals", p.ProtectedLen())
	}
	// Removing an unknown id is a no-op.
	p.Removed(99)
}
