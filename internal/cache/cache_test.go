package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStoreBasicHitMiss(t *testing.T) {
	s := NewStore(2, NewLRU())
	if s.Access(1) {
		t.Error("empty store should miss")
	}
	s.Admit(1)
	if !s.Access(1) {
		t.Error("admitted item should hit")
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", s.Hits(), s.Misses())
	}
	if s.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", s.HitRatio())
	}
}

func TestStoreCapacityEnforced(t *testing.T) {
	s := NewStore(3, NewLRU())
	for i := ID(0); i < 10; i++ {
		s.Admit(i)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.Evictions() != 7 {
		t.Errorf("Evictions = %d, want 7", s.Evictions())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := NewStore(3, NewLRU())
	s.Admit(1)
	s.Admit(2)
	s.Admit(3)
	s.Access(1) // 1 becomes most recent; 2 is now LRU
	s.Admit(4)  // should evict 2
	if s.Contains(2) {
		t.Error("LRU should have evicted 2")
	}
	for _, id := range []ID{1, 3, 4} {
		if !s.Contains(id) {
			t.Errorf("item %d should be resident", id)
		}
	}
}

func TestFIFOIgnoresAccess(t *testing.T) {
	s := NewStore(3, NewFIFO())
	s.Admit(1)
	s.Admit(2)
	s.Admit(3)
	s.Access(1) // FIFO ignores this
	s.Admit(4)  // evicts 1, the oldest
	if s.Contains(1) {
		t.Error("FIFO should have evicted 1 despite the access")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	s := NewStore(3, NewLFU())
	s.Admit(1)
	s.Admit(2)
	s.Admit(3)
	s.Access(1)
	s.Access(1)
	s.Access(3)
	s.Admit(4) // 2 has freq 1, should go
	if s.Contains(2) {
		t.Error("LFU should have evicted 2")
	}
}

func TestLFUTieBreakFIFO(t *testing.T) {
	s := NewStore(2, NewLFU())
	s.Admit(1)
	s.Admit(2) // both freq 1; 1 older
	s.Admit(3)
	if s.Contains(1) {
		t.Error("LFU tie should evict the older item 1")
	}
}

func TestLFUFrequencyAccessor(t *testing.T) {
	p := NewLFU()
	s := NewStore(4, p)
	s.Admit(7)
	s.Access(7)
	s.Access(7)
	if p.Frequency(7) != 3 {
		t.Errorf("frequency = %d, want 3 (1 insert + 2 accesses)", p.Frequency(7))
	}
	if p.Frequency(99) != 0 {
		t.Error("unknown id should have frequency 0")
	}
}

func TestClockSecondChance(t *testing.T) {
	s := NewStore(3, NewClock())
	s.Admit(1)
	s.Admit(2)
	s.Admit(3)
	// All have ref bits set from insertion. Access 2 to re-set its bit
	// (idempotent here). First eviction sweep clears 1, 2, 3 then wraps
	// and evicts 1 (round-robin when all referenced).
	s.Admit(4)
	if s.Contains(1) {
		t.Error("clock should have evicted 1 on full sweep")
	}
	// Now 2's bit is clear (swept). Access 2 → bit set. Admit 5: hand is
	// past 2... behaviour depends on hand position; just assert capacity
	// and that 4 (freshly inserted, referenced) survived.
	s.Access(2)
	s.Admit(5)
	if !s.Contains(4) {
		t.Error("freshly inserted item should survive one sweep")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestRandomPolicyEvictsResident(t *testing.T) {
	src := rng.New(5)
	s := NewStore(4, NewRandomPolicy(src))
	for i := ID(0); i < 20; i++ {
		s.Admit(i)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestStoreAdmitResidentRefreshes(t *testing.T) {
	s := NewStore(2, NewLRU())
	s.Admit(1)
	s.Admit(2)
	if s.Admit(1) { // refresh, not insert
		t.Error("admitting resident item should report false")
	}
	s.Admit(3) // evicts 2 (1 was refreshed)
	if s.Contains(2) || !s.Contains(1) {
		t.Error("refresh on admit did not update recency")
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore(2, NewLRU())
	s.Admit(1)
	if !s.Remove(1) {
		t.Error("removing resident item should report true")
	}
	if s.Remove(1) {
		t.Error("removing absent item should report false")
	}
	if s.Contains(1) || s.Len() != 0 {
		t.Error("item still resident after Remove")
	}
	if s.Evictions() != 0 {
		t.Error("Remove should not count as eviction")
	}
}

func TestStoreOnEvictCallback(t *testing.T) {
	s := NewStore(1, NewLRU())
	var evicted []ID
	s.OnEvict(func(id ID) { evicted = append(evicted, id) })
	s.Admit(1)
	s.Admit(2)
	s.Admit(3)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Errorf("evicted = %v, want [1 2]", evicted)
	}
}

func TestStoreEvictVictim(t *testing.T) {
	s := NewStore(5, NewLRU())
	s.Admit(1)
	s.Admit(2)
	s.EvictVictim() // evicts 1 even though there is room
	if s.Contains(1) || s.Len() != 1 {
		t.Error("EvictVictim should force out the LRU item")
	}
	empty := NewStore(2, NewLRU())
	empty.EvictVictim() // no-op, must not panic
}

func TestStoreResetStats(t *testing.T) {
	s := NewStore(2, NewLRU())
	s.Admit(1)
	s.Access(1)
	s.Access(9)
	s.ResetStats()
	if s.Hits() != 0 || s.Misses() != 0 || s.Insertions() != 0 {
		t.Error("ResetStats left counters")
	}
	if !s.Contains(1) {
		t.Error("ResetStats should not evict")
	}
}

func TestStoreEach(t *testing.T) {
	s := NewStore(3, NewLRU())
	s.Admit(1)
	s.Admit(2)
	seen := map[ID]bool{}
	s.Each(func(id ID) { seen[id] = true })
	if len(seen) != 2 || !seen[1] || !seen[2] {
		t.Errorf("Each visited %v", seen)
	}
}

func TestStorePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity should panic")
			}
		}()
		NewStore(0, NewLRU())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil policy should panic")
			}
		}()
		NewStore(1, nil)
	}()
}

func TestNewPolicyByName(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "lfu", "clock"} {
		p, err := NewPolicy(name)
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("policy name %q != %q", p.Name(), name)
		}
	}
	if _, err := NewPolicy("optimal"); err == nil {
		t.Error("unknown policy name should error")
	}
}

func TestInfiniteCache(t *testing.T) {
	c := NewInfinite()
	if c.Access(1) {
		t.Error("empty infinite cache should miss")
	}
	c.Admit(1)
	if !c.Access(1) || !c.Contains(1) {
		t.Error("admitted item should hit")
	}
	if c.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v", c.HitRatio())
	}
	c.Remove(1)
	if c.Contains(1) || c.Len() != 0 {
		t.Error("Remove failed")
	}
	for i := ID(0); i < 1000; i++ {
		c.Admit(i)
	}
	if c.Len() != 1000 {
		t.Error("infinite cache should never evict")
	}
}

// Property: under any access/admit sequence, Len never exceeds capacity
// and Contains agrees with hit results, for every policy.
func TestQuickStoreInvariants(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewFIFO() },
		func() Policy { return NewLFU() },
		func() Policy { return NewClock() },
		func() Policy { return NewRandomPolicy(rng.New(99)) },
		func() Policy { return NewSLRU(3) },
	}
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		for _, mk := range policies {
			s := NewStore(capacity, mk())
			for _, op := range ops {
				id := ID(op % 30)
				if op%2 == 0 {
					before := s.Contains(id)
					hit := s.Access(id)
					if hit != before {
						return false
					}
				} else {
					s.Admit(id)
					if !s.Contains(id) {
						return false
					}
				}
				if s.Len() > capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses equals number of Access calls.
func TestQuickStoreAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore(4, NewLRU())
		accesses := int64(0)
		for _, op := range ops {
			id := ID(op % 20)
			if op%3 == 0 {
				s.Admit(id)
			} else {
				s.Access(id)
				accesses++
			}
		}
		return s.Hits()+s.Misses() == accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLRUStoreChurn(b *testing.B) {
	s := NewStore(1024, NewLRU())
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ID(src.Intn(4096))
		if !s.Access(id) {
			s.Admit(id)
		}
	}
}
