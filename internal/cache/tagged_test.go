package cache

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestEstimatorAlgorithmTranscription(t *testing.T) {
	// Walk the exact four cases of the paper's Section-4 algorithm.
	e := NewEstimator()

	// Prefetch item 1 → untagged.
	e.OnPrefetch(1)
	if e.Tagged(1) {
		t.Error("prefetched entry must start untagged")
	}

	// Access untagged entry: naccess++, no hit, promote to tagged.
	if e.OnHit(1) {
		t.Error("first access to untagged entry should not be a tagged hit")
	}
	if e.Accesses() != 1 || e.TaggedHits() != 0 {
		t.Errorf("counters = %d/%d, want 1/0", e.Accesses(), e.TaggedHits())
	}
	if !e.Tagged(1) {
		t.Error("untagged entry should be promoted on access")
	}

	// Access the now-tagged entry: naccess++, nhit++.
	if !e.OnHit(1) {
		t.Error("tagged entry access should count as hit")
	}
	if e.Accesses() != 2 || e.TaggedHits() != 1 {
		t.Errorf("counters = %d/%d, want 2/1", e.Accesses(), e.TaggedHits())
	}

	// Remote access, admitted → tagged.
	e.OnRemoteAccess(2, true)
	if e.Accesses() != 3 {
		t.Errorf("naccess = %d, want 3", e.Accesses())
	}
	if !e.Tagged(2) {
		t.Error("admitted remote item should be tagged")
	}

	// Remote access, not admitted → counted but not tracked.
	e.OnRemoteAccess(3, false)
	if e.Accesses() != 4 {
		t.Errorf("naccess = %d, want 4", e.Accesses())
	}
	if e.Tagged(3) {
		t.Error("non-admitted item must not be tagged")
	}
}

func TestEstimatorEstimateA(t *testing.T) {
	e := NewEstimator()
	if e.EstimateA() != 0 {
		t.Error("estimate before any access should be 0")
	}
	e.OnRemoteAccess(1, true)
	e.OnHit(1)
	e.OnHit(1)
	e.OnRemoteAccess(2, true)
	// naccess=4, nhit=2 → ĥ′=0.5
	if e.EstimateA() != 0.5 {
		t.Errorf("EstimateA = %v, want 0.5", e.EstimateA())
	}
}

func TestEstimatorEstimateB(t *testing.T) {
	e := NewEstimator()
	e.OnRemoteAccess(1, true)
	e.OnHit(1) // ĥ′_A = 0.5
	got, err := e.EstimateB(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 100 / 80
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EstimateB = %v, want %v", got, want)
	}
	if _, err := e.EstimateB(10, 10); err == nil {
		t.Error("nC <= nF should error")
	}
	if _, err := e.EstimateB(5, 10); err == nil {
		t.Error("nC < nF should error")
	}
}

func TestEstimatorEviction(t *testing.T) {
	e := NewEstimator()
	e.OnPrefetch(1)
	e.OnEvict(1)
	if e.Resident() != 0 {
		t.Error("evicted entry still tracked")
	}
	// Re-prefetching after eviction starts untagged again.
	e.OnPrefetch(1)
	if e.Tagged(1) {
		t.Error("re-prefetched entry should be untagged")
	}
}

func TestEstimatorUnknownEntryTreatedTagged(t *testing.T) {
	e := NewEstimator()
	// A hit on an entry the estimator never saw (warm-up resident).
	if !e.OnHit(42) {
		t.Error("unknown resident should be treated as tagged")
	}
	if e.TaggedHits() != 1 {
		t.Error("unknown resident hit should count")
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewEstimator()
	e.OnPrefetch(1)
	e.OnHit(1)
	e.Reset()
	if e.Accesses() != 0 || e.TaggedHits() != 0 {
		t.Error("Reset left counters")
	}
	if !e.Tagged(1) {
		t.Error("Reset must keep tag state")
	}
}

// zeroValueFirst is a test policy realising interaction model A: it
// evicts zero-value items (ids >= threshold, which the driver never
// requests) before touching useful entries; within each class it is LRU.
type zeroValueFirst struct {
	useful    *LRU
	junk      *LRU
	threshold ID
}

func newZeroValueFirst(threshold ID) *zeroValueFirst {
	return &zeroValueFirst{useful: NewLRU(), junk: NewLRU(), threshold: threshold}
}

func (p *zeroValueFirst) Name() string { return "zero-value-first" }

func (p *zeroValueFirst) pick(id ID) *LRU {
	if id >= p.threshold {
		return p.junk
	}
	return p.useful
}

func (p *zeroValueFirst) Inserted(id ID) { p.pick(id).Inserted(id) }
func (p *zeroValueFirst) Accessed(id ID) { p.pick(id).Accessed(id) }
func (p *zeroValueFirst) Removed(id ID)  { p.pick(id).Removed(id) }

func (p *zeroValueFirst) Victim() ID {
	if p.junk.list.len > 0 {
		return p.junk.Victim()
	}
	return p.useful.Victim()
}

// End-to-end check of the estimator's purpose: drive a cache with
// prefetching ON under model-A eviction (prefetched junk displaces
// zero-value occupants, per Section 2.2), and verify EstimateA recovers
// the hit ratio measured in a parallel no-prefetch run of the same
// request stream.
func TestEstimatorRecoversNoPrefetchHitRatio(t *testing.T) {
	const (
		catalog  = 2000
		capacity = 300
		requests = 60000
		seed     = 31
	)
	zipf := rng.NewZipf(catalog, 0.9)

	// Run 1: no prefetching; measure true h′ after warm-up.
	reqs := rng.NewStream(seed, "requests")
	base := NewStore(capacity, NewLRU())
	warm := requests / 5
	hits, total := 0, 0
	for i := 0; i < requests; i++ {
		id := ID(zipf.Sample(reqs))
		hit := base.Access(id)
		if !hit {
			base.Admit(id)
		}
		if i >= warm {
			total++
			if hit {
				hits++
			}
		}
	}
	trueH := float64(hits) / float64(total)

	// Run 2: same request stream, but with random prefetching injected
	// (items the user may never ask for), estimator watching.
	reqs2 := rng.NewStream(seed, "requests") // identical stream
	noise := rng.NewStream(seed, "noise")
	st := NewStore(capacity, newZeroValueFirst(catalog))
	est := NewEstimator()
	st.OnEvict(est.OnEvict)
	for i := 0; i < requests; i++ {
		if i == warm {
			est.Reset()
		}
		id := ID(zipf.Sample(reqs2))
		if st.Access(id) {
			est.OnHit(id)
		} else {
			st.Admit(id)
			est.OnRemoteAccess(id, true)
		}
		// Prefetch one low-value random item per request.
		pf := ID(catalog + noise.Intn(catalog)) // ids the user never requests
		if !st.Contains(pf) {
			st.Admit(pf)
			est.OnPrefetch(pf)
		}
	}
	got := est.EstimateA()
	// Under model-A eviction the junk only displaces junk, so the
	// estimator should recover the no-prefetch hit ratio closely.
	if math.Abs(got-trueH) > 0.03 {
		t.Errorf("estimated h′ = %.4f, true no-prefetch h′ = %.4f", got, trueH)
	}
}
