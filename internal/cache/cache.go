// Package cache implements the client-side caching substrate: a
// capacity-bounded store parameterised by replacement policy (LRU, LFU,
// FIFO, Clock, Random), an unbounded store for the paper's "cache large
// enough" assumption, and — central to the reproduction — the
// tagged/untagged bookkeeping of the paper's Section 4 that estimates
// h′ (the hit ratio that *would* be observed without prefetching) while
// prefetching is actually running.
package cache

import (
	"fmt"

	"repro/internal/rng"
)

// ID identifies a cacheable item. The workload package assigns dense
// non-negative IDs, but the cache treats them as opaque.
type ID int64

// Policy chooses eviction victims. Implementations maintain their own
// metadata, driven by the notifications below; they never store the
// resident set themselves (the Store owns it).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Inserted notifies that id has been added to the store.
	Inserted(id ID)
	// Accessed notifies that a resident id has been referenced.
	Accessed(id ID)
	// Victim returns the id the policy would evict next. It is only
	// called when the store is non-empty.
	Victim() ID
	// Removed notifies that id has left the store (evicted or ejected
	// externally).
	Removed(id ID)
}

// EvictionCallback observes evictions (used by the simulator to track
// which probability mass leaves the cache under interaction models A/B).
type EvictionCallback func(id ID)

// Store is a count-bounded cache: it holds at most Capacity items, as in
// the paper where the cache holds n̄(C) items of mean size s̄. It is not
// safe for concurrent use.
type Store struct {
	capacity int
	policy   Policy
	resident map[ID]struct{}
	onEvict  EvictionCallback

	hits     int64
	misses   int64
	evicted  int64
	inserted int64
}

// NewStore creates a store with the given capacity and policy. It panics
// if capacity is not positive or policy is nil.
func NewStore(capacity int, policy Policy) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity %d must be positive", capacity))
	}
	if policy == nil {
		panic("cache: nil policy")
	}
	return &Store{
		capacity: capacity,
		policy:   policy,
		resident: make(map[ID]struct{}, capacity),
	}
}

// OnEvict registers a callback invoked with each evicted id.
func (s *Store) OnEvict(cb EvictionCallback) { s.onEvict = cb }

// Capacity returns the maximum number of resident items.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the number of resident items.
func (s *Store) Len() int { return len(s.resident) }

// PolicyName returns the replacement policy's name.
func (s *Store) PolicyName() string { return s.policy.Name() }

// Contains reports residency without touching policy metadata or hit
// accounting (a "peek").
func (s *Store) Contains(id ID) bool {
	_, ok := s.resident[id]
	return ok
}

// Access references id: on a hit it refreshes policy metadata and
// returns true; on a miss it returns false and records nothing else
// (admission is the caller's decision, via Admit).
func (s *Store) Access(id ID) bool {
	if _, ok := s.resident[id]; ok {
		s.hits++
		s.policy.Accessed(id)
		return true
	}
	s.misses++
	return false
}

// Admit inserts id, evicting victims as needed. Admitting a resident id
// just refreshes it. It reports whether an insertion happened.
func (s *Store) Admit(id ID) bool {
	if _, ok := s.resident[id]; ok {
		s.policy.Accessed(id)
		return false
	}
	for len(s.resident) >= s.capacity {
		s.evictOne()
	}
	s.resident[id] = struct{}{}
	s.policy.Inserted(id)
	s.inserted++
	return true
}

// evictOne removes the policy's chosen victim.
func (s *Store) evictOne() {
	victim := s.policy.Victim()
	if _, ok := s.resident[victim]; !ok {
		panic(fmt.Sprintf("cache: policy %s chose non-resident victim %d",
			s.policy.Name(), victim))
	}
	s.removeInternal(victim)
	s.evicted++
	if s.onEvict != nil {
		s.onEvict(victim)
	}
}

// Remove ejects id if resident (external invalidation; does not count as
// an eviction). It reports whether the item was resident.
func (s *Store) Remove(id ID) bool {
	if _, ok := s.resident[id]; !ok {
		return false
	}
	s.removeInternal(id)
	return true
}

func (s *Store) removeInternal(id ID) {
	delete(s.resident, id)
	s.policy.Removed(id)
}

// EvictVictim forces one policy-chosen eviction (used by interaction
// model B where a prefetch displaces an average-value occupant even when
// the heap has room). It is a no-op on an empty store.
func (s *Store) EvictVictim() {
	if len(s.resident) > 0 {
		s.evictOne()
	}
}

// Hits returns the number of Access calls that found the item resident.
func (s *Store) Hits() int64 { return s.hits }

// Misses returns the number of Access calls that missed.
func (s *Store) Misses() int64 { return s.misses }

// Evictions returns the number of policy-driven evictions.
func (s *Store) Evictions() int64 { return s.evicted }

// Insertions returns the number of successful Admit insertions.
func (s *Store) Insertions() int64 { return s.inserted }

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (s *Store) HitRatio() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

// ResetStats zeroes the hit/miss/eviction counters without touching the
// resident set — used to discard simulation warm-up.
func (s *Store) ResetStats() {
	s.hits, s.misses, s.evicted, s.inserted = 0, 0, 0, 0
}

// Each calls f for every resident id in unspecified order.
func (s *Store) Each(f func(ID)) {
	for id := range s.resident {
		f(id)
	}
}

// Infinite is an unbounded resident set implementing the paper's
// Section-2.2 assumption that "the cache size n̄(C) is large enough to
// accommodate an arbitrary number of prefetched items".
type Infinite struct {
	resident map[ID]struct{}
	hits     int64
	misses   int64
}

// NewInfinite creates an unbounded cache.
func NewInfinite() *Infinite {
	return &Infinite{resident: make(map[ID]struct{})}
}

// Access references id and reports residency.
func (c *Infinite) Access(id ID) bool {
	if _, ok := c.resident[id]; ok {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Contains reports residency without accounting.
func (c *Infinite) Contains(id ID) bool {
	_, ok := c.resident[id]
	return ok
}

// Admit inserts id.
func (c *Infinite) Admit(id ID) { c.resident[id] = struct{}{} }

// Remove ejects id.
func (c *Infinite) Remove(id ID) { delete(c.resident, id) }

// Len returns the resident count.
func (c *Infinite) Len() int { return len(c.resident) }

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (c *Infinite) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// NewRandomPolicy returns a policy that evicts a uniformly random
// resident item — the operational meaning of interaction model B, where
// every occupant contributes the same expected value h′/n̄(C) and so a
// random victim forfeits exactly that average value.
func NewRandomPolicy(src *rng.Source) Policy {
	return &randomPolicy{src: src, index: make(map[ID]int)}
}

type randomPolicy struct {
	src   *rng.Source
	items []ID
	index map[ID]int
}

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Inserted(id ID) {
	p.index[id] = len(p.items)
	p.items = append(p.items, id)
}

func (p *randomPolicy) Accessed(ID) {}

func (p *randomPolicy) Victim() ID {
	return p.items[p.src.Intn(len(p.items))]
}

func (p *randomPolicy) Removed(id ID) {
	i, ok := p.index[id]
	if !ok {
		return
	}
	last := len(p.items) - 1
	p.items[i] = p.items[last]
	p.index[p.items[i]] = i
	p.items = p.items[:last]
	delete(p.index, id)
}
