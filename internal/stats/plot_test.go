package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasicLine(t *testing.T) {
	p := NewPlot("line", "x", "y")
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 2, 3, 4}
	p.AddSeries("diag", xs, ys)
	out := p.Render(40, 10)
	if !strings.Contains(out, "line") || !strings.Contains(out, "diag") {
		t.Fatalf("missing title or legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// The first grid row (y = max) should contain the glyph near the
	// right edge; the last grid row near the left edge.
	top := lines[1]
	bottom := lines[10]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Errorf("diagonal endpoints not drawn:\n%s", out)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Errorf("diagonal slope inverted:\n%s", out)
	}
	if !strings.Contains(out, "x: x, y: y") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestPlotNaNBreaksCurve(t *testing.T) {
	p := NewPlot("gap", "", "")
	p.AddSeries("s", []float64{0, 1, 2, 3}, []float64{0, math.NaN(), math.NaN(), 0})
	out := p.Render(20, 5)
	if strings.Count(out, "*") < 2 {
		t.Errorf("finite endpoints should draw:\n%s", out)
	}
}

func TestPlotAllNaN(t *testing.T) {
	p := NewPlot("empty", "", "")
	p.AddSeries("s", []float64{0, 1}, []float64{math.NaN(), math.Inf(1)})
	out := p.Render(20, 5)
	if !strings.Contains(out, "no finite points") {
		t.Errorf("all-NaN plot should say so:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("const", "", "")
	p.AddSeries("flat", []float64{0, 1, 2}, []float64{5, 5, 5})
	out := p.Render(20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("constant series should still draw:\n%s", out)
	}
}

func TestPlotMultipleSeriesGlyphs(t *testing.T) {
	p := NewPlot("multi", "", "")
	p.AddSeries("a", []float64{0, 1}, []float64{0, 1})
	p.AddSeries("b", []float64{0, 1}, []float64{1, 0})
	out := p.Render(30, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("each series should use its own glyph:\n%s", out)
	}
	if p.NumSeries() != 2 {
		t.Error("NumSeries wrong")
	}
}

func TestPlotMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched xs/ys should panic")
		}
	}()
	NewPlot("", "", "").AddSeries("bad", []float64{1}, []float64{1, 2})
}

func TestPlotClipY(t *testing.T) {
	p := NewPlot("clip", "", "")
	p.AddSeries("s", []float64{0, 1, 2}, []float64{0, 5, 100})
	p.ClipY(0, 10)
	out := p.Render(20, 5)
	// The top axis label is the clip maximum, not the data maximum.
	if !strings.Contains(out, "10") || strings.Contains(out, "100 |") {
		t.Errorf("clip range not applied:\n%s", out)
	}
}

func TestPlotClipYPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("min >= max should panic")
		}
	}()
	NewPlot("", "", "").ClipY(1, 1)
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	p := NewPlot("tiny", "", "")
	p.AddSeries("s", []float64{0, 1}, []float64{0, 1})
	out := p.Render(1, 1) // must clamp, not panic
	if len(out) == 0 {
		t.Error("clamped render empty")
	}
}
