package stats

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders families of curves as ASCII line plots, so the paper's
// figures can be *seen*, not just tabulated, without any plotting
// dependency. Non-finite y values break the curve (used for the
// saturated regions of Figures 2–3).
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	series []plotSeries

	yClipped     bool
	yMinC, yMaxC float64
}

// ClipY fixes the rendered y-range; points outside leave the plot (as
// the curves in the paper's figures exit the axes). It panics if
// min >= max.
func (p *Plot) ClipY(min, max float64) {
	if min >= max {
		panic(fmt.Sprintf("stats: invalid y clip [%v, %v]", min, max))
	}
	p.yClipped = true
	p.yMinC, p.yMaxC = min, max
}

type plotSeries struct {
	label  string
	xs, ys []float64
}

// seriesGlyphs mark successive series; they cycle when exhausted.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends one curve. xs and ys must have equal length; pass
// NaN ys for gaps. It panics on length mismatch (a harness bug).
func (p *Plot) AddSeries(label string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: series %q has %d xs but %d ys", label, len(xs), len(ys)))
	}
	p.series = append(p.series, plotSeries{label: label, xs: xs, ys: ys})
}

// NumSeries returns the number of curves added.
func (p *Plot) NumSeries() int { return len(p.series) }

// Render draws the plot into a width×height character grid (plus axes,
// title and legend). Width and height are clamped to sane minimums.
func (p *Plot) Render(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	inYRange := func(y float64) bool {
		return !p.yClipped || (y >= p.yMinC && y <= p.yMaxC)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	finite := 0
	for _, s := range p.series {
		for i := range s.xs {
			if math.IsNaN(s.ys[i]) || math.IsInf(s.ys[i], 0) ||
				math.IsNaN(s.xs[i]) || math.IsInf(s.xs[i], 0) ||
				!inYRange(s.ys[i]) {
				continue
			}
			finite++
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymin = math.Min(ymin, s.ys[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	if p.yClipped {
		ymin, ymax = p.yMinC, p.yMaxC
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if finite == 0 {
		b.WriteString("(no finite points)\n")
		return b.String()
	}
	// Degenerate ranges get a symmetric pad so everything still draws.
	if xmax == xmin {
		xmax, xmin = xmax+1, xmin-1
	}
	if ymax == ymin {
		ymax, ymin = ymax+1, ymin-1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range p.series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		prevOK := false
		var prevC, prevR int
		for i := range s.xs {
			y := s.ys[i]
			if math.IsNaN(y) || math.IsInf(y, 0) || !inYRange(y) {
				prevOK = false
				continue
			}
			c, r := col(s.xs[i]), row(y)
			grid[r][c] = glyph
			// Linear interpolation between consecutive points keeps
			// steep curves visually connected.
			if prevOK {
				steps := maxInt(absInt(c-prevC), absInt(r-prevR))
				for k := 1; k < steps; k++ {
					ic := prevC + (c-prevC)*k/steps
					ir := prevR + (r-prevR)*k/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = glyph
					}
				}
			}
			prevC, prevR, prevOK = c, r, true
		}
	}

	// y-axis labels on the left, 10 chars wide.
	for r := 0; r < height; r++ {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", ymax)
		case height - 1:
			label = fmt.Sprintf("%10.4g", ymin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%10.4g", (ymax+ymin)/2)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	left := fmt.Sprintf("%-10.4g", xmin)
	right := fmt.Sprintf("%10.4g", xmax)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", 10), left, strings.Repeat(" ", pad), right)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", 10), p.XLabel, p.YLabel)
	}
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.label)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
