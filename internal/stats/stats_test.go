package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasic(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x)
	}
	if r.N() != 5 {
		t.Errorf("N = %d, want 5", r.N())
	}
	if r.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", r.Mean())
	}
	if math.Abs(r.Var()-2.5) > 1e-12 {
		t.Errorf("Var = %v, want 2.5", r.Var())
	}
	if r.Min() != 1 || r.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", r.Min(), r.Max())
	}
	if math.Abs(r.Sum()-15) > 1e-12 {
		t.Errorf("Sum = %v, want 15", r.Sum())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.StdErr() != 0 || r.CI95() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(7)
	if r.Var() != 0 {
		t.Error("variance of one sample should be 0")
	}
	if r.Min() != 7 || r.Max() != 7 {
		t.Error("min/max of single sample wrong")
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Error("AddN should match repeated Add")
	}
}

func TestRunningNumericalStability(t *testing.T) {
	// Large offset + small variance: naive sum of squares would lose
	// all precision here.
	var r Running
	base := 1e9
	for i := 0; i < 1000; i++ {
		r.Add(base + float64(i%2)) // values 1e9 and 1e9+1
	}
	if math.Abs(r.Var()-0.25025) > 1e-3 {
		t.Errorf("Var = %v, want ~0.2503", r.Var())
	}
}

func TestRunningMerge(t *testing.T) {
	var a, b, whole Running
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for i, x := range xs {
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		whole.Add(x)
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Var()-whole.Var()) > 1e-12 {
		t.Errorf("merged var %v, want %v", a.Var(), whole.Var())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max wrong")
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Merge(&b) // merging empty should be a no-op
	if a.N() != 1 {
		t.Error("merge with empty changed N")
	}
	var c Running
	c.Merge(&a) // merging into empty should copy
	if c.N() != 1 || c.Mean() != 1 {
		t.Error("merge into empty failed")
	}
}

// Property: merging any split of a sequence equals processing it whole.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(xs []float64, cut uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip non-finite inputs
			}
			if math.Abs(x) > 1e100 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(cut) % (len(xs) + 1)
		var a, b, whole Running
		for i, x := range xs {
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
			whole.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return math.Abs(a.Mean()-whole.Mean()) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 0) // empty queue at t=0
	w.Observe(1, 1) // one job from t=1
	w.Observe(3, 2) // two jobs from t=3
	w.Observe(4, 0) // empty from t=4
	// area = 0*1 + 1*2 + 2*1 + 0*1 = 4 over [0,5]
	got := w.Mean(5)
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("time average = %v, want 0.8", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.Mean(10) != 0 {
		t.Error("empty time average should be 0")
	}
}

func TestTimeWeightedPanicsOnRegression(t *testing.T) {
	var w TimeWeighted
	w.Observe(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing time should panic")
		}
	}()
	w.Observe(4, 2)
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 100; i++ {
		b.Add(float64(i % 10)) // every batch has mean 4.5
	}
	if b.Batches() != 10 {
		t.Errorf("Batches = %d, want 10", b.Batches())
	}
	if math.Abs(b.Mean()-4.5) > 1e-12 {
		t.Errorf("Mean = %v, want 4.5", b.Mean())
	}
	if b.CI95() != 0 {
		t.Errorf("identical batches should give zero CI, got %v", b.CI95())
	}
}

func TestBatchMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero batch size should panic")
		}
	}()
	NewBatchMeans(0)
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 {
		t.Errorf("Total = %d, want 12", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Error("under/overflow wrong")
	}
	for i := 0; i < h.NumBins(); i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
}

func TestHistogramTopEdge(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.Nextafter(1, 0)) // just below the top edge
	if h.Bin(3) != 1 {
		t.Error("value just below High should land in the last bin")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if math.Abs(med-50) > 1.5 {
		t.Errorf("median estimate = %v, want ~50", med)
	}
	if h.Quantile(0) < 0 {
		t.Error("0-quantile below range")
	}
}

func TestHistogramInvalid(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{{0, 1, 0}, {1, 1, 5}, {2, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) should panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestQuantilesExact(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	qs := Quantiles(data, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("quantiles = %v, want [1 3 5]", qs)
	}
}

func TestQuantilesInterpolation(t *testing.T) {
	data := []float64{0, 10}
	q := Quantiles(data, 0.25)[0]
	if math.Abs(q-2.5) > 1e-12 {
		t.Errorf("0.25-quantile = %v, want 2.5", q)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	qs := Quantiles(nil, 0.5, 0.9)
	if len(qs) != 2 || qs[0] != 0 || qs[1] != 0 {
		t.Errorf("empty-data quantiles = %v", qs)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(1.1, 1.0) > 0.1000001 || RelErr(1.1, 1.0) < 0.0999999 {
		t.Errorf("RelErr(1.1,1) = %v", RelErr(1.1, 1.0))
	}
	if RelErr(0.5, 0) != 0.5 {
		t.Errorf("RelErr with zero want = %v", RelErr(0.5, 0))
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRowValues(3.14159, "x")
	tb.AddNote("n=%d", 2)
	out := tb.Text()
	for _, want := range []string{"demo", "a", "3.14159", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 || tb.Cell(0, 1) != "2" {
		t.Error("accessors wrong")
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row should panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("q", "col")
	tb.AddRow(`va"l,ue`)
	out := tb.CSV()
	if !strings.Contains(out, `"va""l,ue"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "# q\n") {
		t.Error("CSV should emit title comment")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("md", "x", "y")
	tb.AddRow("1", "2")
	out := tb.Markdown()
	if !strings.Contains(out, "| x | y |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
}
