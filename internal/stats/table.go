package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table used by the experiment
// harness to print paper figures/tables as aligned text or CSV. Cells
// are stored as strings; numeric helpers format consistently.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of pre-formatted cells. It panics if the cell
// count does not match the number of columns, which catches harness bugs
// early.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns",
			len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowValues appends a row of arbitrary values, formatting numbers
// with %.6g and everything else with %v.
func (t *Table) AddRowValues(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.6g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.6g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// AddNote attaches a free-text footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Text renders the table as aligned monospace text.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table in RFC-4180-ish CSV (quoting cells that contain
// commas, quotes or newlines). The title and notes are emitted as
// comment lines starting with '#'.
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table, for
// pasting into EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
