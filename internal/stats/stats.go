// Package stats provides the summary statistics and reporting utilities
// used by the simulator and the experiment harness: numerically stable
// running moments (Welford), confidence intervals, batch-means analysis
// for steady-state simulation output, time-weighted averages for
// utilisation-style quantities, histograms, and plain-text / CSV table
// rendering for EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance with Welford's
// single-pass algorithm, which is stable for long simulation runs where
// naive sum-of-squares would lose precision.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN incorporates the same observation n times.
func (r *Running) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		r.Add(x)
	}
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Sum returns the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Var returns the unbiased sample variance (0 for fewer than two
// observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Min returns the smallest observation (0 with no observations).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 with no observations).
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean, using the normal critical value 1.96. For the sample
// sizes the harness uses (thousands), the t-correction is negligible.
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	tot := n1 + n2
	r.mean += delta * n2 / tot
	r.m2 += o.m2 + delta*delta*n1*n2/tot
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// String summarises the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// TimeWeighted accumulates the time average of a piecewise-constant
// signal, e.g. the number of jobs in a queue. Call Observe(t, v) each
// time the signal changes to value v at time t.
type TimeWeighted struct {
	lastT   float64
	lastV   float64
	area    float64
	started bool
	startT  float64
}

// Observe records that the signal takes value v from time t onward.
// Times must be non-decreasing.
func (w *TimeWeighted) Observe(t, v float64) {
	if !w.started {
		w.started = true
		w.startT = t
	} else {
		if t < w.lastT {
			panic("stats: TimeWeighted times must be non-decreasing")
		}
		w.area += w.lastV * (t - w.lastT)
	}
	w.lastT = t
	w.lastV = v
}

// Mean returns the time average of the signal from the first observation
// up to time end.
func (w *TimeWeighted) Mean(end float64) float64 {
	if !w.started || end <= w.startT {
		return 0
	}
	area := w.area + w.lastV*(end-w.lastT)
	return area / (end - w.startT)
}

// BatchMeans estimates a steady-state mean and its confidence interval
// from a correlated output sequence by averaging fixed-size batches; the
// batch averages are approximately independent for large batches. This
// is the standard method for M/G/1 simulation output analysis.
type BatchMeans struct {
	batchSize int
	current   Running
	batches   Running
}

// NewBatchMeans creates an estimator with the given batch size
// (panics unless positive).
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if int(b.current.N()) == b.batchSize {
		b.batches.Add(b.current.Mean())
		b.current = Running{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI95 returns the 95% half-width computed over batch means.
func (b *BatchMeans) CI95() float64 { return b.batches.CI95() }

// Histogram counts observations into fixed-width bins over [Low, High);
// out-of-range values go to under/overflow counters.
type Histogram struct {
	Low, High float64
	bins      []int64
	under     int64
	over      int64
	total     int64
}

// NewHistogram creates a histogram with n bins spanning [low, high).
// It panics if n <= 0 or high <= low.
func NewHistogram(low, high float64, n int) *Histogram {
	if n <= 0 || high <= low {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Low: low, High: high, bins: make([]int64, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Low:
		h.under++
	case x >= h.High:
		h.over++
	default:
		i := int((x - h.Low) / (h.High - h.Low) * float64(len(h.bins)))
		if i == len(h.bins) { // guard against rounding at the top edge
			i--
		}
		h.bins[i]++
	}
}

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// Underflow returns the count of observations below Low.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above High.
func (h *Histogram) Overflow() int64 { return h.over }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within bins. Out-of-range mass is attributed to the
// boundary values.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.Low
	}
	width := (h.High - h.Low) / float64(len(h.bins))
	for i, c := range h.bins {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Low + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.High
}

// Quantiles computes an exact set of quantiles from raw data (sorted
// copy; O(n log n)). Use for modest n when exactness matters more than
// memory.
func Quantiles(data []float64, qs ...float64) []float64 {
	if len(data) == 0 {
		out := make([]float64, len(qs))
		return out
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return out
}

// RelErr returns |got-want|/|want|, or |got| when want == 0. The test
// suite and EXPERIMENTS.md use it to compare simulation with the
// closed-form model.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
