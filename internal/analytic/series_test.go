package analytic

import (
	"math"
	"testing"
)

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 11)
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 || xs[5] != 5 {
		t.Errorf("Linspace(0,10,11) = %v", xs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n<2 should panic")
		}
	}()
	Linspace(0, 1, 1)
}

// Figure 1: p_th(s̄) curves are straight lines of slope f′λ/b, clamped
// at 1, one per bandwidth; more bandwidth means a shallower line.
func TestThresholdVsSizeFigure1(t *testing.T) {
	bs := []float64{50, 100, 150, 200, 250, 300, 350, 400, 450}
	sizes := Linspace(0, 10, 51)
	for _, hPrime := range []float64{0.0, 0.3} {
		series, err := ThresholdVsSize(ModelA{}, 30, hPrime, bs, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != len(bs) {
			t.Fatalf("got %d series, want %d", len(series), len(bs))
		}
		f := 1 - hPrime
		for si, s := range series {
			b := bs[si]
			for _, pt := range s.Points {
				want := math.Min(1, f*30*pt.X/b)
				if math.Abs(pt.Y-want) > 1e-12 {
					t.Errorf("h′=%v b=%v s̄=%v: p_th = %v, want %v",
						hPrime, b, pt.X, pt.Y, want)
				}
			}
		}
		// Monotone in s̄ and anti-monotone in b.
		for si := 1; si < len(series); si++ {
			for pi := range series[si].Points {
				if series[si].Points[pi].Y > series[si-1].Points[pi].Y+1e-12 {
					t.Fatalf("threshold should fall with bandwidth")
				}
			}
		}
	}
}

// Figure 1 clamp: at b=50, λ=30, h′=0 the line hits p_th=1 at s̄=5/3 and
// stays there.
func TestThresholdVsSizeClamp(t *testing.T) {
	series, err := ThresholdVsSize(ModelA{}, 30, 0, []float64{50}, []float64{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range series[0].Points {
		if pt.Y != 1 {
			t.Errorf("s̄=%v: p_th = %v, want clamped 1", pt.X, pt.Y)
		}
	}
}

// Figure 2 structure at the paper's parameters (s̄=1, λ=30, b=50): with
// h′=0 the threshold is 0.6 — curves with p>0.6 are positive and
// increasing, p<0.6 negative and decreasing, and the p=0.6 curve is
// identically zero.
func TestGainVsNFFigure2Shape(t *testing.T) {
	par := paperParams(0)
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	nFs := Linspace(0, 2, 21)
	series, err := GainVsNF(ModelA{}, par, ps, nFs)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range series {
		p := ps[si]
		prev := math.Inf(-1)
		if p < 0.6 {
			prev = math.Inf(1)
		}
		for _, pt := range s.Points {
			if !pt.Valid {
				continue // saturated region: curve exits the plot
			}
			switch {
			case p > 0.6 && pt.X > 0:
				if pt.Y <= 0 {
					t.Errorf("p=%v nF=%v: G = %v, want > 0", p, pt.X, pt.Y)
				}
				if pt.Y < prev-1e-12 && prev != math.Inf(-1) {
					t.Errorf("p=%v: positive curve not increasing at nF=%v", p, pt.X)
				}
				prev = pt.Y
			case p < 0.6 && pt.X > 0:
				if pt.Y >= 0 {
					t.Errorf("p=%v nF=%v: G = %v, want < 0", p, pt.X, pt.Y)
				}
			case p == 0.6:
				if math.Abs(pt.Y) > 1e-12 {
					t.Errorf("p=p_th curve should be zero, got %v at nF=%v", pt.Y, pt.X)
				}
			}
		}
	}
	// Paper's visible magnitude: G(p=0.9, nF=2) = 30/280 ≈ 0.107.
	last := series[8].Points[len(series[8].Points)-1]
	if !last.Valid || math.Abs(last.Y-30.0/280) > 1e-9 {
		t.Errorf("G(p=0.9, nF=2) = %v, want %v", last.Y, 30.0/280)
	}
}

// Figure 2, right panel (h′=0.3): threshold falls to 0.42, so p=0.5
// becomes profitable — the qualitative difference between the panels.
func TestGainVsNFFigure2CachePanel(t *testing.T) {
	par := paperParams(0.3)
	series, err := GainVsNF(ModelA{}, par, []float64{0.5}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if g := series[0].Points[0]; !g.Valid || g.Y <= 0 {
		t.Errorf("h′=0.3, p=0.5 should be profitable, G = %v", g.Y)
	}
	// ...while at h′=0 it is not.
	series0, err := GainVsNF(ModelA{}, paperParams(0), []float64{0.5}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if g := series0[0].Points[0]; !g.Valid || g.Y >= 0 {
		t.Errorf("h′=0, p=0.5 should be unprofitable, G = %v", g.Y)
	}
}

// Figure 3: C is zero at nF=0, positive and increasing in nF while the
// system is stable, and higher-p curves cost *less* at equal nF (higher
// hit ratio relieves the demand load).
func TestCostVsNFFigure3Shape(t *testing.T) {
	par := paperParams(0)
	ps := []float64{0.1, 0.5, 0.9}
	nFs := Linspace(0, 2, 21)
	series, err := CostVsNF(ModelA{}, par, ps, nFs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		prev := -1.0
		for _, pt := range s.Points {
			if !pt.Valid {
				continue
			}
			if pt.X == 0 {
				if math.Abs(pt.Y) > 1e-15 {
					t.Errorf("%s: C(0) = %v, want 0", s.Label, pt.Y)
				}
			} else if pt.Y <= prev {
				t.Errorf("%s: C not increasing at nF=%v", s.Label, pt.X)
			}
			prev = pt.Y
		}
	}
	// Cross-curve comparison at nF=1 (all stable for p=0.9):
	// C(p=0.9) < C(p=0.5) where both valid.
	find := func(si int, x float64) Point {
		for _, pt := range series[si].Points {
			if pt.X == x {
				return pt
			}
		}
		t.Fatalf("point %v not found", x)
		return Point{}
	}
	c5, c9 := find(1, 0.5), find(2, 0.5)
	if c5.Valid && c9.Valid && c9.Y >= c5.Y {
		t.Errorf("C(p=0.9)=%v should be below C(p=0.5)=%v", c9.Y, c5.Y)
	}
}

// Figure 3 saturation: at h′=0 the p=0.1 curve saturates (ρ ≥ 1) before
// nF=2 — the curve leaves the plotted range, marked invalid here.
func TestCostVsNFSaturation(t *testing.T) {
	par := paperParams(0)
	series, err := CostVsNF(ModelA{}, par, []float64{0.1}, Linspace(0, 2, 21))
	if err != nil {
		t.Fatal(err)
	}
	sawInvalid := false
	for _, pt := range series[0].Points {
		if !pt.Valid {
			sawInvalid = true
		}
	}
	if !sawInvalid {
		t.Error("p=0.1 curve should saturate before nF=2 at these parameters")
	}
	// And the saturation point is where (1 + 0.9·nF)·0.6 ≥ 1 → nF ≥ 0.74.
	for _, pt := range series[0].Points {
		rho := (1 - 0.1*pt.X + pt.X) * 0.6
		if (rho < 1) != pt.Valid {
			t.Errorf("nF=%v: valid=%v inconsistent with ρ=%v", pt.X, pt.Valid, rho)
		}
	}
}

func TestSeriesInvalidParams(t *testing.T) {
	bad := Params{Lambda: -1, B: 50, SBar: 1}
	if _, err := GainVsNF(ModelA{}, bad, []float64{0.5}, []float64{1}); err == nil {
		t.Error("invalid params should error")
	}
	if _, err := CostVsNF(ModelA{}, bad, []float64{0.5}, []float64{1}); err == nil {
		t.Error("invalid params should error")
	}
	par := paperParams(0.3)
	par.NC = 0
	if _, err := CostVsNF(ModelB{}, par, []float64{0.5}, []float64{1}); err == nil {
		t.Error("model B without NC should error")
	}
}
