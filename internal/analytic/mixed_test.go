package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixedReducesToSingleClass(t *testing.T) {
	par := paperParams(0.3)
	for _, c := range []Class{{NF: 0.5, P: 0.7}, {NF: 1, P: 0.5}, {NF: 0.2, P: 0.9}} {
		single, err := Evaluate(ModelA{}, par, c.NF, c.P)
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := EvaluateMixed(ModelA{}, par, []Class{c})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(single.G-mixed.G) > 1e-15 || math.Abs(single.TBar-mixed.TBar) > 1e-15 {
			t.Errorf("class %+v: mixed (G=%v) != single (G=%v)", c, mixed.G, single.G)
		}
	}
}

func TestMixedSplittingAClassIsNeutral(t *testing.T) {
	// One class of nF=1 at p=0.7 equals two classes of nF=0.5 at p=0.7.
	par := paperParams(0.3)
	whole, err := EvaluateMixed(ModelA{}, par, []Class{{NF: 1, P: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	split, err := EvaluateMixed(ModelA{}, par, []Class{{NF: 0.5, P: 0.7}, {NF: 0.5, P: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole.G-split.G) > 1e-15 {
		t.Errorf("splitting a class changed G: %v vs %v", whole.G, split.G)
	}
}

func TestMixedEmptyAndZeroClasses(t *testing.T) {
	par := paperParams(0.3)
	e, err := EvaluateMixed(ModelA{}, par, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.G) > 1e-15 || e.NF != 0 {
		t.Errorf("empty mixture should be the baseline, got G=%v", e.G)
	}
	e2, err := EvaluateMixed(ModelA{}, par, []Class{{NF: 0, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if e2.NF != 0 {
		t.Error("zero-NF class should be ignored")
	}
}

func TestMixedValidation(t *testing.T) {
	par := paperParams(0.3)
	if _, err := EvaluateMixed(ModelA{}, par, []Class{{NF: -1, P: 0.5}}); err == nil {
		t.Error("negative NF should error")
	}
	if _, err := EvaluateMixed(ModelA{}, par, []Class{{NF: 1, P: 0}}); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := EvaluateMixed(ModelA{}, par, []Class{{NF: 1, P: 1.5}}); err == nil {
		t.Error("p>1 should error")
	}
	// Joint eq. 6 violation: Σ nF·p > f′ = 0.7.
	if _, err := EvaluateMixed(ModelA{}, par, []Class{{NF: 1, P: 0.5}, {NF: 1, P: 0.5}}); err == nil {
		t.Error("joint probability bound should be enforced")
	}
}

func TestMixedAddingGoodClassHelps(t *testing.T) {
	par := paperParams(0.3) // p_th = 0.42
	base := []Class{{NF: 0.3, P: 0.6}}
	with := append([]Class{}, base...)
	with = append(with, Class{NF: 0.3, P: 0.8})
	g1, err := EvaluateMixed(ModelA{}, par, base)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := EvaluateMixed(ModelA{}, par, with)
	if err != nil {
		t.Fatal(err)
	}
	if g2.G <= g1.G {
		t.Errorf("adding a p=0.8 class should raise G: %v vs %v", g2.G, g1.G)
	}
}

func TestMixedAddingBadClassHurts(t *testing.T) {
	par := paperParams(0.3)
	base := []Class{{NF: 0.3, P: 0.6}}
	with := append([]Class{}, base...)
	with = append(with, Class{NF: 0.3, P: 0.2}) // below p_th = 0.42
	g1, err := EvaluateMixed(ModelA{}, par, base)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := EvaluateMixed(ModelA{}, par, with)
	if err != nil {
		t.Fatal(err)
	}
	if g2.G >= g1.G {
		t.Errorf("adding a p=0.2 class should lower G: %v vs %v", g2.G, g1.G)
	}
}

func TestSelectClasses(t *testing.T) {
	par := paperParams(0.3) // p_th = 0.42
	classes := []Class{
		{NF: 0.2, P: 0.9},
		{NF: 0.2, P: 0.43},
		{NF: 0.2, P: 0.42}, // exactly at threshold: excluded
		{NF: 0.2, P: 0.1},
		{NF: 0, P: 0.99}, // empty class: excluded
	}
	sel, err := SelectClasses(ModelA{}, par, classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].P != 0.9 || sel[1].P != 0.43 {
		t.Errorf("selection = %+v", sel)
	}
}

// bestSubsetG exhaustively evaluates all feasible subsets and returns
// the maximum G.
func bestSubsetG(t *testing.T, par Params, classes []Class) float64 {
	t.Helper()
	best := math.Inf(-1)
	for mask := 0; mask < 1<<len(classes); mask++ {
		var subset []Class
		for i, c := range classes {
			if mask&(1<<i) != 0 {
				subset = append(subset, c)
			}
		}
		e, err := EvaluateMixed(ModelA{}, par, subset)
		if err != nil {
			continue // overload or bound violation: not a feasible choice
		}
		if e.G > best {
			best = e.G
		}
	}
	return best
}

// The corrected mixed-probability rule, verified by exhaustion: the
// greedy local-threshold selection attains the maximum G over all
// subsets of a heterogeneous candidate set.
func TestMixedGreedySelectionOptimal(t *testing.T) {
	par := paperParams(0.3) // p_th = 0.42
	classes := []Class{
		{NF: 0.15, P: 0.9},
		{NF: 0.25, P: 0.6},
		{NF: 0.2, P: 0.5},
		{NF: 0.3, P: 0.3},
		{NF: 0.2, P: 0.15},
		{NF: 0.1, P: 0.45},
	}
	greedy, err := SelectClassesGreedy(ModelA{}, par, classes)
	if err != nil {
		t.Fatal(err)
	}
	eGreedy, err := EvaluateMixed(ModelA{}, par, greedy)
	if err != nil {
		t.Fatal(err)
	}
	best := bestSubsetG(t, par, classes)
	if math.Abs(eGreedy.G-best) > 1e-12 {
		t.Errorf("greedy G=%v, exhaustive best G=%v", eGreedy.G, best)
	}
	// The greedy set strictly contains the paper's: once the four
	// above-ρ′ classes are in, the local threshold falls to ~0.28 and
	// the p=0.3 class becomes profitable too.
	if len(greedy) != 5 {
		t.Errorf("greedy picked %d classes, want 5 (paper's 4 plus p=0.3)", len(greedy))
	}
}

// Reproduction finding (documented in EXPERIMENTS.md): the paper's
// fixed-threshold rule is safe but conservative on heterogeneous
// candidates — its selection is a subset of the greedy one and its G is
// never higher, yet always non-negative.
func TestMixedPaperRuleConservative(t *testing.T) {
	par := paperParams(0.3)
	classes := []Class{
		{NF: 0.15, P: 0.9},
		{NF: 0.25, P: 0.6},
		{NF: 0.3, P: 0.3},
		{NF: 0.2, P: 0.15},
	}
	paper, err := SelectClasses(ModelA{}, par, classes)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := SelectClassesGreedy(ModelA{}, par, classes)
	if err != nil {
		t.Fatal(err)
	}
	inGreedy := map[float64]bool{}
	for _, c := range greedy {
		inGreedy[c.P] = true
	}
	for _, c := range paper {
		if !inGreedy[c.P] {
			t.Errorf("paper-selected class p=%v missing from greedy selection", c.P)
		}
	}
	ePaper, err := EvaluateMixed(ModelA{}, par, paper)
	if err != nil {
		t.Fatal(err)
	}
	eGreedy, err := EvaluateMixed(ModelA{}, par, greedy)
	if err != nil {
		t.Fatal(err)
	}
	if ePaper.G < 0 {
		t.Errorf("paper rule must never lose: G=%v", ePaper.G)
	}
	if eGreedy.G < ePaper.G-1e-15 {
		t.Errorf("greedy (G=%v) should dominate the paper rule (G=%v)", eGreedy.G, ePaper.G)
	}
}

// Property: for random feasible class sets, the greedy subset is never
// beaten by any other subset, and always dominates the paper's rule.
func TestQuickMixedGreedyOptimal(t *testing.T) {
	par := paperParams(0.3)
	f := func(raw [4]uint16) bool {
		classes := make([]Class, len(raw))
		totalGain := 0.0
		for i, r := range raw {
			classes[i] = Class{
				NF: 0.05 + float64(r%8)/40,      // 0.05..0.225
				P:  0.05 + float64(r>>4%95)/100, // 0.05..0.99
			}
			totalGain += classes[i].NF * classes[i].P
		}
		if totalGain > par.FPrime() {
			return true // jointly infeasible sets are knapsack territory
		}
		greedy, err := SelectClassesGreedy(ModelA{}, par, classes)
		if err != nil {
			return false
		}
		eGreedy, err := EvaluateMixed(ModelA{}, par, greedy)
		if err != nil {
			return false
		}
		best := math.Inf(-1)
		for mask := 0; mask < 1<<len(classes); mask++ {
			var subset []Class
			for i, c := range classes {
				if mask&(1<<i) != 0 {
					subset = append(subset, c)
				}
			}
			e, err := EvaluateMixed(ModelA{}, par, subset)
			if err != nil {
				continue
			}
			if e.G > best {
				best = e.G
			}
		}
		if eGreedy.G < best-1e-12 {
			return false
		}
		paper, err := SelectClasses(ModelA{}, par, classes)
		if err != nil {
			return false
		}
		ePaper, err := EvaluateMixed(ModelA{}, par, paper)
		if err != nil {
			return false
		}
		return eGreedy.G >= ePaper.G-1e-12 && ePaper.G >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLocalThreshold(t *testing.T) {
	par := paperParams(0.3)
	// At the no-prefetch operating point it equals the paper's p_th.
	theta, err := LocalThreshold(ModelA{}, par, par.HPrime, 0)
	if err != nil {
		t.Fatal(err)
	}
	pth, _ := Threshold(ModelA{}, par)
	if math.Abs(theta-pth) > 1e-15 {
		t.Errorf("local threshold at baseline = %v, want p_th = %v", theta, pth)
	}
	// Higher hit ratio lowers it.
	lower, err := LocalThreshold(ModelA{}, par, 0.6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if lower >= theta {
		t.Errorf("θ(h=0.6, nF=0.3) = %v should be below θ(h′) = %v", lower, theta)
	}
	// Errors.
	if _, err := LocalThreshold(ModelA{}, par, -0.1, 0); err == nil {
		t.Error("negative h should error")
	}
	if _, err := LocalThreshold(ModelA{}, par, 0.3, 2); err != ErrOverload {
		t.Error("nF·λ·s̄ ≥ b should be overload")
	}
}

func TestMarginalGainSignMatchesThreshold(t *testing.T) {
	par := paperParams(0.3)
	pth, _ := Threshold(ModelA{}, par)
	for _, p := range []float64{0.1, 0.3, 0.41, 0.43, 0.6, 0.9} {
		mg, err := MarginalGain(ModelA{}, par, p)
		if err != nil {
			t.Fatal(err)
		}
		if (p > pth) != (mg > 0) {
			t.Errorf("p=%v: marginal gain %v inconsistent with threshold %v", p, mg, pth)
		}
	}
	// At p exactly p_th the marginal gain vanishes.
	mg, err := MarginalGain(ModelA{}, par, pth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mg) > 1e-15 {
		t.Errorf("marginal gain at threshold = %v, want 0", mg)
	}
}

// MarginalGain must match a numerical derivative of G at nF → 0.
func TestMarginalGainMatchesNumericalDerivative(t *testing.T) {
	par := paperParams(0.3)
	for _, m := range []Model{ModelA{}, ModelB{}, ModelAB{Alpha: 0.4}} {
		for _, p := range []float64{0.3, 0.5, 0.8} {
			mg, err := MarginalGain(m, par, p)
			if err != nil {
				t.Fatal(err)
			}
			const eps = 1e-6
			g, err := GainClosedForm(m, par, eps, p)
			if err != nil {
				t.Fatal(err)
			}
			numeric := g / eps
			if math.Abs(mg-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
				t.Errorf("%s p=%v: analytic %v vs numeric %v", m.Name(), p, mg, numeric)
			}
		}
	}
}

func TestMarginalGainErrors(t *testing.T) {
	par := paperParams(0.3)
	if _, err := MarginalGain(ModelA{}, par, 0); err == nil {
		t.Error("p=0 should error")
	}
	bad := Params{Lambda: 100, B: 50, SBar: 1}
	if _, err := MarginalGain(ModelA{}, bad, 0.5); err == nil {
		t.Error("overloaded baseline should error")
	}
}
