package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// paperParams are the parameters of Figures 2 and 3: s̄=1, λ=30, b=50.
func paperParams(hPrime float64) Params {
	return Params{Lambda: 30, B: 50, SBar: 1, HPrime: hPrime, NC: 100}
}

func TestValidate(t *testing.T) {
	good := paperParams(0.3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Lambda: 0, B: 50, SBar: 1},
		{Lambda: -1, B: 50, SBar: 1},
		{Lambda: 30, B: 0, SBar: 1},
		{Lambda: 30, B: 50, SBar: 0},
		{Lambda: 30, B: 50, SBar: 1, HPrime: -0.1},
		{Lambda: 30, B: 50, SBar: 1, HPrime: 1.0},
		{Lambda: 30, B: 50, SBar: 1, HPrime: math.NaN()},
		{Lambda: 30, B: 50, SBar: 1, NC: -5},
		{Lambda: math.Inf(1), B: 50, SBar: 1},
	}
	for i, par := range bad {
		if err := par.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, par)
		}
	}
}

func TestRhoPrime(t *testing.T) {
	// ρ′ = f′λs̄/b = 1·30·1/50 = 0.6 at h′=0.
	if got := paperParams(0).RhoPrime(); math.Abs(got-0.6) > 1e-15 {
		t.Errorf("ρ′ = %v, want 0.6", got)
	}
	// h′=0.3 → f′=0.7 → ρ′=0.42.
	if got := paperParams(0.3).RhoPrime(); math.Abs(got-0.42) > 1e-15 {
		t.Errorf("ρ′ = %v, want 0.42", got)
	}
}

func TestNoPrefetchTimes(t *testing.T) {
	par := paperParams(0)
	// r̄′ = s̄/(b − f′λs̄) = 1/20 = 0.05; t̄′ = f′·r̄′ = 0.05.
	r, err := par.RetrievalTimeNoPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.05) > 1e-15 {
		t.Errorf("r̄′ = %v, want 0.05", r)
	}
	tp, err := par.AccessTimeNoPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp-0.05) > 1e-15 {
		t.Errorf("t̄′ = %v, want 0.05", tp)
	}
	// With h′=0.3: t̄′ = 0.7·1/(50−21) = 0.7/29.
	tp3, err := paperParams(0.3).AccessTimeNoPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp3-0.7/29) > 1e-15 {
		t.Errorf("t̄′(h′=0.3) = %v, want %v", tp3, 0.7/29)
	}
}

func TestNoPrefetchOverload(t *testing.T) {
	par := Params{Lambda: 100, B: 50, SBar: 1} // f′λs̄ = 100 > b
	if _, err := par.RetrievalTimeNoPrefetch(); err != ErrOverload {
		t.Error("overloaded baseline should return ErrOverload")
	}
	if _, err := par.AccessTimeNoPrefetch(); err != ErrOverload {
		t.Error("overloaded baseline should return ErrOverload")
	}
}

func TestMaxPrefetchable(t *testing.T) {
	par := paperParams(0.3) // f′ = 0.7
	if got := par.MaxPrefetchable(0.35); math.Abs(got-2) > 1e-12 {
		t.Errorf("max(np) = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 should panic")
		}
	}()
	par.MaxPrefetchable(0)
}

func TestThresholdModelA(t *testing.T) {
	// Eq. 13: p_th = ρ′.
	for _, h := range []float64{0, 0.3, 0.6} {
		par := paperParams(h)
		got, err := Threshold(ModelA{}, par)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-par.RhoPrime()) > 1e-15 {
			t.Errorf("h′=%v: p_th = %v, want ρ′ = %v", h, got, par.RhoPrime())
		}
	}
}

func TestThresholdModelB(t *testing.T) {
	// Eq. 21: p_th = ρ′ + h′/n̄(C).
	par := paperParams(0.3)
	got, err := Threshold(ModelB{}, par)
	if err != nil {
		t.Fatal(err)
	}
	want := par.RhoPrime() + 0.3/100
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("p_th = %v, want %v", got, want)
	}
}

func TestThresholdModelBNeedsNC(t *testing.T) {
	par := paperParams(0.3)
	par.NC = 0
	if _, err := Threshold(ModelB{}, par); err == nil {
		t.Error("model B with n̄(C)=0 should error")
	}
}

func TestModelABInterpolates(t *testing.T) {
	par := paperParams(0.3)
	a, _ := Threshold(ModelA{}, par)
	b, _ := Threshold(ModelB{}, par)
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		ab, err := Threshold(ModelAB{Alpha: alpha}, par)
		if err != nil {
			t.Fatal(err)
		}
		want := a + alpha*(b-a)
		if math.Abs(ab-want) > 1e-15 {
			t.Errorf("α=%v: p_th = %v, want %v", alpha, ab, want)
		}
	}
	if _, err := Threshold(ModelAB{Alpha: 1.5}, par); err == nil {
		t.Error("α > 1 should error")
	}
	if _, err := Threshold(ModelAB{Alpha: -0.1}, par); err == nil {
		t.Error("α < 0 should error")
	}
}

func TestModelNames(t *testing.T) {
	if ModelA.Name(ModelA{}) != "A" || ModelB.Name(ModelB{}) != "B" {
		t.Error("model names wrong")
	}
	if (ModelAB{Alpha: 0.5}).Name() != "AB(α=0.5)" {
		t.Errorf("AB name = %q", ModelAB{Alpha: 0.5}.Name())
	}
}

func TestEvaluateModelAKnownPoint(t *testing.T) {
	// Hand-computed at h′=0, p=0.9, nF=1, λ=30, b=50, s̄=1:
	// h = 0.9; ρ = (1−0.9+1)·0.6 = 0.66; r̄ = 1/(50·0.34) = 1/17;
	// t̄ = 0.1/17; t̄′ = 0.05; G = 0.05 − 0.1/17.
	e, err := Evaluate(ModelA{}, paperParams(0), 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.H-0.9) > 1e-15 {
		t.Errorf("h = %v, want 0.9", e.H)
	}
	if math.Abs(e.Rho-0.66) > 1e-12 {
		t.Errorf("ρ = %v, want 0.66", e.Rho)
	}
	if math.Abs(e.RBar-1.0/17) > 1e-12 {
		t.Errorf("r̄ = %v, want %v", e.RBar, 1.0/17)
	}
	wantG := 0.05 - 0.1/17
	if math.Abs(e.G-wantG) > 1e-12 {
		t.Errorf("G = %v, want %v", e.G, wantG)
	}
	// Eq. 11 directly: G = 1·1·(0.9·50−30)/((50−30)(50−30−1·0.1·30)) = 15/340.
	if math.Abs(e.G-15.0/340) > 1e-12 {
		t.Errorf("G = %v, want 15/340 = %v", e.G, 15.0/340)
	}
}

func TestEvaluateModelBKnownPoint(t *testing.T) {
	// h′=0.3, nC=100, p=0.5, nF=1: d=0.003, h=0.3+0.497=0.797.
	e, err := Evaluate(ModelB{}, paperParams(0.3), 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.H-0.797) > 1e-12 {
		t.Errorf("h = %v, want 0.797", e.H)
	}
	// Eq. 19 numerator: 1·1·(0.5·50 − 0.7·30 − 50·0.3/100) = 25−21−0.15 = 3.85.
	// Denominators: (50−21)=29; (50−21−1·(0.3/100)·30−1·0.5·30)=29−0.09−15=13.91.
	wantG := 3.85 / (29 * 13.91)
	if math.Abs(e.G-wantG) > 1e-12 {
		t.Errorf("G = %v, want %v", e.G, wantG)
	}
}

func TestEvaluateZeroNF(t *testing.T) {
	e, err := Evaluate(ModelA{}, paperParams(0.3), 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.G) > 1e-15 || math.Abs(e.C) > 1e-15 {
		t.Errorf("nF=0 should give G=C=0, got G=%v C=%v", e.G, e.C)
	}
	if math.Abs(e.Rho-e.Par.RhoPrime()) > 1e-15 {
		t.Error("nF=0 utilisation should equal ρ′")
	}
}

func TestEvaluateErrors(t *testing.T) {
	par := paperParams(0)
	if _, err := Evaluate(ModelA{}, par, -1, 0.5); err == nil {
		t.Error("negative nF should error")
	}
	if _, err := Evaluate(ModelA{}, par, 1, 0); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := Evaluate(ModelA{}, par, 1, 1.5); err == nil {
		t.Error("p>1 should error")
	}
	// max(np) = f′/p = 1/0.9 ≈ 1.11 < 2.
	if _, err := Evaluate(ModelA{}, par, 2, 0.9); err == nil {
		t.Error("nF beyond max(np) should error")
	}
	// Overload: p=0.1, nF=1 → ρ = (1−0.1+1)·0.6 = 1.14.
	if _, err := Evaluate(ModelA{}, par, 1, 0.1); err != ErrOverload {
		t.Error("saturating load should return ErrOverload")
	}
}

// The paper's central claim, eqs. 11–13: sign(G) = sign(p − p_th)
// whenever the system is stable and n̄(F) ≤ max(np).
func TestGainSignMatchesThresholdModelA(t *testing.T) {
	par := paperParams(0)
	pth, _ := Threshold(ModelA{}, par) // 0.6
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.8, 0.9} {
		for _, nF := range []float64{0.1, 0.5, 1.0} {
			if nF > par.MaxPrefetchable(p) {
				continue
			}
			e, err := Evaluate(ModelA{}, par, nF, p)
			if err == ErrOverload {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case p > pth && e.G <= 0:
				t.Errorf("p=%v > p_th but G=%v <= 0", p, e.G)
			case p < pth && e.G >= 0:
				t.Errorf("p=%v < p_th but G=%v >= 0", p, e.G)
			}
		}
	}
	// At exactly p = p_th, G = 0.
	e, err := Evaluate(ModelA{}, par, 1, pth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.G) > 1e-12 {
		t.Errorf("G at p=p_th = %v, want 0", e.G)
	}
}

// G is monotone in n̄(F) for fixed p (the "no further restriction"
// result of Section 3.1).
func TestGainMonotoneInNF(t *testing.T) {
	par := paperParams(0.3)
	for _, p := range []float64{0.2, 0.5, 0.7, 0.9} {
		prev := 0.0
		first := true
		for _, nF := range Linspace(0.05, 1.0, 20) {
			if nF > par.MaxPrefetchable(p) {
				break
			}
			e, err := Evaluate(ModelA{}, par, nF, p)
			if err == ErrOverload {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !first {
				pth, _ := Threshold(ModelA{}, par)
				if p > pth && e.G < prev-1e-12 {
					t.Errorf("p=%v: G not increasing at nF=%v (%v < %v)", p, nF, e.G, prev)
				}
				if p < pth && e.G > prev+1e-12 {
					t.Errorf("p=%v: G not decreasing at nF=%v (%v > %v)", p, nF, e.G, prev)
				}
			}
			prev, first = e.G, false
		}
	}
}

// Evaluate's first-principles G must agree with the paper's closed-form
// algebra (eq. 11 / 19) to machine precision, for all three models.
func TestQuickGainClosedFormAgreement(t *testing.T) {
	models := []Model{ModelA{}, ModelB{}, ModelAB{Alpha: 0.37}}
	f := func(lSeed, bSeed, sSeed, hSeed, pSeed, nSeed uint16) bool {
		par := Params{
			Lambda: 1 + float64(lSeed%400)/10,   // 1..41
			B:      5 + float64(bSeed%500),      // 5..505
			SBar:   0.1 + float64(sSeed%100)/20, // 0.1..5.1
			HPrime: float64(hSeed%90) / 100,     // 0..0.89
			NC:     50,
		}
		p := 0.05 + float64(pSeed%95)/100 // 0.05..0.99
		nF := float64(nSeed%200) / 100    // 0..1.99
		if nF > par.MaxPrefetchable(p) {
			return true
		}
		for _, m := range models {
			e, err := Evaluate(m, par, nF, p)
			if err != nil {
				continue // overload or inconsistent: nothing to compare
			}
			cf, err := GainClosedForm(m, par, nF, p)
			if err != nil {
				return false // Evaluate succeeded, closed form must too
			}
			// Equal when close in relative terms — or when both are
			// zero up to accumulated rounding (Evaluate can return
			// ~1e-18 dust where the closed form is exactly 0, which no
			// relative floor survives).
			scale := math.Max(math.Abs(e.G), 1e-12)
			if diff := math.Abs(e.G - cf); diff > 1e-12 && diff/scale > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Redundancy of conditions 2 and 3 (eqs. 12/14, 20/22): whenever
// condition 1 holds and n̄(F) ≤ max(np), conditions 2 and 3 follow.
func TestQuickConditionRedundancy(t *testing.T) {
	models := []Model{ModelA{}, ModelB{}, ModelAB{Alpha: 0.8}}
	f := func(lSeed, bSeed, sSeed, hSeed, pSeed, nSeed uint16) bool {
		par := Params{
			Lambda: 1 + float64(lSeed%400)/10,
			B:      5 + float64(bSeed%500),
			SBar:   0.1 + float64(sSeed%100)/20,
			HPrime: float64(hSeed%90) / 100,
			NC:     20,
		}
		p := 0.05 + float64(pSeed%95)/100
		nF := float64(nSeed%150) / 100
		if nF > par.MaxPrefetchable(p) {
			return true
		}
		for _, m := range models {
			c1, c2, c3, err := Conditions(m, par, nF, p)
			if err != nil {
				return false
			}
			if c1 && (!c2 || !c3) {
				return false // the paper's redundancy claim violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNFLimit(t *testing.T) {
	par := paperParams(0.3)
	// Model A, eq. 14: f′/p.
	got, err := NFLimit(ModelA{}, par, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7/0.5) > 1e-12 {
		t.Errorf("model A NF limit = %v, want 1.4", got)
	}
	// Model B, eq. 22: f′/(p − h′/n̄(C)); always ≥ max(np) = f′/p.
	gotB, err := NFLimit(ModelB{}, par, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gotB < got {
		t.Errorf("model B limit %v < model A limit %v; eq. 22 should be looser", gotB, got)
	}
	// p ≤ d → +Inf.
	tiny := Params{Lambda: 30, B: 50, SBar: 1, HPrime: 0.5, NC: 1}
	inf, err := NFLimit(ModelB{}, tiny, 0.4) // d = 0.5 > p
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Errorf("p <= d should give +Inf, got %v", inf)
	}
}

func TestExcessCostProperties(t *testing.T) {
	// C = 0 when ρ = ρ′ (no prefetching).
	c, err := ExcessCost(30, 0.6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("C = %v at ρ=ρ′, want 0", c)
	}
	// C > 0 when ρ > ρ′.
	c, err = ExcessCost(30, 0.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("C = %v, want > 0", c)
	}
	// Errors.
	if _, err := ExcessCost(30, 1.0, 0.6); err != ErrOverload {
		t.Error("ρ=1 should be overload")
	}
	if _, err := ExcessCost(0, 0.5, 0.4); err == nil {
		t.Error("λ=0 should error")
	}
}

// Load impedance (Section 5): adding the same prefetch utilisation delta
// costs more at higher background load.
func TestExcessCostLoadImpedance(t *testing.T) {
	const delta = 0.1
	prev := -1.0
	for _, rhoPrime := range []float64{0.1, 0.3, 0.5, 0.7, 0.85} {
		c, err := ExcessCost(30, rhoPrime+delta, rhoPrime)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("C(ρ′=%v) = %v not increasing (prev %v)", rhoPrime, c, prev)
		}
		prev = c
	}
}

// RetrievalPerRequest consistency: C = R − R′ (eq. 23 vs eq. 27).
func TestExcessCostEqualsRDifference(t *testing.T) {
	lambda, rho, rhoPrime := 30.0, 0.75, 0.6
	r, err := RetrievalPerRequest(lambda, rho)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RetrievalPerRequest(lambda, rhoPrime)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ExcessCost(lambda, rho, rhoPrime)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-(r-rp)) > 1e-12 {
		t.Errorf("C = %v but R−R′ = %v", c, r-rp)
	}
}

func TestRetrievalPerRequestErrors(t *testing.T) {
	if _, err := RetrievalPerRequest(30, 1); err != ErrOverload {
		t.Error("ρ=1 should be overload")
	}
	if _, err := RetrievalPerRequest(0, 0.5); err == nil {
		t.Error("λ=0 should error")
	}
	if _, err := RetrievalPerRequest(30, -0.1); err == nil {
		t.Error("negative ρ should error")
	}
}

// Section 6, observation 3: models A and B agree as n̄(C) → ∞.
func TestModelsConvergeForLargeCache(t *testing.T) {
	par := paperParams(0.3)
	p, nF := 0.7, 0.5
	prevGap := math.Inf(1)
	for _, nc := range []float64{10, 100, 1000, 10000} {
		par.NC = nc
		ea, err := Evaluate(ModelA{}, par, nF, p)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := Evaluate(ModelB{}, par, nF, p)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(ea.G - eb.G)
		if gap >= prevGap {
			t.Errorf("n̄(C)=%v: |G_A−G_B| = %v did not shrink (prev %v)", nc, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1e-5 {
		t.Errorf("models should nearly coincide at n̄(C)=10⁴, gap %v", prevGap)
	}
}

// Section 6, observation 2: threshold difference is exactly h′/n̄(C),
// bounded by 1/n̄(C).
func TestThresholdGapBound(t *testing.T) {
	par := paperParams(0.3)
	for _, nc := range []float64{2, 10, 100} {
		par.NC = nc
		a, _ := Threshold(ModelA{}, par)
		b, _ := Threshold(ModelB{}, par)
		if gap := b - a; math.Abs(gap-0.3/nc) > 1e-15 || gap > 1/nc {
			t.Errorf("n̄(C)=%v: gap = %v, want h′/n̄(C) = %v ≤ 1/n̄(C)", nc, gap, 0.3/nc)
		}
	}
}

// G under model AB is sandwiched between models A and B (Section 6).
func TestQuickModelABSandwich(t *testing.T) {
	f := func(alphaSeed, pSeed, nSeed uint16) bool {
		par := paperParams(0.4)
		par.NC = 30
		alpha := float64(alphaSeed%101) / 100
		p := 0.05 + float64(pSeed%95)/100
		nF := float64(nSeed%100) / 100
		if nF > par.MaxPrefetchable(p) {
			return true
		}
		ea, errA := Evaluate(ModelA{}, par, nF, p)
		eb, errB := Evaluate(ModelB{}, par, nF, p)
		eab, errAB := Evaluate(ModelAB{Alpha: alpha}, par, nF, p)
		if errA != nil || errB != nil || errAB != nil {
			return true // skip saturated corners
		}
		lo, hi := math.Min(ea.G, eb.G), math.Max(ea.G, eb.G)
		return eab.G >= lo-1e-12 && eab.G <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
