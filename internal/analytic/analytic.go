// Package analytic implements the paper's closed-form performance model
// of speculative prefetching under network load (equations (1)–(27)).
//
// The setting: multiple users behind a proxy issue requests at aggregate
// rate λ for items of mean size s̄ over a shared link of bandwidth b,
// modelled as an M/G/1 processor-sharing server. Without prefetching a
// fraction h′ of requests hit the client caches. Prefetching n̄(F) items
// per request — each with access probability p — raises the hit ratio
// but also the server utilisation, which inflates retrieval times for
// everyone.
//
// The package provides:
//
//   - the no-prefetch baseline: ρ′, r̄′ (eq. 4) and t̄′ (eq. 5);
//   - interaction models A, B and the interpolating AB (Section 6),
//     each giving h, ρ, r̄, t̄ (eqs. 7–10, 15–18), the access
//     improvement G (eqs. 11, 19), the positivity conditions (eqs. 12,
//     20) and the prefetch threshold p_th (eqs. 13, 21);
//   - the excess retrieval cost C (eqs. 23–27);
//   - the bound max(np) on how many items can carry probability ≥ p
//     (eq. 6) and the n̄(F) limits (eqs. 14, 22).
//
// All formulas return errors instead of non-finite values when the
// offered load reaches capacity.
package analytic

import (
	"errors"
	"fmt"
	"math"
)

// ErrOverload indicates the offered load (demand plus prefetch) meets or
// exceeds the link capacity, so no finite steady state exists.
var ErrOverload = errors.New("analytic: offered load >= capacity")

// Params are the system parameters shared by every formula. Symbols
// follow the paper's appendix.
type Params struct {
	// Lambda is the aggregate user request rate λ (requests per unit
	// time). Prefetching does not change it (transparency assumption).
	Lambda float64
	// B is the bandwidth b of the shared server, in units of item size
	// per unit time.
	B float64
	// SBar is the average item size s̄.
	SBar float64
	// HPrime is h′, the cache hit ratio when no prefetching is done.
	HPrime float64
	// NC is n̄(C), the average number of items in a user's cache. Only
	// models B and AB use it; model A deliberately has one parameter
	// fewer (Section 6).
	NC float64
}

// Validate checks parameter sanity: positive rates and sizes, h′ in
// [0,1), and NC positive when a model that needs it will be used (the
// models check NC themselves, so Validate only rejects negatives here).
func (par Params) Validate() error {
	switch {
	case !(par.Lambda > 0) || math.IsInf(par.Lambda, 0):
		return fmt.Errorf("analytic: λ = %v must be positive and finite", par.Lambda)
	case !(par.B > 0) || math.IsInf(par.B, 0):
		return fmt.Errorf("analytic: b = %v must be positive and finite", par.B)
	case !(par.SBar > 0) || math.IsInf(par.SBar, 0):
		return fmt.Errorf("analytic: s̄ = %v must be positive and finite", par.SBar)
	case par.HPrime < 0 || par.HPrime >= 1 || math.IsNaN(par.HPrime):
		return fmt.Errorf("analytic: h′ = %v must be in [0,1)", par.HPrime)
	case par.NC < 0 || math.IsNaN(par.NC):
		return fmt.Errorf("analytic: n̄(C) = %v must be non-negative", par.NC)
	}
	return nil
}

// FPrime returns the cache fault ratio f′ = 1 − h′.
func (par Params) FPrime() float64 { return 1 - par.HPrime }

// RhoPrime returns the no-prefetch utilisation ρ′ = f′λs̄/b.
func (par Params) RhoPrime() float64 {
	return par.FPrime() * par.Lambda * par.SBar / par.B
}

// RetrievalTimeNoPrefetch returns r̄′ = s̄/(b − f′λs̄) (eq. 4), the mean
// time to retrieve one item when no prefetching is performed.
func (par Params) RetrievalTimeNoPrefetch() (float64, error) {
	denom := par.B - par.FPrime()*par.Lambda*par.SBar
	if denom <= 0 {
		return 0, ErrOverload
	}
	return par.SBar / denom, nil
}

// AccessTimeNoPrefetch returns t̄′ = f′s̄/(b − f′λs̄) (eq. 5), the mean
// access time over all requests (hits cost zero).
func (par Params) AccessTimeNoPrefetch() (float64, error) {
	r, err := par.RetrievalTimeNoPrefetch()
	if err != nil {
		return 0, err
	}
	return par.FPrime() * r, nil
}

// MaxPrefetchable returns max(np) = f′/p (eq. 6): for the probability
// bookkeeping to stay consistent, at most f′/p items can each carry
// access probability p or larger. It panics if p is not in (0, 1].
func (par Params) MaxPrefetchable(p float64) float64 {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("analytic: access probability %v must be in (0,1]", p))
	}
	return par.FPrime() / p
}

// RetrievalPerRequest returns R = ρ/(λ(1−ρ)) (eq. 25), the expected
// total retrieval time per user request at utilisation rho.
func RetrievalPerRequest(lambda, rho float64) (float64, error) {
	if rho < 0 || lambda <= 0 {
		return 0, fmt.Errorf("analytic: invalid R arguments (λ=%v, ρ=%v)", lambda, rho)
	}
	if rho >= 1 {
		return 0, ErrOverload
	}
	return rho / (lambda * (1 - rho)), nil
}

// ExcessCost returns C = (ρ−ρ′)/(λ(1−ρ)(1−ρ′)) (eq. 27): the increase
// in per-request retrieval time caused by prefetching, the paper's
// "excess retrieval cost". It is generic in the prefetch-cache
// interaction: pass the utilisation produced by any model.
func ExcessCost(lambda, rho, rhoPrime float64) (float64, error) {
	if lambda <= 0 || rho < 0 || rhoPrime < 0 {
		return 0, fmt.Errorf("analytic: invalid C arguments (λ=%v, ρ=%v, ρ′=%v)",
			lambda, rho, rhoPrime)
	}
	if rho >= 1 || rhoPrime >= 1 {
		return 0, ErrOverload
	}
	return (rho - rhoPrime) / (lambda * (1 - rho) * (1 - rhoPrime)), nil
}
