package analytic

import (
	"fmt"
	"math"
	"sort"
)

// Class is a group of prefetch candidates sharing one access
// probability: prefetch NF items per request, each with probability P.
// The paper analyses a single class "for simplicity"; the mixed
// extension below handles heterogeneous candidate sets, which is what a
// real predictor produces.
type Class struct {
	// NF is the average number of items of this class prefetched per
	// request.
	NF float64
	// P is the access probability of each item in the class.
	P float64
}

// EvaluateMixed computes the steady state when prefetching a mixture of
// classes. The derivation follows the paper's exactly, with the scalar
// n̄(F)·p replaced by the sum over classes:
//
//	h   = h′ + Σᵢ n̄(F)ᵢ·(pᵢ − d)
//	ρ   = (1 − h + Σᵢ n̄(F)ᵢ)·λ·s̄/b
//	t̄  = (1 − h)·s̄/(b(1−ρ)),  G = t̄′ − t̄,  C per eq. 27.
//
// With a single class it reduces to Evaluate (tested property). The
// consistency bound (eq. 6) applies jointly: Σ n̄(F)ᵢ·pᵢ ≤ f′.
func EvaluateMixed(m Model, par Params, classes []Class) (Eval, error) {
	var e Eval
	if err := par.Validate(); err != nil {
		return e, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return e, err
	}
	var nfTotal, gain float64
	for i, c := range classes {
		if c.NF < 0 || math.IsNaN(c.NF) {
			return e, fmt.Errorf("analytic: class %d n̄(F) = %v must be non-negative", i, c.NF)
		}
		if c.NF == 0 {
			continue
		}
		if c.P <= 0 || c.P > 1 || math.IsNaN(c.P) {
			return e, fmt.Errorf("analytic: class %d probability %v must be in (0,1]", i, c.P)
		}
		nfTotal += c.NF
		gain += c.NF * c.P
	}
	if gain > par.FPrime()+1e-12 {
		return e, fmt.Errorf("analytic: Σ n̄(F)ᵢ·pᵢ = %v exceeds f′ = %v (eq. 6 jointly violated)",
			gain, par.FPrime())
	}

	e.Par = par
	e.NF = nfTotal
	if nfTotal > 0 {
		e.P = gain / nfTotal // effective mean probability
	}
	e.D = d
	e.H = par.HPrime + gain - nfTotal*d
	if e.H < 0 || e.H > 1 {
		return e, fmt.Errorf("analytic: mixed hit ratio h = %v out of [0,1]", e.H)
	}
	e.Rho = (1 - e.H + nfTotal) * par.Lambda * par.SBar / par.B
	if e.Rho >= 1 {
		return e, ErrOverload
	}
	e.RBar = par.SBar / (par.B * (1 - e.Rho))
	e.TBar = (1 - e.H) * e.RBar
	tPrime, err := par.AccessTimeNoPrefetch()
	if err != nil {
		return e, err
	}
	e.TBarPrime = tPrime
	e.G = tPrime - e.TBar
	c, err := ExcessCost(par.Lambda, e.Rho, par.RhoPrime())
	if err != nil {
		return e, err
	}
	e.C = c
	return e, nil
}

// SelectClasses applies the paper's rule verbatim to a heterogeneous
// candidate set: it returns the subset of classes whose probability
// strictly exceeds p_th = ρ′ + d (eqs. 13, 21).
//
// Reproduction note: the paper proves this rule optimal in its
// single-probability setting. For *mixed* probabilities it is safe but
// conservative: p_th is the marginal condition at the no-prefetch
// operating point, and prefetching high-p classes lowers the demand
// load, which lowers the marginal threshold below ρ′ — classes slightly
// under p_th can then become worth adding. SelectClassesGreedy
// implements that corrected fixed-point rule; every class SelectClasses
// picks, SelectClassesGreedy also picks (the local threshold only
// falls), so the paper's rule never prefetches a harmful item — it may
// just stop early. See EXPERIMENTS.md (T10).
func SelectClasses(m Model, par Params, classes []Class) ([]Class, error) {
	pth, err := Threshold(m, par)
	if err != nil {
		return nil, err
	}
	var out []Class
	for _, c := range classes {
		if c.P > pth && c.NF > 0 {
			out = append(out, c)
		}
	}
	return out, nil
}

// LocalThreshold returns the marginal profitability threshold at an
// arbitrary operating point (hit ratio h, prefetch volume nF):
//
//	θ(h, n̄(F)) = d + (1−h)·λ·s̄ / (b − n̄(F)·λ·s̄)
//
// Prefetching one more item with probability p lowers the mean access
// time iff p > θ. At the no-prefetch point (h = h′, n̄(F) = 0) this is
// exactly the paper's p_th = ρ′ + d; as profitable classes are added, h
// rises and θ falls.
func LocalThreshold(m Model, par Params, h, nF float64) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	if h < 0 || h > 1 || math.IsNaN(h) {
		return 0, fmt.Errorf("analytic: hit ratio %v must be in [0,1]", h)
	}
	den := par.B - nF*par.Lambda*par.SBar
	if den <= 0 {
		return 0, ErrOverload
	}
	return d + (1-h)*par.Lambda*par.SBar/den, nil
}

// SelectClassesGreedy implements the corrected mixed-probability rule:
// consider classes in descending probability order and admit each class
// whose probability exceeds the *current* local threshold, updating the
// operating point (h, n̄(F)) after each admission. Admitting an
// above-threshold class strictly lowers the local threshold, so a
// descending scan is exact; classes that would violate the joint
// consistency bound (eq. 6) or saturate the link are skipped.
// TestQuickMixedGreedyOptimal verifies optimality by exhaustion.
func SelectClassesGreedy(m Model, par Params, classes []Class) ([]Class, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return nil, err
	}
	ordered := make([]Class, 0, len(classes))
	for _, c := range classes {
		if c.NF > 0 {
			if c.P <= 0 || c.P > 1 || math.IsNaN(c.P) {
				return nil, fmt.Errorf("analytic: probability %v must be in (0,1]", c.P)
			}
			ordered = append(ordered, c)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].P > ordered[j].P })

	var out []Class
	h := par.HPrime
	nF := 0.0
	gain := 0.0
	for _, c := range ordered {
		theta, err := LocalThreshold(m, par, h, nF)
		if err != nil {
			break // saturated: no further prefetching possible
		}
		if c.P <= theta {
			break // descending order: no later class can qualify either
		}
		// Feasibility of admitting the whole class.
		newGain := gain + c.NF*c.P
		newH := h + c.NF*(c.P-d)
		newNF := nF + c.NF
		if newGain > par.FPrime()+1e-12 || newH > 1 {
			continue // class too large for the consistency bound; try smaller ones
		}
		rho := (1 - newH + newNF) * par.Lambda * par.SBar / par.B
		if rho >= 1 {
			continue
		}
		out = append(out, c)
		h, nF, gain = newH, newNF, newGain
	}
	return out, nil
}

// MarginalGain returns ∂G/∂n̄(F) at n̄(F)=0 for a candidate class of
// probability p: the first-order benefit of starting to prefetch such
// items. Its sign is positive exactly when p > p_th, which is another
// route to the paper's threshold (eq. 13/21 by differentiation).
func MarginalGain(m Model, par Params, p float64) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("analytic: probability %v must be in (0,1]", p)
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	// From eq. 11/19: G = nF·s̄·(p·b − f′λs̄ − d·b)/(den1·den2(nF));
	// at nF=0, den2 = den1, so dG/dnF = s̄(pb − f′λs̄ − db)/den1².
	f := par.FPrime()
	ls := par.Lambda * par.SBar
	den1 := par.B - f*ls
	if den1 <= 0 {
		return 0, ErrOverload
	}
	return par.SBar * (p*par.B - f*ls - d*par.B) / (den1 * den1), nil
}
