package analytic

import (
	"fmt"
	"math"
)

// SizedClass extends Class with a per-class item size, dropping the
// paper's uniform-s̄ assumption for the *prefetched* items (the
// background demand keeps mean size s̄). This models the realistic case
// where an access predictor nominates objects of very different sizes —
// thumbnails vs. videos.
type SizedClass struct {
	// NF is the average number of items of this class prefetched per
	// request.
	NF float64
	// P is the access probability of each item in the class.
	P float64
	// Size is the item size of this class (same units as Params.SBar).
	Size float64
}

// EvaluateSized computes the steady state when prefetching classes of
// heterogeneous sizes. Derivation mirrors the paper's, tracking
// *traffic* (size mass) and *hit counts* separately:
//
//	h  = h′ + Σᵢ n̄(F)ᵢ·(pᵢ − d)
//	missMass = f′·s̄ − Σᵢ n̄(F)ᵢ·(pᵢ·sᵢ − d·s̄)     (retrieval time mass)
//	ρ  = λ·(missMass + Σᵢ n̄(F)ᵢ·sᵢ)/b
//	t̄ = missMass/(b(1−ρ)),  G = t̄′ − t̄,  C per eq. 27.
//
// With every sᵢ = s̄ it reduces to EvaluateMixed exactly (tested).
func EvaluateSized(m Model, par Params, classes []SizedClass) (Eval, error) {
	var e Eval
	if err := par.Validate(); err != nil {
		return e, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return e, err
	}
	var nfTotal, hitGain, absorbedMass, prefetchMass float64
	for i, c := range classes {
		if c.NF < 0 || math.IsNaN(c.NF) {
			return e, fmt.Errorf("analytic: class %d n̄(F) = %v must be non-negative", i, c.NF)
		}
		if c.NF == 0 {
			continue
		}
		if c.P <= 0 || c.P > 1 || math.IsNaN(c.P) {
			return e, fmt.Errorf("analytic: class %d probability %v must be in (0,1]", i, c.P)
		}
		if c.Size <= 0 || math.IsNaN(c.Size) {
			return e, fmt.Errorf("analytic: class %d size %v must be positive", i, c.Size)
		}
		nfTotal += c.NF
		hitGain += c.NF * c.P
		absorbedMass += c.NF * (c.P*c.Size - d*par.SBar)
		prefetchMass += c.NF * c.Size
	}
	if hitGain > par.FPrime()+1e-12 {
		return e, fmt.Errorf("analytic: Σ n̄(F)ᵢ·pᵢ = %v exceeds f′ = %v (eq. 6 jointly violated)",
			hitGain, par.FPrime())
	}

	e.Par = par
	e.NF = nfTotal
	if nfTotal > 0 {
		e.P = hitGain / nfTotal
	}
	e.D = d
	e.H = par.HPrime + hitGain - nfTotal*d
	if e.H < 0 || e.H > 1 {
		return e, fmt.Errorf("analytic: sized hit ratio h = %v out of [0,1]", e.H)
	}
	missMass := par.FPrime()*par.SBar - absorbedMass
	if missMass < -1e-12 {
		return e, fmt.Errorf("analytic: absorbed retrieval mass exceeds the baseline miss mass (inconsistent classes)")
	}
	if missMass < 0 {
		missMass = 0
	}
	e.Rho = par.Lambda * (missMass + prefetchMass) / par.B
	if e.Rho >= 1 {
		return e, ErrOverload
	}
	e.TBar = missMass / (par.B * (1 - e.Rho))
	e.RBar = 0 // undefined per-item mean when sizes differ; see TBar
	tPrime, err := par.AccessTimeNoPrefetch()
	if err != nil {
		return e, err
	}
	e.TBarPrime = tPrime
	e.G = tPrime - e.TBar
	c, err := ExcessCost(par.Lambda, e.Rho, par.RhoPrime())
	if err != nil {
		return e, err
	}
	e.C = c
	return e, nil
}

// ThresholdSized returns the profitability threshold for prefetching an
// item of the given size:
//
//	p_th(s) = ρ′ + d·(s̄/s)
//
// For model A (d = 0) the threshold is **size-independent**: under
// processor sharing, both the benefit of a prefetched item (avoided
// retrieval time ∝ s) and its cost (added utilisation ∝ s) scale
// linearly with size, so size cancels — the paper's rule applies
// unchanged to heterogeneous objects. Under model B the displacement
// term is *diluted* for large items (one big item evicts h′/n̄(C) of
// hit value just like a small one, but carries proportionally more
// benefit), so large items have a *lower* threshold.
func ThresholdSized(m Model, par Params, size float64) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if size <= 0 || math.IsNaN(size) {
		return 0, fmt.Errorf("analytic: size %v must be positive", size)
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	return par.RhoPrime() + d*par.SBar/size, nil
}

// MarginalGainSized returns ∂G/∂n̄(F) at n̄(F)=0 for a candidate class
// of probability p and the given size. Its sign is positive exactly
// when p > ThresholdSized (tested against a numerical derivative).
func MarginalGainSized(m Model, par Params, p, size float64) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("analytic: probability %v must be in (0,1]", p)
	}
	if size <= 0 || math.IsNaN(size) {
		return 0, fmt.Errorf("analytic: size %v must be positive", size)
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	f := par.FPrime()
	ls := par.Lambda * par.SBar
	den1 := par.B - f*ls
	if den1 <= 0 {
		return 0, ErrOverload
	}
	// d/dn [−missMass/ (b(1−ρ))] at n=0:
	// ((p·s − d·s̄)·den1 − f′s̄·λ·(s(1−p) + d·s̄)) / den1².
	num := (p*size-d*par.SBar)*den1 - f*par.SBar*par.Lambda*(size*(1-p)+d*par.SBar)
	return num / (den1 * den1), nil
}
