package analytic

import (
	"fmt"
	"math"
)

// Point is one sample of a figure series. Valid is false where the
// formula has no meaningful value at that x (the offered load saturates
// the link, exactly where the paper's plotted curves exit the axes).
type Point struct {
	X, Y  float64
	Valid bool
}

// Series is a labelled curve, one per line in a paper figure.
type Series struct {
	Label  string
	Points []Point
}

// Linspace returns n evenly spaced values from lo to hi inclusive
// (n >= 2), the sampling used by the figure generators.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("analytic: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// ThresholdVsSize generates Figure 1: p_th as a function of item size s̄
// for each bandwidth in bs, at fixed λ and h′. Threshold values above 1
// are clamped to 1 — as in the paper's plots, where the curves flatten
// at the top of the axis (no probability can exceed 1, so prefetching
// is never worthwhile there).
func ThresholdVsSize(m Model, lambda, hPrime float64, bs, sizes []float64) ([]Series, error) {
	out := make([]Series, 0, len(bs))
	for _, b := range bs {
		s := Series{Label: fmt.Sprintf("b=%g", b)}
		for _, size := range sizes {
			par := Params{Lambda: lambda, B: b, SBar: size, HPrime: hPrime, NC: 0}
			if size == 0 {
				// s̄=0 means nothing to transfer: threshold is the
				// displacement alone (0 for model A); keep the plot's
				// leftmost point.
				s.Points = append(s.Points, Point{X: 0, Y: 0, Valid: true})
				continue
			}
			pth, err := Threshold(m, par)
			if err != nil {
				return nil, fmt.Errorf("analytic: threshold at b=%g s̄=%g: %w", b, size, err)
			}
			if pth > 1 {
				pth = 1
			}
			s.Points = append(s.Points, Point{X: size, Y: pth, Valid: true})
		}
		out = append(out, s)
	}
	return out, nil
}

// GainVsNF generates Figure 2: access improvement G as a function of
// n̄(F) for each access probability in ps, using the paper's closed form
// (eq. 11 / 19). Points where the denominator is non-positive (load at
// or beyond capacity) are marked invalid; the paper's curves leave the
// plotted range there.
func GainVsNF(m Model, par Params, ps, nFs []float64) ([]Series, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(ps))
	for _, p := range ps {
		s := Series{Label: fmt.Sprintf("p=%g", p)}
		for _, nF := range nFs {
			g, err := GainClosedForm(m, par, nF, p)
			if err == ErrOverload {
				s.Points = append(s.Points, Point{X: nF, Y: math.NaN(), Valid: false})
				continue
			}
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: nF, Y: g, Valid: true})
		}
		out = append(out, s)
	}
	return out, nil
}

// CostVsNF generates Figure 3: excess retrieval cost C as a function of
// n̄(F) for each access probability in ps. Points where the system
// saturates (ρ >= 1) are invalid.
func CostVsNF(m Model, par Params, ps, nFs []float64) ([]Series, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return nil, err
	}
	rhoPrime := par.RhoPrime()
	out := make([]Series, 0, len(ps))
	for _, p := range ps {
		s := Series{Label: fmt.Sprintf("p=%g", p)}
		for _, nF := range nFs {
			h := par.HPrime + nF*(p-d)
			rho := (1 - h + nF) * par.Lambda * par.SBar / par.B
			c, err := ExcessCost(par.Lambda, rho, rhoPrime)
			if err == ErrOverload {
				s.Points = append(s.Points, Point{X: nF, Y: math.NaN(), Valid: false})
				continue
			}
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: nF, Y: c, Valid: true})
		}
		out = append(out, s)
	}
	return out, nil
}
