package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSizedReducesToMixedAtUniformSize(t *testing.T) {
	par := paperParams(0.3)
	classes := []Class{{NF: 0.3, P: 0.7}, {NF: 0.2, P: 0.5}}
	sized := make([]SizedClass, len(classes))
	for i, c := range classes {
		sized[i] = SizedClass{NF: c.NF, P: c.P, Size: par.SBar}
	}
	for _, m := range []Model{ModelA{}, ModelB{}, ModelAB{Alpha: 0.6}} {
		em, err := EvaluateMixed(m, par, classes)
		if err != nil {
			t.Fatal(err)
		}
		es, err := EvaluateSized(m, par, sized)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(em.G-es.G) > 1e-15 || math.Abs(em.TBar-es.TBar) > 1e-15 ||
			math.Abs(em.Rho-es.Rho) > 1e-15 || math.Abs(em.H-es.H) > 1e-15 {
			t.Errorf("%s: sized(s=s̄) diverges from mixed: G %v vs %v",
				m.Name(), es.G, em.G)
		}
	}
}

// The size-independence theorem (model A): p_th is the same for every
// item size, and the sign of G follows it regardless of size.
func TestSizedThresholdSizeIndependentModelA(t *testing.T) {
	par := paperParams(0.3) // ρ′ = 0.42
	for _, size := range []float64{0.01, 0.5, 1, 3, 50} {
		pth, err := ThresholdSized(ModelA{}, par, size)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pth-par.RhoPrime()) > 1e-15 {
			t.Errorf("size %v: p_th = %v, want ρ′ = %v", size, pth, par.RhoPrime())
		}
		// Sign of G at small nF follows the threshold at every size.
		for _, p := range []float64{0.3, 0.5} {
			e, err := EvaluateSized(ModelA{}, par, []SizedClass{{NF: 0.05, P: p, Size: size}})
			if err != nil {
				continue // huge sizes can saturate; that's fine
			}
			if (p > pth) != (e.G > 0) {
				t.Errorf("size %v p=%v: G = %v inconsistent with threshold", size, p, e.G)
			}
		}
	}
}

// Model B's displacement dilutes with size: bigger items have lower
// thresholds.
func TestSizedThresholdModelBDecreasingInSize(t *testing.T) {
	par := paperParams(0.3)
	par.NC = 10 // d = 0.03
	prev := math.Inf(1)
	for _, size := range []float64{0.25, 0.5, 1, 2, 4} {
		pth, err := ThresholdSized(ModelB{}, par, size)
		if err != nil {
			t.Fatal(err)
		}
		if pth >= prev {
			t.Errorf("size %v: p_th = %v should decrease with size", size, pth)
		}
		prev = pth
	}
	// At s = s̄ it equals the paper's eq. 21.
	pth, _ := ThresholdSized(ModelB{}, par, par.SBar)
	want, _ := Threshold(ModelB{}, par)
	if math.Abs(pth-want) > 1e-15 {
		t.Errorf("p_th(s̄) = %v, want eq. 21 = %v", pth, want)
	}
}

func TestSizedValidation(t *testing.T) {
	par := paperParams(0.3)
	cases := [][]SizedClass{
		{{NF: -1, P: 0.5, Size: 1}},
		{{NF: 1, P: 0, Size: 1}},
		{{NF: 1, P: 0.5, Size: 0}},
		{{NF: 1, P: 0.5, Size: -2}},
		{{NF: 1, P: 0.5, Size: 1}, {NF: 1, P: 0.5, Size: 1}}, // joint eq. 6
	}
	for i, cs := range cases {
		if _, err := EvaluateSized(ModelA{}, par, cs); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
	if _, err := ThresholdSized(ModelA{}, par, 0); err == nil {
		t.Error("size 0 should error")
	}
	if _, err := MarginalGainSized(ModelA{}, par, 0.5, -1); err == nil {
		t.Error("negative size should error")
	}
	if _, err := MarginalGainSized(ModelA{}, par, 2, 1); err == nil {
		t.Error("p > 1 should error")
	}
}

func TestSizedEmpty(t *testing.T) {
	par := paperParams(0.3)
	e, err := EvaluateSized(ModelA{}, par, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.G) > 1e-15 || math.Abs(e.C) > 1e-15 {
		t.Errorf("empty sized mixture should be the baseline, got G=%v C=%v", e.G, e.C)
	}
}

func TestSizedBigItemCostsMore(t *testing.T) {
	// Same probability and count, 5× the size: utilisation and excess
	// cost rise much more, and G (still positive, p > p_th) is larger in
	// absolute terms — bigger retrievals hidden. (The class is kept
	// small enough that the absorbed mass Σ n̄(F)·p·s stays within the
	// baseline miss pool f′s̄.)
	par := paperParams(0.3)
	small, err := EvaluateSized(ModelA{}, par, []SizedClass{{NF: 0.05, P: 0.7, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := EvaluateSized(ModelA{}, par, []SizedClass{{NF: 0.05, P: 0.7, Size: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Rho <= small.Rho {
		t.Errorf("bigger items should load more: ρ %v vs %v", big.Rho, small.Rho)
	}
	if big.C <= small.C {
		t.Errorf("bigger items should cost more: C %v vs %v", big.C, small.C)
	}
	if big.G <= small.G {
		t.Errorf("hiding bigger retrievals should gain more: G %v vs %v", big.G, small.G)
	}
}

// MarginalGainSized matches a numerical derivative of EvaluateSized.
func TestSizedMarginalMatchesNumerical(t *testing.T) {
	par := paperParams(0.3)
	par.NC = 20
	for _, m := range []Model{ModelA{}, ModelB{}} {
		for _, size := range []float64{0.5, 1, 2} {
			for _, p := range []float64{0.3, 0.6, 0.9} {
				mg, err := MarginalGainSized(m, par, p, size)
				if err != nil {
					t.Fatal(err)
				}
				const eps = 1e-7
				e, err := EvaluateSized(m, par, []SizedClass{{NF: eps, P: p, Size: size}})
				if err != nil {
					t.Fatal(err)
				}
				numeric := e.G / eps
				if math.Abs(mg-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
					t.Errorf("%s s=%v p=%v: analytic %v vs numeric %v",
						m.Name(), size, p, mg, numeric)
				}
			}
		}
	}
}

// Property: sign(MarginalGainSized) == sign(p − ThresholdSized) for
// random parameters, models and sizes.
func TestQuickSizedMarginalSign(t *testing.T) {
	f := func(pRaw, sRaw, hRaw uint16, useB bool) bool {
		par := paperParams(float64(hRaw%80) / 100)
		par.NC = 15
		var m Model = ModelA{}
		if useB {
			m = ModelB{}
		}
		p := 0.05 + float64(pRaw%95)/100
		size := 0.1 + float64(sRaw%50)/10
		mg, err := MarginalGainSized(m, par, p, size)
		if err != nil {
			return false
		}
		pth, err := ThresholdSized(m, par, size)
		if err != nil {
			return false
		}
		if math.Abs(p-pth) < 1e-9 {
			return true // boundary: sign indeterminate
		}
		return (p > pth) == (mg > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
