package analytic

import (
	"fmt"
	"math"
)

// Model is a prefetch-cache interaction model: how prefetched items
// displace cache occupants, and therefore how prefetching n̄(F) items of
// probability p changes the hit ratio and everything downstream.
//
// The paper's models are unified by a single quantity, the displacement
// d: the expected hit-ratio value forfeited per prefetched item when it
// evicts an existing occupant. Model A has d = 0 (victims are worthless,
// eq. 7); model B has d = h′/n̄(C) (victims carry average value,
// eq. 15); model AB interpolates. Every formula below reduces to the
// paper's model-specific equations when d is substituted.
type Model interface {
	// Name identifies the model ("A", "B" or "AB(α)").
	Name() string
	// Displacement returns d for the given parameters, or an error when
	// the model's requirements are not met (e.g. model B with NC = 0).
	Displacement(par Params) (float64, error)
}

// ModelA assumes prefetched items always evict zero-value occupants
// (Section 3.1). It needs no cache-size parameter — the practical
// advantage Section 6 highlights.
type ModelA struct{}

// Name implements Model.
func (ModelA) Name() string { return "A" }

// Displacement implements Model: d = 0.
func (ModelA) Displacement(Params) (float64, error) { return 0, nil }

// ModelB assumes every cache occupant contributes h′/n̄(C) to the hit
// ratio, so each eviction forfeits that average value (Section 3.2).
type ModelB struct{}

// Name implements Model.
func (ModelB) Name() string { return "B" }

// Displacement implements Model: d = h′/n̄(C).
func (ModelB) Displacement(par Params) (float64, error) {
	if par.NC <= 0 {
		return 0, fmt.Errorf("analytic: model B needs n̄(C) > 0, got %v", par.NC)
	}
	return par.HPrime / par.NC, nil
}

// ModelAB is the "more realistic" interpolation of Section 6: evicted
// items carry a fraction Alpha of the average value h′/n̄(C). Alpha = 0
// recovers model A; Alpha = 1 recovers model B. The paper argues real
// caches sit strictly between (one can always evict a below-average
// item, so Alpha < 1).
type ModelAB struct {
	// Alpha ∈ [0,1] scales the victim's value relative to the average
	// occupant.
	Alpha float64
}

// Name implements Model.
func (m ModelAB) Name() string { return fmt.Sprintf("AB(α=%g)", m.Alpha) }

// Displacement implements Model: d = α·h′/n̄(C).
func (m ModelAB) Displacement(par Params) (float64, error) {
	if m.Alpha < 0 || m.Alpha > 1 || math.IsNaN(m.Alpha) {
		return 0, fmt.Errorf("analytic: model AB α = %v must be in [0,1]", m.Alpha)
	}
	if m.Alpha == 0 {
		return 0, nil
	}
	if par.NC <= 0 {
		return 0, fmt.Errorf("analytic: model AB needs n̄(C) > 0, got %v", par.NC)
	}
	return m.Alpha * par.HPrime / par.NC, nil
}

// Eval computes every model-dependent quantity for prefetching nF items
// of access probability p per request under the given interaction model.
type Eval struct {
	// Par echoes the input parameters.
	Par Params
	// NF and P echo the prefetch inputs.
	NF, P float64
	// D is the model's displacement value.
	D float64
	// H is the hit ratio with prefetching (eq. 7 / 15).
	H float64
	// Rho is the server utilisation with prefetching (eq. 8 / 16).
	Rho float64
	// RBar is the mean retrieval time with prefetching (eq. 9 / 17).
	RBar float64
	// TBar is the mean access time with prefetching (eq. 10 / 18).
	TBar float64
	// TBarPrime is the no-prefetch access time t̄′ (eq. 5).
	TBarPrime float64
	// G is the access improvement t̄′ − t̄ (eqs. 1, 11, 19).
	G float64
	// C is the excess retrieval cost (eq. 27).
	C float64
}

// Evaluate computes the full set of steady-state quantities. It returns
// an error when the inputs are invalid, probabilities exceed their
// consistency bound max(np) (eq. 6), or the offered load saturates the
// link. nF = 0 is allowed and yields G = C = 0.
func Evaluate(m Model, par Params, nF, p float64) (Eval, error) {
	var e Eval
	if err := par.Validate(); err != nil {
		return e, err
	}
	if nF < 0 || math.IsNaN(nF) {
		return e, fmt.Errorf("analytic: n̄(F) = %v must be non-negative", nF)
	}
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return e, fmt.Errorf("analytic: access probability %v must be in (0,1]", p)
	}
	if maxNP := par.MaxPrefetchable(p); nF > maxNP+1e-12 {
		return e, fmt.Errorf("analytic: n̄(F) = %v exceeds max(np) = f′/p = %v (eq. 6)",
			nF, maxNP)
	}
	d, err := m.Displacement(par)
	if err != nil {
		return e, err
	}

	e.Par, e.NF, e.P, e.D = par, nF, p, d

	// Hit ratio with prefetching: h = h′ + n̄(F)(p − d). With d = 0 this
	// is eq. 7; with d = h′/n̄(C) it is eq. 15.
	e.H = par.HPrime + nF*(p-d)
	if e.H < 0 {
		// Only possible when displacement exceeds p for large nF; the
		// model's assumptions have broken down.
		return e, fmt.Errorf("analytic: hit ratio h = %v < 0 (displacement %v > p with n̄(F)=%v)",
			e.H, d, nF)
	}
	if e.H > 1 {
		return e, fmt.Errorf("analytic: hit ratio h = %v > 1 (inconsistent inputs)", e.H)
	}

	// Utilisation: the server carries demand misses plus prefetches
	// (eq. 8 / 16): ρ = (1 − h + n̄(F))·λ·s̄/b.
	e.Rho = (1 - e.H + nF) * par.Lambda * par.SBar / par.B
	if e.Rho >= 1 {
		return e, ErrOverload
	}

	// Retrieval and access times (eqs. 9–10 / 17–18).
	e.RBar = par.SBar / (par.B * (1 - e.Rho))
	e.TBar = (1 - e.H) * e.RBar

	tPrime, err := par.AccessTimeNoPrefetch()
	if err != nil {
		return e, err
	}
	e.TBarPrime = tPrime
	e.G = tPrime - e.TBar

	c, err := ExcessCost(par.Lambda, e.Rho, par.RhoPrime())
	if err != nil {
		return e, err
	}
	e.C = c
	return e, nil
}

// GainClosedForm evaluates the paper's explicit G formula (eq. 11 for
// model A, eq. 19 for model B, and the AB generalisation):
//
//	G = n̄(F)·s̄·(p·b − f′λs̄ − d·b) /
//	    [(b − f′λs̄)·(b − f′λs̄ − n̄(F)·d·λs̄ − n̄(F)(1−p)λs̄)]
//
// It exists alongside Evaluate (which computes G = t̄′ − t̄ from first
// principles) so the test suite can verify the paper's algebra: the two
// must agree to machine precision wherever both are defined.
func GainClosedForm(m Model, par Params, nF, p float64) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	f := par.FPrime()
	ls := par.Lambda * par.SBar
	num := nF * par.SBar * (p*par.B - f*ls - d*par.B)
	den1 := par.B - f*ls
	den2 := par.B - f*ls - nF*d*ls - nF*(1-p)*ls
	if den1 <= 0 || den2 <= 0 {
		return 0, ErrOverload
	}
	return num / (den1 * den2), nil
}

// Threshold returns p_th, the access-probability threshold above which
// prefetching an item yields positive access improvement: p_th = ρ′ + d
// (eq. 13 for model A, eq. 21 for model B). Values above 1 mean no item
// is worth prefetching at these parameters.
func Threshold(m Model, par Params) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	return par.RhoPrime() + d, nil
}

// Conditions reports the three positivity conditions of eq. 12 (model A)
// / eq. 20 (model B) for the given operating point:
//
//	c1: p·b − f′λs̄ − d·b > 0       (probability exceeds threshold)
//	c2: b − f′λs̄ > 0               (capacity covers demand fetches)
//	c3: b − f′λs̄ − n̄(F)·d·λs̄ − n̄(F)(1−p)·λs̄ > 0
//	                                (capacity covers prefetches too)
//
// The paper proves c2 and c3 are redundant given c1 and nF ≤ max(np);
// experiment T5 checks that claim exhaustively.
func Conditions(m Model, par Params, nF, p float64) (c1, c2, c3 bool, err error) {
	if err := par.Validate(); err != nil {
		return false, false, false, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return false, false, false, err
	}
	f := par.FPrime()
	ls := par.Lambda * par.SBar
	c1 = p*par.B-f*ls-d*par.B > 0
	c2 = par.B-f*ls > 0
	c3 = par.B-f*ls-nF*d*ls-nF*(1-p)*ls > 0
	return c1, c2, c3, nil
}

// NFLimit returns the cap on n̄(F) implied by condition 3 at the
// least-sufficient bandwidth (eq. 14 for model A: f′/p; eq. 22 for
// model B: f′/(p − h′/n̄(C))). The paper shows this cap is never
// tighter than max(np), which is why condition 3 is redundant. It
// returns +Inf when p ≤ d (the denominator would be non-positive, i.e.
// prefetching such items can never help anyway).
func NFLimit(m Model, par Params, p float64) (float64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	d, err := m.Displacement(par)
	if err != nil {
		return 0, err
	}
	if p-d <= 0 {
		return math.Inf(1), nil
	}
	return par.FPrime() / (p - d), nil
}
