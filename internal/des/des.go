// Package des implements a deterministic discrete-event simulation
// kernel: a simulation clock, a binary-heap event calendar with stable
// FIFO tie-breaking for simultaneous events, and cancellable event
// handles.
//
// Determinism matters because the experiment harness reruns simulations
// from fixed seeds and compares outputs against recorded expectations;
// any nondeterminism in event ordering would make those comparisons
// flaky. Ties in event time are broken by scheduling order (sequence
// number), never by map iteration or pointer comparison.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. It runs with the
// simulation clock set to the event's time.
type Handler func()

// Event is a scheduled occurrence. The zero Event is invalid; obtain
// events from Simulator.Schedule.
type Event struct {
	time      float64
	seq       uint64
	index     int // heap index, -1 when not queued
	handler   Handler
	cancelled bool
}

// Time returns the simulation time at which the event fires (or was
// scheduled to fire).
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the clock and the event calendar. It is not safe for
// concurrent use: a simulation is a single logical thread of control.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far (useful as a
// progress/complexity metric in tests).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers handler to run at absolute time t and returns a
// cancellable handle. It panics if t is in the past or not a finite
// number: scheduling into the past is always a model bug, and failing
// fast at the call site beats corrupting the event order silently.
func (s *Simulator) Schedule(t float64, handler Handler) *Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling at non-finite time %v", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, s.now))
	}
	if handler == nil {
		panic("des: nil handler")
	}
	e := &Event{time: t, seq: s.seq, handler: handler}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules handler delay time units from now.
func (s *Simulator) After(delay float64, handler Handler) *Event {
	return s.Schedule(s.now+delay, handler)
}

// Cancel marks the event as cancelled; its handler will not run. The
// event is lazily discarded when it reaches the head of the calendar,
// which keeps Cancel O(1). Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	e.cancelled = true
}

// Stop ends the run: the current Run/RunUntil call returns after the
// in-flight handler finishes.
func (s *Simulator) Stop() { s.stopped = true }

// step fires the earliest pending non-cancelled event. It reports
// whether an event fired.
func (s *Simulator) step(limit float64) bool {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if head.time > limit {
			return false
		}
		heap.Pop(&s.queue)
		s.now = head.time
		s.fired++
		head.handler()
		return true
	}
	return false
}

// Run executes events until the calendar is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(math.Inf(1)) {
	}
}

// RunUntil executes events with time <= end, then advances the clock to
// end. Events scheduled beyond end remain pending.
func (s *Simulator) RunUntil(end float64) {
	s.stopped = false
	for !s.stopped && s.step(end) {
	}
	if !s.stopped && end > s.now {
		s.now = end
	}
}
