package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, ti := range []float64{5, 1, 3, 2, 4} {
		ti := ti
		s.Schedule(ti, func() { order = append(order, ti) })
	}
	s.Run()
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("fired %d events, want 5", len(order))
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.Schedule(2.5, func() {
		if s.Now() != 2.5 {
			t.Errorf("Now() = %v inside handler, want 2.5", s.Now())
		}
	})
	s.Run()
	if s.Now() != 2.5 {
		t.Errorf("final Now() = %v, want 2.5", s.Now())
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at float64
	s.Schedule(1, func() {
		s.After(2, func() { at = s.Now() })
	})
	s.Run()
	if at != 3 {
		t.Errorf("After(2) from t=1 fired at %v, want 3", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(1, func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() should report true")
	}
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	ran := false
	var victim *Event
	s.Schedule(1, func() { s.Cancel(victim) })
	victim = s.Schedule(2, func() { ran = true })
	s.Run()
	if ran {
		t.Error("event cancelled by earlier event still ran")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("Stop did not halt: %d events ran", count)
	}
	if s.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, ti := range []float64{1, 2, 3, 4} {
		ti := ti
		s.Schedule(ti, func() { fired = append(fired, ti) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Errorf("RunUntil(2.5) fired %d events, want 2", len(fired))
	}
	if s.Now() != 2.5 {
		t.Errorf("Now = %v after RunUntil(2.5)", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Errorf("continuation fired %d total, want 4", len(fired))
	}
}

func TestRunUntilEventExactlyAtEnd(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(5, func() { ran = true })
	s.RunUntil(5)
	if !ran {
		t.Error("event at exactly the horizon should fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run() // clock now 5
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past should panic")
		}
	}()
	s.Schedule(4, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN should panic")
		}
	}()
	s.Schedule(math.NaN(), func() {})
}

func TestScheduleNilHandlerPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler should panic")
		}
	}()
	s.Schedule(1, nil)
}

func TestHandlersCanScheduleChains(t *testing.T) {
	// A self-perpetuating arrival process: each event schedules the next.
	s := New()
	count := 0
	var arrive func()
	arrive = func() {
		count++
		if count < 100 {
			s.After(1, arrive)
		}
	}
	s.Schedule(0, arrive)
	s.Run()
	if count != 100 {
		t.Errorf("chain produced %d events, want 100", count)
	}
	if s.Now() != 99 {
		t.Errorf("final time %v, want 99", s.Now())
	}
	if s.Fired() != 100 {
		t.Errorf("Fired = %d, want 100", s.Fired())
	}
}

func TestZeroDelaySelfSchedule(t *testing.T) {
	// Zero-delay events must still respect FIFO and terminate.
	s := New()
	n := 0
	var f func()
	f = func() {
		n++
		if n < 5 {
			s.After(0, f)
		}
	}
	s.Schedule(1, f)
	s.Run()
	if n != 5 {
		t.Errorf("zero-delay chain ran %d times, want 5", n)
	}
	if s.Now() != 1 {
		t.Errorf("clock moved during zero-delay chain: %v", s.Now())
	}
}

// Property: for any batch of random event times, execution order is the
// sorted order of the times.
func TestQuickOrdering(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%64) + 1
		r := rng.New(seed)
		s := New()
		times := make([]float64, count)
		var fired []float64
		for i := range times {
			times[i] = r.Float64() * 100
			ti := times[i]
			s.Schedule(ti, func() { fired = append(fired, ti) })
		}
		s.Run()
		sort.Float64s(times)
		if len(fired) != count {
			return false
		}
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement
// to fire.
func TestQuickCancellation(t *testing.T) {
	f := func(seed uint64, n uint8, mask uint64) bool {
		count := int(n%32) + 1
		r := rng.New(seed)
		s := New()
		fired := make(map[int]bool)
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = s.Schedule(r.Float64()*10, func() { fired[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(events[i])
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			want := mask&(1<<uint(i)) == 0
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	r := rng.New(1)
	times := make([]float64, 1024)
	for i := range times {
		times[i] = r.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, t := range times {
			s.Schedule(t, func() {})
		}
		s.Run()
	}
}
