package core

import (
	"sync"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/predict"
)

// TestAdvisorConcurrent drives OnRequest, the cache-event callbacks and
// Filter from many goroutines at once. Under -race it verifies the
// advisor stack (Advisor → Controller → Estimator) is goroutine-safe,
// which the public prefetcher engine depends on.
func TestAdvisorConcurrent(t *testing.T) {
	adv, err := NewAdvisor(50, analytic.ModelB{}, 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cands := []predict.Prediction{
		{Item: 7, Prob: 0.95}, {Item: 8, Prob: 0.4},
	}

	var wg sync.WaitGroup
	const workers = 8
	const iters = 1500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := cache.ID(w*iters + i)
				adv.OnRequest(float64(i)*0.02, 1)
				switch i % 4 {
				case 0:
					adv.OnCacheHit(id)
				case 1:
					adv.OnRemoteFetch(id, true)
				case 2:
					adv.OnPrefetched(id)
				case 3:
					adv.OnEvict(id)
				}
				adv.Filter(cands)
				_ = adv.Threshold()
				_ = adv.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	snap := adv.Snapshot()
	if snap.HPrime < 0 || snap.HPrime > 1 {
		t.Fatalf("ĥ′ = %v out of [0,1]", snap.HPrime)
	}
}
