package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/predict"
)

func params() analytic.Params {
	return analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: 0.3, NC: 100}
}

func TestNewPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil, params()); err == nil {
		t.Error("nil model should error")
	}
	bad := params()
	bad.Lambda = -1
	if _, err := NewPlanner(analytic.ModelA{}, bad); err == nil {
		t.Error("invalid params should error")
	}
	noNC := params()
	noNC.NC = 0
	if _, err := NewPlanner(analytic.ModelB{}, noNC); err == nil {
		t.Error("model B without n̄(C) should error at construction")
	}
	if _, err := NewPlanner(analytic.ModelA{}, noNC); err != nil {
		t.Errorf("model A should not need n̄(C): %v", err)
	}
}

func TestPlannerThresholdAndDecision(t *testing.T) {
	p, err := NewPlanner(analytic.ModelA{}, params())
	if err != nil {
		t.Fatal(err)
	}
	pth, err := p.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pth-0.42) > 1e-12 { // ρ′ = 0.7·30/50
		t.Errorf("p_th = %v, want 0.42", pth)
	}
	yes, err := p.ShouldPrefetch(0.5)
	if err != nil || !yes {
		t.Errorf("p=0.5 > 0.42 should prefetch (err %v)", err)
	}
	no, err := p.ShouldPrefetch(0.42)
	if err != nil || no {
		t.Error("p exactly at threshold should not prefetch")
	}
}

func TestPlannerGainAndCost(t *testing.T) {
	p, err := NewPlanner(analytic.ModelA{}, params())
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Gain(0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Errorf("G = %v, want > 0 for p above threshold", g)
	}
	c, err := p.ExcessCost(0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("C = %v, want > 0 when prefetching", c)
	}
	e, err := p.Evaluate(0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if e.G != g || e.C != c {
		t.Error("Evaluate disagrees with Gain/ExcessCost")
	}
	if p.MaxPrefetchable(0.7) != 0.7/0.7 {
		t.Errorf("max(np) = %v, want 1", p.MaxPrefetchable(0.7))
	}
	if p.Model().Name() != "A" || p.Params().B != 50 {
		t.Error("accessors wrong")
	}
}

func TestNewAdvisorValidation(t *testing.T) {
	if _, err := NewAdvisor(0, analytic.ModelA{}, 0, 0); err == nil {
		t.Error("zero bandwidth should error")
	}
	if _, err := NewAdvisor(50, nil, 0, 0); err == nil {
		t.Error("nil model should error")
	}
	if _, err := NewAdvisor(50, analytic.ModelA{}, -1, 0); err == nil {
		t.Error("negative n̄(C) should error")
	}
}

func TestAdvisorEndToEnd(t *testing.T) {
	a, err := NewAdvisor(50, analytic.ModelA{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drive a deterministic request stream: rate 30, all misses
	// (admitted) → ĥ′=0, ρ̂′=0.6.
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 1.0 / 30
		a.OnRequest(now, 1)
		a.OnRemoteFetch(cache.ID(i), true)
	}
	snap := a.Snapshot()
	if math.Abs(snap.RhoPrime-0.6) > 0.01 {
		t.Fatalf("ρ̂′ = %v, want ~0.6 (snapshot %s)", snap.RhoPrime, snap)
	}
	if math.Abs(a.Threshold()-snap.RhoPrime) > 1e-12 {
		t.Error("model A threshold should equal ρ̂′")
	}
	cands := []predict.Prediction{
		{Item: 1, Prob: 0.9},
		{Item: 2, Prob: 0.5},
	}
	sel := a.Filter(cands)
	if len(sel) != 1 || sel[0].Item != 1 {
		t.Errorf("Filter = %v, want only the p=0.9 item", sel)
	}

	// Now hits raise ĥ′, lowering the threshold, letting p=0.5 through:
	// re-access previously admitted items.
	for i := 0; i < 300; i++ {
		now += 1.0 / 30
		a.OnRequest(now, 1)
		a.OnCacheHit(cache.ID(i % 100))
	}
	if got := a.Snapshot().HPrime; got < 0.7 {
		t.Fatalf("ĥ′ = %v after hit streak, want > 0.7", got)
	}
	sel = a.Filter(cands)
	if len(sel) != 2 {
		t.Errorf("lower load should admit both candidates, got %v (p_th=%v)",
			sel, a.Threshold())
	}
}

func TestAdvisorPrefetchBookkeeping(t *testing.T) {
	// alpha=1: n̄(F) is exactly the prefetches folded at the latest
	// arrival, making the EWMA bookkeeping directly observable.
	a, err := NewAdvisor(50, analytic.ModelA{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.OnRequest(1, 1)
	a.OnPrefetched(101)
	if nf := a.Snapshot().NF; nf != 0 {
		t.Errorf("n̄(F) = %v before the next arrival folds, want 0", nf)
	}
	a.OnRequest(2, 1)
	if nf := a.Snapshot().NF; math.Abs(nf-1) > 1e-12 {
		t.Errorf("n̄(F) = %v, want 1 (one prefetch since previous arrival)", nf)
	}
	// First use of a prefetched entry: counted as access, not hit
	// (Section 4), then tagged.
	a.OnCacheHit(101)
	a.OnCacheHit(101)
	snap := a.Snapshot()
	// naccess=2 (hits only counted in estimator, requests tracked
	// separately), nhit=1 → ĥ′=0.5.
	if math.Abs(snap.HPrime-0.5) > 1e-12 {
		t.Errorf("ĥ′ = %v, want 0.5", snap.HPrime)
	}
	a.OnEvict(101)
	// Re-prefetch after eviction starts untagged again.
	a.OnPrefetched(101)
	a.OnCacheHit(101)
	if got := a.Snapshot().HPrime; math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ĥ′ = %v, want 1/3", got)
	}
}

func TestAdvisorModelBThreshold(t *testing.T) {
	a, err := NewAdvisor(50, analytic.ModelB{}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 1.0 / 30
		a.OnRequest(now, 1)
		id := cache.ID(i % 2) // heavy re-use → ĥ′ ≈ 1
		if i < 2 {
			a.OnRemoteFetch(id, true)
		} else {
			a.OnCacheHit(id)
		}
	}
	snap := a.Snapshot()
	wantPth := snap.RhoPrime + snap.HPrime/10
	if math.Abs(a.Threshold()-wantPth) > 1e-12 {
		t.Errorf("model B threshold = %v, want ρ̂′+ĥ′/n̄(C) = %v", a.Threshold(), wantPth)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Lambda: 30, MeanSize: 1, HPrime: 0.5, RhoPrime: 0.3, NF: 0.25}
	out := s.String()
	for _, frag := range []string{"30", "0.5", "0.3", "0.25"} {
		if !strings.Contains(out, frag) {
			t.Errorf("snapshot string missing %q: %s", frag, out)
		}
	}
}
