// Package core is the framework's public face: it packages the paper's
// result — prefetch exclusively the items whose access probability
// exceeds p_th = ρ′ (+ h′/n̄(C) under model B) — into two usable
// components.
//
// Planner answers capacity-planning questions offline from known
// parameters: what is the threshold, what gain does a prefetch policy
// buy, what does it cost in network load (equations 5–27 of the paper).
//
// Advisor makes the same decision online: it ingests the live request
// stream and cache events, estimates λ, s̄ and h′ (the latter with the
// paper's Section-4 tagged-cache algorithm), and filters candidate
// predictions down to the ones worth prefetching right now. Wire it
// between an access predictor (internal/predict) and a fetcher.
package core

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/predict"
	"repro/internal/prefetch"
)

// Planner evaluates the paper's closed-form model for fixed, known
// parameters.
type Planner struct {
	model analytic.Model
	par   analytic.Params
}

// NewPlanner validates the parameters and returns a Planner for the
// given interaction model (analytic.ModelA{}, analytic.ModelB{} or
// analytic.ModelAB{Alpha: α}).
func NewPlanner(model analytic.Model, par analytic.Params) (*Planner, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	// Surface model/parameter mismatches (e.g. model B without n̄(C))
	// at construction instead of first use.
	if _, err := model.Displacement(par); err != nil {
		return nil, err
	}
	return &Planner{model: model, par: par}, nil
}

// Params returns the planner's parameters.
func (p *Planner) Params() analytic.Params { return p.par }

// Model returns the planner's interaction model.
func (p *Planner) Model() analytic.Model { return p.model }

// Threshold returns p_th: prefetch exactly the items whose access
// probability exceeds this value (eq. 13 / 21).
func (p *Planner) Threshold() (float64, error) {
	return analytic.Threshold(p.model, p.par)
}

// ShouldPrefetch reports whether an item with the given access
// probability is worth prefetching — the paper's decision rule.
func (p *Planner) ShouldPrefetch(prob float64) (bool, error) {
	pth, err := p.Threshold()
	if err != nil {
		return false, err
	}
	return prob > pth, nil
}

// Evaluate returns the full steady-state picture (h, ρ, r̄, t̄, G, C)
// for prefetching nF items of probability prob per request.
func (p *Planner) Evaluate(nF, prob float64) (analytic.Eval, error) {
	return analytic.Evaluate(p.model, p.par, nF, prob)
}

// Gain returns the access improvement G = t̄′ − t̄ (eq. 11 / 19).
func (p *Planner) Gain(nF, prob float64) (float64, error) {
	e, err := p.Evaluate(nF, prob)
	if err != nil {
		return 0, err
	}
	return e.G, nil
}

// ExcessCost returns C (eq. 27): the extra retrieval time per request
// that the prefetching traffic induces.
func (p *Planner) ExcessCost(nF, prob float64) (float64, error) {
	e, err := p.Evaluate(nF, prob)
	if err != nil {
		return 0, err
	}
	return e.C, nil
}

// MaxPrefetchable returns max(np) = f′/p (eq. 6), the consistency bound
// on how many items can carry probability ≥ p.
func (p *Planner) MaxPrefetchable(prob float64) float64 {
	return p.par.MaxPrefetchable(prob)
}

// Advisor is the online counterpart: it owns a prefetch.Controller (λ̂,
// ŝ̄, ĥ′, ρ̂′ estimation) and applies the paper's threshold policy to
// candidate predictions.
//
// Advisor is safe for concurrent use: its own fields are immutable
// after construction and all mutable state lives in the controller and
// estimator, which carry their own locks. OnRequest, Filter and the
// cache-event callbacks may be invoked from multiple goroutines.
type Advisor struct {
	ctrl   *prefetch.Controller
	policy prefetch.Threshold
	nc     float64
}

// NewAdvisor creates an advisor for a link of the given bandwidth using
// the given interaction model. nc is the expected steady cache occupancy
// n̄(C) in items (only consulted by models B/AB; pass 0 for model A).
// alpha is the estimator EWMA weight (0 = default).
func NewAdvisor(bandwidth float64, model analytic.Model, nc, alpha float64) (*Advisor, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("core: bandwidth %v must be positive", bandwidth)
	}
	if nc < 0 {
		return nil, fmt.Errorf("core: n̄(C) = %v must be non-negative", nc)
	}
	return &Advisor{
		ctrl:   prefetch.NewController(bandwidth, alpha),
		policy: prefetch.Threshold{Model: model},
		nc:     nc,
	}, nil
}

// OnRequest records a user request at time now for an item of the given
// size. Call before Filter for the same request.
func (a *Advisor) OnRequest(now, size float64) { a.ctrl.RecordRequest(now, size) }

// OnCacheHit records that the request hit the local cache; id
// identifies the entry (tagged-estimator bookkeeping, Section 4).
func (a *Advisor) OnCacheHit(id cache.ID) { a.ctrl.Estimator().OnHit(id) }

// OnRemoteFetch records that the request was fetched remotely and
// whether it was admitted to the cache.
func (a *Advisor) OnRemoteFetch(id cache.ID, admitted bool) {
	a.ctrl.Estimator().OnRemoteAccess(id, admitted)
}

// OnPrefetched records that id entered the cache via prefetch.
func (a *Advisor) OnPrefetched(id cache.ID) {
	a.ctrl.RecordPrefetch()
	a.ctrl.Estimator().OnPrefetch(id)
}

// OnEvict records that id left the cache.
func (a *Advisor) OnEvict(id cache.ID) { a.ctrl.Estimator().OnEvict(id) }

// Filter returns the candidates worth prefetching under the current
// load estimates — the paper's rule applied online. Candidates must be
// sorted by decreasing probability (as predict.Predictor guarantees).
func (a *Advisor) Filter(cands []predict.Prediction) []predict.Prediction {
	return a.policy.Select(cands, a.ctrl.State(a.nc))
}

// Threshold returns the advisor's current estimate of p_th.
func (a *Advisor) Threshold() float64 {
	return prefetch.ThresholdFor(a.policy.Model, a.ctrl.State(a.nc))
}

// Snapshot reports the advisor's current estimates.
func (a *Advisor) Snapshot() Snapshot {
	return Snapshot{
		Lambda:   a.ctrl.Lambda(),
		MeanSize: a.ctrl.MeanSize(),
		HPrime:   a.ctrl.HPrime(),
		RhoPrime: a.ctrl.RhoPrime(),
		NF:       a.ctrl.NF(),
	}
}

// Snapshot is a point-in-time view of the advisor's online estimates.
type Snapshot struct {
	// Lambda is the estimated request rate λ̂.
	Lambda float64
	// MeanSize is the estimated mean item size ŝ̄.
	MeanSize float64
	// HPrime is the Section-4 estimate ĥ′.
	HPrime float64
	// RhoPrime is ρ̂′ = (1−ĥ′)λ̂ŝ̄/b.
	RhoPrime float64
	// NF is the recent (EWMA) prefetches per request n̄(F).
	NF float64
}

func (s Snapshot) String() string {
	return fmt.Sprintf("λ̂=%.4g ŝ̄=%.4g ĥ′=%.4g ρ̂′=%.4g n̄(F)=%.4g",
		s.Lambda, s.MeanSize, s.HPrime, s.RhoPrime, s.NF)
}
