package atomicalign

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestAtomicalign(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "alignfix")
}
