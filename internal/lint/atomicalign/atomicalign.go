// Package atomicalign guards the layout invariants behind the engine's
// padded atomic counters:
//
//   - a plain int64/uint64 struct field passed to sync/atomic must sit
//     at an 8-byte-aligned offset under 32-bit layout rules (gc/386) —
//     the classic silent crash: amd64 runs fine, 386/arm panics. Fields
//     of type atomic.Int64/Uint64 are exempt (the runtime aligns them).
//   - a struct annotated //prefetch:cacheline must occupy whole 64-byte
//     cache lines (gc/amd64 layout), so arrays of per-shard counters
//     never false-share; a field edit that silently shrinks the struct
//     is a perf regression no test can see.
//
// Waive deliberate exceptions with //lint:allow atomicalign <reason>.
package atomicalign

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the atomicalign check.
var Analyzer = &lint.Analyzer{
	Name: "atomicalign",
	Doc:  "atomically-accessed 64-bit fields must be 8-aligned on 32-bit layouts; //prefetch:cacheline structs must pad to whole 64-byte lines",
	Run:  run,
}

const cacheLine = 64

func run(pass *lint.Pass) error {
	sizes32 := types.SizesFor("gc", "386")
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkCachelineStructs(pass, f)
		checkAtomicCalls(pass, f, sizes32)
	}
	return nil
}

// checkCachelineStructs validates //prefetch:cacheline annotations.
func checkCachelineStructs(pass *lint.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !lint.HasDirective(ts.Doc, lint.CachelineDirective) &&
				!(len(gd.Specs) == 1 && lint.HasDirective(gd.Doc, lint.CachelineDirective)) {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name]
			if !ok {
				continue
			}
			t := obj.Type()
			if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
				pass.Reportf(ts.Pos(), "%s is annotated %s but is not a struct", ts.Name.Name, lint.CachelineDirective)
				continue
			}
			size := pass.Sizes.Sizeof(t)
			if size == 0 || size%cacheLine != 0 {
				pass.Reportf(ts.Pos(),
					"%s is annotated %s but its size is %d bytes, not a whole number of %d-byte cache lines — adjust the padding array",
					ts.Name.Name, lint.CachelineDirective, size, cacheLine)
			}
		}
	}
}

// atomicCall reports whether call invokes a sync/atomic package-level
// function (the forms that take a raw *int64/*uint64).
func atomicCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Package-level funcs only: the atomic.IntNN method forms are
	// always aligned by the runtime.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkAtomicCalls flags atomic.XxxInt64-style calls whose address
// operand is a struct field that lands misaligned under 32-bit layout.
func checkAtomicCalls(pass *lint.Pass, f *ast.File, sizes32 types.Sizes) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !atomicCall(pass, call) || len(call.Args) == 0 {
			return true
		}
		un, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok {
			return true
		}
		sel, ok := un.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		basic, ok := field.Type().Underlying().(*types.Basic)
		if !ok {
			return true
		}
		switch basic.Kind() {
		case types.Int64, types.Uint64:
		default:
			return true // 32-bit and pointer-size operands align everywhere
		}
		off, ok := fieldOffset32(selection, sizes32)
		if !ok {
			return true
		}
		if off%8 != 0 {
			pass.Reportf(sel.Pos(),
				"atomic access to 64-bit field %s at offset %d (32-bit layout): not 8-aligned — move it first in the struct or use atomic.%s",
				fieldPath(selection), off, autoType(basic.Kind()))
		}
		return true
	})
}

// fieldOffset32 computes the byte offset of the selected field from the
// start of the selection's receiver struct under 32-bit layout,
// following the embedding path.
func fieldOffset32(selection *types.Selection, sizes32 types.Sizes) (int64, bool) {
	t := selection.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	var total int64
	for _, idx := range selection.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		offs := sizes32.Offsetsof(fields)
		if idx >= len(offs) {
			return 0, false
		}
		total += offs[idx]
		t = st.Field(idx).Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			// An embedded pointer restarts the offset chain; the target
			// allocation's alignment is unknowable statically.
			_ = p
			return 0, false
		}
	}
	return total, true
}

func fieldPath(selection *types.Selection) string {
	return fmt.Sprintf("%s.%s", typeName(selection.Recv()), selection.Obj().Name())
}

func typeName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if p, ok := t.(*types.Pointer); ok {
		return typeName(p.Elem())
	}
	return t.String()
}

func autoType(k types.BasicKind) string {
	if k == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
