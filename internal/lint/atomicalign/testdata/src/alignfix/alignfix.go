// Package alignfix is an atomicalign fixture: misaligned atomic fields
// and short cache-line structs next to the padded shapes the engine
// uses, which must stay clean.
package alignfix

import "sync/atomic"

// bad puts a 64-bit atomic field after a 4-byte one: offset 4 under
// 32-bit layout.
type bad struct {
	flag int32
	n    int64
}

func (b *bad) bump() {
	atomic.AddInt64(&b.n, 1) // want `not 8-aligned`
}

// badU is the unsigned variant, accessed through a different helper.
type badU struct {
	flag uint32
	mask uint32
	hi   uint32
	n    uint64
}

func (b *badU) load() uint64 {
	return atomic.LoadUint64(&b.n) // want `not 8-aligned`
}

// good keeps the 64-bit field first — aligned on every layout.
type good struct {
	n    int64
	flag int32
}

func (g *good) bump() {
	atomic.AddInt64(&g.n, 1)
}

// autoAligned uses the typed atomics, which the runtime aligns
// regardless of position — never flagged.
type autoAligned struct {
	flag int32
	n    atomic.Int64
}

func (a *autoAligned) bump() {
	a.n.Add(1)
}

// counter is the engine's padded-counter shape: one atomic plus padding
// out to a whole cache line.
//
//prefetch:cacheline
type counter struct {
	atomic.Int64
	_ [56]byte
}

// short claims a cache line but does not fill it.
//
//prefetch:cacheline
type short struct { // want `not a whole number of 64-byte cache lines`
	atomic.Int64
	_ [16]byte
}

// waived is deliberately unpadded (say, a single-instance struct where
// false sharing cannot occur), recorded with a reason.
//
//prefetch:cacheline
//lint:allow atomicalign single instance, padding waste not worth it
type waived struct {
	atomic.Int64
}
