// Package atomfix is the atomicmix fixture corpus: pointer-style and
// promoted-method atomics mixed with plain accesses (reported), a
// lock-protected plain access waived with the protecting lock named,
// and purely-atomic / purely-plain fields that must stay silent.
package atomfix

import (
	"sync"
	"sync/atomic"
)

// P mixes pointer-style atomics with plain accesses.
type P struct {
	n    int64
	only int64 // never touched atomically: plain accesses are fine
}

func incAtomic(p *P) {
	atomic.AddInt64(&p.n, 1)
}

func plainWrite(p *P) {
	p.n = 0 // want `plain access to P\.n, which is accessed atomically elsewhere`
}

func plainRead(p *P) int64 {
	return p.n // want `plain access to P\.n, which is accessed atomically elsewhere`
}

func plainOnly(p *P) {
	p.only++
}

// ctr embeds an atomic (the engine's padded-counter shape): methods
// promoted from atomic.Int64 count as atomic accesses of the field.
type ctr struct {
	atomic.Int64
	_ [56]byte
}

type S struct {
	hits ctr
	// misses is only ever accessed atomically: silent.
	misses ctr
}

func bump(s *S) {
	s.hits.Add(1)
	s.misses.Add(1)
}

func snapshot(s *S) int64 {
	return s.hits.Load() + s.misses.Load()
}

func leak(s *S) *ctr {
	return &s.hits // want `plain access to S\.hits, which is accessed atomically elsewhere`
}

// Ptr holds a *pointer* to an atomic: the ops target the pointed-to
// value, so plainly reading or comparing the pointer itself is exempt.
type Ptr struct {
	c *atomic.Int64
}

func ptrBump(p *Ptr) {
	p.c.Add(1)
}

func ptrSame(a, b *Ptr) bool {
	return a.c == b.c
}

// G's plain access is deliberate: g.mu also serialises every atomic
// reader, so the mixed access is waived with the protecting lock named.
type G struct {
	mu sync.Mutex
	v  int64
}

func observe(g *G) int64 {
	return atomic.LoadInt64(&g.v)
}

func resetLocked(g *G) {
	g.mu.Lock()
	g.v = 0 //lint:allow atomicmix plain write serialised by g.mu, which every atomic reader also holds in this fixture
	g.mu.Unlock()
}
