package atomicmix

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "atomfix")
}
