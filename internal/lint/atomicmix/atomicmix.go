// Package atomicmix enforces the all-or-nothing rule for atomic fields:
// a struct field accessed through sync/atomic anywhere in the package
// must never be read or written plainly elsewhere. A plain load next to
// an atomic store is a data race the race detector only catches if a
// test happens to interleave the two; the analyzer catches it at build
// time, package-wide — the atomic side may sit in Stats() while the
// plain side hides in a helper three files away.
//
// Both access styles count as atomic: pointer-style calls
// (atomic.AddInt64(&s.f, 1)) and methods on atomic-typed or
// atomic-embedding fields (s.f.Add(1), including methods promoted
// through an embedded atomic.Int64 such as the engine's padded counter
// type). Every other selection of such a field — a read, a write, a
// copy, taking its address for non-atomic use — is reported.
//
// The rare legitimate mix is a plain access protected by a lock that
// also serialises every atomic access; such an access is waived with
// //lint:allow atomicmix <reason>, and the reason must name the
// protecting lock.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
)

// Analyzer is the atomicmix check.
var Analyzer = &lint.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed through sync/atomic anywhere must never be read or written plainly elsewhere",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// The facts layer records every sync/atomic field access in the
	// package. Fields with at least one are the protected set; the
	// recorded positions identify the atomic access sites themselves so
	// the plain-access walk below can skip them.
	atomicFields := make(map[*types.Var]lint.AtomicUse)
	atomicSites := make(map[token.Pos]bool)
	for _, ff := range pass.Facts.Funcs {
		if ff.TestFile() {
			continue
		}
		for _, au := range ff.Atomics {
			// A pointer-typed field (*atomic.Int64) is exempt: the
			// atomic ops target the pointed-to value, while a plain
			// read of the field only copies the pointer — no race with
			// the atomic side.
			if _, isPtr := au.Field.Type().(*types.Pointer); isPtr {
				continue
			}
			if _, ok := atomicFields[au.Field]; !ok {
				atomicFields[au.Field] = au
			}
			atomicSites[au.Pos] = true
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}
	var diags []finding
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel.Pos()] {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			ev, isAtomic := atomicFields[field]
			if !isAtomic {
				return true
			}
			diags = append(diags, finding{pos: sel.Pos(), field: field, ev: ev})
			return true
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	for _, d := range diags {
		evPos := pass.Fset.Position(d.ev.Pos)
		owner := ownerName(d.field)
		pass.Reportf(d.pos,
			"plain access to %s.%s, which is accessed atomically elsewhere (%s at %s:%d): every access must go through sync/atomic, or carry //lint:allow atomicmix naming the protecting lock",
			owner, d.field.Name(), d.ev.Via, shortFile(evPos.Filename), evPos.Line)
	}
	return nil
}

type finding struct {
	pos   token.Pos
	field *types.Var
	ev    lint.AtomicUse
}

// ownerName names the struct type the field belongs to, best-effort.
func ownerName(field *types.Var) string {
	if field.Pkg() == nil {
		return "?"
	}
	// Walk the package scope for a named struct type declaring the
	// field; fall back to the package name.
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name()
			}
		}
	}
	return field.Pkg().Name()
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
