package hotpathalloc

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestHotpathalloc(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "hotfix")
}
