// Package hotfix is a hotpathalloc fixture: every allocating construct
// the analyzer tracks, seeded inside annotated (and reachable)
// functions, next to the pooled-buffer idioms the engine's hot path
// actually uses, which must stay clean.
package hotfix

import (
	"errors"
	"fmt"
	"sync"
)

type bufs struct {
	ids []uint64
}

type event struct{ id uint64 }

type engine struct {
	pool    sync.Pool
	observe func(any)
	items   map[uint64][]byte
}

// --- seeded violations ---------------------------------------------------

// Hot is an annotated root containing one of each allocating construct.
//
//prefetch:hotpath
func (e *engine) Hot(id uint64) {
	buf := make([]uint64, 0, 8) // want `make in hot path engine\.Hot`
	buf = append(buf, id)       // want `append into a non-pooled slice in hot path engine\.Hot`
	p := new(bufs)              // want `new in hot path engine\.Hot`
	b := &bufs{}                // want `heap-escaping composite literal \(&T\{\.\.\.\}\) in hot path engine\.Hot`
	ids := []uint64{id}         // want `slice/map literal in hot path engine\.Hot`
	go e.drop(id)               // want `goroutine launch in hot path engine\.Hot`
	f := func() {}              // want `function literal \(closure allocation\) in hot path engine\.Hot`
	s := fmt.Sprintf("%d", id)  // want `fmt\.Sprintf call in hot path engine\.Hot`
	err := errors.New("boom")   // want `errors\.New call in hot path engine\.Hot`
	bs := []byte("payload")     // want `string<->\[\]byte conversion in hot path engine\.Hot`
	e.observe(id)               // want `interface boxing of non-pointer value in hot path engine\.Hot`
	_, _, _, _, _, _, _, _ = buf, p, b, ids, f, s, err, bs
}

// drop is reached from Hot's go statement; it must stay clean so the
// only finding on that line is the goroutine launch itself.
func (e *engine) drop(id uint64) {
	delete(e.items, id)
}

// spill is un-annotated but reachable from Hot2: the closure over
// same-package calls is checked too.
func (e *engine) spill(id uint64) {
	e.items[id] = make([]byte, 1) // want `make in hot path engine\.spill \(reachable from //prefetch:hotpath engine\.Hot2\)`
}

// Hot2 itself is clean; its callee is not.
//
//prefetch:hotpath
func (e *engine) Hot2(id uint64) {
	e.spill(id)
}

// --- clean idioms --------------------------------------------------------

// CleanReuse appends into the caller's buffer and into a pooled
// scratch — the PredictTopInto discipline. No findings.
//
//prefetch:hotpath
func (e *engine) CleanReuse(id uint64, dst []uint64) []uint64 {
	out := dst[:0]
	out = append(out, id)
	sc := e.pool.Get().(*bufs)
	sc.ids = sc.ids[:0]
	sc.ids = append(sc.ids, id)
	e.pool.Put(sc)
	return out
}

// CleanValue returns a value composite literal: struct values travel in
// registers or on the stack, no allocation.
//
//prefetch:hotpath
func (e *engine) CleanValue(id uint64) event {
	return event{id: id}
}

// getBufs is the pool-accessor shape: every return path yields a
// pool-derived value, so its callers inherit the pooled provenance.
func (e *engine) getBufs() *bufs {
	return e.pool.Get().(*bufs)
}

type scratch struct {
	groups [][]uint64
}

// CleanAccessor draws its buffers through the accessor instead of a
// direct pool.Get, and reslices a range variable over a pooled table —
// both stay clean.
//
//prefetch:hotpath
func (e *engine) CleanAccessor(id uint64, sc *scratch) {
	b := e.getBufs()
	b.ids = b.ids[:0]
	b.ids = append(b.ids, id)
	e.pool.Put(b)
	for i, g := range sc.groups {
		g = g[:0]
		g = append(g, id)
		sc.groups[i] = g
	}
}

// ColdError allocates on a branch that never runs on the hit path —
// the deliberate exception shape, waived with a reason.
//
//prefetch:hotpath
func (e *engine) ColdError(id uint64) error {
	if id == 0 {
		//lint:allow hotpathalloc cold invalid-id branch, never taken on the hit path
		return errors.New("zero id")
	}
	return nil
}

// coldSetup allocates freely: not annotated and not reachable from any
// annotated root, so it is out of scope.
func (e *engine) coldSetup() {
	e.items = make(map[uint64][]byte)
	e.observe = func(any) {}
}
