// Package hotpathalloc turns the engine's 0-allocs/op benchmark result
// into a compile-time property: a function annotated //prefetch:hotpath
// — and every same-package function it (transitively) calls — must not
// contain allocating constructs:
//
//   - make, new, function literals (closures), go statements
//   - composite literals whose address is taken, and slice/map literals
//   - append into a slice that is neither a caller-supplied buffer nor
//     drawn from a sync.Pool (growth of a fresh slice is a per-call
//     allocation; pooled buffers amortise to zero)
//   - boxing a non-pointer value into an interface (pointers ride in
//     the interface word; values are heap-copied)
//   - fmt.* and errors.New calls (both allocate on every call)
//   - string<->[]byte/[]rune conversions
//
// Buffer provenance is tracked through local dataflow: reslicing,
// field/element selection, range variables, and same-package helpers
// that return pool-derived values (a getBufs-style accessor) all
// inherit the pool/param discipline, so append into such buffers is
// clean.
//
// The analysis is same-package: calls that cross a package boundary are
// the callee's responsibility (annotate the callee in its own package —
// that is why the PredictTopInto implementations carry their own
// annotations), and interface calls dispatch to whatever the caller
// plugged in. Deliberate allocations on an annotated path (a cold error
// branch, model growth, a pool's one-time construction) are waived with
// //lint:allow hotpathalloc <reason>.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "//prefetch:hotpath functions (and same-package callees) must not allocate",
	Run:  run,
}

// checker carries the per-package state: the function index, and the
// memoised provenance and returns-pooled analyses.
type checker struct {
	pass       *lint.Pass
	decls      map[types.Object]*ast.FuncDecl
	provs      map[*ast.FuncDecl]map[types.Object]provenance
	retPooled  map[*ast.FuncDecl]bool
	inProgress map[*ast.FuncDecl]bool
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass:       pass,
		decls:      make(map[types.Object]*ast.FuncDecl),
		provs:      make(map[*ast.FuncDecl]map[types.Object]provenance),
		retPooled:  make(map[*ast.FuncDecl]bool),
		inProgress: make(map[*ast.FuncDecl]bool),
	}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			c.decls[obj] = fd
			if lint.HasDirective(fd.Doc, lint.HotpathDirective) {
				roots = append(roots, fd)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// BFS the same-package static call graph from the annotated roots,
	// remembering which root reached each function for the report.
	type reached struct {
		fd   *ast.FuncDecl
		root string
	}
	visited := make(map[types.Object]bool)
	var queue []reached
	for _, fd := range roots {
		obj := pass.TypesInfo.Defs[fd.Name]
		visited[obj] = true
		queue = append(queue, reached{fd, funcDisplayName(fd)})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		c.checkFunc(cur.fd, cur.root)
		ast.Inspect(cur.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := c.calleeObj(call)
			fn, ok := callee.(*types.Func)
			if !ok || fn.Pkg() != pass.Pkg {
				return true
			}
			if fd, ok := c.decls[callee]; ok && !visited[callee] {
				visited[callee] = true
				queue = append(queue, reached{fd, cur.root})
			}
			return true
		})
	}
	return nil
}

func (c *checker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// provenance classifies where a slice's backing memory comes from.
type provenance int

const (
	provUnknown provenance = iota
	provParam              // caller-supplied buffer
	provPooled             // drawn from a sync.Pool
	provFresh              // locally allocated (already flagged at its make)
)

// checkFunc flags allocating constructs in one reached function.
func (c *checker) checkFunc(fd *ast.FuncDecl, root string) {
	pass := c.pass
	where := funcDisplayName(fd)
	via := ""
	if where != root {
		via = " (reachable from //prefetch:hotpath " + root + ")"
	}
	prov := c.provenanceOf(fd)
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path %s%s", what, where, via)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "goroutine launch")
			return true
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure allocation)")
			return false // its body is the closure's problem
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "heap-escaping composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "slice/map literal")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, prov, report)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, prov map[types.Object]provenance, report func(token.Pos, string)) {
	pass := c.pass
	// Builtins and conversions first.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id] {
		case types.Universe.Lookup("make"):
			report(call.Pos(), "make")
			return
		case types.Universe.Lookup("new"):
			report(call.Pos(), "new")
			return
		case types.Universe.Lookup("append"):
			if len(call.Args) > 0 {
				switch c.exprProv(prov, call.Args[0]) {
				case provParam, provPooled:
				default:
					report(call.Pos(), "append into a non-pooled slice")
				}
			}
			return
		}
	}
	// String conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type.Underlying(), pass.TypesInfo.Types[call.Args[0]].Type
		if from != nil && stringBytesConversion(to, from.Underlying()) {
			report(call.Pos(), "string<->[]byte conversion")
			return
		}
	}
	// fmt / errors.New.
	if fn, ok := c.calleeObj(call).(*types.Func); ok && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt":
			report(call.Pos(), "fmt."+fn.Name()+" call")
			return
		case fn.Pkg().Path() == "errors" && fn.Name() == "New":
			report(call.Pos(), "errors.New call")
			return
		}
	}
	// Interface boxing of non-pointer arguments.
	c.checkBoxing(call, report)
}

// checkBoxing flags arguments whose static type is a concrete
// non-pointer value passed into an interface parameter.
func (c *checker) checkBoxing(call *ast.CallExpr, report func(token.Pos, string)) {
	pass := c.pass
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch u := at.Underlying().(type) {
		case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // pointer-shaped: rides in the interface word
		case *types.Basic:
			if u.Kind() == types.UntypedNil {
				continue
			}
		}
		report(arg.Pos(), "interface boxing of non-pointer value")
	}
}

func stringBytesConversion(to, from types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(to) && isByteish(from)) || (isByteish(to) && isString(from))
}

// provenanceOf runs (and memoises) one forward pass over the function
// assigning each local object a buffer provenance. Parameters
// (including the receiver) are provParam; pool.Get results — direct or
// through a same-package accessor — are provPooled; make and literals
// are provFresh; provenance flows through =, :=, range variables,
// reslicing, and field/element selection of a tracked base.
func (c *checker) provenanceOf(fd *ast.FuncDecl) map[types.Object]provenance {
	if p, ok := c.provs[fd]; ok {
		return p
	}
	pass := c.pass
	prov := make(map[types.Object]provenance)
	c.provs[fd] = prov
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					prov[obj] = provParam
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)

	record := func(id *ast.Ident, p provenance) {
		if p == provUnknown || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil && prov[obj] == provUnknown {
			prov[obj] = p
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, c.exprProv(prov, n.Rhs[i]))
				}
			}
		case *ast.RangeStmt:
			// A range value aliases an element of the ranged
			// container, so it shares the container's discipline.
			if id, ok := n.Value.(*ast.Ident); ok {
				record(id, c.exprProv(prov, n.X))
			}
		}
		return true
	})
	return prov
}

func (c *checker) exprProv(prov map[types.Object]provenance, e ast.Expr) provenance {
	pass := c.pass
	switch e := e.(type) {
	case *ast.Ident:
		return prov[pass.TypesInfo.Uses[e]]
	case *ast.SliceExpr:
		return c.exprProv(prov, e.X)
	case *ast.SelectorExpr:
		// A field of a pooled or caller-supplied struct shares its
		// owner's backing discipline (bufs.cands on a pooled bufs).
		return c.exprProv(prov, e.X)
	case *ast.IndexExpr:
		// An element of a pooled or caller-supplied table likewise
		// (groups[b] on a pooled scratch's group table).
		return c.exprProv(prov, e.X)
	case *ast.TypeAssertExpr:
		return c.exprProv(prov, e.X)
	case *ast.CallExpr:
		if m, ok := c.poolMethodName(e); ok && m == "Get" {
			return provPooled
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			u := pass.TypesInfo.Uses[id]
			if u == types.Universe.Lookup("make") || u == types.Universe.Lookup("new") {
				return provFresh
			}
		}
		// A same-package accessor that returns pool-derived values
		// (getBufs, getRoute) propagates the pool discipline.
		if fn, ok := c.calleeObj(e).(*types.Func); ok && fn.Pkg() == pass.Pkg {
			if fd, ok := c.decls[types.Object(fn)]; ok && c.returnsPooled(fd) {
				return provPooled
			}
		}
		return provUnknown
	case *ast.CompositeLit:
		return provFresh
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.exprProv(prov, e.X)
		}
	case *ast.StarExpr:
		return c.exprProv(prov, e.X)
	case *ast.ParenExpr:
		return c.exprProv(prov, e.X)
	}
	return provUnknown
}

// returnsPooled reports whether every return path of fd yields
// pool-derived values — the getBufs/getRoute accessor shape. Memoised;
// recursion through mutually-calling accessors resolves conservatively
// to false.
func (c *checker) returnsPooled(fd *ast.FuncDecl) bool {
	if v, ok := c.retPooled[fd]; ok {
		return v
	}
	if c.inProgress[fd] {
		return false
	}
	c.inProgress[fd] = true
	defer delete(c.inProgress, fd)
	prov := c.provenanceOf(fd)
	pooled := false
	all := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if c.exprProv(prov, r) == provPooled {
					pooled = true
				} else {
					all = false
				}
			}
		}
		return true
	})
	v := pooled && all
	c.retPooled[fd] = v
	return v
}

func (c *checker) poolMethodName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return "", false
	}
	return fn.Name(), true
}
