package lint

import "testing"

// TestLoadModulePackage proves the stdlib-only source loader can
// type-check a real module package with stdlib imports (context, fmt,
// sync, time, reflect, slices — the prefetcher package pulls them all).
func TestLoadModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("repro/prefetcher")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "prefetcher" {
		t.Fatalf("package name = %q, want prefetcher", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if pkg.Types.Scope().Lookup("Engine") == nil {
		t.Fatal("Engine not found in package scope")
	}
}

// TestLoadStdlibVendoredImport proves the loader resolves the stdlib's
// bundled third-party dependencies: package net imports
// golang.org/x/net/dns/dnsmessage by its unvendored path, which lives
// under GOROOT/src/vendor — a tree go/build only consults for files
// inside GOROOT. The httpfetch adapter and the daemon pull net/http
// (and through it net) into the module's import closure, so the
// whole-tree gate depends on this resolution.
func TestLoadStdlibVendoredImport(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the net package from source")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("net")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("Dialer") == nil {
		t.Fatal("net.Dialer not found in package scope")
	}
}

// TestModulePackages checks pattern expansion against the module tree.
func TestModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.ModulePackages("./...")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/prefetcher":       false,
		"repro/prefetcher/fetch": false,
		"repro/internal/lint":    false,
		"repro/cmd/prefetchvet":  false,
	}
	for _, p := range pkgs {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen && p != "repro/cmd/prefetchvet" { // not written yet in early runs
			t.Errorf("ModulePackages missed %s (got %v)", p, pkgs)
		}
	}
	sub, err := l.ModulePackages("./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0] != "repro/internal/lint" {
		t.Fatalf("./internal/lint pattern matched %v", sub)
	}
}
