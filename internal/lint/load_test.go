package lint

import "testing"

// TestLoadModulePackage proves the stdlib-only source loader can
// type-check a real module package with stdlib imports (context, fmt,
// sync, time, reflect, slices — the prefetcher package pulls them all).
func TestLoadModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("repro/prefetcher")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "prefetcher" {
		t.Fatalf("package name = %q, want prefetcher", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if pkg.Types.Scope().Lookup("Engine") == nil {
		t.Fatal("Engine not found in package scope")
	}
}

// TestModulePackages checks pattern expansion against the module tree.
func TestModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.ModulePackages("./...")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/prefetcher":       false,
		"repro/prefetcher/fetch": false,
		"repro/internal/lint":    false,
		"repro/cmd/prefetchvet":  false,
	}
	for _, p := range pkgs {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen && p != "repro/cmd/prefetchvet" { // not written yet in early runs
			t.Errorf("ModulePackages missed %s (got %v)", p, pkgs)
		}
	}
	sub, err := l.ModulePackages("./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0] != "repro/internal/lint" {
		t.Fatalf("./internal/lint pattern matched %v", sub)
	}
}
