package lib

import "context"

// Test files are exempt: tests are process roots.
func helperForTests() error {
	return work(context.Background())
}
