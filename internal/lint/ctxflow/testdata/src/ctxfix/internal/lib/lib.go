// Package lib is a ctxflow fixture: a library package that mints root
// contexts where it should thread them.
package lib

import (
	"context"
	"time"
)

// Bad mints a fresh root context on a request path.
func Bad() error {
	ctx := context.Background() // want `context.Background\(\) in library package`
	return work(ctx)
}

// BadTODO reaches for TODO instead.
func BadTODO() error {
	return work(context.TODO()) // want `context.TODO\(\) in library package`
}

// Good threads the caller's context.
func Good(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(ctx)
}

// Waived is a deliberate lifecycle root: the waiver (with its mandatory
// reason) suppresses the finding.
func Waived() (context.Context, context.CancelFunc) {
	//lint:allow ctxflow engine-owned lifecycle root, cancelled in Close
	return context.WithCancel(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
