// Command tool is a ctxflow fixture: commands are process roots, so
// minting Background here is idiomatic and must not be flagged.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
