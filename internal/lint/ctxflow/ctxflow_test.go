package ctxflow

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer,
		"ctxfix/internal/lib",
		"ctxfix/cmd/tool",
	)
}

func TestLibraryPackage(t *testing.T) {
	cases := map[string]bool{
		"repro/prefetcher":            true,
		"repro/prefetcher/fetch":      true,
		"repro/internal/cache":        true,
		"repro/cmd/prefetchbench":     false,
		"repro/examples/quickstart":   false,
		"repro":                       false,
		"ctxfix/internal/lib":         true,
		"example.com/cmd/internal/x":  false, // cmd wins: a command's internals are still a process root
		"example.com/pkg/prefetcher":  true,
		"example.com/other/pkge/deep": false,
	}
	for path, want := range cases {
		if got := libraryPackage(path); got != want {
			t.Errorf("libraryPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
