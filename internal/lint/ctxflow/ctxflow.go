// Package ctxflow forbids minting fresh root contexts inside library
// packages: context.Background() and context.TODO() sever the caller's
// cancellation and deadline chain, which matters once a server fronts
// the engine — a request that hangs in a library-minted context cannot
// be cancelled by the request that caused it.
//
// The check applies to library packages only — import paths with a
// "prefetcher" or "internal" element. Commands, examples and test files
// are the process roots where Background() legitimately originates.
// Deliberate roots (an engine-owned lifecycle context cancelled in
// Close) are waived with //lint:allow ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO in library packages; contexts must be threaded from callers",
	Run:  run,
}

// libraryPackage reports whether the import path names a library
// package: any path element equal to "prefetcher" or "internal" (so
// repro/prefetcher/fetch and repro/internal/... qualify, repro/cmd/...
// and examples do not). The classification is shared with goroutinelife
// and chanlife through lint.LibraryPackage.
func libraryPackage(path string) bool {
	return lint.LibraryPackage(path)
}

func run(pass *lint.Pass) error {
	if !libraryPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library package %s: thread a ctx from the caller (or //lint:allow ctxflow <reason> for an owned lifecycle root)",
				sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
