package lint

// This file is the package-level dataflow layer the concurrency
// analyzers (lockorder, atomicmix, goroutinelife, chanlife) share: for
// every function in a package it extracts the concurrency-relevant
// *facts* — which lock classes the function acquires and releases and
// in what source order, which same-package functions it calls and
// where, which struct fields it touches through sync/atomic, which
// goroutines it spawns, and which channels it closes. The per-function
// analyzers of the original kit are deliberately lexical; the facts
// layer is what lets an analyzer follow a lock across a call edge
// (lockorder's cross-function acquisition graph) or pair an atomic
// access in one function with a plain access in another (atomicmix).
//
// The extraction is a source-order walk, not a CFG: events appear in
// the order they appear in the text, which over-approximates some
// paths (an early-return arm's Unlock is seen by the code after the
// branch) and under-approximates others. That trade is deliberate —
// the kit favours few, high-confidence findings over exhaustive ones,
// and the engine's lock discipline is straight-line enough that source
// order tracks control flow closely.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A LockClass identifies one lock *class*: every instance of a given
// mutex field (all 64 shard.mu's, all 16 estimatorStripe.mu's) shares
// one class, which is the granularity lock-order checking needs — an
// order inversion between two instances of different classes is a
// deadlock regardless of which instances are involved. Fields are
// keyed "pkgpath.Type.field", package-level vars "pkgpath.var", and
// function-local mutexes by declaration site.
type LockClass string

// Short returns the class with the package path prefix stripped when
// it names pkgPath — the form diagnostics print.
func (c LockClass) Short(pkgPath string) string {
	return strings.TrimPrefix(string(c), pkgPath+".")
}

// EventKind enumerates the source-order events a function body yields.
type EventKind uint8

const (
	// EvAcquire is a Lock/RLock call on a sync mutex.
	EvAcquire EventKind = iota
	// EvRelease is an Unlock/RUnlock call. A deferred unlock yields no
	// release event: the lock stays held for the rest of the body.
	EvRelease
	// EvCall is a statically-resolved function or method call.
	EvCall
	// EvSpawn is a go statement; the goroutine inherits no locks.
	EvSpawn
)

// An Event is one concurrency-relevant action in source order.
type Event struct {
	Kind   EventKind
	Lock   LockClass   // EvAcquire / EvRelease
	RLock  bool        // the acquire/release is the read side of an RWMutex
	Callee *types.Func // EvCall: the resolved callee (any package)
	Spawn  *GoSpawn    // EvSpawn
	Pos    token.Pos
}

// A GoSpawn is one go statement.
type GoSpawn struct {
	Stmt *ast.GoStmt
	// Callee is the static callee for `go f(...)` / `go x.m(...)`;
	// nil for function literals and dynamic calls.
	Callee *types.Func
	// Body is the literal's body for `go func(){...}`.
	Body *ast.BlockStmt
	Pos  token.Pos
}

// An AtomicUse is one struct-field access through sync/atomic — either
// a pointer-style call (atomic.AddInt64(&s.f, 1)) or a method on an
// atomic-typed or atomic-embedding field (s.f.Add(1)).
type AtomicUse struct {
	Field *types.Var
	Pos   token.Pos
	Via   string // e.g. "atomic.AddInt64" or "Add"
}

// A ChanClose is one close(ch) site.
type ChanClose struct {
	Pos token.Pos
	Fn  *FuncFacts // the function doing the closing
}

// FuncFacts is one function's (or function literal's) extracted facts.
type FuncFacts struct {
	// Display names the function for diagnostics: "(*Engine).Get",
	// "New", or "func literal in (*Fabric).Fetch".
	Display string
	// Obj is the declared function's object; nil for literals.
	Obj  *types.Func
	Body *ast.BlockStmt
	// Events are the body's concurrency events in source order,
	// excluding everything inside nested function literals (each
	// literal has its own FuncFacts).
	Events  []Event
	Spawns  []*GoSpawn
	Atomics []AtomicUse
	// testFile marks facts from _test.go files, which every consumer
	// skips (the invariants guard production code).
	testFile bool
}

// Facts is one package's extracted concurrency facts.
type Facts struct {
	// Funcs lists every function and function literal, declaration
	// order, test files included (marked).
	Funcs []*FuncFacts
	// ByObj resolves a statically-called *types.Func to its facts, for
	// call-edge propagation within the package.
	ByObj map[*types.Func]*FuncFacts
	// Closed maps a channel key (see ChanKey) to every close site in
	// the package — the close-barrier evidence goroutinelife and
	// chanlife consume.
	Closed map[string][]ChanClose
}

// PackageFacts extracts (and the caller caches) the facts for one
// loaded package. RunAnalyzers computes this once per package and
// hands it to every analyzer through Pass.Facts.
func PackageFacts(pkg *Package) *Facts {
	f := &Facts{
		ByObj:  make(map[*types.Func]*FuncFacts),
		Closed: make(map[string][]ChanClose),
	}
	c := &factCollector{
		fset:  pkg.Fset,
		info:  pkg.Info,
		facts: f,
	}
	for _, file := range pkg.Files {
		isTest := strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := &FuncFacts{
				Display:  funcDisplay(fd),
				Body:     fd.Body,
				testFile: isTest,
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				ff.Obj = obj
				f.ByObj[obj] = ff
			}
			f.Funcs = append(f.Funcs, ff)
			c.collect(ff, fd.Body, isTest)
		}
	}
	return f
}

// TestFile reports whether these facts came from a _test.go file.
func (ff *FuncFacts) TestFile() bool { return ff.testFile }

func funcDisplay(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteByte('(')
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteByte('*')
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
	default:
		b.WriteString("?")
	}
	fmt.Fprintf(&b, ").%s", fd.Name.Name)
	return b.String()
}

type factCollector struct {
	fset  *token.FileSet
	info  *types.Info
	facts *Facts
}

// collect walks one function body in source order, appending events to
// ff and creating separate FuncFacts for nested function literals.
func (c *factCollector) collect(ff *FuncFacts, body *ast.BlockStmt, isTest bool) {
	// goCalls marks call expressions that are the operand of a go
	// statement: they run concurrently and must not become EvCall
	// edges. deferCalls marks deferred calls: a deferred Unlock keeps
	// the lock held to the end of the body, and a deferred call runs at
	// return, not here.
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &FuncFacts{
				Display:  "func literal in " + ff.Display,
				Body:     n.Body,
				testFile: isTest,
			}
			c.facts.Funcs = append(c.facts.Funcs, lit)
			c.collect(lit, n.Body, isTest)
			return false
		case *ast.GoStmt:
			goCalls[n.Call] = true
			sp := &GoSpawn{Stmt: n, Pos: n.Pos()}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				sp.Body = lit.Body
			} else {
				sp.Callee = c.staticCallee(n.Call)
			}
			ff.Spawns = append(ff.Spawns, sp)
			ff.Events = append(ff.Events, Event{Kind: EvSpawn, Spawn: sp, Pos: n.Pos()})
			return true
		case *ast.DeferStmt:
			deferCalls[n.Call] = true
			return true
		case *ast.CallExpr:
			c.call(ff, n, goCalls[n], deferCalls[n])
			return true
		}
		return true
	})
}

// call classifies one call expression into events and atomic uses.
func (c *factCollector) call(ff *FuncFacts, call *ast.CallExpr, spawned, deferred bool) {
	// close(ch): record the channel as closed in this package.
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 1 {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			if key, ok := ChanKey(c.info, c.fset, call.Args[0]); ok {
				c.facts.Closed[key] = append(c.facts.Closed[key], ChanClose{Pos: call.Pos(), Fn: ff})
			}
			return
		}
	}
	sel, _ := call.Fun.(*ast.SelectorExpr)
	fn := c.staticCallee(call)
	if fn == nil {
		return
	}
	pkg := fn.Pkg()
	if pkg != nil && pkg.Path() == "sync" && sel != nil {
		switch fn.Name() {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if recvIsMutex(fn) {
				if class, ok := c.lockClass(ff, sel.X); ok {
					kind := EvAcquire
					if fn.Name() == "Unlock" || fn.Name() == "RUnlock" {
						if deferred {
							// Deferred unlock: held to the end of the
							// body; no release event.
							return
						}
						kind = EvRelease
					}
					if !spawned {
						ff.Events = append(ff.Events, Event{
							Kind:  kind,
							Lock:  class,
							RLock: fn.Name() == "RLock" || fn.Name() == "RUnlock",
							Pos:   call.Pos(),
						})
					}
					return
				}
			}
		}
	}
	if pkg != nil && pkg.Path() == "sync/atomic" {
		c.atomicUse(ff, call, sel, fn)
		return
	}
	if !spawned && !deferred {
		ff.Events = append(ff.Events, Event{Kind: EvCall, Callee: fn, Pos: call.Pos()})
	}
}

// atomicUse records the struct field (if any) behind one sync/atomic
// call: the &s.f operand of a pointer-style call, or the receiver of a
// method on an atomic-typed (or atomic-embedding) field.
func (c *factCollector) atomicUse(ff *FuncFacts, call *ast.CallExpr, sel *ast.SelectorExpr, fn *types.Func) {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Method style: s.f.Add(1) — sel.X is the field expression
		// (possibly through an embedded atomic type).
		if sel == nil {
			return
		}
		if field := fieldVar(c.info, sel.X); field != nil {
			ff.Atomics = append(ff.Atomics, AtomicUse{Field: field, Pos: sel.X.Pos(), Via: fn.Name()})
		}
		return
	}
	// Function style: atomic.AddInt64(&s.f, 1) — any &field argument.
	for _, arg := range call.Args {
		un, ok := arg.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		// Pos is the field expression itself (not the &), so consumers
		// can match the selector node by position.
		if field := fieldVar(c.info, un.X); field != nil {
			ff.Atomics = append(ff.Atomics, AtomicUse{Field: field, Pos: un.X.Pos(), Via: "atomic." + fn.Name()})
		}
	}
}

// staticCallee resolves a call's target function, or nil for dynamic
// calls (function values, interface methods resolve to the interface
// method object, which has no body in this package's facts).
func (c *factCollector) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := c.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvIsMutex reports whether fn's receiver is one of sync's lock
// types.
func recvIsMutex(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

// lockClass keys the mutex behind expr (the receiver of a Lock/Unlock
// call): struct fields by owner type, package vars by name, locals by
// declaration site.
func (c *factCollector) lockClass(ff *FuncFacts, expr ast.Expr) (LockClass, bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[e]; ok && s.Kind() == types.FieldVal {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return LockClass(fmt.Sprintf("%s.%s.%s",
					named.Obj().Pkg().Path(), named.Obj().Name(), e.Sel.Name)), true
			}
		}
		// Qualified package-level var (pkg.Mu).
		if v, ok := c.info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			return LockClass(v.Pkg().Path() + "." + v.Name()), true
		}
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.IsField() {
				// Unqualified field in a method with an embedded mutex:
				// key by the receiver-owning struct is unavailable here;
				// fall back to the field object's declaration site.
				return LockClass(fmt.Sprintf("%s@%s", v.Name(), c.fset.Position(v.Pos()))), true
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return LockClass(v.Pkg().Path() + "." + v.Name()), true
			}
			// Function-local mutex: keyed by declaration position so two
			// locals of the same name in different functions stay
			// distinct.
			return LockClass(fmt.Sprintf("%s@%s", v.Name(), c.fset.Position(v.Pos()))), true
		}
	case *ast.IndexExpr:
		// mu in a slice/array element: key by the element expression's
		// owner if it is itself a selector (stripes[i].mu resolves via
		// the SelectorExpr case above; a bare muArr[i] keys by the
		// array).
		return c.lockClass(ff, e.X)
	case *ast.ParenExpr:
		return c.lockClass(ff, e.X)
	case *ast.StarExpr:
		return c.lockClass(ff, e.X)
	}
	return "", false
}

// fieldVar resolves expr to the struct-field variable it selects, or
// nil when expr is not a field selection.
func fieldVar(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// ChanKey produces a stable identity for a channel-valued expression:
// struct fields key as "pkgpath.Type.field", package-level vars as
// "pkgpath.var", locals by declaration site. Reports ok=false for
// expressions with no stable identity (map elements, call results).
func ChanKey(info *types.Info, fset *token.FileSet, expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Path(), named.Obj().Name(), e.Sel.Name), true
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), true
			}
			return fmt.Sprintf("%s@%s", v.Name(), fset.Position(v.Pos())), true
		}
	case *ast.ParenExpr:
		return ChanKey(info, fset, e.X)
	}
	return "", false
}

// LibraryPackage reports whether the import path names a library
// package — code linked into arbitrary callers, where the
// goroutine-lifecycle and channel-discipline invariants apply. A
// process root (cmd/, examples/, the module root) manages its own
// lifetime. Kept in sync with ctxflow's notion of a library package.
func LibraryPackage(path string) bool {
	rest := path
	for rest != "" {
		elem := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			elem, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		switch elem {
		case "prefetcher", "internal":
			return true
		case "cmd", "examples", "testdata":
			return false
		}
	}
	return false
}
