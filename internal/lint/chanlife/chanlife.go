// Package chanlife enforces the package's channel discipline, two
// rules with one goal: no send that can panic or hang after shutdown.
//
// Rule 1 — no send on a channel another function may close. Sending and
// closing from different functions is the classic shutdown race: the
// closer wins, the sender panics. The closer should be the only writer
// (the close-barrier channels goroutinelife endorses are receive-only
// for everyone else).
//
// Rule 2 — no unconditional blocking send in library code. A bare
// `ch <- v` with no select escape blocks forever once the receiver is
// gone; after Close that is a leaked goroutine. A send passes if it
// sits in a select with a default or a ctx.Done()/close-barrier receive
// arm, or if the channel is created buffered in the same function (the
// fabric's hedge results channel: capacity = attempts, so every
// in-flight attempt can deposit its result and exit even when nobody is
// listening any more).
//
// Commands, examples and test files are exempt. A deliberate blocking
// send (a synchronous rendezvous that is the contract) is waived with
// //lint:allow chanlife <reason>.
package chanlife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the chanlife check.
var Analyzer = &lint.Analyzer{
	Name: "chanlife",
	Doc:  "no send on a channel another function may close; no unconditional blocking send in library code",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "main" || !lint.LibraryPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	buffered := bufferedLocals(pass.TypesInfo, fd.Body)
	// selectOf maps a send that is a select's comm clause to its select.
	selectOf := map[*ast.SendStmt]*ast.SelectStmt{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				selectOf[send] = sel
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		name := chanDisplay(pass, send.Chan)
		// Rule 1: a close in a different function races this send.
		if key, ok := lint.ChanKey(pass.TypesInfo, pass.Fset, send.Chan); ok {
			if closer := foreignCloser(pass, key, send.Pos()); closer != nil {
				pass.Reportf(send.Pos(),
					"send on %s, which %s closes: a close racing this send panics the sender — make the closer the only writer, or prove exclusion and waive with //lint:allow chanlife <reason>",
					name, closer.Display)
				return true
			}
		}
		// Rule 2: the send must be able to bail out.
		if sel, ok := selectOf[send]; ok && selectEscapes(pass, sel) {
			return true
		}
		if obj := chanObject(pass.TypesInfo, send.Chan); obj != nil && buffered[obj] {
			return true
		}
		pass.Reportf(send.Pos(),
			"unconditional send on %s in library code can block forever once the receiver is gone: add a select with a default or ctx.Done()/close-barrier arm, or buffer the channel where it is created (//lint:allow chanlife <reason> if blocking is the contract)",
			name)
		return true
	})
}

// foreignCloser returns the facts of a function that closes the channel
// key, if that function is not the one containing pos.
func foreignCloser(pass *lint.Pass, key string, pos token.Pos) *lint.FuncFacts {
	closes := pass.Facts.Closed[key]
	if len(closes) == 0 {
		return nil
	}
	sender := enclosingFunc(pass, pos)
	for _, c := range closes {
		if c.Fn != sender {
			return c.Fn
		}
	}
	return nil
}

// enclosingFunc finds the innermost FuncFacts whose body contains pos.
func enclosingFunc(pass *lint.Pass, pos token.Pos) *lint.FuncFacts {
	var best *lint.FuncFacts
	for _, ff := range pass.Facts.Funcs {
		if ff.Body == nil || pos < ff.Body.Pos() || pos > ff.Body.End() {
			continue
		}
		if best == nil || ff.Body.Pos() > best.Body.Pos() {
			best = ff
		}
	}
	return best
}

// selectEscapes reports whether the select can always proceed without
// the send: a default arm, or a receive arm on a ctx.Done()/
// close-barrier channel that shutdown is guaranteed to fire.
func selectEscapes(pass *lint.Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil { // default
			return true
		}
		if recvBarrier(pass, cc.Comm) {
			return true
		}
	}
	return false
}

// recvBarrier reports whether the comm statement receives from a
// context Done channel or a channel this package closes.
func recvBarrier(pass *lint.Pass, comm ast.Stmt) bool {
	var ch ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if un, ok := s.X.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			ch = un.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if un, ok := s.Rhs[0].(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				ch = un.X
			}
		}
	}
	if ch == nil {
		return false
	}
	if call, ok := ch.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
				fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				return true
			}
		}
	}
	if key, ok := lint.ChanKey(pass.TypesInfo, pass.Fset, ch); ok {
		return len(pass.Facts.Closed[key]) > 0
	}
	return false
}

// bufferedLocals collects the objects assigned a make(chan T, n>0)
// anywhere in the function (nested literals included): a send on one of
// these cannot block as long as sends are bounded by the capacity,
// which is the pattern's contract.
func bufferedLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		if _, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
			return
		}
		if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
			return
		}
		if o := info.Defs[id]; o != nil {
			out[o] = true
		} else if o := info.Uses[id]; o != nil {
			out[o] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// chanObject resolves the send target to a variable object when it is a
// plain identifier (the buffered-local case).
func chanObject(info *types.Info, ch ast.Expr) types.Object {
	id, ok := ch.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// chanDisplay renders the channel for diagnostics: the stable key with
// package-path noise stripped, else the raw expression kind.
func chanDisplay(pass *lint.Pass, ch ast.Expr) string {
	if key, ok := lint.ChanKey(pass.TypesInfo, pass.Fset, ch); ok {
		key = strings.TrimPrefix(key, pass.Pkg.Path()+".")
		if i := strings.IndexByte(key, '@'); i >= 0 {
			key = key[:i]
		}
		return key
	}
	return "channel"
}
