// Package lib is the chanlife fixture corpus: a send racing a foreign
// close and a bare blocking send (both reported), the accepted escapes
// (select default, ctx.Done arm, close-barrier arm, same-function
// buffered channel, same-function close), and a waived rendezvous.
package lib

import "context"

type Pool struct {
	done chan struct{}
	jobs chan int
}

// closeRace sends on done, which Close closes from another function:
// the shutdown race rule 1 exists for.
func (p *Pool) closeRace() {
	p.done <- struct{}{} // want `send on Pool\.done, which \(\*Pool\)\.Close closes`
}

func (p *Pool) Close() {
	close(p.done)
}

// bareSend blocks forever once the drainer is gone.
func (p *Pool) bareSend(v int) {
	p.jobs <- v // want `unconditional send on Pool\.jobs in library code can block forever`
}

// trySend bails out through the default arm.
func (p *Pool) trySend(v int) bool {
	select {
	case p.jobs <- v:
		return true
	default:
		return false
	}
}

// ctxSend bails out when the caller cancels.
func (p *Pool) ctxSend(ctx context.Context, v int) error {
	select {
	case p.jobs <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// barrierSend bails out when Close fires the done barrier.
func (p *Pool) barrierSend(v int) {
	select {
	case p.jobs <- v:
	case <-p.done:
	}
}

// bufferedLocal mirrors the fabric's hedge results channel: capacity
// bounds the sends, so depositing a result can never block.
func bufferedLocal(n int) <-chan int {
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results <- i
		}(i)
	}
	return results
}

// sameFuncClose owns the channel end to end: the close cannot race the
// send because the same goroutine orders them.
func sameFuncClose() <-chan int {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	return ch
}

// rendezvous is a deliberate synchronous handoff: the blocking send is
// the contract, so it is waived.
func rendezvous(ch chan<- int, v int) {
	ch <- v //lint:allow chanlife synchronous handoff is this helper's contract; the caller guarantees a receiver
}
