package chanlife

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestChanLife(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "chanfix/internal/lib")
}
