package goroutinelife

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestGoroutineLife(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "golife/internal/lib", "golife/cmd/tool")
}
