// Command tool proves the process-root exemption: a main package
// manages its own lifetime, so untied spawns are not reported.
package main

func main() {
	go func() {}()
	select {}
}
