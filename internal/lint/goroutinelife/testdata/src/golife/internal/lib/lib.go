// Package lib is the goroutinelife fixture corpus: an untied spawn
// (reported), one example of each accepted lifecycle tie (WaitGroup,
// close barrier, ctx.Done, deferred-cancel context), and a waived
// fire-and-forget.
package lib

import (
	"context"
	"sync"
)

type Server struct {
	wg   sync.WaitGroup
	done chan struct{}
	jobs chan int
}

func work() {}

// untied has no lifecycle: it outlives any Close.
func untied() {
	go work() // want `go statement has no lifecycle tie`
}

func untiedLit() {
	go func() { // want `go statement has no lifecycle tie`
		work()
	}()
}

// wgTied: Add dominates the spawn, Close can Wait.
func (s *Server) wgTied() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// wgMethod: the Add is before the spawn, the Done inside the named
// method's body — resolved through the package call graph.
func (s *Server) wgMethod() {
	s.wg.Add(1)
	go s.loop()
}

func (s *Server) loop() {
	defer s.wg.Done()
	for range s.jobs {
		work()
	}
}

// barrier: the body selects on s.done, which Close closes.
func (s *Server) barrier() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
}

// rangeBarrier: ranging over a channel the package closes is the same
// contract — close(s.jobs) ends the loop.
func (s *Server) rangeBarrier() {
	go func() {
		for range s.jobs {
			work()
		}
	}()
}

func (s *Server) Close() {
	close(s.done)
	close(s.jobs)
	s.wg.Wait()
}

// ctxTied: the body watches the caller's context.
func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// hedged mirrors the fabric's hedging pattern: a cancellable child
// context with a deferred cancel bounds the spawned fetch, whether the
// context is captured by the literal or passed as an argument.
func hedged(ctx context.Context) {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-wctx.Done()
	}()
	go fetchOne(wctx)
}

func fetchOne(ctx context.Context) {
	<-ctx.Done()
}

// nestedHedge spawns from inside a closure while the deferred-cancel
// context is minted by the enclosing function — the fabric's launch
// pattern; the tie is found in the lexical ancestor.
func nestedHedge(ctx context.Context) {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func() {
		go func() {
			workCtx(wctx)
		}()
	}
	launch()
}

func workCtx(ctx context.Context) { _ = ctx }

// metrics is deliberate fire-and-forget: bounded by the process, waived.
func metrics() {
	go work() //lint:allow goroutinelife one-shot stats flush, bounded by the work() call itself
}
