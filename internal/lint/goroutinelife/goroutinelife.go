// Package goroutinelife requires every go statement in a library
// package to be tied to a lifecycle. A goroutine with no visible
// termination contract outlives Close, leaks under churn, and turns
// shutdown into a race — the engine's worker pool, the fabric's
// per-backend drainers and its hedging goroutines are the motivating
// cases, and each demonstrates one accepted tie:
//
//   - a sync.WaitGroup: Add dominates the spawn (or the body calls
//     Done), so Close can Wait for it — the worker pool's contract;
//   - a close-barrier or ctx.Done receive in the body: the goroutine
//     selects on a channel this package closes (or a context's Done),
//     so closing it is the termination signal — the drainers' contract;
//   - a deferred-cancel context: the spawner creates a context with
//     context.WithCancel/WithTimeout/WithDeadline, defers the cancel,
//     and the goroutine consumes that context — the hedgers' contract,
//     where the loser is cancelled when the winner returns.
//
// Commands, examples and test files are process roots that manage
// their own lifetime and are exempt. A deliberate fire-and-forget
// goroutine is waived with //lint:allow goroutinelife <reason>; the
// reason must say what bounds the goroutine's life.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the goroutinelife check.
var Analyzer = &lint.Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement in library packages must be tied to a lifecycle (WaitGroup, close barrier/ctx.Done, or deferred-cancel context)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "main" || !lint.LibraryPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, ff := range pass.Facts.Funcs {
		if ff.TestFile() {
			continue
		}
		for _, sp := range ff.Spawns {
			check(pass, ff, sp)
		}
	}
	return nil
}

func check(pass *lint.Pass, ff *lint.FuncFacts, sp *lint.GoSpawn) {
	body := sp.Body
	if body == nil && sp.Callee != nil {
		if callee, ok := pass.Facts.ByObj[sp.Callee]; ok {
			body = callee.Body
		}
	}
	// The ties may live in a lexical ancestor of the spawning function:
	// the fabric's hedge spawn sits inside a launch closure while the
	// deferred-cancel context is minted by Fetch around it.
	ancestors := lexicalAncestors(pass, sp.Pos)
	// Tie 1: a WaitGroup — Add before the spawn in the spawning
	// function (or an enclosing one), or Done in the goroutine body.
	for _, anc := range ancestors {
		if wgAddBefore(pass.TypesInfo, anc.Body, sp.Pos) {
			return
		}
	}
	if body != nil && hasWgDone(pass.TypesInfo, body) {
		return
	}
	// Tie 2: the body receives from a close barrier this package owns,
	// or from a context's Done channel.
	if body != nil && hasLifecycleRecv(pass, body) {
		return
	}
	// Tie 3: a deferred-cancel context minted in the spawner (or an
	// enclosing function) and consumed by the goroutine (directly or as
	// a call argument).
	for _, anc := range ancestors {
		if cancelCtxTie(pass, anc.Body, sp) {
			return
		}
	}
	what := "goroutine body"
	if body == nil {
		what = "goroutine body (not visible from this package)"
	}
	pass.Reportf(sp.Pos,
		"go statement has no lifecycle tie: no WaitGroup.Add before the spawn or Done in the %s, no close-barrier/ctx.Done receive, no deferred-cancel context — tie it to a lifecycle (or //lint:allow goroutinelife <reason> stating what bounds it)",
		what)
}

// lexicalAncestors returns every function (literal or declared) whose
// body lexically contains pos — the spawning function and everything it
// nests in, which is where spawn-dominating ties can live.
func lexicalAncestors(pass *lint.Pass, pos token.Pos) []*lint.FuncFacts {
	var out []*lint.FuncFacts
	for _, ff := range pass.Facts.Funcs {
		if ff.Body != nil && ff.Body.Pos() <= pos && pos < ff.Body.End() {
			out = append(out, ff)
		}
	}
	return out
}

// wgAddBefore reports whether a sync.WaitGroup Add call appears before
// pos in the spawning function's body.
func wgAddBefore(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		if isSyncMethod(info, call, "WaitGroup", "Add") {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasWgDone reports whether the goroutine body calls WaitGroup.Done
// (deferred or not).
func hasWgDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isSyncMethod(info, call, "WaitGroup", "Done") {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasLifecycleRecv reports whether the body receives from a context's
// Done channel or from a channel some function in this package closes —
// either as a direct/select receive or by ranging over the channel.
func hasLifecycleRecv(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	isBarrier := func(ch ast.Expr) bool {
		if call, ok := ch.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
					return true
				}
			}
		}
		if key, ok := lint.ChanKey(pass.TypesInfo, pass.Fset, ch); ok {
			if len(pass.Facts.Closed[key]) > 0 {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isBarrier(n.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok && isBarrier(n.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// cancelCtxTie reports whether the spawner mints a cancellable context
// with a deferred cancel, and the goroutine consumes it — referencing
// the context variable in its body or receiving it as a call argument.
func cancelCtxTie(pass *lint.Pass, spawnerBody *ast.BlockStmt, sp *lint.GoSpawn) bool {
	// Collect ctxVar/cancelVar pairs from `ctx, cancel := context.With*`.
	type pair struct{ ctx, cancel types.Object }
	var pairs []pair
	ast.Inspect(spawnerBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline":
		default:
			return true
		}
		ctxID, ok1 := as.Lhs[0].(*ast.Ident)
		cancelID, ok2 := as.Lhs[1].(*ast.Ident)
		if !ok1 || !ok2 {
			return true
		}
		pairs = append(pairs, pair{obj(pass.TypesInfo, ctxID), obj(pass.TypesInfo, cancelID)})
		return true
	})
	if len(pairs) == 0 {
		return false
	}
	// The cancel must be deferred somewhere in the spawner.
	deferred := map[types.Object]bool{}
	ast.Inspect(spawnerBody, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if id, ok := d.Call.Fun.(*ast.Ident); ok {
			deferred[obj(pass.TypesInfo, id)] = true
		}
		return true
	})
	uses := func(node ast.Node, o types.Object) bool {
		if o == nil || node == nil {
			return false
		}
		found := false
		ast.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == o {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for _, p := range pairs {
		if p.cancel == nil || !deferred[p.cancel] {
			continue
		}
		if sp.Body != nil && uses(sp.Body, p.ctx) {
			return true
		}
		// `go f(ctx, ...)`: the context rides in as an argument.
		for _, arg := range sp.Stmt.Call.Args {
			if uses(arg, p.ctx) {
				return true
			}
		}
	}
	return false
}

func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// isSyncMethod reports whether call invokes the named method on the
// named sync type.
func isSyncMethod(info *types.Info, call *ast.CallExpr, typeName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}
