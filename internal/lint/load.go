package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/prefetcher", or the
	// fixture-relative path under a test source root).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Loader resolves and type-checks packages from source: the enclosing
// module (found via go.mod), an optional extra GOPATH-style source root
// (analyzer fixtures), and the standard library from GOROOT/src. It is
// stdlib-only — no export data, no network, no go/packages — which is
// what lets prefetchvet run in hermetic builds. Cgo is disabled so
// packages with cgo fallbacks (net, os/user) type-check pure-Go.
type Loader struct {
	Fset *token.FileSet
	// SrcRoot, when set, is a GOPATH-style src directory consulted
	// before the module: import path p resolves to SrcRoot/p. The
	// fixture runner points this at testdata/src.
	SrcRoot string

	ctxt       build.Context
	moduleDir  string
	modulePath string
	sizes      types.Sizes
	pkgs       map[string]*loadEntry
	testFiles  map[string]bool // import paths whose _test.go files are included
}

type loadEntry struct {
	pkg *Package
	err error
	// loading marks an import in progress, to fail import cycles
	// instead of recursing forever.
	loading bool
}

// NewLoader returns a loader rooted at the module containing dir (dir
// itself need not be the module root). With no go.mod above dir the
// loader still works for stdlib and SrcRoot imports.
func NewLoader(dir string) (*Loader, error) {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	l := &Loader{
		Fset:  token.NewFileSet(),
		ctxt:  ctxt,
		sizes: types.SizesFor("gc", ctxt.GOARCH),
		pkgs:  make(map[string]*loadEntry),
	}
	if l.sizes == nil {
		l.sizes = types.SizesFor("gc", "amd64")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		if data, err := os.ReadFile(filepath.Join(d, "go.mod")); err == nil {
			l.moduleDir = d
			l.modulePath = modulePath(string(data))
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return l, nil
}

// modulePath extracts the module path from go.mod content.
func modulePath(mod string) string {
	for _, line := range strings.Split(mod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// ModulePackages returns the import paths of every package in the
// loader's module, in sorted order, skipping testdata and hidden
// directories. Patterns: "./..." (everything) or "./x/..." or "./x"
// relative to the module root; absent patterns mean "./...".
func (l *Loader) ModulePackages(patterns ...string) ([]string, error) {
	if l.moduleDir == "" {
		return nil, fmt.Errorf("lint: no module root found")
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var all []string
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
			return filepath.SkipDir
		}
		if bp, err := l.ctxt.ImportDir(path, 0); err == nil && len(bp.GoFiles)+len(bp.TestGoFiles) > 0 {
			rel, _ := filepath.Rel(l.moduleDir, path)
			ip := l.modulePath
			if rel != "." {
				ip = l.modulePath + "/" + filepath.ToSlash(rel)
			}
			all = append(all, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(all)
	var out []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		for _, ip := range all {
			if matchPattern(l.modulePath, pat, ip) && !seen[ip] {
				seen[ip] = true
				out = append(out, ip)
			}
		}
	}
	return out, nil
}

// matchPattern reports whether import path ip (inside module mod)
// matches pattern pat ("./...", "./dir/...", "./dir", or a full import
// path, with the same "..." wildcard).
func matchPattern(mod, pat, ip string) bool {
	pat = strings.TrimSuffix(pat, "/")
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		pat = mod
		if rest != "" {
			pat = mod + "/" + rest
		}
	} else if pat == "." {
		pat = mod
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return ip == prefix || strings.HasPrefix(ip, prefix+"/")
	}
	if pat == "..." {
		return true
	}
	return ip == pat
}

// Load type-checks the package with the given import path (see
// NewLoader for resolution order). Results are cached per loader.
func (l *Loader) Load(path string) (*Package, error) {
	return l.load(path, false)
}

// LoadWithTests type-checks the package including its in-package
// _test.go files (external _test packages are not included).
func (l *Loader) LoadWithTests(path string) (*Package, error) {
	return l.load(path, true)
}

func (l *Loader) load(path string, withTests bool) (*Package, error) {
	key := path
	if withTests {
		key = path + " [tests]"
	}
	if e, ok := l.pkgs[key]; ok {
		if e.loading {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{loading: true}
	l.pkgs[key] = e
	e.pkg, e.err = l.typecheck(path, withTests)
	e.loading = false
	return e.pkg, e.err
}

// resolveDir maps an import path to its source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == "C" {
		return "", fmt.Errorf("lint: cgo pseudo-package %q not supported", path)
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		return filepath.Join(l.moduleDir, filepath.FromSlash(rel)), nil
	}
	// Stdlib packages import their bundled third-party dependencies by
	// unvendored path (net → golang.org/x/net/dns/dnsmessage, net/http
	// → golang.org/x/net/http/httpguts, …); go/build resolves those
	// through GOROOT/src/vendor only when the importing file is itself
	// inside GOROOT, which this importer does not track — so consult
	// that tree explicitly. The module has no external dependencies, so
	// the vendor copy cannot shadow a real module import.
	if vdir := filepath.Join(l.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path)); dirExists(vdir) {
		return vdir, nil
	}
	bp, err := l.ctxt.Import(path, l.moduleDir, build.FindOnly)
	if err != nil {
		return "", fmt.Errorf("lint: cannot resolve import %q: %w", path, err)
	}
	return bp.Dir, nil
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

func (l *Loader) typecheck(path string, withTests bool) (*Package, error) {
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	names := bp.GoFiles
	if withTests {
		names = append(append([]string{}, names...), bp.TestGoFiles...)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", path, dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if ipath == "unsafe" {
				return types.Unsafe, nil
			}
			p, err := l.load(ipath, false)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}),
		Sizes: l.sizes,
		// The runtime package (reached through any stdlib import chain)
		// uses compiler intrinsics and linkname tricks that are valid
		// for the real build; tolerate its quirks rather than failing
		// the whole load.
		Error: nil,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: l.sizes,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TypecheckFiles type-checks an explicit file list as one package —
// the entry point for unitchecker mode, where cmd/go hands prefetchvet
// the exact compilation unit. Imports resolve through the loader as
// usual.
func (l *Loader) TypecheckFiles(path string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if ipath == "unsafe" {
				return types.Unsafe, nil
			}
			p, err := l.load(ipath, false)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}),
		Sizes: l.sizes,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: l.sizes,
	}, nil
}
