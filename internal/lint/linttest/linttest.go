// Package linttest runs an analyzer over fixture packages and matches
// its findings against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented over the
// repo's stdlib-only lint kit.
//
// Fixtures live in a GOPATH-style tree: dir/src/<importpath>/*.go.
// A line expecting a finding carries a trailing comment
//
//	// want `regexp`
//
// and every reported diagnostic must land on a line whose want pattern
// matches its message; every want must be matched by exactly one
// diagnostic. Lines with //lint:allow waivers prove the waiver path:
// they must NOT produce diagnostics.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads dir/src/<path> (including in-package test files, so
// fixtures can exercise the analyzers' test-file exemption), applies
// the analyzer, and compares diagnostics against the // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.SrcRoot = filepath.Join(abs, "src")
	for _, path := range paths {
		pkg, err := l.LoadWithTests(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, pkg, diags)
	}
}

type wantEntry struct {
	pos token.Position
	re  *regexp.Regexp
	hit bool
}

func check(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	// Collect wants from the fixture source.
	wants := make(map[string][]*wantEntry) // file:line -> entries
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey(pos.Filename, pos.Line)
					wants[key] = append(wants[key], &wantEntry{pos: pos, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		key := posKey(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: no diagnostic matched want `%s`", w.pos, w.re)
			}
		}
	}
}

func posKey(file string, line int) string {
	return filepath.Clean(file) + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Strings is a helper for asserting diagnostics in driver-level tests.
func Strings(diags []lint.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = strings.TrimSpace(d.String())
	}
	return out
}
