// Package lockorder builds the package's cross-function lock-acquisition
// graph and reports any cycle as a potential deadlock. A node is a lock
// class (every instance of shard.mu is one node; so is every estimator
// stripe mutex and every fabric queue lock); an edge A → B means some
// call path acquires B while holding A. Two goroutines taking the same
// pair of classes in opposite orders can deadlock even though each
// function looks locally correct — exactly the hazard the per-function
// lockscope analyzer cannot see.
//
// The graph is built by propagating held-lock sets across the
// same-package call graph from every function as a root: each Lock
// records an edge from every class currently held, calls descend into
// the callee's facts with the held set (so a lock taken three frames
// above still orders against one taken below), Unlock releases the most
// recent acquisition of its class — including one inherited from the
// caller, which models the engine's lock-handoff helpers — and go
// statements inherit nothing. Each cycle is reported once, with the
// witnessing call path for every edge on it; a same-class nested
// acquisition (A while A is held) is reported as a self-deadlock, since
// sync.Mutex is not reentrant.
//
// A deliberate ordering exception is waived on the acquiring line with
// //lint:allow lockorder <reason>; the reason must name why the cycle
// cannot close at runtime (e.g. the two orders are serialised by a
// state machine or a dedicated outer lock).
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the lockorder check.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the cross-function lock-acquisition graph (potential deadlocks) with witnessing call paths",
	Run:  run,
}

// edge is one ordered pair: to was acquired while from was held.
type edge struct {
	from, to lint.LockClass
}

// witness records how an edge was first observed: the call path from
// the root function to the acquiring function, and the acquisition
// site. The first observation stands for all later ones.
type witness struct {
	path []string  // function displays, root first
	pos  token.Pos // the Lock call that closed the edge
}

type graph struct {
	pass  *lint.Pass
	edges map[edge]*witness
	// visited memoizes (function, held-class-set) pairs so recursive
	// and converging call paths terminate.
	visited map[*lint.FuncFacts]map[string]bool
}

func run(pass *lint.Pass) error {
	g := &graph{
		pass:    pass,
		edges:   make(map[edge]*witness),
		visited: make(map[*lint.FuncFacts]map[string]bool),
	}
	for _, ff := range pass.Facts.Funcs {
		if ff.TestFile() {
			continue
		}
		g.walk(ff, nil, []string{ff.Display})
	}
	g.report()
	return nil
}

// heldKey canonicalises the held multiset for memoization.
func heldKey(h []lint.LockClass) string {
	if len(h) == 0 {
		return ""
	}
	classes := make([]string, len(h))
	for i, c := range h {
		classes[i] = string(c)
	}
	sort.Strings(classes)
	return strings.Join(classes, "|")
}

// walk processes one function's events in source order with the given
// inherited held set, recording edges and descending into same-package
// callees.
func (g *graph) walk(ff *lint.FuncFacts, heldIn []lint.LockClass, path []string) {
	key := heldKey(heldIn)
	if seen := g.visited[ff]; seen != nil && seen[key] {
		return
	}
	if g.visited[ff] == nil {
		g.visited[ff] = make(map[string]bool)
	}
	g.visited[ff][key] = true

	hs := append([]lint.LockClass(nil), heldIn...)
	for _, ev := range ff.Events {
		switch ev.Kind {
		case lint.EvAcquire:
			for _, h := range hs {
				e := edge{from: h, to: ev.Lock}
				if _, ok := g.edges[e]; !ok {
					g.edges[e] = &witness{
						path: append([]string(nil), path...),
						pos:  ev.Pos,
					}
				}
			}
			hs = append(hs, ev.Lock)
		case lint.EvRelease:
			// Release the most recent acquisition of this class — which
			// may be one inherited from the caller (a lock-handoff
			// helper unlocking on the caller's behalf).
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i] == ev.Lock {
					hs = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		case lint.EvCall:
			if len(hs) == 0 {
				// Nothing held: the callee's own acquisitions generate
				// their edges when it is walked as a root.
				continue
			}
			if callee, ok := g.pass.Facts.ByObj[ev.Callee]; ok && !callee.TestFile() {
				g.walk(callee, hs, append(append([]string(nil), path...), callee.Display))
			}
		case lint.EvSpawn:
			// A goroutine inherits no locks; its body is walked as a
			// root via Facts.Funcs.
		}
	}
}

// report finds cycles among the recorded edges and emits one diagnostic
// per cycle, anchored at the first edge's acquisition site, quoting the
// witnessing call path of every edge on the cycle.
func (g *graph) report() {
	keys := make([]edge, 0, len(g.edges))
	for e := range g.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	pkgPath := g.pass.Pkg.Path()
	adj := make(map[lint.LockClass][]lint.LockClass)
	for _, e := range keys {
		if e.from == e.to {
			// Acquiring a class already held: sync mutexes are not
			// reentrant, so this self-deadlocks whenever the two
			// acquisitions hit the same instance.
			w := g.edges[e]
			g.pass.Reportf(w.pos,
				"lock %s acquired while an instance of %s is already held (path %s): sync mutexes are not reentrant — potential self-deadlock",
				e.to.Short(pkgPath), e.from.Short(pkgPath), strings.Join(w.path, " → "))
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	var nodes []lint.LockClass
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	reported := map[string]bool{}
	for _, start := range nodes {
		g.findCycles(start, start, []lint.LockClass{start}, adj, reported, pkgPath)
	}
}

// findCycles walks simple paths from start (the canonically smallest
// node of any cycle it reports) looking for a return to start.
func (g *graph) findCycles(start, cur lint.LockClass, path []lint.LockClass, adj map[lint.LockClass][]lint.LockClass, reported map[string]bool, pkgPath string) {
	for _, next := range adj[cur] {
		if next == start && len(path) > 1 {
			canon := canonicalCycle(path)
			if !reported[canon] {
				reported[canon] = true
				g.reportCycle(path, pkgPath)
			}
			continue
		}
		// Only explore nodes greater than start so each cycle is found
		// exactly once, from its smallest node.
		if next <= start || containsClass(path, next) {
			continue
		}
		g.findCycles(start, next, append(path, next), adj, reported, pkgPath)
	}
}

func containsClass(path []lint.LockClass, c lint.LockClass) bool {
	for _, p := range path {
		if p == c {
			return true
		}
	}
	return false
}

func canonicalCycle(cyc []lint.LockClass) string {
	s := make([]string, len(cyc))
	for i, c := range cyc {
		s[i] = string(c)
	}
	sort.Strings(s)
	return strings.Join(s, "|")
}

// reportCycle emits one diagnostic for the cycle a→b→…→a, anchored at
// the first edge's acquisition site, with every edge's witness path.
func (g *graph) reportCycle(cyc []lint.LockClass, pkgPath string) {
	n := len(cyc)
	var order []string
	var wits []string
	var anchor *witness
	for i := 0; i < n; i++ {
		e := edge{from: cyc[i], to: cyc[(i+1)%n]}
		w := g.edges[e]
		if w == nil {
			return
		}
		if anchor == nil {
			anchor = w
		}
		pos := g.pass.Fset.Position(w.pos)
		order = append(order, e.from.Short(pkgPath))
		wits = append(wits, fmt.Sprintf("%s acquired while %s held at %s:%d (path %s)",
			e.to.Short(pkgPath), e.from.Short(pkgPath), shortFile(pos.Filename), pos.Line, strings.Join(w.path, " → ")))
	}
	order = append(order, cyc[0].Short(pkgPath))
	g.pass.Reportf(anchor.pos, "potential deadlock: lock-order cycle %s — %s",
		strings.Join(order, " → "), strings.Join(wits, "; "))
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
