// Package lockfix is the lockorder fixture corpus: a seeded two-lock
// inversion (A/B), a cross-function inversion witnessed through a call
// edge (A/C), a same-class nested acquisition, a deliberately waived
// inversion (D/E), and clean patterns (sequential locking, lock
// handoff) that must stay silent.
package lockfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

// lockAB takes A then B: one half of the seeded inversion.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `potential deadlock: lock-order cycle A\.mu → B\.mu → A\.mu`
	b.mu.Unlock()
}

// lockBA takes B then A: the other half of the inversion. The cycle is
// reported once, anchored at the first witnessed edge (in lockAB).
func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// holdAC acquires A and reaches C's lock only through a call edge — the
// inversion with lockCA is invisible to any per-function analysis.
func holdAC(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockC(c)
}

func lockC(c *C) {
	c.mu.Lock() // want `potential deadlock: lock-order cycle A\.mu → C\.mu → A\.mu.*path holdAC → lockC`
	c.mu.Unlock()
}

func lockCA(a *A, c *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// nestedSame acquires two instances of the same class: self-deadlock
// whenever a1 and a2 alias.
func nestedSame(a1, a2 *A) {
	a1.mu.Lock()
	defer a1.mu.Unlock()
	a2.mu.Lock() // want `lock A\.mu acquired while an instance of A\.mu is already held`
	a2.mu.Unlock()
}

// lockDE / lockED invert deliberately; the waiver documents the
// protecting mechanism, so the cycle is suppressed.
func lockDE(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.mu.Lock() //lint:allow lockorder fixture: both orders run under the caller's outer serialisation lock
	e.mu.Unlock()
}

func lockED(d *D, e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

// sequential holds nothing across the second acquisition: no edge, no
// cycle with lockAB despite touching B before A.
func sequential(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// handoffEntry/handoffExit model the engine's lock-handoff helpers: the
// callee unlocks the caller's lock before taking its own, so A is not
// held when B is acquired and no A → B edge forms.
func handoffEntry(a *A, b *B) {
	a.mu.Lock()
	handoffExit(a, b)
}

func handoffExit(a *A, b *B) {
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

var sink func()

// use keeps the fixture functions referenced.
func use(a *A, b *B, c *C, d *D, e *E) {
	sink = func() {
		lockAB(a, b)
		lockBA(a, b)
		holdAC(a, c)
		lockCA(a, c)
		nestedSame(a, a)
		lockDE(d, e)
		lockED(d, e)
		sequential(a, b)
		handoffEntry(a, b)
	}
}
