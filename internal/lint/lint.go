// Package lint is the repo's static-analysis kit: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the loading and annotation machinery
// the prefetchvet analyzers share.
//
// The nine analyzers under internal/lint/* encode the engine's
// concurrency and allocation invariants as build-time checks:
//
//   - hotpathalloc: //prefetch:hotpath functions must not allocate
//   - lockscope: no blocking operation under a shard/stripe mutex, and
//     every Lock is paired with an Unlock on all exit paths
//   - atomicalign: atomically-accessed 64-bit fields stay 8-aligned and
//     //prefetch:cacheline structs pad to whole 64-byte lines
//   - poolhygiene: sync.Pool Get/Put pairing and no use-after-Put
//   - ctxflow: no context.Background/TODO inside library packages
//   - lockorder: the cross-function lock-acquisition graph must stay
//     acyclic (cycles are potential deadlocks, reported with the
//     witnessing call paths)
//   - atomicmix: a field accessed through sync/atomic anywhere must
//     never be read or written plainly elsewhere
//   - goroutinelife: every go statement in library packages is tied to
//     a lifecycle (WaitGroup, close barrier, or ctx.Done select)
//   - chanlife: no send on a channel another function may close, and no
//     unconditional blocking send in library code
//
// The first five are per-function and lexical; the last four consume the
// package-level dataflow facts layer in facts.go (per-function lock
// events, call edges, atomic touches, spawns and channel closes),
// computed once per package and shared through Pass.Facts.
//
// Deliberate exceptions are waived in source with
//
//	//lint:allow <analyzer> <reason>
//
// on (or immediately above) the offending line; the reason is mandatory.
// The kit is stdlib-only so the tree builds with no module downloads —
// x/tools is deliberately not a dependency.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// waivers. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by prefetchvet -help.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report. A returned error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sizes gives the target layout (gc/amd64) for alignment checks.
	Sizes types.Sizes
	// Facts is the package-level concurrency-facts layer (see facts.go),
	// computed once per package and shared by every analyzer in the run.
	Facts *Facts

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// skip test files: the invariants guard the production hot path, and
// tests legitimately use context.Background, ad-hoc locking and
// allocation-heavy helpers.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// --- annotations ---------------------------------------------------------

// HotpathDirective is the comment that opts a function into the
// hotpathalloc check. It is a directive comment (no space after //), so
// gofmt preserves it verbatim and go doc hides it.
const HotpathDirective = "//prefetch:hotpath"

// CachelineDirective is the comment that opts a struct type into the
// atomicalign whole-cache-line padding check.
const CachelineDirective = "//prefetch:cacheline"

// HasDirective reports whether the doc comment group carries the given
// directive on a line of its own.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// --- //lint:allow waivers ------------------------------------------------

const allowPrefix = "//lint:allow "

// allowKey identifies one waivable source line for one analyzer.
type allowKey struct {
	file string
	line int
	name string
}

// Waivers indexes every //lint:allow comment in a package: which
// (file, line, analyzer) triples are waived, and which waiver comments
// are malformed (no reason given).
type Waivers struct {
	// allowed maps each waiver to the position of its comment, so stale
	// waivers can be reported where they sit.
	allowed map[allowKey]token.Position
	// used tracks which waivers suppressed at least one diagnostic, so
	// stale waivers can be reported.
	used      map[allowKey]bool
	malformed []Diagnostic
}

// CollectWaivers scans the files' comments for //lint:allow directives.
// A waiver on line N covers diagnostics on lines N and N+1 — i.e. it can
// trail the offending statement or sit on its own line above it.
func CollectWaivers(fset *token.FileSet, files []*ast.File) *Waivers {
	w := &Waivers{allowed: make(map[allowKey]token.Position), used: make(map[allowKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, strings.TrimSpace(allowPrefix)) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, strings.TrimSpace(allowPrefix)))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					w.malformed = append(w.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (a reason is mandatory)",
					})
					continue
				}
				w.allowed[allowKey{pos.Filename, pos.Line, fields[0]}] = pos
			}
		}
	}
	return w
}

// Filter drops the diagnostics covered by a waiver and appends any
// malformed-waiver findings, returning the survivors sorted by position.
func (w *Waivers) Filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		waived := false
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			k := allowKey{d.Pos.Filename, line, d.Analyzer}
			if _, ok := w.allowed[k]; ok {
				w.used[k] = true
				waived = true
				break
			}
		}
		if !waived {
			out = append(out, d)
		}
	}
	out = append(out, w.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// Stale reports every waiver for one of the named analyzers that
// suppressed nothing in this run — a //lint:allow whose finding has been
// fixed (or whose analyzer name is misspelled) and should be deleted.
// Only waivers naming an analyzer in names are reported: a run of a
// subset of the analyzers (fixture tests, a filtered prefetchvet
// invocation) cannot judge the others' waivers.
func (w *Waivers) Stale(names map[string]bool) []Diagnostic {
	var out []Diagnostic
	for k, pos := range w.allowed {
		if !names[k.name] || w.used[k] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "lint",
			Pos:      pos,
			Message:  fmt.Sprintf("stale //lint:allow %s: it suppressed nothing — delete it (or fix the analyzer name)", k.name),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// --- driver --------------------------------------------------------------

// RunAnalyzers applies each analyzer to the package and returns the
// surviving diagnostics (waivers applied, test files already skipped by
// the analyzers themselves).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, analyzers, false)
}

// RunAnalyzersStrict is RunAnalyzers with stale-waiver enforcement: a
// //lint:allow naming one of the analyzers in this run that suppressed
// no diagnostic becomes a finding itself (prefetchvet -strict-waivers).
func RunAnalyzersStrict(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, analyzers, true)
}

func runAnalyzers(pkg *Package, analyzers []*Analyzer, strict bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := PackageFacts(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sizes:     pkg.Sizes,
			Facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	w := CollectWaivers(pkg.Fset, pkg.Files)
	out := w.Filter(diags)
	if strict {
		names := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			names[a.Name] = true
		}
		out = append(out, w.Stale(names)...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i].Pos, out[j].Pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return out[i].Analyzer < out[j].Analyzer
		})
	}
	return out, nil
}
