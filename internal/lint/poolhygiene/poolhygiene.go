// Package poolhygiene checks sync.Pool discipline: an object drawn with
// Get must either be handed back with Put in the same function, or
// escape to whoever owns its release (returned, stored, or passed on —
// the engine's flight refcount release is the idiomatic example); and a
// pooled object must not be touched after it has been Put — by then
// another goroutine may own it, so a late read is a data race and a
// late store corrupts the next user's state.
//
// The check is lexical within one function: leak detection only fires
// for purely local objects (no Put, no escape), and use-after-Put fires
// for statements that follow the Put in the same block — the shapes a
// refactor actually introduces. Deliberate exceptions are waived with
// //lint:allow poolhygiene <reason>.
package poolhygiene

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the poolhygiene check.
var Analyzer = &lint.Analyzer{
	Name: "poolhygiene",
	Doc:  "sync.Pool.Get must have a Put on every local path (or escape to its releaser); no use after Put",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// poolMethod reports whether call invokes sync.Pool.Get or sync.Pool.Put
// and returns the method name.
func poolMethod(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "Pool" {
		return "", false
	}
	return fn.Name(), true
}

// getTarget returns the object bound by `v := pool.Get()` /
// `v := pool.Get().(*T)` assignments, or nil.
func getTarget(pass *lint.Pass, stmt ast.Stmt) (types.Object, ast.Stmt) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	rhs := as.Rhs[0]
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	if m, ok := poolMethod(pass, call); !ok || m != "Get" {
		return nil, nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id] // `v = pool.Get()` re-assignment
	}
	return obj, stmt
}

// putArg returns the object passed to a sync.Pool.Put call, or nil.
func putArg(pass *lint.Pass, call *ast.CallExpr) types.Object {
	if m, ok := poolMethod(pass, call); !ok || m != "Put" {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	arg := call.Args[0]
	if u, ok := arg.(*ast.UnaryExpr); ok { // Put(&buf) pattern
		arg = u.X
	}
	if id, ok := arg.(*ast.Ident); ok {
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	// Pass 1: collect Get targets, Put'd objects, and escapes.
	type getInfo struct {
		stmt ast.Stmt
		obj  types.Object
	}
	var gets []getInfo
	put := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)

	useOf := func(e ast.Expr) types.Object {
		if id, ok := e.(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id]
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if obj, stmt := getTarget(pass, n); obj != nil {
				gets = append(gets, getInfo{stmt, obj})
				return true
			}
			// Storing the object anywhere but a plain local: escape.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if obj := useOf(n.Rhs[i]); obj != nil {
					if _, plain := lhs.(*ast.Ident); !plain {
						escaped[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if obj := putArg(pass, n); obj != nil {
				put[obj] = true
				return true
			}
			// Passed to any other call: ownership moves with it.
			for _, arg := range n.Args {
				a := arg
				if u, ok := a.(*ast.UnaryExpr); ok {
					a = u.X
				}
				if obj := useOf(a); obj != nil {
					escaped[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if obj := useOf(r); obj != nil {
					escaped[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := useOf(n.Value); obj != nil {
				escaped[obj] = true
			}
		case *ast.FuncLit:
			// Captured by a closure: the closure owns the release.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})

	for _, g := range gets {
		if !put[g.obj] && !escaped[g.obj] {
			pass.Reportf(g.stmt.Pos(),
				"%s drawn from a sync.Pool is neither Put back nor handed off — pooled objects leak back to the GC",
				g.obj.Name())
		}
	}

	// Pass 2: lexical use-after-Put within each block.
	checkUseAfterPut(pass, fd)
}

// checkUseAfterPut flags reads or writes of a pooled object in
// statements that follow its (non-deferred) Put in the same block.
func checkUseAfterPut(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		// Objects Put at an earlier statement index of this block.
		putAt := make(map[types.Object]int)
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if obj := putArg(pass, call); obj != nil {
						if _, seen := putAt[obj]; !seen {
							putAt[obj] = i
						}
						continue
					}
				}
			}
			if len(putAt) == 0 {
				continue
			}
			ast.Inspect(stmt, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				if j, ok := putAt[obj]; ok && j < i {
					pass.Reportf(id.Pos(),
						"%s used after sync.Pool.Put: another goroutine may already own it",
						obj.Name())
					delete(putAt, obj) // one report per object per block
				}
				return true
			})
		}
		return true
	})
}
