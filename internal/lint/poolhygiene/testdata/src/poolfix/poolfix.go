// Package poolfix is a poolhygiene fixture: seeded pool misuse next to
// the idioms the engine actually uses, which must stay clean.
package poolfix

import "sync"

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

// Leak draws from the pool and forgets to hand the object back.
func Leak() int {
	b := pool.Get().(*buf) // want `neither Put back nor handed off`
	return len(b.b)
}

// UseAfterPut touches the object after releasing it — by then another
// goroutine may have drawn it from the pool.
func UseAfterPut() *buf {
	b := pool.Get().(*buf)
	pool.Put(b)
	b.b = b.b[:0] // want `used after sync.Pool.Put`
	return b
}

// StoreAfterPut parks the object in long-lived state after releasing
// it — the next Get hands the same object to someone else.
var stash *buf

func StoreAfterPut() {
	b := pool.Get().(*buf)
	pool.Put(b)
	stash = b // want `used after sync.Pool.Put`
}

// Balanced is the plain correct shape.
func Balanced() int {
	b := pool.Get().(*buf)
	n := len(b.b)
	pool.Put(b)
	return n
}

// DeferredPut releases on all paths via defer.
func DeferredPut(grow bool) int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	if grow {
		b.b = append(b.b, 0)
		return len(b.b)
	}
	return 0
}

// HandOff passes the object to its releaser — the engine's
// newFlight/releaseFlight split. Not a leak.
func HandOff() {
	b := pool.Get().(*buf)
	release(b)
}

func release(b *buf) {
	b.b = b.b[:0]
	pool.Put(b)
}

// Returned transfers ownership to the caller — the factory shape.
func Returned() *buf {
	b := pool.Get().(*buf)
	b.b = b.b[:0]
	return b
}

// Waived is a deliberate one-way draw (a sentinel that never returns to
// the pool), recorded with a reason.
func Waived() {
	//lint:allow poolhygiene sentinel object intentionally retired from the pool
	b := pool.Get().(*buf)
	_ = b
}
