package poolhygiene

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestPoolhygiene(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "poolfix")
}
