// Package lockscope enforces the engine's critical-section discipline:
//
//   - no blocking operation while a mutex is held: channel send or
//     receive, select without a default, time.Sleep,
//     sync.WaitGroup.Wait / sync.Cond.Wait, and dynamic Fetch /
//     FetchBatch / IdleWait interface calls (a backend's fetch is
//     arbitrary user I/O). A select with a default clause is
//     non-blocking by construction — the engine's shed-on-full queue
//     push — and is allowed.
//   - every Lock/RLock is paired with an Unlock/RUnlock (or a deferred
//     one) on every exit path of the function that took it.
//
// The analysis is lexical and per-function, tracking held locks by the
// printed receiver expression ("sh.mu", "e.qmu") through branches; a
// branch that returns or breaks stops propagating its state, and
// branch joins take the union of held sets (conservative: a lock
// released on only one arm stays suspect). Functions that unlock a
// mutex they never locked — the *Locked helper convention, where the
// caller holds the lock — are not flagged. Deliberate lock handoffs
// (returning a helper's result while it releases the lock) are waived
// with //lint:allow lockscope <reason>.
package lockscope

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the lockscope check.
var Analyzer = &lint.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking operations under a mutex; every Lock has an Unlock on all exit paths",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Top-level functions and every function literal are analyzed
		// independently: a goroutine body does not inherit its
		// creator's locks, and a closure's locks are its own.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return true
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// lockKey identifies one lock guard: the printed receiver expression
// plus the read/write mode.
type lockKey string

type state struct {
	held map[lockKey]token.Pos // lock site
	// deferred marks locks with a registered deferred unlock: held for
	// blocking-op purposes, satisfied for exit-path purposes.
	deferred map[lockKey]bool
}

func newState() *state {
	return &state{held: map[lockKey]token.Pos{}, deferred: map[lockKey]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// union folds o's state into s (conservative join).
func (s *state) union(o *state) {
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

// anyBare reports a held lock with no deferred unlock, if any.
func (s *state) anyBare() (lockKey, token.Pos, bool) {
	for k, pos := range s.held {
		if !s.deferred[k] {
			return k, pos, true
		}
	}
	return "", token.NoPos, false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// lockOp classifies a call as a mutex operation: returns the guard key
// and whether it is an acquire.
func lockOp(pass *lint.Pass, call *ast.CallExpr) (lockKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	name := fn.Name()
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false, false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		switch named.Obj().Name() {
		case "Mutex", "RWMutex", "Locker":
		default:
			return "", false, false
		}
	}
	key := exprString(pass.Fset, sel.X)
	if name == "RLock" || name == "RUnlock" {
		key += "#r"
	}
	return lockKey(key), name == "Lock" || name == "RLock", true
}

// blockingCall describes why a call expression blocks, or "".
func blockingCall(pass *lint.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		return "time.Sleep"
	}
	if fn.Pkg().Path() == "sync" && fn.Name() == "Wait" && sig.Recv() != nil {
		return "sync." + recvTypeName(sig) + ".Wait"
	}
	// Dynamic fetch-shaped calls: an interface Fetch/FetchBatch/IdleWait
	// dispatches to arbitrary backend I/O.
	switch fn.Name() {
	case "Fetch", "FetchBatch", "IdleWait":
		if selection, ok := pass.TypesInfo.Selections[sel]; ok && types.IsInterface(selection.Recv()) {
			return "interface " + fn.Name() + " call"
		}
	}
	return ""
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	st := newState()
	terminated := checkStmts(pass, body.List, st)
	if !terminated {
		if k, pos, ok := st.anyBare(); ok {
			pass.Reportf(pos, "%s is locked here but not unlocked on the fall-through return path", k)
		}
	}
}

// checkStmts walks one statement list, updating st. It returns true
// when control cannot fall out of the list (return/branch/panic).
func checkStmts(pass *lint.Pass, stmts []ast.Stmt, st *state) bool {
	for _, stmt := range stmts {
		if checkStmt(pass, stmt, st) {
			return true
		}
	}
	return false
}

func checkStmt(pass *lint.Pass, stmt ast.Stmt, st *state) (terminated bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, acquire, ok := lockOp(pass, call); ok {
				if acquire {
					st.held[key] = call.Pos()
				} else {
					delete(st.held, key)
					delete(st.deferred, key)
				}
				return false
			}
		}
		checkExpr(pass, s.X, st)
	case *ast.DeferStmt:
		if key, acquire, ok := lockOp(pass, s.Call); ok && !acquire {
			if _, heldNow := st.held[key]; heldNow {
				st.deferred[key] = true
			}
			return false
		}
		checkExpr(pass, s.Call, st)
	case *ast.SendStmt:
		reportBlocked(pass, s.Pos(), "channel send", st)
		checkExpr(pass, s.Value, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			checkExpr(pass, r, st)
		}
		for _, l := range s.Lhs {
			checkExpr(pass, l, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkExpr(pass, r, st)
		}
		if k, _, ok := st.anyBare(); ok {
			pass.Reportf(s.Pos(), "return while %s is still locked: unlock on every exit path (or defer the unlock)", k)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto: stop propagating this arm's state. The
		// loop-level conservatism (body analyzed with a clone) covers
		// the rejoin.
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init, st)
		}
		checkExpr(pass, s.Cond, st)
		bodySt := st.clone()
		bodyTerm := checkStmts(pass, s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = checkStmt(pass, s.Else, elseSt)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			*st = *elseSt
		case elseTerm:
			*st = *bodySt
		default:
			*st = *bodySt
			st.union(elseSt)
		}
	case *ast.BlockStmt:
		return checkStmts(pass, s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init, st)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond, st)
		}
		bodySt := st.clone()
		checkStmts(pass, s.Body.List, bodySt)
		// A lock balance achieved only inside the body does not change
		// the state after the loop (it may run zero times); a lock
		// TAKEN in the body and leaked would be caught by the body's
		// own iteration-boundary conservatism only if the body also
		// exits — union keeps it visible after the loop.
		st.union(bodySt)
	case *ast.RangeStmt:
		checkExpr(pass, s.X, st)
		bodySt := st.clone()
		checkStmts(pass, s.Body.List, bodySt)
		st.union(bodySt)
	case *ast.SwitchStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init, st)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag, st)
		}
		mergeClauses(pass, s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init, st)
		}
		mergeClauses(pass, s.Body.List, st)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			reportBlocked(pass, s.Pos(), "select without default", st)
		}
		mergeClauses(pass, s.Body.List, st)
	case *ast.GoStmt:
		// The goroutine runs concurrently: its body holds none of our
		// locks (it is analyzed separately), and launching it does not
		// block. Arguments are evaluated here, though.
		for _, a := range s.Call.Args {
			checkExpr(pass, a, st)
		}
	case *ast.LabeledStmt:
		return checkStmt(pass, s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						checkExpr(pass, v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		checkExpr(pass, s.X, st)
	}
	return false
}

// mergeClauses analyzes each case/comm clause with a cloned state and
// joins the arms that fall through.
func mergeClauses(pass *lint.Pass, clauses []ast.Stmt, st *state) {
	merged := st.clone()
	first := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				checkExpr(pass, e, st)
			}
			body = cc.Body
		case *ast.CommClause:
			// The comm op itself is the select's blocking point,
			// already handled at the select level.
			body = cc.Body
		}
		armSt := st.clone()
		if !checkStmts(pass, body, armSt) {
			if first {
				*merged = *armSt
				first = false
			} else {
				merged.union(armSt)
			}
		}
	}
	if !first {
		*st = *merged
	}
}

// checkExpr flags blocking operations appearing in expression position
// while locks are held, and nested lock calls used as expressions.
func checkExpr(pass *lint.Pass, e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately with an empty state
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocked(pass, n.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			if why := blockingCall(pass, n); why != "" {
				reportBlocked(pass, n.Pos(), why, st)
			}
		}
		return true
	})
}

func reportBlocked(pass *lint.Pass, pos token.Pos, what string, st *state) {
	for k := range st.held {
		pass.Reportf(pos, "%s while %s is held: blocking under a mutex stalls every request hashed to it", what, k)
		return // one lock named per site is enough
	}
}
