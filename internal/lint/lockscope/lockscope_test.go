package lockscope

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestLockscope(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "lockfix")
}
