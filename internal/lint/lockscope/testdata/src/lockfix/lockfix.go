// Package lockfix is a lockscope fixture: blocking-under-mutex and
// leaked-lock seeds next to the critical-section idioms the engine
// actually uses, which must stay clean.
package lockfix

import (
	"context"
	"sync"
	"time"
)

// Fetcher mirrors the engine's backend seam: a dynamic Fetch is
// arbitrary I/O.
type Fetcher interface {
	Fetch(ctx context.Context, id uint64) ([]byte, error)
}

type shard struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	items   map[uint64][]byte
	pending chan uint64
	wg      sync.WaitGroup
	f       Fetcher
}

// --- seeded violations ---------------------------------------------------

// RecvUnderLock blocks on a channel receive inside the critical section.
func (s *shard) RecvUnderLock() uint64 {
	s.mu.Lock()
	id := <-s.pending // want `channel receive while s\.mu is held`
	s.mu.Unlock()
	return id
}

// SendUnderLock blocks on a channel send inside the critical section.
func (s *shard) SendUnderLock(id uint64) {
	s.mu.Lock()
	s.pending <- id // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

// SleepUnderLock parks the whole shard.
func (s *shard) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
	s.mu.Unlock()
}

// WaitUnderLock blocks on a WaitGroup while holding the lock.
func (s *shard) WaitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want `sync\.WaitGroup\.Wait while s\.mu is held`
	s.mu.Unlock()
}

// FetchUnderLock performs backend I/O inside the critical section.
func (s *shard) FetchUnderLock(ctx context.Context, id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Fetch(ctx, id) // want `interface Fetch call while s\.mu is held`
	return err
}

// SelectUnderLock blocks on a default-less select.
func (s *shard) SelectUnderLock(done chan struct{}) {
	s.mu.Lock()
	select { // want `select without default while s\.mu is held`
	case id := <-s.pending:
		s.items[id] = nil
	case <-done:
	}
	s.mu.Unlock()
}

// LeakOnEarlyReturn forgets the unlock on the error path.
func (s *shard) LeakOnEarlyReturn(id uint64) []byte {
	s.mu.Lock()
	v, ok := s.items[id]
	if !ok {
		return nil // want `return while s\.mu is still locked`
	}
	s.mu.Unlock()
	return v
}

// LeakOnFallthrough locks and never unlocks at all.
func (s *shard) LeakOnFallthrough(id uint64) {
	s.mu.Lock() // want `locked here but not unlocked on the fall-through return path`
	s.items[id] = nil
}

// RLockLeak mismatches the read-lock pair.
func (s *shard) RLockLeak(id uint64) []byte {
	s.rw.RLock()
	return s.items[id] // want `return while s\.rw#r is still locked`
}

// --- clean idioms --------------------------------------------------------

// Balanced is the engine's standard shape: bare map touches between
// Lock and Unlock, blocking work outside.
func (s *shard) Balanced(id uint64, v []byte) {
	s.mu.Lock()
	s.items[id] = v
	s.mu.Unlock()
	s.wg.Wait() // after the unlock: fine
}

// DeferUnlock covers every exit path.
func (s *shard) DeferUnlock(id uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[id]
	if !ok {
		return nil, false
	}
	return v, true
}

// UnlockBeforeBlocking releases the lock, then blocks — the shrunken
// critical section the refactors established.
func (s *shard) UnlockBeforeBlocking(ctx context.Context, id uint64) error {
	s.mu.Lock()
	_, resident := s.items[id]
	s.mu.Unlock()
	if resident {
		return nil
	}
	_, err := s.f.Fetch(ctx, id)
	return err
}

// NonBlockingPush is the shed-on-full queue push: a select with a
// default never blocks, even under the lock.
func (s *shard) NonBlockingPush(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.pending <- id:
		return true
	default:
		return false
	}
}

// consumeLocked follows the *Locked convention: the caller holds the
// lock, so the unpaired Unlock-free body is fine.
func (s *shard) consumeLocked(id uint64) []byte {
	v := s.items[id]
	delete(s.items, id)
	return v
}

// UnlockInCallee releases a lock its caller took — the serveResident
// handoff. Not flagged: unlocking an unheld lock is the caller-holds
// convention.
func (s *shard) UnlockInCallee(id uint64) []byte {
	v := s.items[id]
	s.mu.Unlock()
	return v
}

// HandoffWaived locks, then returns through the releasing helper — the
// deliberate handoff shape, waived with a reason.
func (s *shard) HandoffWaived(id uint64) []byte {
	s.mu.Lock()
	//lint:allow lockscope lock handed to UnlockInCallee, released there
	return s.UnlockInCallee(id)
}

// BarrierCycle is Close's lock-cycling barrier: empty critical
// sections in a loop.
func (s *shard) BarrierCycle(others []*shard) {
	for _, o := range others {
		o.mu.Lock()
		o.mu.Unlock()
	}
}

// GoroutineDoesNotInherit launches a worker while holding the lock; the
// worker's own blocking is its business.
func (s *shard) GoroutineDoesNotInherit(id uint64) {
	s.mu.Lock()
	go func() {
		id := <-s.pending
		_ = id
	}()
	s.items[id] = nil
	s.mu.Unlock()
}
