package predict

import (
	"testing"

	"repro/internal/cache"
)

// Compile-time contract checks (the table-driven equivalence, top-k
// prefix, coupled and -race hammer tests in concurrent_test.go cover
// ConcurrentLZ78 through concurrentPairs).
var (
	_ ConcurrentPredictor = (*ConcurrentLZ78)(nil)
	_ CoupledPredictor    = (*ConcurrentLZ78)(nil)
)

// sumVisits walks the trie, totalling visit counts and counting nodes.
func sumVisits(n *lzcNode) (visits, nodes int64) {
	nodes = 1
	for c := n.children.Load(); c != nil; c = c.next.Load() {
		visits += c.visits.Load()
		v, m := sumVisits(c)
		visits += v
		nodes += m
	}
	return visits, nodes
}

// TestConcurrentLZ78VisitConservation pins the CAS-trie invariant:
// every observation contributes exactly one visit somewhere in the
// trie — a descent increments an existing child, a phrase boundary
// inserts a child carrying one visit, and the insert race credits the
// racing winner's child — however the observations interleave.
func TestConcurrentLZ78VisitConservation(t *testing.T) {
	stream := markovStream(20000, 37)
	l := NewConcurrentLZ78()
	hammer(l, stream, 8)
	visits, nodes := sumVisits(l.root)
	if visits != int64(len(stream)) {
		t.Fatalf("trie holds %d visits, want %d (one per observation)", visits, len(stream))
	}
	if got := int64(l.Nodes()); got != nodes {
		t.Fatalf("Nodes() = %d, but the trie holds %d nodes", got, nodes)
	}
	// Per-node child totals must agree with the children they cache.
	var check func(n *lzcNode)
	fail := false
	check = func(n *lzcNode) {
		var sum int64
		for c := n.children.Load(); c != nil; c = c.next.Load() {
			sum += c.visits.Load()
			check(c)
		}
		if sum != n.childVisits.Load() {
			fail = true
		}
	}
	check(l.root)
	if fail {
		t.Fatal("a node's cached childVisits disagrees with its children")
	}
}

// TestConcurrentLZ78MatchesSequentialTrie drives both tries with one
// stream from one goroutine and compares their shapes: same node
// count, and the same prediction at every phrase position (the
// distribution check in concurrent_test.go samples sparsely; this one
// is exhaustive over a shorter stream).
func TestConcurrentLZ78MatchesSequentialTrie(t *testing.T) {
	stream := markovStream(1500, 39)
	seq := NewLZ78()
	conc := NewConcurrentLZ78()
	for i, id := range stream {
		seq.Observe(id)
		conc.Observe(id)
		if seq.Nodes() != conc.Nodes() {
			t.Fatalf("after %d observations: sequential trie has %d nodes, concurrent %d",
				i+1, seq.Nodes(), conc.Nodes())
		}
		samePredictions(t, "lz78-trie", conc.Predict(), seq.Predict())
	}
}

// TestConcurrentLZ78EmptyAndRoot covers the degenerate states: an
// empty model predicts nothing, and a single observation leaves the
// parse at the root with one single-symbol phrase recorded.
func TestConcurrentLZ78EmptyAndRoot(t *testing.T) {
	l := NewConcurrentLZ78()
	if got := l.Predict(); got != nil {
		t.Fatalf("empty Predict = %v, want nil", got)
	}
	if got := l.PredictTop(4); got != nil {
		t.Fatalf("empty PredictTop = %v, want nil", got)
	}
	if l.Nodes() != 1 {
		t.Fatalf("empty trie has %d nodes, want 1 (the root)", l.Nodes())
	}
	l.Observe(cache.ID(7))
	if l.Nodes() != 2 {
		t.Fatalf("one observation grew the trie to %d nodes, want 2", l.Nodes())
	}
	// The parse restarted at the root, whose one child is the phrase
	// {7} with probability 1/(1+1): one visit against one escape count.
	got := l.Predict()
	if len(got) != 1 || got[0].Item != 7 || got[0].Prob != 0.5 {
		t.Fatalf("Predict after one observation = %v, want [{7 0.5}]", got)
	}
}
