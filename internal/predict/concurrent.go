package predict

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
)

// This file holds the internally concurrent access models. The
// sequential implementations in predict.go/ppm.go stay the reference
// semantics (and the evaluation harness keeps using them); the types
// here reproduce those semantics exactly when driven sequentially,
// while allowing Observe and PredictTop to be called from many
// goroutines at once — which is what lets the prefetch engine drop its
// global predictor mutex.
//
// The shared design: the *stream* state (the Markov current item, the
// PPM history, the dependency-graph window) is tiny and is linearised
// either by one atomic swap or by a mutex held only long enough to copy
// a handful of ids — this is what preserves cross-shard transitions,
// because every observation enters one total order no matter which
// engine shard it came from. The *model* state (the transition and
// context tables, which is where all the time goes) is striped by key
// hash, with the counts themselves plain atomics, so concurrent
// observers only contend when they touch the same row of the model.

// ConcurrentPredictor is a Predictor whose Observe, Predict,
// PredictTop and PredictTopInto are all safe for concurrent use without
// external locking. Observe and PredictTopInto are the hot-path pair
// (the Into form appends into a caller-pooled buffer, so prediction
// itself allocates nothing); Predict remains the evaluation-facing full
// distribution. A reader that overlaps writers sees some valid recent
// state (counts are atomics; snapshots are taken per row, not
// globally); once observers quiesce, Predict returns exactly what the
// sequential reference model would for the same observation stream.
type ConcurrentPredictor interface {
	Predictor
	TopPredictor
	TopIntoPredictor
	// ConcurrentSafe is a marker: implementing it asserts the
	// goroutine-safety contract above.
	ConcurrentSafe()
}

// CoupledPredictor is implemented by concurrent models that can predict
// *as part of* an observation: ObserveAndPredictTop(id, k) observes id
// and returns the top-k candidates conditioned on id being the request
// just served (k <= 0 observes only). With separate Observe/PredictTop
// calls a racing observer can move the shared stream context between
// the two, so a lock-free caller would sometimes plan from another
// request's context; the coupled form never reads the racing context —
// Markov predicts from id's own row, PPM from the pre-observation
// history snapshot extended with id, the dependency graph from id's
// edges — which restores exactly the conditioning a global
// observe+predict critical section used to give. All five concurrent
// models implement it.
//
// ObserveAndPredictTopInto is the engine's hot-path form: same
// semantics, with the candidates appended to dst (a pooled buffer
// passed as buf[:0]) so the per-request prediction allocates nothing.
// ObserveAndPredictTop(id, k) ≡ ObserveAndPredictTopInto(id, k, nil).
type CoupledPredictor interface {
	ObserveAndPredictTop(id cache.ID, k int) []Prediction
	ObserveAndPredictTopInto(id cache.ID, k int, dst []Prediction) []Prediction
}

// predStripes is the number of lock stripes each concurrent model
// spreads its table across. Power of two; 64 comfortably exceeds the
// hardware parallelism the engine shards across.
const predStripes = 64

// stripeOfID routes an id to a stripe (Fibonacci hash, same spread the
// engine uses for its shards).
func stripeOfID(id cache.ID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> 58) // top 6 bits → 0..63
}

// stripeOfKey routes a context key to a stripe (FNV-1a).
func stripeOfKey(s string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h & (predStripes - 1))
}

// rowTopK is the size of the cached top-candidate set a tracking row
// maintains. PredictTop(k) for k <= rowTopK reads only those candidates
// instead of scanning the whole row; the engine asks for at most its
// per-request prefetch cap, which sits well inside this.
const rowTopK = 8

// topEntry is one cached top candidate: the id and a pointer to its
// live counter (shared with the counts map, so member increments need
// no set maintenance at all).
type topEntry struct {
	id cache.ID
	c  *atomic.Int64
}

// worseCount reports whether count/id pair 1 ranks below pair 2 in
// prediction order (decreasing count, ties by ascending id) — the
// count-domain mirror of better(), valid whenever both share a
// normalising total.
func worseCount(v1 int64, id1 cache.ID, v2 int64, id2 cache.ID) bool {
	if v1 != v2 {
		return v1 < v2
	}
	return id1 > id2
}

// countRow is one row of a transition table: successor → atomic count,
// plus the row total maintained alongside so prediction normalises in a
// single pass. The RWMutex guards only the map structure and the top
// set; increments on existing entries are lock-free atomic adds under
// the read lock.
//
// Rows with trackTop additionally keep the rowTopK best candidates
// cached (exactly — see promote). Counts are monotone, which is what
// makes an exact incremental top-k cheap: a candidate's rank only
// changes when *it* is incremented, so checking membership at each
// increment preserves the invariant, and the set's worst key never
// decreases.
type countRow struct {
	mu       sync.RWMutex
	counts   map[cache.ID]*atomic.Int64
	topSet   []topEntry // exact top-rowTopK members, unordered; nil unless trackTop
	total    atomic.Int64
	trackTop bool
}

func newCountRow(trackTop bool) *countRow {
	//lint:allow hotpathalloc model growth: a row is created on first sight of its context, steady state allocates nothing
	return &countRow{counts: make(map[cache.ID]*atomic.Int64), trackTop: trackTop}
}

// inc adds one to the counter for id, creating it if needed.
func (r *countRow) inc(id cache.ID) {
	r.mu.RLock()
	c := r.counts[id]
	r.mu.RUnlock()
	if c == nil {
		r.mu.Lock()
		if c = r.counts[id]; c == nil {
			//lint:allow hotpathalloc model growth: one counter per new successor, steady state allocates nothing
			c = new(atomic.Int64)
			r.counts[id] = c
			// While the row has spare candidate slots, every id is a
			// member — so the "len(top) < rowTopK ⇒ top covers the whole
			// row" invariant that the fast path relies on holds from
			// creation onward.
			if r.trackTop && len(r.topSet) < rowTopK {
				r.topSet = append(r.topSet, topEntry{id, c})
			}
		}
		r.mu.Unlock()
	}
	v := c.Add(1)
	r.total.Add(1)
	if r.trackTop {
		r.promote(id, c, v)
	}
}

// promote keeps the cached top set exact after id's counter reached v:
// a non-member enters when its key now beats the worst member's. Keys
// are monotone (counts only grow), so a non-member that fails here
// cannot belong until its own next increment — no other event can
// demote the set's worst key below a constant non-member key.
func (r *countRow) promote(id cache.ID, c *atomic.Int64, v int64) {
	r.mu.RLock()
	if len(r.topSet) < rowTopK {
		r.mu.RUnlock() // spare slots: creation already added every id
		return
	}
	wI := -1
	var wV int64
	var wID cache.ID
	for i := range r.topSet {
		e := &r.topSet[i]
		if e.c == c {
			r.mu.RUnlock() // already a member; its counter is shared
			return
		}
		ev := e.c.Load()
		if wI < 0 || worseCount(ev, e.id, wV, wID) {
			wI, wV, wID = i, ev, e.id
		}
	}
	r.mu.RUnlock()
	if !worseCount(wV, wID, v, id) {
		return // the worst member still outranks us
	}
	// Beat the worst member: swap in under the write lock, rechecking
	// against fresh counts (a racing promote may have got here first).
	r.mu.Lock()
	wI = -1
	for i := range r.topSet {
		e := &r.topSet[i]
		if e.c == c {
			r.mu.Unlock()
			return
		}
		ev := e.c.Load()
		if wI < 0 || worseCount(ev, e.id, wV, wID) {
			wI, wV, wID = i, ev, e.id
		}
	}
	if wI >= 0 && worseCount(wV, wID, c.Load(), id) {
		r.topSet[wI] = topEntry{id, c}
	}
	r.mu.Unlock()
}

// snapshot copies the row into a plain map. The copy is per-row
// consistent enough for prediction: each count is read once, and the
// caller normalises by the sum of exactly the counts it read, so the
// resulting distribution is always valid and equals the sequential
// model's once observers quiesce. Predict-only: the hot path uses top,
// which allocates nothing beyond its k-slot buffer.
func (r *countRow) snapshot() map[cache.ID]int64 {
	r.mu.RLock()
	out := make(map[cache.ID]int64, len(r.counts))
	for id, c := range r.counts {
		if v := c.Load(); v > 0 {
			out[id] = v
		}
	}
	r.mu.RUnlock()
	return out
}

// top collects the k most probable successors directly under the read
// lock — no per-call map copy, just the k-slot result buffer, in one
// pass normalised by the row total. On tracking rows with k inside the
// cached candidate set, only the (at most rowTopK) candidates are read
// — O(k), independent of how many successors the row accumulated. A
// count racing ahead of the total can skew one probability momentarily
// (clamped to 1); once observers quiesce the result equals the
// sequential model's Predict()[:k] exactly.
func (r *countRow) top(k int) []Prediction { return r.topInto(nil, k) }

// topInto is top appending into dst — the zero-allocation hot path when
// dst has capacity k.
func (r *countRow) topInto(dst []Prediction, k int) []Prediction {
	if k <= 0 {
		return nil
	}
	total := r.total.Load()
	if total == 0 {
		return nil
	}
	ft := float64(total)
	top := newTopPredictionsOn(dst, k)
	r.mu.RLock()
	if r.trackTop && k <= rowTopK {
		for _, e := range r.topSet {
			offerCount(&top, e.id, e.c.Load(), ft)
		}
	} else {
		for id, c := range r.counts {
			offerCount(&top, id, c.Load(), ft)
		}
	}
	r.mu.RUnlock()
	return top.buf
}

// offerCount feeds one counter into a top-k buffer as a clamped
// probability.
func offerCount(top *topPredictions, id cache.ID, v int64, ft float64) {
	if v <= 0 {
		return
	}
	p := float64(v) / ft
	if p > 1 {
		p = 1
	}
	top.offer(Prediction{Item: id, Prob: p})
}

// rowTable is a striped id → countRow map. trackTop is inherited by
// every row it creates: the Markov table tracks top candidates (its
// PredictTop ranks by count/total, the same order the cache maintains),
// the dependency graph's does not (edge probabilities are clamped at 1,
// which can reorder ties away from raw count order).
type rowTable struct {
	stripes [predStripes]struct {
		mu   sync.RWMutex
		rows map[cache.ID]*countRow
	}
	trackTop bool
}

func newRowTable(trackTop bool) *rowTable {
	t := &rowTable{trackTop: trackTop}
	for i := range t.stripes {
		t.stripes[i].rows = make(map[cache.ID]*countRow)
	}
	return t
}

// row returns the countRow for id, creating it when create is set.
func (t *rowTable) row(id cache.ID, create bool) *countRow {
	s := &t.stripes[stripeOfID(id)]
	s.mu.RLock()
	r := s.rows[id]
	s.mu.RUnlock()
	if r != nil || !create {
		return r
	}
	s.mu.Lock()
	if r = s.rows[id]; r == nil {
		r = newCountRow(t.trackTop)
		s.rows[id] = r
	}
	s.mu.Unlock()
	return r
}

// predictionsFromCounts turns a count snapshot into the full sorted
// distribution, normalising by total.
func predictionsFromCounts(counts map[cache.ID]int64, total float64) []Prediction {
	if len(counts) == 0 || total <= 0 {
		return nil
	}
	out := make([]Prediction, 0, len(counts))
	for id, c := range counts {
		out = append(out, Prediction{Item: id, Prob: float64(c) / total})
	}
	sortPredictions(out)
	return out
}

// sumCounts totals a snapshot.
func sumCounts(counts map[cache.ID]int64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	return float64(total)
}

// markovNoState marks "no request observed yet" in the atomic current
// state. The one id equal to math.MinInt64 is therefore unusable as an
// item id; real id spaces are dense non-negative integers.
const markovNoState = math.MinInt64

// ConcurrentMarkov1 is the concurrent first-order Markov model. The
// current state is a single atomic: Observe swaps the new id in and
// counts the transition from whatever it swapped out, so concurrent
// observers each claim a unique predecessor and every observation
// extends one global chain — the exact multiset of transitions a
// sequential model would count for the same linearised stream.
type ConcurrentMarkov1 struct {
	rows *rowTable
	cur  atomic.Int64
}

// NewConcurrentMarkov1 returns an empty concurrent first-order Markov
// predictor.
func NewConcurrentMarkov1() *ConcurrentMarkov1 {
	m := &ConcurrentMarkov1{rows: newRowTable(true)}
	m.cur.Store(markovNoState)
	return m
}

// Observe implements Predictor. Safe for concurrent use.
func (m *ConcurrentMarkov1) Observe(id cache.ID) {
	prev := m.cur.Swap(int64(id))
	if prev == markovNoState {
		return
	}
	m.rows.row(cache.ID(prev), true).inc(id)
}

// currentRow snapshots the successor counts of the current state.
func (m *ConcurrentMarkov1) currentRow() map[cache.ID]int64 {
	cur := m.cur.Load()
	if cur == markovNoState {
		return nil
	}
	r := m.rows.row(cache.ID(cur), false)
	if r == nil {
		return nil
	}
	return r.snapshot()
}

// Predict implements Predictor.
func (m *ConcurrentMarkov1) Predict() []Prediction {
	counts := m.currentRow()
	return predictionsFromCounts(counts, sumCounts(counts))
}

// PredictTop implements TopPredictor: the engine's hot path, free of
// per-call map copies.
func (m *ConcurrentMarkov1) PredictTop(k int) []Prediction {
	return m.PredictTopInto(nil, k)
}

// PredictTopInto implements TopIntoPredictor.
//
//prefetch:hotpath
func (m *ConcurrentMarkov1) PredictTopInto(dst []Prediction, k int) []Prediction {
	cur := m.cur.Load()
	if cur == markovNoState {
		return nil
	}
	r := m.rows.row(cache.ID(cur), false)
	if r == nil {
		return nil
	}
	return r.topInto(dst, k)
}

// ObserveAndPredictTop implements CoupledPredictor: the candidates are
// id's own successors, so a racing Observe moving cur cannot change
// what this observation's request gets planned against.
func (m *ConcurrentMarkov1) ObserveAndPredictTop(id cache.ID, k int) []Prediction {
	return m.ObserveAndPredictTopInto(id, k, nil)
}

// ObserveAndPredictTopInto implements CoupledPredictor.
//
//prefetch:hotpath
func (m *ConcurrentMarkov1) ObserveAndPredictTopInto(id cache.ID, k int, dst []Prediction) []Prediction {
	m.Observe(id)
	if k <= 0 {
		return nil
	}
	r := m.rows.row(id, false)
	if r == nil {
		return nil
	}
	return r.topInto(dst, k)
}

// Name implements Predictor.
func (m *ConcurrentMarkov1) Name() string { return "markov1" }

// ConcurrentSafe implements ConcurrentPredictor.
func (m *ConcurrentMarkov1) ConcurrentSafe() {}

// ConcurrentPopularity is the concurrent global-frequency model: a
// lock-free map of atomic counters (sync.Map, so reads and increments
// of already-seen items take no lock at all — the steady state for a
// popularity model, whose whole point is that the same items recur).
type ConcurrentPopularity struct {
	counts sync.Map // cache.ID → *atomic.Int64
	total  atomic.Int64
	topK   int
}

// NewConcurrentPopularity returns a concurrent popularity predictor
// reporting the topK most frequent items (topK <= 0 means all).
func NewConcurrentPopularity(topK int) *ConcurrentPopularity {
	return &ConcurrentPopularity{topK: topK}
}

// Observe implements Predictor. Safe for concurrent use.
func (p *ConcurrentPopularity) Observe(id cache.ID) {
	//lint:allow hotpathalloc sync.Map key boxing: the runtime interns small ids and the gate TestPredictTopIntoAllocFree holds at 0 allocs/op
	if c, ok := p.counts.Load(id); ok {
		c.(*atomic.Int64).Add(1)
	} else {
		//lint:allow hotpathalloc model growth: one counter per new id, plus the sync.Map key boxing above
		c, _ := p.counts.LoadOrStore(id, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}
	p.total.Add(1)
}

// snapshot copies the live counters.
func (p *ConcurrentPopularity) snapshot() map[cache.ID]int64 {
	out := make(map[cache.ID]int64)
	p.counts.Range(func(k, v any) bool {
		if c := v.(*atomic.Int64).Load(); c > 0 {
			out[k.(cache.ID)] = c
		}
		return true
	})
	return out
}

// Predict implements Predictor.
func (p *ConcurrentPopularity) Predict() []Prediction {
	counts := p.snapshot()
	out := predictionsFromCounts(counts, sumCounts(counts))
	if p.topK > 0 && len(out) > p.topK {
		out = out[:p.topK]
	}
	return out
}

// PredictTop implements TopPredictor: one lock-free pass over the live
// counters, normalised by the atomic total (equal to the count sum once
// observers quiesce; momentarily behind it mid-race, so probabilities
// are clamped to 1).
func (p *ConcurrentPopularity) PredictTop(k int) []Prediction {
	return p.PredictTopInto(nil, k)
}

// PredictTopInto implements TopIntoPredictor.
//
//prefetch:hotpath
func (p *ConcurrentPopularity) PredictTopInto(dst []Prediction, k int) []Prediction {
	if p.topK > 0 && k > p.topK {
		k = p.topK // Predict truncates to topK; the prefix contract follows it
	}
	if k <= 0 {
		return nil
	}
	total := p.total.Load()
	if total == 0 {
		return nil
	}
	ft := float64(total)
	top := newTopPredictionsOn(dst, k)
	//lint:allow hotpathalloc non-capturing-by-reference Range body stays on the stack (sync.Map.Range does not retain it); gated at 0 allocs/op
	p.counts.Range(func(key, v any) bool {
		offerCount(&top, key.(cache.ID), v.(*atomic.Int64).Load(), ft)
		return true
	})
	return top.buf
}

// ObserveAndPredictTop implements CoupledPredictor. Popularity is
// context-free, so the coupled form is just the two calls in sequence.
func (p *ConcurrentPopularity) ObserveAndPredictTop(id cache.ID, k int) []Prediction {
	return p.ObserveAndPredictTopInto(id, k, nil)
}

// ObserveAndPredictTopInto implements CoupledPredictor.
//
//prefetch:hotpath
func (p *ConcurrentPopularity) ObserveAndPredictTopInto(id cache.ID, k int, dst []Prediction) []Prediction {
	p.Observe(id)
	if k <= 0 {
		return nil
	}
	return p.PredictTopInto(dst, k)
}

// Name implements Predictor.
func (p *ConcurrentPopularity) Name() string { return "popularity" }

// ConcurrentSafe implements ConcurrentPredictor.
func (p *ConcurrentPopularity) ConcurrentSafe() {}

// ctxTable is a striped context-key → countRow map (PPM's per-order
// tables).
type ctxTable struct {
	stripes [predStripes]struct {
		mu  sync.RWMutex
		tab map[string]*countRow
	}
}

func newCtxTable() *ctxTable {
	t := &ctxTable{}
	for i := range t.stripes {
		t.stripes[i].tab = make(map[string]*countRow)
	}
	return t
}

func (t *ctxTable) row(key string, create bool) *countRow {
	s := &t.stripes[stripeOfKey(key)]
	s.mu.RLock()
	r := s.tab[key]
	s.mu.RUnlock()
	if r != nil || !create {
		return r
	}
	s.mu.Lock()
	if r = s.tab[key]; r == nil {
		r = newCountRow(false)
		s.tab[key] = r
	}
	s.mu.Unlock()
	return r
}

// ConcurrentPPM is the concurrent order-k PPM model. The history (at
// most k ids) is guarded by a mutex held only for the copy-and-append —
// that serialisation is what defines the context each observation
// lands in, exactly as the shared stream order did under the engine's
// old global predictor lock. The per-order context tables, where the
// real work happens, are striped and atomic.
type ConcurrentPPM struct {
	k      int
	tables []*ctxTable // tables[o] = contexts of length o+1

	mu      sync.Mutex
	history []cache.ID
}

// NewConcurrentPPM creates a concurrent PPM predictor of maximum order
// k (k >= 1).
func NewConcurrentPPM(k int) *ConcurrentPPM {
	if k < 1 {
		panic(fmt.Sprintf("predict: PPM order %d must be >= 1", k))
	}
	tables := make([]*ctxTable, k)
	for i := range tables {
		tables[i] = newCtxTable()
	}
	return &ConcurrentPPM{k: k, tables: tables}
}

// appendHistory pushes id onto the bounded history and returns a copy
// of the history as it was just before — the contexts this observation
// extends.
func (p *ConcurrentPPM) appendHistory(id cache.ID) []cache.ID {
	p.mu.Lock()
	//lint:allow hotpathalloc PPM is allocation-exempt by design: the history copy is bounded by k (see TestPredictTopIntoAllocFree)
	prev := append([]cache.ID(nil), p.history...)
	p.history = append(p.history, id)
	if len(p.history) > p.k {
		p.history = p.history[1:]
	}
	p.mu.Unlock()
	return prev
}

// historySnapshot copies the current history.
func (p *ConcurrentPPM) historySnapshot() []cache.ID {
	p.mu.Lock()
	//lint:allow hotpathalloc PPM is allocation-exempt by design: the history copy is bounded by k
	h := append([]cache.ID(nil), p.history...)
	p.mu.Unlock()
	return h
}

// Observe implements Predictor. Safe for concurrent use.
func (p *ConcurrentPPM) Observe(id cache.ID) { p.observe(id) }

// observe records id under every context order and returns the
// pre-observation history copy.
func (p *ConcurrentPPM) observe(id cache.ID) []cache.ID {
	prev := p.appendHistory(id)
	for o := 1; o <= p.k && o <= len(prev); o++ {
		key := ctxKey(prev[len(prev)-o:])
		p.tables[o-1].row(key, true).inc(id)
	}
	return prev
}

// blend runs the PPM-C escape blend over a history snapshot, returning
// the unsorted probability map. Mirrors the sequential PPM.Predict,
// reading each order's row in place under its read lock (no per-order
// map copies); a count racing between the sum pass and the assign pass
// can skew one term momentarily, and vanishes once observers quiesce.
func (p *ConcurrentPPM) blend(history []cache.ID) map[cache.ID]float64 {
	//lint:allow hotpathalloc PPM is allocation-exempt by design: the escape blend builds per-call maps
	probs := make(map[cache.ID]float64)
	carry := 1.0
	//lint:allow hotpathalloc PPM is allocation-exempt by design: the escape blend builds per-call maps
	excluded := make(map[cache.ID]bool)
	for o := min(p.k, len(history)); o >= 1 && carry > 1e-12; o-- {
		key := ctxKey(history[len(history)-o:])
		r := p.tables[o-1].row(key, false)
		if r == nil {
			continue
		}
		r.mu.RLock()
		distinct := int64(len(r.counts))
		if distinct == 0 {
			r.mu.RUnlock()
			continue
		}
		total := r.total.Load()
		var exclCount int64
		for id := range excluded {
			if c := r.counts[id]; c != nil {
				exclCount += c.Load()
			}
		}
		avail := float64(total-exclCount) + float64(distinct)
		if avail <= 0 {
			r.mu.RUnlock()
			continue
		}
		for id, c := range r.counts {
			if excluded[id] {
				continue
			}
			probs[id] += carry * float64(c.Load()) / avail
			excluded[id] = true
		}
		carry *= float64(distinct) / avail
		r.mu.RUnlock()
	}
	return probs
}

// Predict implements Predictor.
func (p *ConcurrentPPM) Predict() []Prediction {
	probs := p.blend(p.historySnapshot())
	if len(probs) == 0 {
		return nil
	}
	out := make([]Prediction, 0, len(probs))
	for id, pr := range probs {
		out = append(out, Prediction{Item: id, Prob: pr})
	}
	sortPredictions(out)
	return out
}

// PredictTop implements TopPredictor. The PPM blend needs the full
// per-order rows anyway (exclusion couples the candidates), so the
// saving over Predict is the final sort, not the table walk.
func (p *ConcurrentPPM) PredictTop(k int) []Prediction {
	return p.PredictTopInto(nil, k)
}

// PredictTopInto implements TopIntoPredictor. The result lands in dst,
// but the blend itself still builds its per-call probability maps —
// PPM's exclusion rule couples every candidate, so the Into form bounds
// the output, not the blend.
//
//prefetch:hotpath
func (p *ConcurrentPPM) PredictTopInto(dst []Prediction, k int) []Prediction {
	if k <= 0 {
		return nil
	}
	return topFromProbs(p.blend(p.historySnapshot()), k, dst)
}

// ObserveAndPredictTop implements CoupledPredictor: the blend runs over
// the history as this observation left it (the pre-observation snapshot
// extended with id), not the live shared history a racing observer may
// already have advanced.
func (p *ConcurrentPPM) ObserveAndPredictTop(id cache.ID, k int) []Prediction {
	return p.ObserveAndPredictTopInto(id, k, nil)
}

// ObserveAndPredictTopInto implements CoupledPredictor.
//
//prefetch:hotpath
func (p *ConcurrentPPM) ObserveAndPredictTopInto(id cache.ID, k int, dst []Prediction) []Prediction {
	prev := p.observe(id)
	if k <= 0 {
		return nil
	}
	//lint:allow hotpathalloc PPM is allocation-exempt by design: extends this call's own history copy
	hist := append(prev, id) // prev is this call's own copy
	if len(hist) > p.k {
		hist = hist[len(hist)-p.k:]
	}
	return topFromProbs(p.blend(hist), k, dst)
}

// topFromProbs reduces an unsorted probability map to its k best
// entries in prediction order, appended to dst.
func topFromProbs(probs map[cache.ID]float64, k int, dst []Prediction) []Prediction {
	if len(probs) == 0 || k <= 0 {
		return nil
	}
	top := newTopPredictionsOn(dst, k)
	for id, pr := range probs {
		top.offer(Prediction{Item: id, Prob: pr})
	}
	return top.buf
}

// Name implements Predictor.
func (p *ConcurrentPPM) Name() string { return fmt.Sprintf("ppm(k=%d)", p.k) }

// ConcurrentSafe implements ConcurrentPredictor.
func (p *ConcurrentPPM) ConcurrentSafe() {}

// ConcurrentDependencyGraph is the concurrent Padmanabhan–Mogul model.
// Like ConcurrentPPM, the lookahead window is linearised under a short
// mutex (copy of at most w ids) and the edge table is striped with
// atomic counts; visit counts live in a lock-free map.
type ConcurrentDependencyGraph struct {
	w      int
	edges  *rowTable
	visits sync.Map // cache.ID → *atomic.Int64

	mu     sync.Mutex
	window []cache.ID
}

// NewConcurrentDependencyGraph creates a concurrent dependency-graph
// predictor with lookahead window w (w >= 1).
func NewConcurrentDependencyGraph(w int) *ConcurrentDependencyGraph {
	if w < 1 {
		panic(fmt.Sprintf("predict: window %d must be >= 1", w))
	}
	return &ConcurrentDependencyGraph{w: w, edges: newRowTable(false)}
}

// depgraphStackWindow bounds the window copy Observe can stage on the
// stack; the classic lookahead choices (2–10) sit well inside it.
const depgraphStackWindow = 16

// Observe implements Predictor. Safe for concurrent use. For windows up
// to depgraphStackWindow the pre-observation copy lives on the stack
// and the window itself slides by copy-down in its fixed backing array,
// so observing allocates only when id opens a new edge row.
func (g *ConcurrentDependencyGraph) Observe(id cache.ID) {
	var stack [depgraphStackWindow]cache.ID
	var prevs []cache.ID
	g.mu.Lock()
	if len(g.window) <= depgraphStackWindow {
		prevs = stack[:copy(stack[:], g.window)]
	} else {
		//lint:allow hotpathalloc cold fallback: windows beyond depgraphStackWindow copy to the heap; the default window fits the stack
		prevs = append([]cache.ID(nil), g.window...)
	}
	g.window = append(g.window, id)
	if len(g.window) > g.w {
		copy(g.window, g.window[1:])
		g.window = g.window[:g.w]
	}
	g.mu.Unlock()

	//lint:allow hotpathalloc sync.Map key boxing: the runtime interns small ids and the gate TestPredictTopIntoAllocFree holds at 0 allocs/op
	if c, ok := g.visits.Load(id); ok {
		c.(*atomic.Int64).Add(1)
	} else {
		//lint:allow hotpathalloc model growth: one visit counter per new id, plus the sync.Map key boxing above
		c, _ := g.visits.LoadOrStore(id, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}
	for _, prev := range prevs {
		if prev == id {
			continue
		}
		g.edges.row(prev, true).inc(id)
	}
}

// current returns the most recent request and its visit count.
func (g *ConcurrentDependencyGraph) current() (cache.ID, int64, bool) {
	g.mu.Lock()
	if len(g.window) == 0 {
		g.mu.Unlock()
		return 0, 0, false
	}
	cur := g.window[len(g.window)-1]
	g.mu.Unlock()
	c, ok := g.visits.Load(cur)
	if !ok {
		return cur, 0, false
	}
	return cur, c.(*atomic.Int64).Load(), true
}

// successorProbs snapshots the capped edge probabilities of cur.
func (g *ConcurrentDependencyGraph) successorProbs(cur cache.ID, visits int64) map[cache.ID]float64 {
	r := g.edges.row(cur, false)
	if r == nil || visits <= 0 {
		return nil
	}
	counts := r.snapshot()
	probs := make(map[cache.ID]float64, len(counts))
	for id, c := range counts {
		p := float64(c) / float64(visits)
		if p > 1 {
			p = 1 // an item can follow multiple times within one window
		}
		probs[id] = p
	}
	return probs
}

// Predict implements Predictor.
func (g *ConcurrentDependencyGraph) Predict() []Prediction {
	cur, visits, ok := g.current()
	if !ok {
		return nil
	}
	probs := g.successorProbs(cur, visits)
	if len(probs) == 0 {
		return nil
	}
	out := make([]Prediction, 0, len(probs))
	for id, p := range probs {
		out = append(out, Prediction{Item: id, Prob: p})
	}
	sortPredictions(out)
	return out
}

// topSuccessors collects the k best successors of cur in one in-place
// pass over its edge row under the read lock, normalised by cur's visit
// count (probabilities clamped at 1, as in the sequential model),
// appended to dst.
func (g *ConcurrentDependencyGraph) topSuccessors(cur cache.ID, k int, dst []Prediction) []Prediction {
	//lint:allow hotpathalloc sync.Map key boxing: the runtime interns small ids; gated at 0 allocs/op
	c, ok := g.visits.Load(cur)
	if !ok {
		return nil
	}
	visits := c.(*atomic.Int64).Load()
	if visits <= 0 {
		return nil
	}
	r := g.edges.row(cur, false)
	if r == nil {
		return nil
	}
	fv := float64(visits)
	top := newTopPredictionsOn(dst, k)
	r.mu.RLock()
	for id, cc := range r.counts {
		offerCount(&top, id, cc.Load(), fv)
	}
	r.mu.RUnlock()
	return top.buf
}

// PredictTop implements TopPredictor.
func (g *ConcurrentDependencyGraph) PredictTop(k int) []Prediction {
	return g.PredictTopInto(nil, k)
}

// PredictTopInto implements TopIntoPredictor.
//
//prefetch:hotpath
func (g *ConcurrentDependencyGraph) PredictTopInto(dst []Prediction, k int) []Prediction {
	if k <= 0 {
		return nil
	}
	g.mu.Lock()
	if len(g.window) == 0 {
		g.mu.Unlock()
		return nil
	}
	cur := g.window[len(g.window)-1]
	g.mu.Unlock()
	return g.topSuccessors(cur, k, dst)
}

// ObserveAndPredictTop implements CoupledPredictor: successors of the
// observed id itself, untouched by whatever a racing observer appends
// to the shared window.
func (g *ConcurrentDependencyGraph) ObserveAndPredictTop(id cache.ID, k int) []Prediction {
	return g.ObserveAndPredictTopInto(id, k, nil)
}

// ObserveAndPredictTopInto implements CoupledPredictor.
//
//prefetch:hotpath
func (g *ConcurrentDependencyGraph) ObserveAndPredictTopInto(id cache.ID, k int, dst []Prediction) []Prediction {
	g.Observe(id)
	if k <= 0 {
		return nil
	}
	return g.topSuccessors(id, k, dst)
}

// Name implements Predictor.
func (g *ConcurrentDependencyGraph) Name() string {
	return fmt.Sprintf("depgraph(w=%d)", g.w)
}

// ConcurrentSafe implements ConcurrentPredictor.
func (g *ConcurrentDependencyGraph) ConcurrentSafe() {}
