package predict

import (
	"testing"

	"repro/internal/cache"
)

// FuzzPredictorObserve drives Observe/Predict/PredictTop across all
// five concurrent predictors with an arbitrary request stream. The
// contract under fuzz: no panic on any stream (including empty ones and
// pathological repetition), PredictTop returns at most k entries, and
// top-k ⊆ the full prediction set — PredictTop is a view of Predict,
// never an independent model.
func FuzzPredictorObserve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 1, 255, 2, 255, 3})
	f.Add([]byte("abcabcabdabe"))

	f.Fuzz(func(t *testing.T, stream []byte) {
		predictors := []struct {
			name string
			p    interface {
				Observe(cache.ID)
				Predict() []Prediction
				PredictTop(int) []Prediction
			}
		}{
			{"markov1", NewConcurrentMarkov1()},
			{"popularity", NewConcurrentPopularity(8)},
			{"ppm", NewConcurrentPPM(3)},
			{"depgraph", NewConcurrentDependencyGraph(4)},
			{"lz78", NewConcurrentLZ78()},
		}
		for _, tc := range predictors {
			for i, b := range stream {
				tc.p.Observe(cache.ID(b))
				// Interleave predictions with observations so the fuzz
				// explores mid-stream states, not just the final one.
				if i%7 == 3 {
					_ = tc.p.Predict()
				}
			}
			k := 1 + len(stream)%8
			top := tc.p.PredictTop(k)
			if len(top) > k {
				t.Fatalf("%s: PredictTop(%d) returned %d entries", tc.name, k, len(top))
			}
			full := tc.p.Predict()
			inFull := make(map[cache.ID]bool, len(full))
			for _, pr := range full {
				inFull[pr.Item] = true
			}
			for _, pr := range top {
				if !inFull[pr.Item] {
					t.Fatalf("%s: PredictTop(%d) item %d not in the full prediction set (%d entries)",
						tc.name, k, pr.Item, len(full))
				}
			}
		}
	})
}
