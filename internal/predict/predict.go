// Package predict implements the access models that speculative
// prefetching relies on. The paper assumes an access model exists that
// assigns probabilities p to candidate items ("for simplicity, assume
// that all the prefetched files have the same probability p"); its
// related-work section cites the concrete model families, which we build
// here so the end-to-end experiments run on *estimated* probabilities:
//
//   - Markov1: first-order Markov transition counts (Vitter–Krishnan's
//     optimal-prediction setting for Markov sources).
//   - PPM: order-k prediction by partial matching with escape to shorter
//     contexts (the data-compression approach of Vitter–Krishnan).
//   - DependencyGraph: the Padmanabhan–Mogul server-side dependency
//     graph, where an edge A→B counts occurrences of B within a
//     lookahead window after A.
//   - Popularity: global frequency ranking (the ETEL-style patterned
//     frequency baseline).
//
// All predictors are online: they learn from each observed request and
// can be queried for a probability-ranked candidate set at any time.
package predict

import (
	"fmt"
	"slices"

	"repro/internal/cache"
)

// Prediction is one candidate for the next access.
type Prediction struct {
	Item cache.ID
	// Prob is the model's estimate of the probability that Item is
	// requested next (or within the model's horizon).
	Prob float64
}

// Predictor is an online access model.
type Predictor interface {
	// Observe feeds one user request into the model.
	Observe(id cache.ID)
	// Predict returns candidates for the upcoming access, sorted by
	// decreasing probability. The slice is owned by the caller.
	Predict() []Prediction
	// Name identifies the model in reports.
	Name() string
}

// sortPredictions orders by the prediction order better defines —
// decreasing probability, ties by ascending id — so Predict and
// PredictTop share one source of truth for the ordering the
// TopPredictor contract depends on. slices.SortFunc rather than
// sort.Slice: this runs on the engine's per-request hot path, where the
// reflection swapper dominated CPU profiles.
func sortPredictions(ps []Prediction) {
	slices.SortFunc(ps, func(a, b Prediction) int {
		switch {
		case better(a, b):
			return -1
		case better(b, a):
			return 1
		}
		return 0
	})
}

// TopPredictor is implemented by predictors that can produce just their
// k most probable candidates without materialising and sorting the full
// distribution. The result must equal the first k entries of Predict().
// The prefetch engine only ever consumes a bounded prefix of the
// candidate list (every threshold policy admits a prefix, truncated to
// the per-request prefetch cap), so this is its hot-path interface;
// Predict remains the evaluation-facing full distribution.
type TopPredictor interface {
	PredictTop(k int) []Prediction
}

// TopIntoPredictor is the allocation-free variant of TopPredictor:
// PredictTopInto appends the k most probable candidates to dst
// (typically a pooled buffer passed as buf[:0]) and returns the
// extended slice, which may share dst's backing array. The appended
// candidates must equal PredictTop(k). The prefetch engine feeds this
// from per-request pooled buffers so a cache hit allocates nothing.
type TopIntoPredictor interface {
	PredictTopInto(dst []Prediction, k int) []Prediction
}

// better reports whether a precedes b in prediction order (decreasing
// probability, ties by ascending id).
func better(a, b Prediction) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	return a.Item < b.Item
}

// topPredictions keeps the k best of a streamed candidate set in one
// small sorted buffer: O(n·k) with k bounded by the engine's prefetch
// cap, no full-row allocation, and the same deterministic order as
// sortPredictions.
type topPredictions struct {
	buf []Prediction
	k   int
}

func newTopPredictions(k int) topPredictions {
	//lint:allow hotpathalloc reached only when the caller passes no buffer (PredictTop compatibility); Into callers take the dst branch
	return topPredictions{buf: make([]Prediction, 0, k), k: k}
}

// newTopPredictionsOn is newTopPredictions over a caller-supplied
// buffer: candidates accumulate in dst[:0] (growing its backing array
// only when cap(dst) < k), which is what lets the PredictTopInto paths
// run without allocating. dst's previous contents are discarded.
func newTopPredictionsOn(dst []Prediction, k int) topPredictions {
	if dst == nil {
		return newTopPredictions(k)
	}
	return topPredictions{buf: dst[:0], k: k}
}

func (t *topPredictions) offer(p Prediction) {
	if len(t.buf) == t.k {
		if !better(p, t.buf[len(t.buf)-1]) {
			return
		}
		t.buf = t.buf[:len(t.buf)-1]
	}
	i := len(t.buf)
	t.buf = append(t.buf, p)
	for i > 0 && better(t.buf[i], t.buf[i-1]) {
		t.buf[i], t.buf[i-1] = t.buf[i-1], t.buf[i]
		i--
	}
}

// Markov1 is a first-order Markov model: it counts transitions
// prev→next and predicts the successors of the current state with their
// empirical conditional probabilities.
type Markov1 struct {
	counts map[cache.ID]map[cache.ID]int64
	totals map[cache.ID]int64
	cur    cache.ID
	seen   bool
}

// NewMarkov1 returns an empty first-order Markov predictor.
func NewMarkov1() *Markov1 {
	return &Markov1{
		counts: make(map[cache.ID]map[cache.ID]int64),
		totals: make(map[cache.ID]int64),
	}
}

// Observe implements Predictor.
func (m *Markov1) Observe(id cache.ID) {
	if m.seen {
		row := m.counts[m.cur]
		if row == nil {
			row = make(map[cache.ID]int64)
			m.counts[m.cur] = row
		}
		row[id]++
		m.totals[m.cur]++
	}
	m.cur = id
	m.seen = true
}

// Predict implements Predictor.
func (m *Markov1) Predict() []Prediction {
	if !m.seen {
		return nil
	}
	total := m.totals[m.cur]
	if total == 0 {
		return nil
	}
	row := m.counts[m.cur]
	out := make([]Prediction, 0, len(row))
	for id, c := range row {
		out = append(out, Prediction{Item: id, Prob: float64(c) / float64(total)})
	}
	sortPredictions(out)
	return out
}

// PredictTop implements TopPredictor: the k most probable successors of
// the current state, without sorting the whole row.
func (m *Markov1) PredictTop(k int) []Prediction {
	if !m.seen || k <= 0 {
		return nil
	}
	total := m.totals[m.cur]
	if total == 0 {
		return nil
	}
	top := newTopPredictions(k)
	for id, c := range m.counts[m.cur] {
		top.offer(Prediction{Item: id, Prob: float64(c) / float64(total)})
	}
	return top.buf
}

// Name implements Predictor.
func (m *Markov1) Name() string { return "markov1" }

// Popularity predicts globally popular items regardless of context.
type Popularity struct {
	counts map[cache.ID]int64
	total  int64
	topK   int
}

// NewPopularity returns a popularity predictor that reports the topK
// most frequent items (topK <= 0 means all).
func NewPopularity(topK int) *Popularity {
	return &Popularity{counts: make(map[cache.ID]int64), topK: topK}
}

// Observe implements Predictor.
func (p *Popularity) Observe(id cache.ID) {
	p.counts[id]++
	p.total++
}

// Predict implements Predictor.
func (p *Popularity) Predict() []Prediction {
	if p.total == 0 {
		return nil
	}
	out := make([]Prediction, 0, len(p.counts))
	for id, c := range p.counts {
		out = append(out, Prediction{Item: id, Prob: float64(c) / float64(p.total)})
	}
	sortPredictions(out)
	if p.topK > 0 && len(out) > p.topK {
		out = out[:p.topK]
	}
	return out
}

// Name implements Predictor.
func (p *Popularity) Name() string { return "popularity" }

// DependencyGraph is the Padmanabhan–Mogul model: for each item A it
// counts, over a sliding window of the last W requests, how often each
// item B appeared within the window after A. The edge weight
// count(A→B)/count(A) estimates the probability that B follows A "soon".
type DependencyGraph struct {
	window []cache.ID
	w      int
	edges  map[cache.ID]map[cache.ID]int64
	visits map[cache.ID]int64
}

// NewDependencyGraph creates a dependency-graph predictor with lookahead
// window w (w >= 1; the classic choice is small, e.g. 2–10).
func NewDependencyGraph(w int) *DependencyGraph {
	if w < 1 {
		panic(fmt.Sprintf("predict: window %d must be >= 1", w))
	}
	return &DependencyGraph{
		w:      w,
		edges:  make(map[cache.ID]map[cache.ID]int64),
		visits: make(map[cache.ID]int64),
	}
}

// Observe implements Predictor.
func (g *DependencyGraph) Observe(id cache.ID) {
	// id follows (within window) every item currently in the window.
	for _, prev := range g.window {
		if prev == id {
			continue
		}
		row := g.edges[prev]
		if row == nil {
			row = make(map[cache.ID]int64)
			g.edges[prev] = row
		}
		row[id]++
	}
	g.visits[id]++
	g.window = append(g.window, id)
	if len(g.window) > g.w {
		g.window = g.window[1:]
	}
}

// Predict implements Predictor. Candidates are successors of the most
// recent request.
func (g *DependencyGraph) Predict() []Prediction {
	if len(g.window) == 0 {
		return nil
	}
	cur := g.window[len(g.window)-1]
	visits := g.visits[cur]
	if visits == 0 {
		return nil
	}
	row := g.edges[cur]
	out := make([]Prediction, 0, len(row))
	for id, c := range row {
		p := float64(c) / float64(visits)
		if p > 1 {
			p = 1 // an item can follow multiple times within one window
		}
		out = append(out, Prediction{Item: id, Prob: p})
	}
	sortPredictions(out)
	return out
}

// Name implements Predictor.
func (g *DependencyGraph) Name() string { return fmt.Sprintf("depgraph(w=%d)", g.w) }
