package predict

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestMarkov1LearnsDeterministicChain(t *testing.T) {
	m := NewMarkov1()
	// Repeating cycle 1→2→3→1...
	for i := 0; i < 30; i++ {
		m.Observe(cache.ID(i%3 + 1))
	}
	// After observing ...,3 the current state is 3 (i=29 → 29%3+1=3).
	preds := m.Predict()
	if len(preds) != 1 || preds[0].Item != 1 || preds[0].Prob != 1 {
		t.Errorf("predictions after cycle = %+v, want [{1 1}]", preds)
	}
}

func TestMarkov1Probabilities(t *testing.T) {
	m := NewMarkov1()
	// From state 5: go to 6 three times, to 7 once.
	seq := []cache.ID{5, 6, 5, 6, 5, 6, 5, 7, 5}
	for _, id := range seq {
		m.Observe(id)
	}
	preds := m.Predict() // current state 5
	if len(preds) != 2 {
		t.Fatalf("got %d predictions, want 2", len(preds))
	}
	if preds[0].Item != 6 || math.Abs(preds[0].Prob-0.75) > 1e-12 {
		t.Errorf("top prediction = %+v, want {6 0.75}", preds[0])
	}
	if preds[1].Item != 7 || math.Abs(preds[1].Prob-0.25) > 1e-12 {
		t.Errorf("second prediction = %+v, want {7 0.25}", preds[1])
	}
}

func TestMarkov1EmptyAndUnseen(t *testing.T) {
	m := NewMarkov1()
	if m.Predict() != nil {
		t.Error("untrained model should predict nothing")
	}
	m.Observe(1)
	if m.Predict() != nil {
		t.Error("state with no observed successors should predict nothing")
	}
}

func TestPredictionsSorted(t *testing.T) {
	m := NewMarkov1()
	seq := []cache.ID{1, 2, 1, 3, 1, 3, 1, 4, 1}
	for _, id := range seq {
		m.Observe(id)
	}
	preds := m.Predict()
	for i := 1; i < len(preds); i++ {
		if preds[i].Prob > preds[i-1].Prob {
			t.Fatalf("predictions not sorted: %+v", preds)
		}
	}
}

func TestPopularity(t *testing.T) {
	p := NewPopularity(2)
	for _, id := range []cache.ID{9, 9, 9, 8, 8, 7} {
		p.Observe(id)
	}
	preds := p.Predict()
	if len(preds) != 2 {
		t.Fatalf("topK not applied: %d preds", len(preds))
	}
	if preds[0].Item != 9 || math.Abs(preds[0].Prob-0.5) > 1e-12 {
		t.Errorf("top = %+v, want {9 0.5}", preds[0])
	}
	if preds[1].Item != 8 {
		t.Errorf("second = %+v, want item 8", preds[1])
	}
}

func TestPopularityUnlimited(t *testing.T) {
	p := NewPopularity(0)
	p.Observe(1)
	p.Observe(2)
	if len(p.Predict()) != 2 {
		t.Error("topK<=0 should return all items")
	}
	empty := NewPopularity(5)
	if empty.Predict() != nil {
		t.Error("empty popularity should predict nothing")
	}
}

func TestDependencyGraphWindow(t *testing.T) {
	g := NewDependencyGraph(2)
	// Sequence: A B C. With window 2, C follows both A and B.
	g.Observe(1)
	g.Observe(2)
	g.Observe(3)
	// Current item 3; no successors yet.
	if preds := g.Predict(); len(preds) != 0 {
		t.Errorf("expected no predictions, got %+v", preds)
	}
	// Revisit 1: now predictions from 1 should include 2 and 3.
	g.Observe(1)
	preds := g.Predict()
	if len(preds) != 2 {
		t.Fatalf("predictions from state 1 = %+v, want 2 entries", preds)
	}
	// 1 was visited twice; each of 2,3 followed once → p=0.5.
	for _, pr := range preds {
		if math.Abs(pr.Prob-0.5) > 1e-12 {
			t.Errorf("prob = %+v, want 0.5", pr)
		}
	}
}

func TestDependencyGraphSelfLoopExcluded(t *testing.T) {
	g := NewDependencyGraph(3)
	g.Observe(1)
	g.Observe(1)
	g.Observe(1)
	if preds := g.Predict(); len(preds) != 0 {
		t.Errorf("self-loops should not be counted: %+v", preds)
	}
}

func TestDependencyGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window < 1 should panic")
		}
	}()
	NewDependencyGraph(0)
}

func TestPPMDeterministicSequence(t *testing.T) {
	p := NewPPM(2)
	for i := 0; i < 60; i++ {
		p.Observe(cache.ID(i%3 + 1))
	}
	preds := p.Predict()
	if len(preds) == 0 {
		t.Fatal("PPM predicted nothing")
	}
	if preds[0].Item != 1 {
		t.Errorf("top prediction = %+v, want item 1", preds[0])
	}
	if preds[0].Prob < 0.8 {
		t.Errorf("deterministic chain should give high confidence, got %v", preds[0].Prob)
	}
}

func TestPPMUsesHigherOrder(t *testing.T) {
	// Second-order structure invisible to order-1: after (1,2) comes 3,
	// after (4,2) comes 5. Order-1 sees 2→3 and 2→5 equally.
	p1 := NewMarkov1()
	p2 := NewPPM(2)
	for i := 0; i < 50; i++ {
		for _, id := range []cache.ID{1, 2, 3, 4, 2, 5} {
			p1.Observe(id)
			p2.Observe(id)
		}
	}
	// History ends ...4,2,5; feed 1,2 so the next should be 3.
	p1.Observe(1)
	p1.Observe(2)
	p2.Observe(1)
	p2.Observe(2)
	top1 := p1.Predict()[0]
	top2 := p2.Predict()[0]
	if top2.Item != 3 {
		t.Fatalf("PPM top prediction = %+v, want item 3", top2)
	}
	if top2.Prob <= top1.Prob+0.1 {
		t.Errorf("PPM (%.3f) should be decisively more confident than order-1 (%.3f)",
			top2.Prob, top1.Prob)
	}
}

func TestPPMProbsAtMostOne(t *testing.T) {
	p := NewPPM(3)
	src := rng.New(21)
	for i := 0; i < 5000; i++ {
		p.Observe(cache.ID(src.Intn(10)))
	}
	total := 0.0
	for _, pr := range p.Predict() {
		if pr.Prob < 0 || pr.Prob > 1+1e-9 {
			t.Fatalf("probability out of range: %+v", pr)
		}
		total += pr.Prob
	}
	if total > 1+1e-6 {
		t.Errorf("PPM probabilities sum to %v > 1", total)
	}
}

func TestPPMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order < 1 should panic")
		}
	}()
	NewPPM(0)
}

// The predictors must recover the true transition probabilities of a
// synthetic Markov workload — the property the paper's threshold rule
// needs from its access model.
func TestMarkov1RecoversWorkloadChain(t *testing.T) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 30, Fanout: 3, Restart: 0.1}, rng.New(22))
	m := NewMarkov1()
	var last cache.ID
	for i := 0; i < 300000; i++ {
		id := wl.Next()
		m.Observe(id)
		last = id
	}
	preds := m.Predict()
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	for _, pr := range preds[:min(len(preds), 3)] {
		want := wl.TransitionProb(last, pr.Item)
		if math.Abs(pr.Prob-want) > 0.05 {
			t.Errorf("P(%d→%d) learned %.3f, true %.3f", last, pr.Item, pr.Prob, want)
		}
	}
}

func TestEvaluatePrecisionOnDeterministicChain(t *testing.T) {
	stream := make([]cache.ID, 3000)
	for i := range stream {
		stream[i] = cache.ID(i % 5)
	}
	q := Evaluate(NewMarkov1(), stream, 0.5, 100)
	if q.Precision() < 0.99 {
		t.Errorf("precision on deterministic chain = %v, want ~1", q.Precision())
	}
	if q.Recall() < 0.99 {
		t.Errorf("recall on deterministic chain = %v, want ~1", q.Recall())
	}
	if q.Requests != 2900 {
		t.Errorf("Requests = %d, want 2900", q.Requests)
	}
}

func TestEvaluateThresholdFilters(t *testing.T) {
	// Uniform random stream: no prediction should exceed 0.9.
	src := rng.New(23)
	stream := make([]cache.ID, 5000)
	for i := range stream {
		stream[i] = cache.ID(src.Intn(20))
	}
	q := Evaluate(NewMarkov1(), stream, 0.9, 500)
	if q.Issued > int64(len(stream))/50 {
		t.Errorf("threshold 0.9 on uniform noise issued %d predictions", q.Issued)
	}
}

func TestQualityZeroDivision(t *testing.T) {
	var q Quality
	if q.Precision() != 0 || q.Recall() != 0 {
		t.Error("empty quality should report zeros")
	}
	if q.String() == "" {
		t.Error("String should render")
	}
}

func TestCalibrationBuckets(t *testing.T) {
	c := NewCalibration(10)
	// 100 predictions claiming 0.75, hitting 75 times.
	for i := 0; i < 100; i++ {
		c.Record(0.75, i < 75)
	}
	claimed, empirical, counts := c.Bins()
	bin := 7 // 0.75 falls in [0.7,0.8)
	if counts[bin] != 100 {
		t.Fatalf("bin counts = %v", counts)
	}
	if math.Abs(claimed[bin]-0.75) > 1e-12 || math.Abs(empirical[bin]-0.75) > 1e-12 {
		t.Errorf("claimed %v empirical %v, want 0.75 both", claimed[bin], empirical[bin])
	}
}

func TestCalibrationEdges(t *testing.T) {
	c := NewCalibration(4)
	c.Record(1.0, true)   // lands in top bin, not out of range
	c.Record(-0.1, false) // clamped to bin 0
	_, _, counts := c.Bins()
	if counts[3] != 1 || counts[0] != 1 {
		t.Errorf("edge clamping wrong: %v", counts)
	}
}

func TestCalibrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bins <= 0 should panic")
		}
	}()
	NewCalibration(0)
}

// A well-trained Markov1 on a Markov workload should be approximately
// calibrated: claimed probability ≈ empirical hit rate per bin.
func TestMarkov1CalibrationOnMarkovWorkload(t *testing.T) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 40, Fanout: 3, Restart: 0.1}, rng.New(24))
	stream := make([]cache.ID, 200000)
	for i := range stream {
		stream[i] = wl.Next()
	}
	cal := EvaluateCalibration(NewMarkov1(), stream, 10, 20000)
	claimed, empirical, counts := cal.Bins()
	for i := range counts {
		if counts[i] < 2000 {
			continue
		}
		if math.Abs(claimed[i]-empirical[i]) > 0.06 {
			t.Errorf("bin %d: claimed %.3f vs empirical %.3f (n=%d)",
				i, claimed[i], empirical[i], counts[i])
		}
	}
}

func BenchmarkMarkov1ObservePredict(b *testing.B) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 1000, Fanout: 4}, rng.New(1))
	m := NewMarkov1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(wl.Next())
		_ = m.Predict()
	}
}

func BenchmarkPPMObservePredict(b *testing.B) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 1000, Fanout: 4}, rng.New(1))
	p := NewPPM(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(wl.Next())
		_ = p.Predict()
	}
}

// TestMarkov1PredictTopMatchesPredict checks the TopPredictor contract:
// PredictTop(k) must equal the first k entries of the fully sorted
// Predict, for every k, including ties resolved by ascending id.
func TestMarkov1PredictTopMatchesPredict(t *testing.T) {
	m := NewMarkov1()
	// Build a row with repeats and probability ties: successors of 0.
	seq := []cache.ID{0, 5, 0, 3, 0, 5, 0, 9, 0, 1, 0, 7, 0, 7, 0, 2, 0}
	for _, id := range seq {
		m.Observe(id)
	}
	full := m.Predict()
	if len(full) == 0 {
		t.Fatal("no predictions")
	}
	for k := 0; k <= len(full)+2; k++ {
		got := m.PredictTop(k)
		want := full
		if k < len(full) {
			want = full[:k]
		}
		if k == 0 {
			want = nil
		}
		if len(got) != len(want) {
			t.Fatalf("PredictTop(%d) len = %d, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PredictTop(%d)[%d] = %+v, want %+v (full %+v)", k, i, got[i], want[i], full)
			}
		}
	}
	// Fresh predictor: no candidates at any k.
	if got := NewMarkov1().PredictTop(3); got != nil {
		t.Fatalf("empty model PredictTop = %v, want nil", got)
	}
}
