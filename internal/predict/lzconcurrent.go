package predict

import (
	"sync/atomic"

	"repro/internal/cache"
)

// ConcurrentLZ78 is the concurrent Vitter–Krishnan LZ78 predictor —
// the last built-in to join the lock-free path. The stream state (the
// current trie node) is one atomic pointer: Observe computes the
// transition from the node it loaded and claims it with a CAS, so
// every observation extends one global parse no matter which engine
// shard it came from, exactly like ConcurrentMarkov1's swap chain. The
// model state is the trie itself: each node's children form a
// lock-free singly linked list with CAS insertion at the head, and the
// visit counts are plain atomics — concurrent observers only contend
// when they extend the same node.
//
// Driven sequentially it reproduces LZ78 exactly, with one documented
// divergence under races: when two observers miss the same child of
// the same node at once, one inserts it and the other finds it during
// its own insert attempt and credits a visit instead of inserting —
// every observation still contributes exactly one visit somewhere
// (the conservation the tests pin), the phrase parse just restarts for
// both.
type ConcurrentLZ78 struct {
	root  *lzcNode
	cur   atomic.Pointer[lzcNode]
	nodes atomic.Int64
}

// lzcNode is one trie node. id is the edge label from the parent
// (unused on the root); children is the CAS-insertion sibling list.
// childVisits caches Σ visits over the children so prediction
// normalises in one pass without walking the list twice.
type lzcNode struct {
	id          cache.ID
	visits      atomic.Int64
	next        atomic.Pointer[lzcNode] // sibling
	children    atomic.Pointer[lzcNode] // head of child list
	childVisits atomic.Int64
}

// findChild walks the child list for id.
func (n *lzcNode) findChild(id cache.ID) *lzcNode {
	for c := n.children.Load(); c != nil; c = c.next.Load() {
		if c.id == id {
			return c
		}
	}
	return nil
}

// NewConcurrentLZ78 returns an empty concurrent LZ78 predictor.
func NewConcurrentLZ78() *ConcurrentLZ78 {
	l := &ConcurrentLZ78{root: &lzcNode{}}
	l.cur.Store(l.root)
	l.nodes.Store(1)
	return l
}

// Nodes returns the trie size (phrases parsed so far + 1).
func (l *ConcurrentLZ78) Nodes() int { return int(l.nodes.Load()) }

// observe implements the parse step: follow the trie edge for id,
// extending the trie and restarting the parse at the root on a phrase
// boundary. Safe for concurrent use; returns the node the observation
// moved the parse to (the coupled-prediction context — the child on a
// hit, the root on a boundary, exactly the node a sequential
// observe-then-predict would read from).
func (l *ConcurrentLZ78) observe(id cache.ID) *lzcNode {
	for {
		cur := l.cur.Load()
		child := cur.findChild(id)
		next := l.root
		if child != nil {
			next = child
		}
		// Claim the transition: the CAS linearises the stream, so each
		// observation extends the parse from exactly the node it read.
		// A loser re-reads the winner's new state and retries. (A
		// node revisited between our load and CAS — ABA — is harmless:
		// the side effects below apply to cur, which is the current
		// node either way, and its child set only grows.)
		if !l.cur.CompareAndSwap(cur, next) {
			continue
		}
		if child != nil {
			child.visits.Add(1)
			cur.childVisits.Add(1)
			return child
		}
		l.addChild(cur, id)
		return l.root
	}
}

// Observe implements Predictor. Safe for concurrent use.
func (l *ConcurrentLZ78) Observe(id cache.ID) { l.observe(id) }

// addChild inserts a new child with one visit under n, or credits the
// visit to a child a racing observer inserted first.
func (l *ConcurrentLZ78) addChild(n *lzcNode, id cache.ID) {
	//lint:allow hotpathalloc model growth: one trie node per new phrase, steady state allocates nothing
	nd := &lzcNode{id: id}
	nd.visits.Store(1)
	for {
		head := n.children.Load()
		// Re-scan from the current head: a racing inserter may have
		// added this id since our miss (or since the last CAS failure).
		for c := head; c != nil; c = c.next.Load() {
			if c.id == id {
				c.visits.Add(1)
				n.childVisits.Add(1)
				return
			}
		}
		nd.next.Store(head)
		if n.children.CompareAndSwap(head, nd) {
			n.childVisits.Add(1)
			l.nodes.Add(1)
			return
		}
	}
}

// predictNode builds the distribution over node's children: visit
// counts normalised with one count of escape mass reserved, as in the
// sequential model. Counts racing ahead of the cached child total are
// clamped at 1 and vanish once observers quiesce.
func (l *ConcurrentLZ78) predictNode(n *lzcNode) []Prediction {
	total := n.childVisits.Load() + 1 // escape
	if total <= 1 {
		return nil
	}
	ft := float64(total)
	var out []Prediction
	for c := n.children.Load(); c != nil; c = c.next.Load() {
		if v := c.visits.Load(); v > 0 {
			p := float64(v) / ft
			if p > 1 {
				p = 1
			}
			out = append(out, Prediction{Item: c.id, Prob: p})
		}
	}
	sortPredictions(out)
	return out
}

// topNode is predictNode bounded to the k best children — no full-row
// allocation or sort; the result is appended to dst.
func (l *ConcurrentLZ78) topNode(n *lzcNode, k int, dst []Prediction) []Prediction {
	if k <= 0 {
		return nil
	}
	total := n.childVisits.Load() + 1
	if total <= 1 {
		return nil
	}
	ft := float64(total)
	top := newTopPredictionsOn(dst, k)
	for c := n.children.Load(); c != nil; c = c.next.Load() {
		offerCount(&top, c.id, c.visits.Load(), ft)
	}
	return top.buf
}

// Predict implements Predictor: the children of the current trie node,
// weighted by visit counts, with escape mass reserved.
func (l *ConcurrentLZ78) Predict() []Prediction {
	return l.predictNode(l.cur.Load())
}

// PredictTop implements TopPredictor.
func (l *ConcurrentLZ78) PredictTop(k int) []Prediction {
	return l.topNode(l.cur.Load(), k, nil)
}

// PredictTopInto implements TopIntoPredictor.
//
//prefetch:hotpath
func (l *ConcurrentLZ78) PredictTopInto(dst []Prediction, k int) []Prediction {
	return l.topNode(l.cur.Load(), k, dst)
}

// ObserveAndPredictTop implements CoupledPredictor: the candidates
// come from the node this observation's own parse step landed on, so a
// racing observer moving the shared parse cannot hand this request
// another request's context.
func (l *ConcurrentLZ78) ObserveAndPredictTop(id cache.ID, k int) []Prediction {
	return l.ObserveAndPredictTopInto(id, k, nil)
}

// ObserveAndPredictTopInto implements CoupledPredictor.
//
//prefetch:hotpath
func (l *ConcurrentLZ78) ObserveAndPredictTopInto(id cache.ID, k int, dst []Prediction) []Prediction {
	n := l.observe(id)
	if k <= 0 {
		return nil
	}
	return l.topNode(n, k, dst)
}

// Name implements Predictor.
func (l *ConcurrentLZ78) Name() string { return "lz78" }

// ConcurrentSafe implements ConcurrentPredictor.
func (l *ConcurrentLZ78) ConcurrentSafe() {}
