package predict

import (
	"fmt"

	"repro/internal/cache"
)

// Quality summarises prediction accuracy measured against the
// immediately-next request, the horizon the paper's per-request prefetch
// decision cares about.
type Quality struct {
	// Requests is the number of evaluated steps.
	Requests int64
	// Issued is the number of candidate predictions with Prob >= the
	// evaluation threshold, summed over steps.
	Issued int64
	// Correct counts issued predictions that matched the next request.
	Correct int64
	// Covered counts steps whose next request appeared among the issued
	// predictions.
	Covered int64
}

// Precision is Correct/Issued (0 when nothing was issued).
func (q Quality) Precision() float64 {
	if q.Issued == 0 {
		return 0
	}
	return float64(q.Correct) / float64(q.Issued)
}

// Recall is Covered/Requests (0 when nothing was evaluated).
func (q Quality) Recall() float64 {
	if q.Requests == 0 {
		return 0
	}
	return float64(q.Covered) / float64(q.Requests)
}

func (q Quality) String() string {
	return fmt.Sprintf("requests=%d issued=%d precision=%.3f recall=%.3f",
		q.Requests, q.Issued, q.Precision(), q.Recall())
}

// Evaluate feeds the stream to the predictor, measuring how well the
// candidates with Prob >= threshold anticipate each next request. The
// first warmup requests train without being scored.
func Evaluate(p Predictor, stream []cache.ID, threshold float64, warmup int) Quality {
	var q Quality
	for i, id := range stream {
		if i >= warmup {
			q.Requests++
			for _, pred := range p.Predict() {
				if pred.Prob < threshold {
					break // predictions are sorted by probability
				}
				q.Issued++
				if pred.Item == id {
					q.Correct++
					q.Covered++
				}
			}
		}
		p.Observe(id)
	}
	return q
}

// Calibration buckets predictions by claimed probability and reports the
// empirical hit frequency per bucket: a well-calibrated model's claimed
// p should match the measured frequency — exactly the property the
// paper's threshold rule depends on.
type Calibration struct {
	bins    int
	claimed []float64 // sum of claimed probability per bin
	hits    []int64
	counts  []int64
}

// NewCalibration creates a calibration accumulator with the given number
// of equal-width probability bins.
func NewCalibration(bins int) *Calibration {
	if bins <= 0 {
		panic("predict: calibration needs at least one bin")
	}
	return &Calibration{
		bins:    bins,
		claimed: make([]float64, bins),
		hits:    make([]int64, bins),
		counts:  make([]int64, bins),
	}
}

// Record registers one prediction with claimed probability p and whether
// the predicted item was in fact requested next.
func (c *Calibration) Record(p float64, hit bool) {
	i := int(p * float64(c.bins))
	if i >= c.bins {
		i = c.bins - 1
	}
	if i < 0 {
		i = 0
	}
	c.claimed[i] += p
	c.counts[i]++
	if hit {
		c.hits[i]++
	}
}

// Bins returns per-bin (mean claimed probability, empirical frequency,
// sample count). Bins with no samples report zeros.
func (c *Calibration) Bins() (claimed, empirical []float64, counts []int64) {
	claimed = make([]float64, c.bins)
	empirical = make([]float64, c.bins)
	counts = append([]int64(nil), c.counts...)
	for i := 0; i < c.bins; i++ {
		if c.counts[i] > 0 {
			claimed[i] = c.claimed[i] / float64(c.counts[i])
			empirical[i] = float64(c.hits[i]) / float64(c.counts[i])
		}
	}
	return claimed, empirical, counts
}

// EvaluateCalibration trains the predictor on the stream and records
// every candidate prediction into a fresh Calibration.
func EvaluateCalibration(p Predictor, stream []cache.ID, bins, warmup int) *Calibration {
	cal := NewCalibration(bins)
	for i, id := range stream {
		if i >= warmup {
			for _, pred := range p.Predict() {
				cal.Record(pred.Prob, pred.Item == id)
			}
		}
		p.Observe(id)
	}
	return cal
}
