package predict

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestLZ78TrieGrowth(t *testing.T) {
	l := NewLZ78()
	if l.Nodes() != 1 {
		t.Fatalf("fresh trie should have 1 node, got %d", l.Nodes())
	}
	// Sequence a b a b: phrases (a)(b)(ab) → 3 new nodes.
	for _, id := range []cache.ID{1, 2, 1, 2} {
		l.Observe(id)
	}
	if l.Nodes() != 4 {
		t.Errorf("trie has %d nodes, want 4", l.Nodes())
	}
}

func TestLZ78PredictsRepeatedPhrase(t *testing.T) {
	l := NewLZ78()
	// Long repetition of the cycle 1 2 3: the trie accumulates phrases
	// of increasing length; prediction from a mid-phrase node should
	// put most mass on the true continuation.
	for i := 0; i < 600; i++ {
		l.Observe(cache.ID(i%3 + 1))
	}
	preds := l.Predict()
	if len(preds) == 0 {
		t.Skip("parser happened to sit at the root (phrase boundary)")
	}
	// Whatever the current node, the top prediction must be one of the
	// cycle's symbols with decent confidence.
	if preds[0].Prob < 0.4 {
		t.Errorf("top confidence %v too low on deterministic cycle", preds[0].Prob)
	}
	if preds[0].Item < 1 || preds[0].Item > 3 {
		t.Errorf("predicted item %d outside the alphabet", preds[0].Item)
	}
}

func TestLZ78ProbabilitiesBounded(t *testing.T) {
	l := NewLZ78()
	src := rng.New(5)
	for i := 0; i < 20000; i++ {
		l.Observe(cache.ID(src.Intn(8)))
		total := 0.0
		if i%100 == 0 {
			for _, p := range l.Predict() {
				if p.Prob <= 0 || p.Prob >= 1 {
					t.Fatalf("probability out of (0,1): %+v", p)
				}
				total += p.Prob
			}
			if total > 1+1e-9 {
				t.Fatalf("probabilities sum to %v > 1", total)
			}
		}
	}
}

func TestLZ78EmptyPredict(t *testing.T) {
	l := NewLZ78()
	if l.Predict() != nil {
		t.Error("fresh LZ78 should predict nothing")
	}
}

// LZ78 must achieve decent precision on a Markov workload — the
// Vitter–Krishnan asymptotic-optimality setting.
func TestLZ78QualityOnMarkovWorkload(t *testing.T) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 50, Fanout: 2, Decay: 0.15, Restart: 0.03}, rng.New(41))
	stream := make([]cache.ID, 150000)
	for i := range stream {
		stream[i] = wl.Next()
	}
	q := Evaluate(NewLZ78(), stream, 0.5, 50000)
	if q.Precision() < 0.6 {
		t.Errorf("LZ78 precision %v too low on learnable workload", q.Precision())
	}
	if q.Issued == 0 {
		t.Error("LZ78 issued no confident predictions")
	}
}

func TestEnsembleObserveFansOut(t *testing.T) {
	m1 := NewMarkov1()
	m2 := NewPopularity(0)
	e := NewEnsemble(m1, m2)
	for _, id := range []cache.ID{1, 2, 1, 2} {
		e.Observe(id)
	}
	if len(m2.Predict()) == 0 {
		t.Error("members did not receive observations")
	}
}

func TestEnsembleAveragesProbabilities(t *testing.T) {
	// Two Markov1 copies trained identically: the uniform ensemble must
	// reproduce their (identical) probabilities exactly.
	a, b := NewMarkov1(), NewMarkov1()
	e := NewEnsemble(a, b)
	seq := []cache.ID{1, 2, 1, 3, 1, 2, 1}
	for _, id := range seq {
		e.Observe(id)
	}
	single := NewMarkov1()
	for _, id := range seq {
		single.Observe(id)
	}
	got, want := e.Predict(), single.Predict()
	if len(got) != len(want) {
		t.Fatalf("prediction counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Item != want[i].Item || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("prediction %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestWeightedEnsemble(t *testing.T) {
	// Weight 1 on markov1, 0 on popularity: behaves exactly like
	// markov1 alone.
	m := NewMarkov1()
	p := NewPopularity(0)
	e := NewWeightedEnsemble([]Predictor{m, p}, []float64{3, 0})
	ref := NewMarkov1()
	for _, id := range []cache.ID{1, 2, 1, 2, 1} {
		e.Observe(id)
		ref.Observe(id)
	}
	got, want := e.Predict(), ref.Predict()
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("weighted ensemble drifted: %+v vs %+v", got[i], want[i])
		}
	}
}

func TestEnsemblePanics(t *testing.T) {
	cases := []func(){
		func() { NewEnsemble() },
		func() { NewWeightedEnsemble([]Predictor{NewMarkov1()}, []float64{1, 2}) },
		func() { NewWeightedEnsemble([]Predictor{NewMarkov1()}, []float64{-1}) },
		func() { NewWeightedEnsemble([]Predictor{NewMarkov1()}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEnsembleName(t *testing.T) {
	e := NewEnsemble(NewMarkov1(), NewLZ78())
	name := e.Name()
	if !strings.Contains(name, "markov1") || !strings.Contains(name, "lz78") {
		t.Errorf("ensemble name %q should list members", name)
	}
}

func BenchmarkLZ78ObservePredict(b *testing.B) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 1000, Fanout: 4}, rng.New(1))
	l := NewLZ78()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Observe(wl.Next())
		_ = l.Predict()
	}
}
