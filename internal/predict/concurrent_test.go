package predict

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Compile-time contract checks.
var (
	_ ConcurrentPredictor = (*ConcurrentMarkov1)(nil)
	_ ConcurrentPredictor = (*ConcurrentPopularity)(nil)
	_ ConcurrentPredictor = (*ConcurrentPPM)(nil)
	_ ConcurrentPredictor = (*ConcurrentDependencyGraph)(nil)
	_ CoupledPredictor    = (*ConcurrentMarkov1)(nil)
	_ CoupledPredictor    = (*ConcurrentPopularity)(nil)
	_ CoupledPredictor    = (*ConcurrentPPM)(nil)
	_ CoupledPredictor    = (*ConcurrentDependencyGraph)(nil)
)

// concurrentPair names a concurrent model and its sequential reference.
type concurrentPair struct {
	name string
	seq  func() Predictor
	conc func() ConcurrentPredictor
}

func concurrentPairs() []concurrentPair {
	return []concurrentPair{
		{"markov1", func() Predictor { return NewMarkov1() },
			func() ConcurrentPredictor { return NewConcurrentMarkov1() }},
		{"popularity", func() Predictor { return NewPopularity(8) },
			func() ConcurrentPredictor { return NewConcurrentPopularity(8) }},
		{"ppm", func() Predictor { return NewPPM(3) },
			func() ConcurrentPredictor { return NewConcurrentPPM(3) }},
		{"depgraph", func() Predictor { return NewDependencyGraph(4) },
			func() ConcurrentPredictor { return NewConcurrentDependencyGraph(4) }},
		{"lz78", func() Predictor { return NewLZ78() },
			func() ConcurrentPredictor { return NewConcurrentLZ78() }},
	}
}

// markovStream draws a learnable request stream.
func markovStream(n int, seed uint64) []cache.ID {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 50, Fanout: 3, Restart: 0.1},
		rng.New(seed))
	out := make([]cache.ID, n)
	for i := range out {
		out[i] = wl.Next()
	}
	return out
}

// samePredictions compares two distributions exactly (same items in the
// same deterministic tie order, probabilities equal to rounding).
func samePredictions(t *testing.T, label string, got, want []Prediction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d predictions, want %d\n got  %v\n want %v",
			label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Item != want[i].Item || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Fatalf("%s: prediction %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestConcurrentSequentialEquivalence drives each concurrent model and
// its sequential reference with the same stream from one goroutine: the
// full distributions must agree exactly at several checkpoints, since a
// single-threaded caller linearises the stream identically for both.
func TestConcurrentSequentialEquivalence(t *testing.T) {
	stream := markovStream(4000, 31)
	for _, pair := range concurrentPairs() {
		t.Run(pair.name, func(t *testing.T) {
			seq, conc := pair.seq(), pair.conc()
			for i, id := range stream {
				seq.Observe(id)
				conc.Observe(id)
				if i%997 == 0 || i == len(stream)-1 {
					samePredictions(t, pair.name, conc.Predict(), seq.Predict())
				}
			}
		})
	}
}

// TestConcurrentPredictTopPrefix checks the TopPredictor contract on
// the concurrent models: PredictTop(k) must equal Predict()[:k] for
// every k, including ties (resolved by ascending id) and k beyond the
// candidate count.
func TestConcurrentPredictTopPrefix(t *testing.T) {
	stream := markovStream(3000, 32)
	for _, pair := range concurrentPairs() {
		t.Run(pair.name, func(t *testing.T) {
			conc := pair.conc()
			if got := conc.PredictTop(3); got != nil {
				t.Fatalf("empty model PredictTop = %v, want nil", got)
			}
			for _, id := range stream {
				conc.Observe(id)
			}
			full := conc.Predict()
			if len(full) == 0 {
				t.Fatal("trained model predicted nothing")
			}
			for k := 0; k <= len(full)+2; k++ {
				got := conc.PredictTop(k)
				want := full
				if k < len(full) {
					want = full[:k]
				}
				if k == 0 {
					want = nil
				}
				if len(got) != len(want) {
					t.Fatalf("PredictTop(%d) len = %d, want %d", k, len(got), len(want))
				}
				for i := range want {
					if got[i].Item != want[i].Item || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
						t.Fatalf("PredictTop(%d)[%d] = %+v, want %+v", k, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestCoupledObservePredictEquivalence: driven sequentially, the
// coupled ObserveAndPredictTop(id, k) must return exactly what
// Observe(id) followed by PredictTop(k) would — the engine's lock-free
// path substitutes the former for the latter, and the substitution must
// be invisible absent concurrency.
func TestCoupledObservePredictEquivalence(t *testing.T) {
	stream := markovStream(3000, 38)
	for _, pair := range concurrentPairs() {
		t.Run(pair.name, func(t *testing.T) {
			coupled := pair.conc()
			split := pair.conc()
			for _, id := range stream {
				got := coupled.(CoupledPredictor).ObserveAndPredictTop(id, 4)
				split.Observe(id)
				samePredictions(t, pair.name, got, split.PredictTop(4))
			}
		})
	}
}

// hammer feeds stream to p from `workers` goroutines, interleaving
// observations with predictions so readers overlap writers (the -race
// payload), and returns once all observations landed.
func hammer(p ConcurrentPredictor, stream []cache.ID, workers int) {
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				p.Observe(stream[i])
				if i%37 == 0 {
					_ = p.PredictTop(4)
				}
				if i%113 == 0 {
					_ = p.Predict()
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentObserveUnderRace hammers every concurrent model from
// many goroutines and then checks the quiescent state: the distribution
// must be a valid probability ranking and PredictTop must still be an
// exact prefix of Predict. Under -race this is also the data-race probe
// for the striped tables.
func TestConcurrentObserveUnderRace(t *testing.T) {
	stream := markovStream(8000, 33)
	for _, pair := range concurrentPairs() {
		t.Run(pair.name, func(t *testing.T) {
			conc := pair.conc()
			hammer(conc, stream, 8)
			full := conc.Predict()
			if len(full) == 0 {
				t.Fatal("no predictions after concurrent training")
			}
			sum := 0.0
			for i, pr := range full {
				if pr.Prob < 0 || pr.Prob > 1+1e-9 {
					t.Fatalf("probability out of range: %+v", pr)
				}
				if i > 0 && better(pr, full[i-1]) {
					t.Fatalf("predictions not in prediction order: %v", full)
				}
				sum += pr.Prob
			}
			// Popularity and Markov rows are normalised distributions; PPM
			// reserves escape mass; depgraph caps each edge at 1 but the
			// row may exceed 1 in sum (it estimates "follows soon", not
			// "is next") — so only check the sum where it is a law.
			if pair.name != "depgraph" && sum > 1+1e-6 {
				t.Fatalf("probabilities sum to %v > 1", sum)
			}
			top := conc.PredictTop(5)
			want := full
			if len(want) > 5 {
				want = want[:5]
			}
			samePredictions(t, "top-after-hammer", top, want)
		})
	}
}

// TestConcurrentPopularityMultisetEquivalence is the exact concurrency
// property: popularity depends only on the observation *multiset*, so a
// concurrently hammered model must equal the sequential reference fed
// the same stream in any order.
func TestConcurrentPopularityMultisetEquivalence(t *testing.T) {
	stream := markovStream(20000, 34)
	seq := NewPopularity(0)
	for _, id := range stream {
		seq.Observe(id)
	}
	conc := NewConcurrentPopularity(0)
	hammer(conc, stream, 8)
	samePredictions(t, "popularity-multiset", conc.Predict(), seq.Predict())
}

// TestConcurrentMarkov1ChainConservation checks the swap-chain
// invariant that makes cross-shard transitions paper-faithful: however
// the observations interleave, every observation after the first
// extends the global chain exactly once, so the table holds exactly
// n-1 transitions and each row is a valid conditional distribution.
func TestConcurrentMarkov1ChainConservation(t *testing.T) {
	stream := markovStream(20000, 35)
	m := NewConcurrentMarkov1()
	hammer(m, stream, 8)
	var transitions int64
	for s := range m.rows.stripes {
		st := &m.rows.stripes[s]
		st.mu.RLock()
		for _, row := range st.rows {
			row.mu.RLock()
			for _, c := range row.counts {
				transitions += c.Load()
			}
			row.mu.RUnlock()
		}
		st.mu.RUnlock()
	}
	if transitions != int64(len(stream)-1) {
		t.Fatalf("chain recorded %d transitions, want %d (one per observation after the first)",
			transitions, len(stream)-1)
	}
}

// TestConcurrentPPMOrder1Conservation: the same conservation law for
// PPM's order-1 table — the history mutex linearises the stream, so the
// order-1 contexts partition the n-1 successive pairs.
func TestConcurrentPPMOrder1Conservation(t *testing.T) {
	stream := markovStream(10000, 36)
	p := NewConcurrentPPM(2)
	hammer(p, stream, 8)
	var transitions int64
	tab := p.tables[0]
	for s := range tab.stripes {
		st := &tab.stripes[s]
		st.mu.RLock()
		for _, row := range st.tab {
			row.mu.RLock()
			for _, c := range row.counts {
				transitions += c.Load()
			}
			row.mu.RUnlock()
		}
		st.mu.RUnlock()
	}
	if transitions != int64(len(stream)-1) {
		t.Fatalf("order-1 table holds %d transitions, want %d", transitions, len(stream)-1)
	}
}

func BenchmarkConcurrentMarkov1ObservePredictTop(b *testing.B) {
	wl := workload.NewMarkov(workload.MarkovConfig{N: 1000, Fanout: 4}, rng.New(1))
	stream := make([]cache.ID, 1<<16)
	for i := range stream {
		stream[i] = wl.Next()
	}
	m := NewConcurrentMarkov1()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Observe(stream[i&(len(stream)-1)])
			_ = m.PredictTop(4)
			i++
		}
	})
}
