package predict

import (
	"fmt"

	"repro/internal/cache"
)

// PPM is an order-k prediction-by-partial-matching model in the style of
// Vitter–Krishnan: it keeps counts for every context of length 1..k and
// blends predictions from the longest matching context downward, paying
// an escape probability at each level (method C: escape mass equals the
// number of distinct successors over total+distinct).
//
// Higher orders capture longer repeated patterns; the escape mechanism
// falls back gracefully when a long context has not been seen often
// enough to trust.
type PPM struct {
	k       int
	tables  []map[string]*ctxStats // tables[o] = contexts of length o+1
	history []cache.ID
}

type ctxStats struct {
	counts map[cache.ID]int64
	total  int64
}

// NewPPM creates a PPM predictor of maximum order k (k >= 1).
func NewPPM(k int) *PPM {
	if k < 1 {
		panic(fmt.Sprintf("predict: PPM order %d must be >= 1", k))
	}
	tables := make([]map[string]*ctxStats, k)
	for i := range tables {
		tables[i] = make(map[string]*ctxStats)
	}
	return &PPM{k: k, tables: tables}
}

// ctxKey serialises a context id slice. IDs are encoded in a compact
// fixed-width form; contexts are short (≤ k items) so this is cheap.
func ctxKey(ids []cache.ID) string {
	//lint:allow hotpathalloc PPM is allocation-exempt by design: context keys are built per lookup
	buf := make([]byte, 0, len(ids)*8)
	for _, id := range ids {
		v := uint64(id)
		//lint:allow hotpathalloc appends into this call's own key buffer, sized above
		buf = append(buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	//lint:allow hotpathalloc PPM is allocation-exempt by design: the map key string is the point of this helper
	return string(buf)
}

// Observe implements Predictor.
func (p *PPM) Observe(id cache.ID) {
	// Update every context order ending just before this request.
	for o := 1; o <= p.k && o <= len(p.history); o++ {
		ctx := ctxKey(p.history[len(p.history)-o:])
		st := p.tables[o-1][ctx]
		if st == nil {
			st = &ctxStats{counts: make(map[cache.ID]int64)}
			p.tables[o-1][ctx] = st
		}
		st.counts[id]++
		st.total++
	}
	p.history = append(p.history, id)
	if len(p.history) > p.k {
		p.history = p.history[1:]
	}
}

// Predict implements Predictor: probabilities are blended over orders
// k..1 with PPM-C escapes.
func (p *PPM) Predict() []Prediction {
	probs := make(map[cache.ID]float64)
	carry := 1.0 // probability mass not yet assigned (escaped so far)
	excluded := make(map[cache.ID]bool)
	for o := min(p.k, len(p.history)); o >= 1 && carry > 1e-12; o-- {
		ctx := ctxKey(p.history[len(p.history)-o:])
		st := p.tables[o-1][ctx]
		if st == nil || st.total == 0 {
			continue
		}
		distinct := int64(len(st.counts))
		denom := float64(st.total + distinct) // method C
		// Exclusion: symbols already predicted at a higher order don't
		// consume probability here.
		var exclCount int64
		for id := range excluded {
			exclCount += st.counts[id]
		}
		avail := float64(st.total-exclCount) + float64(distinct)
		if avail <= 0 {
			continue
		}
		_ = denom
		for id, c := range st.counts {
			if excluded[id] {
				continue
			}
			probs[id] += carry * float64(c) / avail
			excluded[id] = true
		}
		carry *= float64(distinct) / avail
	}
	if len(probs) == 0 {
		return nil
	}
	out := make([]Prediction, 0, len(probs))
	for id, pr := range probs {
		out = append(out, Prediction{Item: id, Prob: pr})
	}
	sortPredictions(out)
	return out
}

// Name implements Predictor.
func (p *PPM) Name() string { return fmt.Sprintf("ppm(k=%d)", p.k) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
