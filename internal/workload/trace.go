package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cache"
)

// Record is one trace event: user `User` requested item `Item` at
// simulated time `Time`. Size is recorded so a trace is replayable
// without the generating catalog.
type Record struct {
	Time float64  `json:"t"`
	User int      `json:"u"`
	Item cache.ID `json:"i"`
	Size float64  `json:"s"`
}

// TraceWriter streams records as JSON lines — a greppable, append-only
// format that needs no external dependencies.
type TraceWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int64
}

// NewTraceWriter wraps w for trace output.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record. Records must be written in non-decreasing
// time order; Write enforces nothing, but TraceReader validates.
func (t *TraceWriter) Write(r Record) error {
	if err := t.enc.Encode(r); err != nil {
		return fmt.Errorf("workload: writing trace record: %w", err)
	}
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *TraceWriter) Count() int64 { return t.n }

// Flush drains buffered output to the underlying writer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader reads JSON-lines traces produced by TraceWriter.
type TraceReader struct {
	dec   *json.Decoder
	last  float64
	count int64
}

// NewTraceReader wraps r for trace input.
func NewTraceReader(r io.Reader) *TraceReader {
	return &TraceReader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Read returns the next record, io.EOF at the end, or an error for
// malformed or time-disordered input.
func (t *TraceReader) Read() (Record, error) {
	var rec Record
	if err := t.dec.Decode(&rec); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("workload: record %d malformed: %w", t.count+1, err)
	}
	if rec.Time < t.last {
		return rec, fmt.Errorf("workload: record %d time %v before previous %v",
			t.count+1, rec.Time, t.last)
	}
	t.last = rec.Time
	t.count++
	return rec, nil
}

// ReadAll reads records until EOF.
func (t *TraceReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := t.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Generate produces a trace of n requests from the given source and
// Poisson arrivals, assigning users round-robin among `users` clients
// (user identity does not affect the aggregate analysis, which is what
// the paper studies, but keeps traces realistic).
func Generate(w *TraceWriter, src Source, arr *Arrivals, cat *Catalog, users, n int) error {
	if users <= 0 {
		users = 1
	}
	for i := 0; i < n; i++ {
		id := src.Next()
		rec := Record{
			Time: arr.Next(),
			User: i % users,
			Item: id,
			Size: cat.Size(id),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}
