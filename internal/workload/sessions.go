package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/rng"
)

// Sessions generates correlated multi-key request sessions: each
// session is one "page load" — a Zipf-popular page fanning out to a
// fixed set of N keys. Key 0 of a page is the page's own id; the
// remaining keys are drawn once, at construction, from a shared object
// catalog (scripts, images, fragments) under its own Zipf law, so
// popular objects recur across many pages exactly as shared assets do
// on the web. Because a page's key set is fixed, the stream has strong
// first-order structure (requesting the page id makes its objects
// near-certain followers) — which is what a batched demand path and
// the Markov predictors can both exploit, and what the -session mode
// of prefetchbench measures.
type Sessions struct {
	pages   int
	fanout  int
	objects int
	keys    [][]cache.ID // fixed key set per page
	zipf    *rng.Zipf    // page popularity
	src     *rng.Source
}

// SessionConfig parameterises NewSessions.
type SessionConfig struct {
	// Pages is the number of distinct pages. Required.
	Pages int
	// Fanout is the number of keys per session, including the page's
	// own id (default 8).
	Fanout int
	// Objects is the size of the shared object catalog the non-root
	// keys are drawn from (default 4×Pages). Object ids start at Pages,
	// so the total id space is [0, Pages+Objects).
	Objects int
	// PageS is the Zipf skew of page popularity (default 0.9).
	PageS float64
	// ObjectS is the Zipf skew of object popularity within the shared
	// catalog (default 0.8).
	ObjectS float64
}

// NewSessions builds the page→keys structure deterministically from
// src.
func NewSessions(cfg SessionConfig, src *rng.Source) *Sessions {
	if cfg.Pages <= 0 {
		panic("workload: Sessions needs Pages > 0")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 8
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 4 * cfg.Pages
	}
	if cfg.Fanout-1 > cfg.Objects {
		cfg.Fanout = cfg.Objects + 1
	}
	if cfg.PageS < 0 {
		cfg.PageS = 0.9
	}
	if cfg.ObjectS < 0 {
		cfg.ObjectS = 0.8
	}
	s := &Sessions{
		pages:   cfg.Pages,
		fanout:  cfg.Fanout,
		objects: cfg.Objects,
		keys:    make([][]cache.ID, cfg.Pages),
		zipf:    rng.NewZipf(cfg.Pages, cfg.PageS),
		src:     src,
	}
	objZipf := rng.NewZipf(cfg.Objects, cfg.ObjectS)
	seen := make(map[cache.ID]bool, cfg.Fanout)
	for p := 0; p < cfg.Pages; p++ {
		keys := make([]cache.ID, cfg.Fanout)
		keys[0] = cache.ID(p)
		clear(seen)
		for i := 1; i < cfg.Fanout; i++ {
			for {
				obj := cache.ID(cfg.Pages + objZipf.Sample(src))
				if !seen[obj] {
					seen[obj] = true
					keys[i] = obj
					break
				}
			}
		}
		s.keys[p] = keys
	}
	return s
}

// NextInto appends the next session's keys to dst (typically passed as
// buf[:0]) and returns the extended slice: the page id first, then its
// fanout−1 correlated objects. The append is the only mutation, so a
// caller reusing its buffer drives sessions allocation-free.
func (s *Sessions) NextInto(dst []cache.ID) []cache.ID {
	return append(dst, s.keys[s.zipf.Sample(s.src)]...)
}

// Fanout returns the keys-per-session count.
func (s *Sessions) Fanout() int { return s.fanout }

// Universe returns the total id space [0, Universe()): pages followed
// by shared objects.
func (s *Sessions) Universe() int { return s.pages + s.objects }

// PageKeys exposes page p's fixed key set, for tests and oracles.
func (s *Sessions) PageKeys(p int) []cache.ID { return s.keys[p] }

// Name identifies the model in reports.
func (s *Sessions) Name() string {
	return fmt.Sprintf("sessions(pages=%d,fanout=%d,objects=%d)", s.pages, s.fanout, s.objects)
}
