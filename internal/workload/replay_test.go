package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
)

func replayRecords() []Record {
	return []Record{
		{Time: 1, User: 0, Item: 10, Size: 1},
		{Time: 2, User: 1, Item: 20, Size: 1},
		{Time: 3, User: 0, Item: 11, Size: 1},
		{Time: 4, User: 1, Item: 21, Size: 1},
		{Time: 5, User: 0, Item: 12, Size: 1},
	}
}

func TestReplayPerUserFilter(t *testing.T) {
	r, err := NewReplay(replayRecords(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("user 0 has %d records, want 3", r.Len())
	}
	want := []cache.ID{10, 11, 12}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Errorf("request %d = %d, want %d", i, got, w)
		}
	}
	if !r.Exhausted() {
		t.Error("replay should be exhausted")
	}
}

func TestReplayAllUsers(t *testing.T) {
	r, err := NewReplay(replayRecords(), -1, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Errorf("all-user replay has %d records, want 5", r.Len())
	}
}

func TestReplayLoops(t *testing.T) {
	r, err := NewReplay(replayRecords(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]cache.ID, 6)
	for i := range seq {
		seq[i] = r.Next()
	}
	want := []cache.ID{20, 21, 20, 21, 20, 21}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("looped sequence %v, want %v", seq, want)
		}
	}
	if r.Exhausted() {
		t.Error("looping replay is never exhausted")
	}
}

func TestReplayExhaustionPanics(t *testing.T) {
	r, err := NewReplay(replayRecords(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		r.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted non-looping replay should panic")
		}
	}()
	r.Next()
}

func TestReplayEmptySelection(t *testing.T) {
	if _, err := NewReplay(replayRecords(), 9, false); err == nil {
		t.Error("unknown user should error")
	}
	if _, err := NewReplay(nil, -1, true); err == nil {
		t.Error("empty records should error")
	}
}

func TestReplayFromReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for _, rec := range replayRecords() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayReader(&buf, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if !strings.Contains(r.Name(), "replay") {
		t.Error("Name should mention replay")
	}
}

func TestReplayFromReaderMalformed(t *testing.T) {
	if _, err := NewReplayReader(strings.NewReader("junk\n"), -1, true); err == nil {
		t.Error("malformed trace should error")
	}
}

// A replayed trace reproduces the generating source's cache behaviour:
// record an IRM trace, replay it, and check both streams are identical.
func TestReplayMatchesGeneration(t *testing.T) {
	var buf bytes.Buffer
	srcStream := NewIRM(100, 0.9, rng.NewStream(99, "requests"))
	cat := NewUniformCatalog(100, 1)
	arr := NewArrivals(10, rng.NewStream(99, "arrivals"))
	w := NewTraceWriter(&buf)
	if err := Generate(w, srcStream, arr, cat, 2, 200); err != nil {
		t.Fatal(err)
	}
	recs, err := NewTraceReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(recs, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if got := rep.Next(); got != rec.Item {
			t.Fatalf("replay diverged at %d: %d vs %d", i, got, rec.Item)
		}
	}
}
