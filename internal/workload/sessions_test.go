package workload

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
)

func TestSessionsShape(t *testing.T) {
	cfg := SessionConfig{Pages: 50, Fanout: 8, Objects: 200}
	s := NewSessions(cfg, rng.New(1))
	if s.Universe() != 250 {
		t.Fatalf("Universe() = %d, want 250", s.Universe())
	}
	buf := make([]cache.ID, 0, 8)
	for n := 0; n < 1000; n++ {
		keys := s.NextInto(buf[:0])
		if len(keys) != 8 {
			t.Fatalf("session %d: %d keys, want %d", n, len(keys), 8)
		}
		page := keys[0]
		if page < 0 || int(page) >= cfg.Pages {
			t.Fatalf("session %d: page id %d out of [0,%d)", n, page, cfg.Pages)
		}
		seen := map[cache.ID]bool{page: true}
		for _, k := range keys[1:] {
			if int(k) < cfg.Pages || int(k) >= cfg.Pages+cfg.Objects {
				t.Fatalf("session %d: object id %d out of [%d,%d)", n, k, cfg.Pages, cfg.Pages+cfg.Objects)
			}
			if seen[k] {
				t.Fatalf("session %d: duplicate key %d", n, k)
			}
			seen[k] = true
		}
	}
}

func TestSessionsStableKeySets(t *testing.T) {
	s := NewSessions(SessionConfig{Pages: 20, Fanout: 4}, rng.New(7))
	want := append([]cache.ID(nil), s.PageKeys(3)...)
	buf := make([]cache.ID, 0, 4)
	for n := 0; n < 500; n++ {
		keys := s.NextInto(buf[:0])
		if keys[0] != 3 {
			continue
		}
		for i, k := range keys {
			if k != want[i] {
				t.Fatalf("page 3 keys changed between sessions: got %v want %v", keys, want)
			}
		}
	}
}

func TestSessionsDeterministic(t *testing.T) {
	a := NewSessions(SessionConfig{Pages: 30, Fanout: 6}, rng.New(42))
	b := NewSessions(SessionConfig{Pages: 30, Fanout: 6}, rng.New(42))
	bufA := make([]cache.ID, 0, 6)
	bufB := make([]cache.ID, 0, 6)
	for n := 0; n < 200; n++ {
		ka, kb := a.NextInto(bufA[:0]), b.NextInto(bufB[:0])
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("session %d diverges between identically seeded generators", n)
			}
		}
	}
}

func TestSessionsNextIntoAllocFree(t *testing.T) {
	s := NewSessions(SessionConfig{Pages: 40, Fanout: 8}, rng.New(9))
	buf := make([]cache.ID, 0, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = s.NextInto(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("NextInto allocates %.1f/op, want 0", allocs)
	}
}
