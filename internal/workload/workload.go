// Package workload generates the synthetic request streams that drive
// the simulator. The paper has no released traces, so we substitute
// standard synthetic models whose parameters map directly onto the
// paper's symbols: item sizes with mean s̄, Poisson request arrivals at
// rate λ, and reference streams whose locality produces a controllable
// no-prefetch hit ratio h′.
//
// Two reference models are provided. The independent reference model
// (IRM) draws items i.i.d. from a Zipf popularity law — the classical
// caching workload. The Markov model adds first-order sequential
// structure (each item has a sparse successor set), which is what gives
// the predictors in internal/predict something genuinely learnable, so
// that access probabilities p are estimated rather than assumed.
package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/rng"
)

// Item describes one cacheable object.
type Item struct {
	ID   cache.ID
	Size float64
}

// Catalog is a fixed population of items with sizes drawn once at
// construction, so an item's size is stable across the run (as a real
// object store would behave).
type Catalog struct {
	items []Item
	mean  float64
}

// NewCatalog creates n items with sizes drawn from dist using src.
// It panics if n <= 0.
func NewCatalog(n int, dist rng.Dist, src *rng.Source) *Catalog {
	if n <= 0 {
		panic(fmt.Sprintf("workload: catalog size %d must be positive", n))
	}
	items := make([]Item, n)
	sum := 0.0
	for i := range items {
		sz := dist.Sample(src)
		if sz <= 0 {
			sz = dist.Mean() // defensive: distributions here are positive
		}
		items[i] = Item{ID: cache.ID(i), Size: sz}
		sum += items[i].Size
	}
	return &Catalog{items: items, mean: sum / float64(n)}
}

// NewUniformCatalog creates n items all of the given size — the paper's
// setting where every item has size s̄ exactly.
func NewUniformCatalog(n int, size float64) *Catalog {
	if n <= 0 {
		panic(fmt.Sprintf("workload: catalog size %d must be positive", n))
	}
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: cache.ID(i), Size: size}
	}
	return &Catalog{items: items, mean: size}
}

// Len returns the number of items.
func (c *Catalog) Len() int { return len(c.items) }

// Item returns the item with the given id. It panics on out-of-range
// ids, which indicate a wiring bug between generator and catalog.
func (c *Catalog) Item(id cache.ID) Item {
	if id < 0 || int(id) >= len(c.items) {
		panic(fmt.Sprintf("workload: item id %d out of range [0,%d)", id, len(c.items)))
	}
	return c.items[id]
}

// Size returns the size of item id.
func (c *Catalog) Size(id cache.ID) float64 { return c.Item(id).Size }

// MeanSize returns the empirical mean item size s̄ of the catalog.
func (c *Catalog) MeanSize() float64 { return c.mean }

// Source produces a reference stream: successive item requests from one
// logical user population.
type Source interface {
	// Next returns the next requested item id.
	Next() cache.ID
	// Name identifies the model in reports.
	Name() string
}

// IRM is the independent reference model: items drawn i.i.d. from a
// Zipf(n, s) popularity distribution.
type IRM struct {
	zipf *rng.Zipf
	src  *rng.Source
}

// NewIRM creates an IRM source over n items with Zipf exponent s.
func NewIRM(n int, s float64, src *rng.Source) *IRM {
	return &IRM{zipf: rng.NewZipf(n, s), src: src}
}

// Next implements Source.
func (m *IRM) Next() cache.ID { return cache.ID(m.zipf.Sample(m.src)) }

// Name implements Source.
func (m *IRM) Name() string { return fmt.Sprintf("irm-%s", m.zipf) }

// Prob returns the stationary probability of item id, known in closed
// form for IRM — used by oracle predictors and tests.
func (m *IRM) Prob(id cache.ID) float64 { return m.zipf.Prob(int(id)) }

// Markov is a first-order Markov reference stream over n items. Each
// item has Fanout successors chosen at random; transition weights decay
// geometrically so one or two successors dominate (as link-following in
// web navigation does). With probability Restart the next request
// instead jumps to a Zipf-popular item, which keeps the chain ergodic
// and mixes global popularity with sequential structure.
type Markov struct {
	n       int
	fanout  int
	restart float64
	succ    [][]int          // successor ids per state
	weights []*rng.Empirical // successor weight distribution per state
	zipf    *rng.Zipf
	src     *rng.Source
	state   int
}

// MarkovConfig parameterises NewMarkov.
type MarkovConfig struct {
	// N is the number of items (states). Required.
	N int
	// Fanout is the number of successors per item (default 4).
	Fanout int
	// Decay is the geometric weight ratio between successive successors
	// (default 0.5; smaller = more deterministic chains).
	Decay float64
	// Restart is the probability of abandoning the chain for a
	// Zipf-popular jump (default 0.1).
	Restart float64
	// ZipfS is the popularity skew used for restarts (default 0.8).
	ZipfS float64
}

// NewMarkov builds the chain structure deterministically from src.
func NewMarkov(cfg MarkovConfig, src *rng.Source) *Markov {
	if cfg.N <= 0 {
		panic("workload: Markov needs N > 0")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.Fanout > cfg.N {
		cfg.Fanout = cfg.N
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = 0.5
	}
	if cfg.Restart <= 0 || cfg.Restart >= 1 {
		cfg.Restart = 0.1
	}
	if cfg.ZipfS < 0 {
		cfg.ZipfS = 0.8
	}
	m := &Markov{
		n:       cfg.N,
		fanout:  cfg.Fanout,
		restart: cfg.Restart,
		succ:    make([][]int, cfg.N),
		weights: make([]*rng.Empirical, cfg.N),
		zipf:    rng.NewZipf(cfg.N, cfg.ZipfS),
		src:     src,
	}
	w := make([]float64, cfg.Fanout)
	acc := 1.0
	for i := range w {
		w[i] = acc
		acc *= cfg.Decay
	}
	shared := rng.NewEmpirical(w)
	for s := 0; s < cfg.N; s++ {
		succ := make([]int, cfg.Fanout)
		seen := make(map[int]bool, cfg.Fanout)
		for i := 0; i < cfg.Fanout; i++ {
			for {
				cand := src.Intn(cfg.N)
				if !seen[cand] {
					seen[cand] = true
					succ[i] = cand
					break
				}
			}
		}
		m.succ[s] = succ
		m.weights[s] = shared
	}
	m.state = m.zipf.Sample(src)
	return m
}

// Next implements Source.
func (m *Markov) Next() cache.ID {
	if rng.Bernoulli(m.src, m.restart) {
		m.state = m.zipf.Sample(m.src)
	} else {
		pick := m.weights[m.state].Sample(m.src)
		m.state = m.succ[m.state][pick]
	}
	return cache.ID(m.state)
}

// Name implements Source.
func (m *Markov) Name() string {
	return fmt.Sprintf("markov(n=%d,fanout=%d,restart=%g)", m.n, m.fanout, m.restart)
}

// Successors exposes the true successor set of a state, for oracle
// predictors and prediction-quality tests.
func (m *Markov) Successors(id cache.ID) []cache.ID {
	out := make([]cache.ID, len(m.succ[id]))
	for i, s := range m.succ[id] {
		out[i] = cache.ID(s)
	}
	return out
}

// TransitionProb returns the true probability of moving from state
// `from` to state `to` in one step (including the restart mixture).
func (m *Markov) TransitionProb(from, to cache.ID) float64 {
	p := m.restart * m.zipf.Prob(int(to))
	for i, s := range m.succ[from] {
		if cache.ID(s) == to {
			p += (1 - m.restart) * m.weights[from].Prob(i)
		}
	}
	return p
}

// Arrivals generates Poisson request epochs at rate Lambda: the paper's
// users issuing requests at aggregate rate λ, unaffected by prefetching
// (Section 2.1's transparency assumption).
type Arrivals struct {
	inter rng.Exponential
	src   *rng.Source
	now   float64
}

// NewArrivals creates a Poisson arrival process with rate lambda.
func NewArrivals(lambda float64, src *rng.Source) *Arrivals {
	if lambda <= 0 {
		panic("workload: arrival rate must be positive")
	}
	return &Arrivals{inter: rng.Exponential{Rate: lambda}, src: src}
}

// Next returns the next arrival epoch (strictly increasing).
func (a *Arrivals) Next() float64 {
	a.now += a.inter.Sample(a.src)
	return a.now
}
