package workload

import (
	"fmt"

	"repro/internal/rng"
)

// MMPP is a two-state Markov-modulated Poisson process: requests arrive
// at RateHigh during bursts and RateLow between them, with
// exponentially distributed sojourns in each state. Real request
// streams are bursty — flash crowds, think-time cycles — and the
// paper's M/G/1 analysis assumes none of that. Experiment T14 uses this
// process to check which of the paper's conclusions survive burstiness.
type MMPP struct {
	rateHigh, rateLow float64
	meanHigh, meanLow float64
	src               *rng.Source

	now        float64
	inHigh     bool
	nextSwitch float64
}

// MMPPConfig parameterises NewMMPP.
type MMPPConfig struct {
	// RateHigh and RateLow are the arrival rates in the burst and quiet
	// states (RateHigh > RateLow >= 0; RateHigh > 0).
	RateHigh, RateLow float64
	// MeanHigh and MeanLow are the mean sojourn times in each state.
	MeanHigh, MeanLow float64
}

// MeanRate returns the long-run average arrival rate
// (λ_H·τ_H + λ_L·τ_L)/(τ_H + τ_L).
func (c MMPPConfig) MeanRate() float64 {
	return (c.RateHigh*c.MeanHigh + c.RateLow*c.MeanLow) / (c.MeanHigh + c.MeanLow)
}

// NewMMPP creates the process, starting in the quiet state. It panics
// on non-positive rates/sojourns (except RateLow = 0, which models
// fully ON/OFF traffic).
func NewMMPP(cfg MMPPConfig, src *rng.Source) *MMPP {
	if cfg.RateHigh <= 0 || cfg.RateLow < 0 || cfg.RateHigh <= cfg.RateLow {
		panic(fmt.Sprintf("workload: MMPP rates (high=%v, low=%v) must satisfy high > low >= 0",
			cfg.RateHigh, cfg.RateLow))
	}
	if cfg.MeanHigh <= 0 || cfg.MeanLow <= 0 {
		panic(fmt.Sprintf("workload: MMPP sojourns (%v, %v) must be positive",
			cfg.MeanHigh, cfg.MeanLow))
	}
	m := &MMPP{
		rateHigh: cfg.RateHigh,
		rateLow:  cfg.RateLow,
		meanHigh: cfg.MeanHigh,
		meanLow:  cfg.MeanLow,
		src:      src,
	}
	m.nextSwitch = rng.Exponential{Rate: 1 / m.meanLow}.Sample(src)
	return m
}

// Next returns the next arrival epoch (strictly increasing).
func (m *MMPP) Next() float64 {
	for {
		rate := m.rateLow
		if m.inHigh {
			rate = m.rateHigh
		}
		if rate > 0 {
			candidate := m.now + rng.Exponential{Rate: rate}.Sample(m.src)
			if candidate < m.nextSwitch {
				m.now = candidate
				return m.now
			}
		}
		// No arrival before the state switch: advance to it and flip.
		m.now = m.nextSwitch
		m.inHigh = !m.inHigh
		sojourn := m.meanLow
		if m.inHigh {
			sojourn = m.meanHigh
		}
		m.nextSwitch = m.now + rng.Exponential{Rate: 1 / sojourn}.Sample(m.src)
	}
}
