package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMMPPMeanRate(t *testing.T) {
	cfg := MMPPConfig{RateHigh: 90, RateLow: 10, MeanHigh: 1, MeanLow: 2}
	want := (90.0*1 + 10.0*2) / 3
	if math.Abs(cfg.MeanRate()-want) > 1e-12 {
		t.Fatalf("MeanRate = %v, want %v", cfg.MeanRate(), want)
	}
	m := NewMMPP(cfg, rng.New(61))
	const n = 300000
	var last float64
	for i := 0; i < n; i++ {
		next := m.Next()
		if next <= last {
			t.Fatal("MMPP epochs must strictly increase")
		}
		last = next
	}
	rate := n / last
	if math.Abs(rate-want)/want > 0.05 {
		t.Errorf("empirical rate %v, want ~%v", rate, want)
	}
}

// Burstiness: the index of dispersion of counts must exceed 1 (Poisson
// has exactly 1).
func TestMMPPOverdispersed(t *testing.T) {
	cfg := MMPPConfig{RateHigh: 100, RateLow: 5, MeanHigh: 0.5, MeanLow: 2}
	m := NewMMPP(cfg, rng.New(62))
	// Count arrivals per unit-time window.
	const windows = 4000
	counts := make([]float64, windows)
	w := 0
	for w < windows {
		epoch := m.Next()
		idx := int(epoch)
		if idx >= windows {
			break
		}
		counts[idx]++
		w = idx
	}
	var mean, m2 float64
	for i, c := range counts {
		delta := c - mean
		mean += delta / float64(i+1)
		m2 += delta * (c - mean)
	}
	variance := m2 / float64(windows-1)
	idc := variance / mean
	if idc < 1.5 {
		t.Errorf("index of dispersion %v; MMPP should be clearly over-dispersed", idc)
	}
}

func TestMMPPOnOff(t *testing.T) {
	// RateLow = 0 is legal: pure ON/OFF traffic.
	m := NewMMPP(MMPPConfig{RateHigh: 50, RateLow: 0, MeanHigh: 1, MeanLow: 1}, rng.New(63))
	var last float64
	for i := 0; i < 10000; i++ {
		next := m.Next()
		if next <= last {
			t.Fatal("epochs must increase")
		}
		last = next
	}
}

func TestMMPPPanics(t *testing.T) {
	cases := []MMPPConfig{
		{RateHigh: 0, RateLow: 0, MeanHigh: 1, MeanLow: 1},
		{RateHigh: 10, RateLow: 20, MeanHigh: 1, MeanLow: 1}, // high <= low
		{RateHigh: 10, RateLow: 1, MeanHigh: 0, MeanLow: 1},
		{RateHigh: 10, RateLow: 1, MeanHigh: 1, MeanLow: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic: %+v", i, cfg)
				}
			}()
			NewMMPP(cfg, rng.New(1))
		}()
	}
}
