package workload

import (
	"fmt"
	"io"

	"repro/internal/cache"
)

// Replay is a Source that replays the per-user item sequence of a
// recorded trace. Only the reference *sequence* is replayed — the
// simulator supplies its own arrival process — so a trace captured at
// one request rate can be re-simulated at another, which is exactly the
// what-if analysis the paper's model enables (the reference structure
// sets h′ and p; λ and b set the load).
type Replay struct {
	items []cache.ID
	pos   int
	loop  bool
	name  string
}

// NewReplay builds a replay source from the records belonging to the
// given user (user < 0 replays every record regardless of user). With
// loop true the sequence restarts when exhausted, so the source can
// serve an arbitrary number of requests. It returns an error when the
// selection is empty.
func NewReplay(records []Record, user int, loop bool) (*Replay, error) {
	var items []cache.ID
	for _, r := range records {
		if user < 0 || r.User == user {
			items = append(items, r.Item)
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("workload: no trace records for user %d", user)
	}
	return &Replay{
		items: items,
		loop:  loop,
		name:  fmt.Sprintf("replay(user=%d,n=%d,loop=%t)", user, len(items), loop),
	}, nil
}

// NewReplayReader reads a full trace and builds a replay source.
func NewReplayReader(r io.Reader, user int, loop bool) (*Replay, error) {
	records, err := NewTraceReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	return NewReplay(records, user, loop)
}

// Len returns the number of replayable requests in one pass.
func (r *Replay) Len() int { return len(r.items) }

// Rewind restarts the replay from the head of the sequence. It lets a
// sweep (e.g. prefetchbench's shard sweep) reuse one Replay — and the
// per-user record buffer it scanned out of the trace — instead of
// rebuilding every source for every run.
func (r *Replay) Rewind() { r.pos = 0 }

// Exhausted reports whether a non-looping replay has consumed every
// record.
func (r *Replay) Exhausted() bool { return !r.loop && r.pos >= len(r.items) }

// Next implements Source. A non-looping replay panics when exhausted;
// check Exhausted (or size the simulation to Len) to avoid that.
func (r *Replay) Next() cache.ID {
	if r.pos >= len(r.items) {
		if !r.loop {
			panic("workload: replay exhausted; size the run to Len() or enable looping")
		}
		r.pos = 0
	}
	id := r.items[r.pos]
	r.pos++
	return id
}

// Name implements Source.
func (r *Replay) Name() string { return r.name }
