package workload

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/rng"
)

func TestUniformCatalog(t *testing.T) {
	c := NewUniformCatalog(10, 2.5)
	if c.Len() != 10 {
		t.Errorf("Len = %d, want 10", c.Len())
	}
	if c.MeanSize() != 2.5 {
		t.Errorf("MeanSize = %v, want 2.5", c.MeanSize())
	}
	for i := cache.ID(0); i < 10; i++ {
		if c.Size(i) != 2.5 {
			t.Errorf("Size(%d) = %v", i, c.Size(i))
		}
	}
}

func TestCatalogSampledSizes(t *testing.T) {
	src := rng.New(1)
	c := NewCatalog(5000, rng.Exponential{Rate: 1}, src)
	if math.Abs(c.MeanSize()-1) > 0.05 {
		t.Errorf("MeanSize = %v, want ~1", c.MeanSize())
	}
	// Sizes are stable: repeated reads agree.
	if c.Size(7) != c.Size(7) {
		t.Error("size changed between reads")
	}
}

func TestCatalogPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty catalog should panic")
			}
		}()
		NewUniformCatalog(0, 1)
	}()
	c := NewUniformCatalog(3, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range id should panic")
			}
		}()
		c.Item(5)
	}()
}

func TestIRMMatchesZipf(t *testing.T) {
	src := rng.New(2)
	m := NewIRM(50, 1.0, src)
	counts := make([]int, 50)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[m.Next()]++
	}
	for i := 0; i < 10; i++ {
		got := float64(counts[i]) / n
		want := m.Prob(cache.ID(i))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d freq %v, want %v", i, got, want)
		}
	}
	if !strings.Contains(m.Name(), "irm") {
		t.Error("Name should mention irm")
	}
}

func TestMarkovDeterministicStructure(t *testing.T) {
	cfg := MarkovConfig{N: 100, Fanout: 3}
	a := NewMarkov(cfg, rng.New(7))
	b := NewMarkov(cfg, rng.New(7))
	for s := cache.ID(0); s < 100; s++ {
		sa, sb := a.Successors(s), b.Successors(s)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("structure differs at state %d", s)
			}
		}
	}
}

func TestMarkovSuccessorsDistinct(t *testing.T) {
	m := NewMarkov(MarkovConfig{N: 50, Fanout: 5}, rng.New(8))
	for s := cache.ID(0); s < 50; s++ {
		seen := map[cache.ID]bool{}
		for _, nxt := range m.Successors(s) {
			if seen[nxt] {
				t.Fatalf("state %d has duplicate successor %d", s, nxt)
			}
			seen[nxt] = true
		}
	}
}

func TestMarkovTransitionProbsSumToOne(t *testing.T) {
	m := NewMarkov(MarkovConfig{N: 30, Fanout: 4, Restart: 0.2}, rng.New(9))
	for s := cache.ID(0); s < 30; s++ {
		sum := 0.0
		for to := cache.ID(0); to < 30; to++ {
			sum += m.TransitionProb(s, to)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("state %d transition probs sum to %v", s, sum)
		}
	}
}

func TestMarkovEmpiricalMatchesTransitionProb(t *testing.T) {
	m := NewMarkov(MarkovConfig{N: 20, Fanout: 3, Restart: 0.15}, rng.New(10))
	// Count empirical transitions out of each state.
	counts := make(map[cache.ID]map[cache.ID]int)
	totals := make(map[cache.ID]int)
	prev := m.Next()
	const n = 400000
	for i := 0; i < n; i++ {
		next := m.Next()
		if counts[prev] == nil {
			counts[prev] = make(map[cache.ID]int)
		}
		counts[prev][next]++
		totals[prev]++
		prev = next
	}
	checked := 0
	for from, row := range counts {
		if totals[from] < 5000 {
			continue
		}
		for to, c := range row {
			want := m.TransitionProb(from, to)
			got := float64(c) / float64(totals[from])
			if math.Abs(got-want) > 0.02 {
				t.Errorf("P(%d→%d): empirical %v vs true %v", from, to, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no transitions checked")
	}
}

func TestMarkovDefaultsApplied(t *testing.T) {
	m := NewMarkov(MarkovConfig{N: 5}, rng.New(11))
	if len(m.Successors(0)) != 4 {
		t.Errorf("default fanout = %d, want 4", len(m.Successors(0)))
	}
	m2 := NewMarkov(MarkovConfig{N: 2, Fanout: 10}, rng.New(11))
	if len(m2.Successors(0)) != 2 {
		t.Errorf("fanout should clamp to N, got %d", len(m2.Successors(0)))
	}
}

func TestMarkovPanicsWithoutN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=0 should panic")
		}
	}()
	NewMarkov(MarkovConfig{}, rng.New(1))
}

func TestArrivalsPoissonRate(t *testing.T) {
	a := NewArrivals(30, rng.New(12))
	var last float64
	const n = 100000
	for i := 0; i < n; i++ {
		next := a.Next()
		if next <= last {
			t.Fatal("arrival epochs must strictly increase")
		}
		last = next
	}
	rate := n / last
	if math.Abs(rate-30)/30 > 0.02 {
		t.Errorf("empirical rate = %v, want ~30", rate)
	}
}

func TestArrivalsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive rate should panic")
		}
	}()
	NewArrivals(0, rng.New(1))
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	recs := []Record{
		{Time: 0.5, User: 0, Item: 3, Size: 1.5},
		{Time: 1.25, User: 1, Item: 9, Size: 0.25},
		{Time: 1.25, User: 0, Item: 3, Size: 1.5},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d, want 3", w.Count())
	}
	got, err := NewTraceReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestTraceReaderRejectsDisorder(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	w.Write(Record{Time: 2})
	w.Write(Record{Time: 1})
	w.Flush()
	r := NewTraceReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Error("time regression should error")
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	r := NewTraceReader(strings.NewReader("not json\n"))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Error("malformed input should produce a real error")
	}
}

func TestGenerate(t *testing.T) {
	var buf bytes.Buffer
	src := rng.New(13)
	cat := NewUniformCatalog(100, 1)
	irm := NewIRM(100, 0.8, src)
	arr := NewArrivals(10, rng.New(14))
	w := NewTraceWriter(&buf)
	if err := Generate(w, irm, arr, cat, 4, 500); err != nil {
		t.Fatal(err)
	}
	recs, err := NewTraceReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("generated %d records, want 500", len(recs))
	}
	users := map[int]bool{}
	for _, r := range recs {
		users[r.User] = true
		if r.Size != 1 {
			t.Fatalf("record size %v, want 1", r.Size)
		}
	}
	if len(users) != 4 {
		t.Errorf("saw %d users, want 4", len(users))
	}
}

// Property: any generated trace round-trips and is time-ordered.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%100) + 1
		var buf bytes.Buffer
		src := rng.New(seed)
		cat := NewUniformCatalog(50, 2)
		irm := NewIRM(50, 1.0, src)
		arr := NewArrivals(5, rng.New(seed+1))
		w := NewTraceWriter(&buf)
		if err := Generate(w, irm, arr, cat, 3, count); err != nil {
			return false
		}
		recs, err := NewTraceReader(&buf).ReadAll()
		if err != nil || len(recs) != count {
			return false
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time < recs[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
