package workload

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"testing"
)

// FuzzTraceParse drives the JSONL trace parser behind `prefetchbench
// -trace` with arbitrary byte input. The parser must never panic, must
// only ever return records in non-decreasing time order (the invariant
// it exists to enforce), and whatever it accepts must survive a
// write/re-read round trip unchanged — so a fuzz-found corpus entry is
// always replayable.
func FuzzTraceParse(f *testing.F) {
	// Seed with real lines from the checked-in 1k-record trace plus
	// hand-picked malformed shapes.
	if data, err := os.ReadFile("../../cmd/prefetchbench/testdata/trace1k.jsonl"); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		var seed []byte
		for i := 0; sc.Scan() && i < 16; i++ {
			seed = append(seed, sc.Bytes()...)
			seed = append(seed, '\n')
		}
		f.Add(seed)
	}
	f.Add([]byte(`{"t":0,"u":0,"i":1,"s":1}` + "\n" + `{"t":1,"u":1,"i":2,"s":0.5}` + "\n"))
	f.Add([]byte(`{"t":2,"u":0,"i":1,"s":1}` + "\n" + `{"t":1,"u":0,"i":1,"s":1}` + "\n")) // disordered
	f.Add([]byte(`{"t":"not a number"}`))
	f.Add([]byte("{\n"))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewTraceReader(bytes.NewReader(data))
		var recs []Record
		last := 0.0
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Malformed or disordered input: rejection is the
				// correct outcome; nothing after the error is trusted.
				break
			}
			if rec.Time < last {
				t.Fatalf("parser accepted time-disordered record: %v after %v", rec.Time, last)
			}
			last = rec.Time
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			return
		}
		// Round trip: accepted records re-encode and re-parse exactly.
		var buf bytes.Buffer
		w := NewTraceWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-writing accepted record: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		back, err := NewTraceReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-reading written trace: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip lost records: wrote %d, read %d", len(recs), len(back))
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("round trip changed record %d: %+v != %+v", i, back[i], recs[i])
			}
		}
	})
}
