// Package rng provides deterministic random-number streams and the
// probability distributions used by the workload generators and the
// discrete-event simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// figure and table in EXPERIMENTS.md must regenerate bit-identically from
// a seed. The package therefore implements its own small, well-known
// generator (SplitMix64 for seeding, xoshiro256** for the stream) instead
// of depending on the unspecified default source in math/rand, and it
// derives independent named substreams from a root seed so that adding a
// new consumer of randomness does not perturb existing ones.
package rng

import "math"

// splitMix64 advances the SplitMix64 state and returns the next value.
// It is used to expand seeds into full generator state (the construction
// recommended by the xoshiro authors).
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic uniform pseudo-random generator
// (xoshiro256**). It is not safe for concurrent use; derive one Source
// per goroutine with NewStream.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// A xoshiro state of all zeros is invalid (the generator would emit
	// only zeros); SplitMix64 cannot produce four zero outputs in a row,
	// but guard anyway so the invariant is local.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// NewStream derives an independent substream identified by name. Streams
// with different names, or from sources with different seeds, are
// independent; the same (seed, name) pair always yields the same stream.
func NewStream(seed uint64, name string) *Source {
	h := fnv64a(name)
	return New(seed ^ h)
}

// fnv64a hashes a string with FNV-1a. Used only for stream derivation,
// where speed and stability matter more than cryptographic strength.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next uniformly distributed 64-bit value.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection,
	// which avoids the modulo bias of Uint64() % n.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
