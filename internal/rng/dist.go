package rng

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous, non-negative random variate generator. The
// simulator draws inter-arrival times and item sizes from Dists; the
// queueing analysis only needs their mean, which Mean reports exactly.
type Dist interface {
	// Sample draws one variate using the given source.
	Sample(r *Source) float64
	// Mean returns the exact expectation of the distribution.
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// Deterministic is a degenerate distribution that always returns Value.
// Used for fixed item sizes, where the paper's s̄ is exact.
type Deterministic struct {
	Value float64
}

// Sample implements Dist.
func (d Deterministic) Sample(*Source) float64 { return d.Value }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// Exponential is the exponential distribution with the given rate λ
// (mean 1/λ). Poisson arrival processes use exponential inter-arrivals.
type Exponential struct {
	Rate float64
}

// NewExponentialMean returns an exponential distribution with the given
// mean (rate 1/mean).
func NewExponentialMean(mean float64) Exponential {
	return Exponential{Rate: 1 / mean}
}

// Sample implements Dist.
func (d Exponential) Sample(r *Source) float64 {
	// -log(1-U)/λ; 1-U avoids log(0) since Float64 ∈ [0,1).
	return -math.Log(1-r.Float64()) / d.Rate
}

// Mean implements Dist.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

func (d Exponential) String() string { return fmt.Sprintf("exp(rate=%g)", d.Rate) }

// Uniform is the continuous uniform distribution on [Low, High).
type Uniform struct {
	Low, High float64
}

// Sample implements Dist.
func (d Uniform) Sample(r *Source) float64 {
	return d.Low + (d.High-d.Low)*r.Float64()
}

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.Low + d.High) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("uniform[%g,%g)", d.Low, d.High) }

// Pareto is the (unbounded) Pareto distribution with scale Xm > 0 and
// shape Alpha. The mean is finite only for Alpha > 1. Heavy-tailed item
// sizes are the classic stress test for the processor-sharing server's
// insensitivity property (experiment T8).
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (d Pareto) Sample(r *Source) float64 {
	// Inverse-CDF: Xm / U^(1/α), with U ∈ (0,1].
	u := 1 - r.Float64()
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean implements Dist. It returns +Inf when Alpha <= 1.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

func (d Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,α=%g)", d.Xm, d.Alpha) }

// NewParetoMean returns a Pareto distribution with the given mean and
// shape Alpha (> 1). It panics if Alpha <= 1, since then no finite mean
// exists.
func NewParetoMean(mean, alpha float64) Pareto {
	if alpha <= 1 {
		panic("rng: Pareto mean undefined for alpha <= 1")
	}
	return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}

// BoundedPareto is a Pareto distribution truncated to [L, H]. Bounded
// tails keep single simulation runs from being dominated by one sample
// while staying recognisably heavy-tailed.
type BoundedPareto struct {
	L, H  float64
	Alpha float64
}

// Sample implements Dist.
func (d BoundedPareto) Sample(r *Source) float64 {
	u := r.Float64()
	la := math.Pow(d.L, d.Alpha)
	ha := math.Pow(d.H, d.Alpha)
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/d.Alpha)
	return x
}

// Mean implements Dist.
func (d BoundedPareto) Mean() float64 {
	a := d.Alpha
	if a == 1 {
		return d.L * d.H / (d.H - d.L) * math.Log(d.H/d.L)
	}
	la := math.Pow(d.L, a)
	return la / (1 - math.Pow(d.L/d.H, a)) * a / (a - 1) *
		(1/math.Pow(d.L, a-1) - 1/math.Pow(d.H, a-1))
}

func (d BoundedPareto) String() string {
	return fmt.Sprintf("bpareto[%g,%g](α=%g)", d.L, d.H, d.Alpha)
}

// Zipf draws integers in [0, N) with probability proportional to
// 1/(rank+1)^S. Web-object popularity is famously Zipf-like, which is
// what makes caching (and hence the paper's h′) effective.
type Zipf struct {
	n   int
	s   float64
	cdf []float64 // cumulative probabilities, cdf[n-1] == 1
}

// NewZipf builds a Zipf sampler over n items with exponent s >= 0
// (s == 0 is the uniform distribution). It panics if n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{n: n, s: s, cdf: cdf}
}

// N returns the population size.
func (z *Zipf) N() int { return z.n }

// S returns the skew exponent.
func (z *Zipf) S() float64 { return z.s }

// Prob returns the probability of rank i (0-based).
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= z.n {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(r *Source) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

func (z *Zipf) String() string { return fmt.Sprintf("zipf(n=%d,s=%g)", z.n, z.s) }

// Bernoulli returns true with probability p.
func Bernoulli(r *Source, p float64) bool { return r.Float64() < p }

// Geometric draws the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p is not in
// (0, 1].
func Geometric(r *Source, p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Empirical is a discrete distribution over arbitrary weights.
type Empirical struct {
	cdf []float64
}

// NewEmpirical builds a sampler proportional to weights. It panics if
// weights is empty, contains a negative value, or sums to zero.
func NewEmpirical(weights []float64) *Empirical {
	if len(weights) == 0 {
		panic("rng: empirical distribution needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("rng: empirical weights sum to zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &Empirical{cdf: cdf}
}

// Sample draws an index in [0, len(weights)).
func (e *Empirical) Sample(r *Source) int {
	return sort.SearchFloat64s(e.cdf, r.Float64())
}

// Prob returns the normalised probability of index i.
func (e *Empirical) Prob(i int) float64 {
	if i < 0 || i >= len(e.cdf) {
		return 0
	}
	if i == 0 {
		return e.cdf[0]
	}
	return e.cdf[i] - e.cdf[i-1]
}
