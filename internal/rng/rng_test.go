package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, "arrivals")
	b := NewStream(7, "sizes")
	c := NewStream(7, "arrivals")
	if a.Uint64() == b.Uint64() {
		t.Error("streams with different names should differ")
	}
	a2 := NewStream(7, "arrivals")
	_ = c
	first := a2.Uint64()
	a3 := NewStream(7, "arrivals")
	if a3.Uint64() != first {
		t.Error("same (seed,name) should reproduce the same stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(9)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed contents: %v", xs)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(10)
	d := Exponential{Rate: 2}
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exp(2) sample mean = %v, want ~0.5", mean)
	}
	if d.Mean() != 0.5 {
		t.Errorf("exp(2).Mean() = %v, want 0.5", d.Mean())
	}
}

func TestNewExponentialMean(t *testing.T) {
	d := NewExponentialMean(4)
	if math.Abs(d.Mean()-4) > 1e-12 {
		t.Errorf("mean = %v, want 4", d.Mean())
	}
}

func TestDeterministicDist(t *testing.T) {
	d := Deterministic{Value: 3.5}
	r := New(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.5 {
			t.Fatal("deterministic sample changed")
		}
	}
	if d.Mean() != 3.5 {
		t.Error("deterministic mean wrong")
	}
}

func TestUniformDist(t *testing.T) {
	d := Uniform{Low: 2, High: 6}
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform sample %v out of [2,6)", v)
		}
		sum += v
	}
	if math.Abs(sum/n-4) > 0.02 {
		t.Errorf("uniform mean = %v, want ~4", sum/n)
	}
}

func TestParetoMeanMatchesSamples(t *testing.T) {
	d := NewParetoMean(1.0, 2.5)
	r := New(12)
	sum := 0.0
	const n = 500000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.03 {
		t.Errorf("pareto sample mean = %v, want ~1.0", mean)
	}
	if math.Abs(d.Mean()-1.0) > 1e-12 {
		t.Errorf("pareto analytic mean = %v, want 1.0", d.Mean())
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 0.9}
	if !math.IsInf(d.Mean(), 1) {
		t.Error("Pareto with alpha<=1 should report infinite mean")
	}
}

func TestNewParetoMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewParetoMean with alpha<=1 should panic")
		}
	}()
	NewParetoMean(1, 1)
}

func TestBoundedParetoRangeAndMean(t *testing.T) {
	d := BoundedPareto{L: 0.5, H: 50, Alpha: 1.5}
	r := New(13)
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0.5-1e-9 || v > 50+1e-9 {
			t.Fatalf("bounded pareto sample %v out of [0.5,50]", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("bounded pareto sample mean %v vs analytic %v", mean, d.Mean())
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	z := NewZipf(100, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("zipf probabilities sum to %v", sum)
	}
}

func TestZipfMonotoneProbs(t *testing.T) {
	z := NewZipf(50, 1.2)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Fatalf("zipf prob increased at rank %d", i)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Errorf("zipf(s=0) prob %d = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(20, 1.0)
	r := New(14)
	counts := make([]int, 20)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i := 0; i < 20; i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("zipf rank %d freq %v, want %v", i, got, want)
		}
	}
}

func TestZipfOutOfRangeProb(t *testing.T) {
	z := NewZipf(5, 1)
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(15)
	p := 0.25
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(Geometric(r, p))
	}
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(sum/n-want)/want > 0.03 {
		t.Errorf("geometric mean = %v, want ~%v", sum/n, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(16)
	if Geometric(r, 1) != 0 {
		t.Error("Geometric(p=1) should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(p=0) should panic")
		}
	}()
	Geometric(r, 0)
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", float64(hits)/n)
	}
}

func TestEmpirical(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 7})
	if math.Abs(e.Prob(0)-0.1) > 1e-12 || math.Abs(e.Prob(2)-0.7) > 1e-12 {
		t.Errorf("empirical probs wrong: %v %v %v", e.Prob(0), e.Prob(1), e.Prob(2))
	}
	r := New(18)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[e.Sample(r)]++
	}
	if math.Abs(float64(counts[2])/n-0.7) > 0.01 {
		t.Errorf("empirical sampling off: %v", counts)
	}
}

func TestEmpiricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {-1, 2}, {0, 0}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEmpirical(%v) should panic", ws)
				}
			}()
			NewEmpirical(ws)
		}()
	}
}

func TestEmpiricalOutOfRangeProb(t *testing.T) {
	e := NewEmpirical([]float64{1, 1})
	if e.Prob(-1) != 0 || e.Prob(2) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	var sum, sq float64
	const n = 300000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// Property: Intn never leaves its range, for any seed and bound.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the empirical CDF is monotone and normalised for any
// positive weight vector.
func TestQuickEmpiricalNormalised(t *testing.T) {
	f := func(ws []uint8) bool {
		if len(ws) == 0 {
			return true
		}
		weights := make([]float64, len(ws))
		sum := 0.0
		for i, w := range ws {
			weights[i] = float64(w) + 1 // strictly positive
			sum += weights[i]
		}
		e := NewEmpirical(weights)
		total := 0.0
		for i := range weights {
			p := e.Prob(i)
			if p < 0 {
				return false
			}
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Zipf CDF search always returns a valid rank.
func TestQuickZipfSampleInRange(t *testing.T) {
	f := func(seed uint64, n uint8, s uint8) bool {
		size := int(n%200) + 1
		z := NewZipf(size, float64(s%30)/10)
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := z.Sample(r)
			if v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(10000, 0.9)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}
