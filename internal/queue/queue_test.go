package queue

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestPSMeanResponseFormula(t *testing.T) {
	got, err := PSMeanResponse(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("PSMeanResponse(2, 0.5) = %v, want 4", got)
	}
}

func TestPSMeanResponseErrors(t *testing.T) {
	if _, err := PSMeanResponse(1, 1); err != ErrOverload {
		t.Error("rho=1 should be overload")
	}
	if _, err := PSMeanResponse(1, 1.5); err != ErrOverload {
		t.Error("rho>1 should be overload")
	}
	if _, err := PSMeanResponse(-1, 0.5); err == nil {
		t.Error("negative x should error")
	}
	if _, err := PSMeanResponse(math.NaN(), 0.5); err == nil {
		t.Error("NaN should error")
	}
}

func TestPSSlowdown(t *testing.T) {
	got, err := PSSlowdown(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("slowdown at rho=0.75 = %v, want 4", got)
	}
}

func TestUtilisation(t *testing.T) {
	if got := Utilisation(30, 1, 50); got != 0.6 {
		t.Errorf("Utilisation(30,1,50) = %v, want 0.6", got)
	}
	if !math.IsInf(Utilisation(1, 1, 0), 1) {
		t.Error("zero capacity should give infinite utilisation")
	}
}

func TestMM1MeanResponse(t *testing.T) {
	got, err := MM1MeanResponse(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("MM1MeanResponse(3,5) = %v, want 0.5", got)
	}
	if _, err := MM1MeanResponse(5, 5); err != ErrOverload {
		t.Error("λ=μ should be overload")
	}
	if _, err := MM1MeanResponse(-1, 5); err == nil {
		t.Error("negative lambda should error")
	}
}

func TestMG1FCFSMeanWait(t *testing.T) {
	// M/M/1 special case: E[S²] = 2/μ², W = ρ/(μ-λ).
	lambda, mu := 3.0, 5.0
	rho := lambda / mu
	es2 := 2 / (mu * mu)
	got, err := MG1FCFSMeanWait(lambda, es2, rho)
	if err != nil {
		t.Fatal(err)
	}
	want := rho / (mu - lambda)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PK wait = %v, want %v", got, want)
	}
	if _, err := MG1FCFSMeanWait(1, 1, 1); err != ErrOverload {
		t.Error("rho=1 should be overload")
	}
}

func TestPSMeanJobs(t *testing.T) {
	got, err := PSMeanJobs(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("PSMeanJobs(0.5) = %v, want 1", got)
	}
	if _, err := PSMeanJobs(1); err != ErrOverload {
		t.Error("rho=1 should be overload")
	}
}

// Two equal jobs submitted together should each take twice their solo
// time: the elementary PS sharing check.
func TestPSServerSharesCapacity(t *testing.T) {
	sim := des.New()
	srv := NewPSServer(sim, 1)
	var r1, r2 float64
	srv.Submit(&Job{Size: 1, Done: func(r float64) { r1 = r }})
	srv.Submit(&Job{Size: 1, Done: func(r float64) { r2 = r }})
	sim.Run()
	if math.Abs(r1-2) > 1e-9 || math.Abs(r2-2) > 1e-9 {
		t.Errorf("responses = %v, %v; want 2, 2", r1, r2)
	}
}

// A short job arriving while a long one is in service finishes first,
// and the long job's completion accounts for the shared period.
func TestPSServerPreemptionByShortJob(t *testing.T) {
	sim := des.New()
	srv := NewPSServer(sim, 1)
	var longDone, shortDone float64
	srv.Submit(&Job{Size: 10, Done: func(r float64) { longDone = sim.Now() }})
	sim.Schedule(1, func() {
		srv.Submit(&Job{Size: 1, Done: func(r float64) { shortDone = sim.Now() }})
	})
	sim.Run()
	// Long job alone for 1s (9 left). Then shared: short needs 1 unit at
	// rate 1/2 → finishes at t=3; long then has 8 left alone → t=11.
	if math.Abs(shortDone-3) > 1e-9 {
		t.Errorf("short job finished at %v, want 3", shortDone)
	}
	if math.Abs(longDone-11) > 1e-9 {
		t.Errorf("long job finished at %v, want 11", longDone)
	}
}

func TestPSServerSoloJob(t *testing.T) {
	sim := des.New()
	srv := NewPSServer(sim, 4)
	var resp float64
	srv.Submit(&Job{Size: 2, Done: func(r float64) { resp = r }})
	sim.Run()
	if math.Abs(resp-0.5) > 1e-12 {
		t.Errorf("solo response = %v, want 0.5", resp)
	}
	if srv.Served() != 1 || srv.Load() != 0 {
		t.Error("bookkeeping wrong after solo job")
	}
}

func TestPSServerRejectsBadJobs(t *testing.T) {
	sim := des.New()
	srv := NewPSServer(sim, 1)
	for _, size := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %v should panic", size)
				}
			}()
			srv.Submit(&Job{Size: size})
		}()
	}
}

func TestNewPSServerPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	NewPSServer(des.New(), 0)
}

// runPSSim drives an M/G/1-PS simulation and returns the observed mean
// response time and mean service requirement.
func runPSSim(t *testing.T, seed uint64, lambda float64, size rng.Dist,
	capacity float64, jobs int) (meanResp, meanSize float64) {
	t.Helper()
	sim := des.New()
	srv := NewPSServer(sim, capacity)
	arrivals := rng.NewStream(seed, "arrivals")
	sizes := rng.NewStream(seed, "sizes")
	inter := rng.Exponential{Rate: lambda}
	submitted := 0
	var sizeSum float64
	var arrive func()
	arrive = func() {
		if submitted >= jobs {
			return
		}
		submitted++
		sz := size.Sample(sizes)
		sizeSum += sz
		srv.Submit(&Job{Size: sz})
		sim.After(inter.Sample(arrivals), arrive)
	}
	sim.After(inter.Sample(arrivals), arrive)
	sim.Run()
	if srv.Served() != int64(jobs) {
		t.Fatalf("served %d jobs, want %d", srv.Served(), jobs)
	}
	return srv.Response.Mean(), sizeSum / float64(jobs)
}

// The headline validation: simulated M/G/1-PS mean response ≈ x̄/(1−ρ)
// (paper eq. 2) with exponential sizes.
func TestPSServerMatchesAnalyticExponential(t *testing.T) {
	lambda, capacity := 0.6, 1.0
	size := rng.Exponential{Rate: 1} // mean 1 → ρ = 0.6
	meanResp, meanSize := runPSSim(t, 11, lambda, size, capacity, 60000)
	rho := Utilisation(lambda, 1, capacity)
	want, err := PSMeanResponse(meanSize, rho)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(meanResp-want) / want; rel > 0.05 {
		t.Errorf("PS sim mean %v vs analytic %v (rel %.3f)", meanResp, want, rel)
	}
}

// Insensitivity: the same mean holds under heavy-tailed Pareto sizes.
func TestPSServerInsensitivityPareto(t *testing.T) {
	lambda, capacity := 0.6, 1.0
	size := rng.NewParetoMean(1, 2.2)
	meanResp, _ := runPSSim(t, 13, lambda, size, capacity, 80000)
	rho := Utilisation(lambda, 1, capacity)
	want, _ := PSMeanResponse(1, rho)
	if rel := math.Abs(meanResp-want) / want; rel > 0.10 {
		t.Errorf("PS Pareto sim mean %v vs analytic %v (rel %.3f)", meanResp, want, rel)
	}
}

// By contrast, FCFS with the same Pareto workload must be measurably
// worse than with exponential sizes — sensitivity to variance.
func TestFCFSSensitivity(t *testing.T) {
	runFCFS := func(seed uint64, size rng.Dist) float64 {
		sim := des.New()
		srv := NewFCFSServer(sim, 1)
		arrivals := rng.NewStream(seed, "arrivals")
		sizes := rng.NewStream(seed, "sizes")
		inter := rng.Exponential{Rate: 0.5}
		submitted := 0
		var arrive func()
		arrive = func() {
			if submitted >= 40000 {
				return
			}
			submitted++
			srv.Submit(&Job{Size: size.Sample(sizes)})
			sim.After(inter.Sample(arrivals), arrive)
		}
		sim.After(inter.Sample(arrivals), arrive)
		sim.Run()
		return srv.Response.Mean()
	}
	exp := runFCFS(17, rng.Exponential{Rate: 1})
	par := runFCFS(17, rng.NewParetoMean(1, 2.2))
	if par <= exp {
		t.Errorf("FCFS should be worse under Pareto: exp=%v pareto=%v", exp, par)
	}
}

func TestFCFSMatchesMM1(t *testing.T) {
	sim := des.New()
	srv := NewFCFSServer(sim, 1)
	arrivals := rng.NewStream(19, "arrivals")
	sizes := rng.NewStream(19, "sizes")
	lambda, mu := 0.5, 1.0
	inter := rng.Exponential{Rate: lambda}
	svc := rng.Exponential{Rate: mu}
	submitted := 0
	var arrive func()
	arrive = func() {
		if submitted >= 60000 {
			return
		}
		submitted++
		srv.Submit(&Job{Size: svc.Sample(sizes)})
		sim.After(inter.Sample(arrivals), arrive)
	}
	sim.After(inter.Sample(arrivals), arrive)
	sim.Run()
	want, _ := MM1MeanResponse(lambda, mu)
	got := srv.Response.Mean()
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("FCFS M/M/1 sim mean %v vs analytic %v", got, want)
	}
}

// Little's law cross-check on the PS server: mean jobs = λ_effective ×
// mean response.
func TestPSServerLittlesLaw(t *testing.T) {
	sim := des.New()
	srv := NewPSServer(sim, 1)
	arrivals := rng.NewStream(23, "arrivals")
	sizes := rng.NewStream(23, "sizes")
	lambda := 0.7
	inter := rng.Exponential{Rate: lambda}
	svc := rng.Exponential{Rate: 1}
	submitted := 0
	var arrive func()
	arrive = func() {
		if submitted >= 60000 {
			return
		}
		submitted++
		srv.Submit(&Job{Size: svc.Sample(sizes)})
		sim.After(inter.Sample(arrivals), arrive)
	}
	sim.After(inter.Sample(arrivals), arrive)
	sim.Run()
	meanJobs := srv.MeanJobs()
	effLambda := float64(srv.Served()) / sim.Now()
	viaLittle := effLambda * srv.Response.Mean()
	if rel := math.Abs(meanJobs-viaLittle) / viaLittle; rel > 0.05 {
		t.Errorf("Little's law mismatch: L=%v λT=%v", meanJobs, viaLittle)
	}
}

// Property: total service delivered equals total size of completed jobs
// (work conservation) for arbitrary arrival patterns.
func TestQuickPSWorkConservation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%20) + 1
		r := rng.New(seed)
		sim := des.New()
		srv := NewPSServer(sim, 2)
		var totalSize float64
		for i := 0; i < count; i++ {
			sz := 0.1 + r.Float64()*5
			totalSize += sz
			at := r.Float64() * 10
			sim.Schedule(at, func() { srv.Submit(&Job{Size: sz}) })
		}
		sim.Run()
		if srv.Served() != int64(count) {
			return false
		}
		// Busy time × capacity ≥ total work; equality when never idle
		// with >0 jobs — but with idle gaps busy*capacity == total work
		// exactly since capacity is fully used while busy... only if at
		// most capacity-rate work is pending. For ideal PS the server
		// always works at full rate while non-empty, so:
		return math.Abs(srv.BusyTime()*2-totalSize) < 1e-6*totalSize+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: responses are never shorter than size/capacity (no job can
// beat an empty server).
func TestQuickPSResponseLowerBound(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%15) + 1
		r := rng.New(seed)
		sim := des.New()
		srv := NewPSServer(sim, 3)
		ok := true
		for i := 0; i < count; i++ {
			sz := 0.1 + r.Float64()*5
			at := r.Float64() * 5
			sim.Schedule(at, func() {
				srv.Submit(&Job{Size: sz, Done: func(resp float64) {
					if resp < sz/3-1e-9 {
						ok = false
					}
				}})
			})
		}
		sim.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPSServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := des.New()
		srv := NewPSServer(sim, 1)
		arrivals := rng.NewStream(1, "arrivals")
		sizes := rng.NewStream(1, "sizes")
		inter := rng.Exponential{Rate: 0.7}
		svc := rng.Exponential{Rate: 1}
		submitted := 0
		var arrive func()
		arrive = func() {
			if submitted >= 2000 {
				return
			}
			submitted++
			srv.Submit(&Job{Size: svc.Sample(sizes)})
			sim.After(inter.Sample(arrivals), arrive)
		}
		sim.After(inter.Sample(arrivals), arrive)
		sim.Run()
	}
}
