package queue

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/stats"
)

// RRServer is a round-robin time-sliced server: jobs take turns
// receiving a fixed quantum of service. The paper's Section 2.1 calls
// its service model "an M/G/1 round-robin queueing system" and then uses
// the processor-sharing formula r̄ = x/(1−ρ) — which is the quantum→0
// limit of round robin. RRServer exists to check that identification
// (ablation T9): with a small quantum its mean response time converges
// to the PSServer's; with a coarse quantum short jobs suffer
// head-of-line delays the PS idealisation hides.
type RRServer struct {
	sim      *des.Simulator
	capacity float64
	quantum  float64
	ring     []*Job // jobs awaiting their turn, front is next
	running  bool

	// Response accumulates per-job response times.
	Response stats.Running
	served   int64
	busy     float64
}

// NewRRServer creates a round-robin server with the given capacity
// (work per unit time) and quantum (service per turn, in work units).
func NewRRServer(sim *des.Simulator, capacity, quantum float64) *RRServer {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("queue: non-positive capacity %v", capacity))
	}
	if quantum <= 0 || math.IsNaN(quantum) {
		panic(fmt.Sprintf("queue: non-positive quantum %v", quantum))
	}
	return &RRServer{sim: sim, capacity: capacity, quantum: quantum}
}

// Load returns the number of jobs in the system.
func (s *RRServer) Load() int { return len(s.ring) }

// Served returns the number of completed jobs.
func (s *RRServer) Served() int64 { return s.served }

// BusyTime returns cumulative time spent serving.
func (s *RRServer) BusyTime() float64 { return s.busy }

// Submit enqueues a job at the back of the ring.
func (s *RRServer) Submit(j *Job) {
	if j.Size <= 0 || math.IsNaN(j.Size) {
		panic(fmt.Sprintf("queue: job size %v must be positive", j.Size))
	}
	j.Arrive = s.sim.Now()
	j.remaining = j.Size
	s.ring = append(s.ring, j)
	if !s.running {
		s.running = true
		s.serveNext()
	}
}

// serveNext gives the head job one quantum (or its remaining work, if
// smaller) and rotates the ring.
func (s *RRServer) serveNext() {
	if len(s.ring) == 0 {
		s.running = false
		return
	}
	j := s.ring[0]
	s.ring = s.ring[1:]
	slice := s.quantum
	if j.remaining < slice {
		slice = j.remaining
	}
	dt := slice / s.capacity
	s.sim.After(dt, func() {
		s.busy += dt
		j.remaining -= slice
		if j.remaining <= 1e-12 {
			resp := s.sim.Now() - j.Arrive
			s.Response.Add(resp)
			s.served++
			if j.Done != nil {
				j.Done(resp)
			}
		} else {
			s.ring = append(s.ring, j) // back of the ring
		}
		s.serveNext()
	})
}
