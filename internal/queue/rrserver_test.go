package queue

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestRRServerSingleJob(t *testing.T) {
	sim := des.New()
	srv := NewRRServer(sim, 2, 0.5)
	var resp float64
	srv.Submit(&Job{Size: 3, Done: func(r float64) { resp = r }})
	sim.Run()
	if math.Abs(resp-1.5) > 1e-9 {
		t.Errorf("solo response = %v, want 1.5", resp)
	}
	if srv.Served() != 1 || srv.Load() != 0 {
		t.Error("bookkeeping wrong")
	}
}

func TestRRServerAlternatesQuanta(t *testing.T) {
	// Two equal jobs, quantum = half a job: completion order follows the
	// round-robin schedule, and both finish around 2× solo time.
	sim := des.New()
	srv := NewRRServer(sim, 1, 0.5)
	var t1, t2 float64
	srv.Submit(&Job{Size: 1, Done: func(float64) { t1 = sim.Now() }})
	srv.Submit(&Job{Size: 1, Done: func(float64) { t2 = sim.Now() }})
	sim.Run()
	// Schedule: A(0.5) B(0.5) A(0.5 done t=1.5) B(0.5 done t=2).
	if math.Abs(t1-1.5) > 1e-9 || math.Abs(t2-2.0) > 1e-9 {
		t.Errorf("completions = %v, %v; want 1.5, 2.0", t1, t2)
	}
}

func TestRRServerCoarseQuantumIsFCFS(t *testing.T) {
	// Quantum larger than any job ⇒ pure FCFS.
	sim := des.New()
	srv := NewRRServer(sim, 1, 100)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		srv.Submit(&Job{Size: 1, Done: func(float64) { order = append(order, i) }})
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("coarse quantum should serve FCFS, got %v", order)
		}
	}
}

func TestRRServerPanics(t *testing.T) {
	sim := des.New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero quantum should panic")
			}
		}()
		NewRRServer(sim, 1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity should panic")
			}
		}()
		NewRRServer(sim, 0, 1)
	}()
	srv := NewRRServer(sim, 1, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad job size should panic")
			}
		}()
		srv.Submit(&Job{Size: 0})
	}()
}

// runRR drives an M/M/1 round-robin simulation and returns the mean
// response time.
func runRR(seed uint64, lambda, quantum float64, jobs int) float64 {
	sim := des.New()
	srv := NewRRServer(sim, 1, quantum)
	arrivals := rng.NewStream(seed, "arrivals")
	sizes := rng.NewStream(seed, "sizes")
	inter := rng.Exponential{Rate: lambda}
	svc := rng.Exponential{Rate: 1}
	submitted := 0
	var arrive func()
	arrive = func() {
		if submitted >= jobs {
			return
		}
		submitted++
		srv.Submit(&Job{Size: svc.Sample(sizes)})
		sim.After(inter.Sample(arrivals), arrive)
	}
	sim.After(inter.Sample(arrivals), arrive)
	sim.Run()
	return srv.Response.Mean()
}

// The paper's identification: round robin with a fine quantum behaves
// like processor sharing, r̄ → x̄/(1−ρ).
func TestRRServerConvergesToPS(t *testing.T) {
	lambda := 0.6
	want, err := PSMeanResponse(1, lambda)
	if err != nil {
		t.Fatal(err)
	}
	fine := runRR(31, lambda, 0.02, 60000)
	if rel := math.Abs(fine-want) / want; rel > 0.08 {
		t.Errorf("quantum 0.02: r̄ = %v vs PS %v (rel %.3f)", fine, want, rel)
	}
}

// Convergence ablation under a heavy-tailed load, where the quantum
// actually matters: with exponential sizes FCFS and PS share the same
// *mean*, so the ablation needs high size variance to show anything.
// Coarse quanta behave like FCFS (mean inflated by the tail); the PS
// approximation error shrinks as the quantum refines.
func TestRRServerQuantumAblation(t *testing.T) {
	rho := 0.6
	size := rng.BoundedPareto{L: 0.2, H: 50, Alpha: 1.2}
	xbar := size.Mean()
	want, _ := PSMeanResponse(xbar, rho)
	runHeavy := func(q float64) float64 {
		sim := des.New()
		srv := NewRRServer(sim, 1, q)
		arrivals := rng.NewStream(35, "arrivals")
		sizes := rng.NewStream(35, "sizes")
		inter := rng.Exponential{Rate: rho / xbar}
		submitted := 0
		var arrive func()
		arrive = func() {
			if submitted >= 60000 {
				return
			}
			submitted++
			srv.Submit(&Job{Size: size.Sample(sizes)})
			sim.After(inter.Sample(arrivals), arrive)
		}
		sim.After(inter.Sample(arrivals), arrive)
		sim.Run()
		return srv.Response.Mean()
	}
	coarse := math.Abs(runHeavy(16)-want) / want
	fine := math.Abs(runHeavy(0.1)-want) / want
	if !(fine < coarse) {
		t.Errorf("PS error should shrink with quantum: fine %.3f, coarse %.3f", fine, coarse)
	}
	if fine > 0.15 {
		t.Errorf("fine quantum error %.3f too large", fine)
	}
}

func BenchmarkRRServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runRR(1, 0.6, 0.1, 2000)
	}
}
