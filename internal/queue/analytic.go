// Package queue provides the queueing-theoretic substrate of the paper:
// the M/G/1 processor-sharing (round-robin) server that models "the
// entire network accessed through the proxy" (Section 2.1), both in
// closed form and as an event-driven simulation.
//
// The closed forms implement Kleinrock's classic results used by the
// paper: under processor sharing the mean time to complete a job with
// service requirement x is x/(1−ρ), independent of the service-time
// distribution beyond its mean (the insensitivity property). The
// event-driven servers let the test suite and experiment T8 verify that
// claim empirically, including under heavy-tailed (Pareto) job sizes.
package queue

import (
	"fmt"
	"math"
)

// ErrOverload is returned by analytic formulas when the offered load
// meets or exceeds capacity (ρ >= 1) and no finite steady state exists.
var ErrOverload = fmt.Errorf("queue: utilisation >= 1, no steady state")

// PSMeanResponse returns the steady-state mean response time of a job
// with service requirement x in an M/G/1-PS queue at utilisation rho
// (paper eq. 2: r̄ = x/(1−ρ)). It returns ErrOverload when rho >= 1 and
// an error for negative arguments.
func PSMeanResponse(x, rho float64) (float64, error) {
	if x < 0 || rho < 0 || math.IsNaN(x) || math.IsNaN(rho) {
		return 0, fmt.Errorf("queue: negative or NaN argument (x=%v, rho=%v)", x, rho)
	}
	if rho >= 1 {
		return 0, ErrOverload
	}
	return x / (1 - rho), nil
}

// PSSlowdown returns the mean slowdown (response time divided by service
// requirement) in M/G/1-PS, which is the constant 1/(1−ρ) for every job
// size — the fairness property that motivates modelling a shared
// bottleneck link as PS.
func PSSlowdown(rho float64) (float64, error) {
	return PSMeanResponse(1, rho)
}

// Utilisation returns ρ = λ·x̄ / capacity for arrival rate lambda, mean
// service requirement xbar (work per job) and server capacity (work per
// unit time). In the paper's units, work is item size s̄ and capacity is
// bandwidth b, so ρ = λ·s̄/b.
func Utilisation(lambda, xbar, capacity float64) float64 {
	if capacity <= 0 {
		return math.Inf(1)
	}
	return lambda * xbar / capacity
}

// MM1MeanResponse returns the mean response time of an M/M/1 FCFS queue
// with arrival rate lambda and service rate mu: 1/(μ−λ). Used as a
// cross-check for the FCFS simulation.
func MM1MeanResponse(lambda, mu float64) (float64, error) {
	if lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("queue: invalid M/M/1 rates (λ=%v, μ=%v)", lambda, mu)
	}
	if lambda >= mu {
		return 0, ErrOverload
	}
	return 1 / (mu - lambda), nil
}

// MG1FCFSMeanWait returns the Pollaczek–Khinchine mean waiting time of an
// M/G/1 FCFS queue: W = λ·E[S²] / (2(1−ρ)), where es2 is the second
// moment of service time and rho = λ·E[S]. Unlike PS, FCFS *is*
// sensitive to service-time variability — the contrast the insensitivity
// experiment (T8) demonstrates.
func MG1FCFSMeanWait(lambda, es2, rho float64) (float64, error) {
	if lambda < 0 || es2 < 0 || rho < 0 {
		return 0, fmt.Errorf("queue: negative argument")
	}
	if rho >= 1 {
		return 0, ErrOverload
	}
	return lambda * es2 / (2 * (1 - rho)), nil
}

// PSMeanJobs returns the steady-state mean number of jobs in an
// M/G/1-PS system, ρ/(1−ρ) (same as M/M/1 by insensitivity).
func PSMeanJobs(rho float64) (float64, error) {
	if rho < 0 {
		return 0, fmt.Errorf("queue: negative utilisation")
	}
	if rho >= 1 {
		return 0, ErrOverload
	}
	return rho / (1 - rho), nil
}
