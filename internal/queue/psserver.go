package queue

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/stats"
)

// Job is a unit of work submitted to a server: a file retrieval whose
// Size is measured in the same units as the server's capacity per unit
// time (the paper's item size s̄ against bandwidth b).
type Job struct {
	// Size is the total service requirement.
	Size float64
	// Arrive is the submission time, set by the server.
	Arrive float64
	// Done is invoked at completion time with the job's response time
	// (completion − arrival). Optional.
	Done func(responseTime float64)

	remaining float64
}

// PSServer is an event-driven ideal processor-sharing server: when n
// jobs are present each is served at rate capacity/n. This is the
// round-robin model of the paper's Section 2.1 in the quantum→0 limit.
//
// The implementation keeps the invariant that between consecutive
// events the set of jobs is fixed, so remaining work decreases linearly
// and only the job with the least remaining work can complete next. Each
// arrival or departure re-schedules that single completion event,
// giving O(n) work per event.
type PSServer struct {
	sim      *des.Simulator
	capacity float64
	jobs     []*Job
	lastT    float64
	next     *des.Event

	// Response accumulates per-job response times.
	Response stats.Running
	// InSystem tracks the time-average number of jobs present.
	InSystem stats.TimeWeighted
	busy     float64 // total busy time (≥1 job present)
	served   int64
}

// NewPSServer creates a processor-sharing server with the given service
// capacity (work per unit time) attached to the simulator. It panics if
// capacity is not positive.
func NewPSServer(sim *des.Simulator, capacity float64) *PSServer {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("queue: non-positive capacity %v", capacity))
	}
	s := &PSServer{sim: sim, capacity: capacity}
	s.InSystem.Observe(sim.Now(), 0)
	s.lastT = sim.Now()
	return s
}

// Capacity returns the server's total service rate.
func (s *PSServer) Capacity() float64 { return s.capacity }

// Load returns the number of jobs currently in service.
func (s *PSServer) Load() int { return len(s.jobs) }

// Served returns the number of completed jobs.
func (s *PSServer) Served() int64 { return s.served }

// BusyTime returns the cumulative time during which at least one job was
// present, up to the last event processed.
func (s *PSServer) BusyTime() float64 { return s.busy }

// advance applies service progress accrued since the last event to all
// resident jobs.
func (s *PSServer) advance() {
	now := s.sim.Now()
	dt := now - s.lastT
	if dt > 0 && len(s.jobs) > 0 {
		rate := s.capacity / float64(len(s.jobs))
		for _, j := range s.jobs {
			j.remaining -= rate * dt
			if j.remaining < 0 {
				// Tolerate accumulated floating-point error; anything
				// materially negative is a scheduling bug.
				if j.remaining < -1e-6*j.Size-1e-12 {
					panic(fmt.Sprintf("queue: job overshot by %v", -j.remaining))
				}
				j.remaining = 0
			}
		}
		s.busy += dt
	}
	s.lastT = now
}

// reschedule cancels any pending completion event and schedules the
// completion of the job with the least remaining work.
func (s *PSServer) reschedule() {
	if s.next != nil {
		s.sim.Cancel(s.next)
		s.next = nil
	}
	if len(s.jobs) == 0 {
		return
	}
	minIdx := 0
	for i, j := range s.jobs {
		if j.remaining < s.jobs[minIdx].remaining {
			minIdx = i
		}
	}
	eta := s.jobs[minIdx].remaining * float64(len(s.jobs)) / s.capacity
	idx := minIdx
	s.next = s.sim.After(eta, func() { s.complete(idx) })
}

// Submit enters a job into service. The job's Done callback (if any)
// fires at completion with the job's response time. It panics on
// non-positive sizes: a zero-size retrieval is a cache hit and should
// never reach the server.
func (s *PSServer) Submit(j *Job) {
	if j.Size <= 0 || math.IsNaN(j.Size) {
		panic(fmt.Sprintf("queue: job size %v must be positive", j.Size))
	}
	s.advance()
	j.Arrive = s.sim.Now()
	j.remaining = j.Size
	s.jobs = append(s.jobs, j)
	s.InSystem.Observe(s.sim.Now(), float64(len(s.jobs)))
	s.reschedule()
}

// complete removes the finished job at index idx and notifies it.
func (s *PSServer) complete(idx int) {
	s.advance()
	j := s.jobs[idx]
	// The scheduled job must be (one of) the minimum-remaining jobs;
	// after advance its remaining work is ~0.
	last := len(s.jobs) - 1
	s.jobs[idx] = s.jobs[last]
	s.jobs[last] = nil
	s.jobs = s.jobs[:last]
	s.next = nil
	s.InSystem.Observe(s.sim.Now(), float64(len(s.jobs)))

	resp := s.sim.Now() - j.Arrive
	s.Response.Add(resp)
	s.served++
	if j.Done != nil {
		j.Done(resp)
	}
	s.reschedule()
}

// MeanJobs returns the time-average number of jobs in the system up to
// the current simulation time.
func (s *PSServer) MeanJobs() float64 {
	return s.InSystem.Mean(s.sim.Now())
}

// FCFSServer is a first-come-first-served single server, used as the
// contrast case for the PS insensitivity experiment: under FCFS the mean
// response time depends on the service-time second moment
// (Pollaczek–Khinchine), under PS it does not.
type FCFSServer struct {
	sim      *des.Simulator
	capacity float64
	queue    []*Job
	inSvc    *Job

	Response stats.Running
	served   int64
}

// NewFCFSServer creates a FCFS server with the given capacity.
func NewFCFSServer(sim *des.Simulator, capacity float64) *FCFSServer {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("queue: non-positive capacity %v", capacity))
	}
	return &FCFSServer{sim: sim, capacity: capacity}
}

// Load returns the number of jobs waiting or in service.
func (s *FCFSServer) Load() int {
	n := len(s.queue)
	if s.inSvc != nil {
		n++
	}
	return n
}

// Served returns the number of completed jobs.
func (s *FCFSServer) Served() int64 { return s.served }

// Submit enqueues a job.
func (s *FCFSServer) Submit(j *Job) {
	if j.Size <= 0 || math.IsNaN(j.Size) {
		panic(fmt.Sprintf("queue: job size %v must be positive", j.Size))
	}
	j.Arrive = s.sim.Now()
	if s.inSvc == nil {
		s.start(j)
	} else {
		s.queue = append(s.queue, j)
	}
}

func (s *FCFSServer) start(j *Job) {
	s.inSvc = j
	s.sim.After(j.Size/s.capacity, func() {
		resp := s.sim.Now() - j.Arrive
		s.Response.Add(resp)
		s.served++
		if j.Done != nil {
			j.Done(resp)
		}
		s.inSvc = nil
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		}
	})
}
