// Package testutil holds shared test helpers. Its first resident is the
// goroutine-leak check: the dynamic complement of the static
// goroutinelife analyzer. The analyzer proves every spawn has a
// lifecycle tie; the leak check proves the tie actually fires — that
// Close really reaps the workers, drainers and hedgers it promises to.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// defaultSettle bounds how long a leak check waits for goroutines to
// return to baseline before declaring a leak. Shutdown is asynchronous
// (Close returns before the last worker's final return instruction), so
// the check polls rather than asserting instantaneously.
const defaultSettle = 5 * time.Second

// A Snapshot records the interesting goroutine population at a point in
// time: runtime housekeeping (GC workers, sweepers, timer callbacks)
// and the testing framework's own goroutines are filtered out, so the
// baseline is exact and Check needs no slack.
type Snapshot struct {
	n int
}

// SnapshotGoroutines captures the current filtered goroutine count as
// the baseline a later Check compares against.
func SnapshotGoroutines() Snapshot {
	n, _ := countGoroutines()
	return Snapshot{n: n}
}

// Check asserts the goroutine count has returned to (or under) the
// snapshot's baseline, polling until the timeout. On failure it reports
// the counts and the surviving stacks, which name every leaked
// goroutine and the select it is parked in.
func (s Snapshot) Check(tb testing.TB, timeout time.Duration) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n, stacks := countGoroutines()
		if n <= s.n {
			return
		}
		if time.Now().After(deadline) {
			tb.Errorf("goroutine leak: %d at baseline, %d after %v settle; surviving stacks:\n%s",
				s.n, n, timeout, strings.Join(stacks, "\n"))
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ExpectNoLeaks snapshots the goroutine count now and registers a
// cleanup asserting the count is back to baseline when the test ends —
// after every cleanup registered later, so a t.Cleanup(Close) is
// observed. Call it first thing in a lifecycle test, before the engine
// or fabric under test is constructed.
func ExpectNoLeaks(tb testing.TB) {
	tb.Helper()
	s := SnapshotGoroutines()
	tb.Cleanup(func() {
		s.Check(tb, defaultSettle)
	})
}

// ignoredStacks marks goroutines that are not the code under test:
// runtime housekeeping, the testing framework, and fired timer
// callbacks in flight. A leak check counting these would need slack,
// and slack hides exactly the single-goroutine leaks it exists to find.
var ignoredStacks = []string{
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime.ReadTrace",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runFuzzing",
	"testing.tRunner",
	"time.goFunc",
	"os/signal.signal_recv",
	"os/signal.loop",
}

// countGoroutines parses a full stack dump and counts the goroutines
// that belong to the code under test, returning their stacks too.
func countGoroutines() (int, []string) {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var stacks []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		ignore := false
		for _, pat := range ignoredStacks {
			if strings.Contains(g, pat) {
				ignore = true
				break
			}
		}
		if !ignore {
			stacks = append(stacks, g)
		}
	}
	return len(stacks), stacks
}
