// Package repro_test hosts the benchmark harness: one testing.B
// benchmark per paper figure and derived table (see DESIGN.md's
// experiment index). Each benchmark regenerates its experiment from
// scratch, so `go test -bench=. -benchmem` both times the harness and
// re-validates that every artifact still generates without error.
// Key scalar outcomes are attached via b.ReportMetric so bench output
// doubles as a regression record (see EXPERIMENTS.md).
package repro_test

import (
	"strconv"
	"testing"

	"repro/internal/analytic"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) []*stats.Table {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		tables, err = e.Run(experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// cell parses a numeric table cell.
func cell(b *testing.B, tb *stats.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tb.Cell(row, col), 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Cell(row, col), err)
	}
	return v
}

func BenchmarkFigure1(b *testing.B) {
	tables := runExperiment(b, "F1")
	// Record the b=50 threshold at s̄=1 (h′=0 panel): p_th = 0.6.
	for r := 0; r < tables[0].NumRows(); r++ {
		if tables[0].Cell(r, 0) == "1" {
			b.ReportMetric(cell(b, tables[0], r, 1), "pth@b50,s1")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	tables := runExperiment(b, "F2")
	// Record G(p=0.9, nF=2) on the h′=0 panel: paper-visible ≈ 0.107.
	last := tables[0].NumRows() - 1
	b.ReportMetric(cell(b, tables[0], last, 9), "G@p0.9,nF2")
}

func BenchmarkFigure3(b *testing.B) {
	tables := runExperiment(b, "F3")
	// Record C(p=0.9, nF=2) on the h′=0 panel.
	last := tables[0].NumRows() - 1
	b.ReportMetric(cell(b, tables[0], last, 9), "C@p0.9,nF2")
}

func BenchmarkTableThresholds(b *testing.B) {
	tables := runExperiment(b, "T1")
	// Row 3 is b=50, h′=0.3, n̄(C)=10: model-B threshold 0.45.
	b.ReportMetric(cell(b, tables[0], 3, 5), "pthB@b50,h.3,nc10")
}

func BenchmarkTableValidation(b *testing.B) {
	tables := runExperiment(b, "T2")
	// Report the worst t̄ relative error across rows.
	worst := 0.0
	for r := 0; r < tables[0].NumRows(); r++ {
		if rel := cell(b, tables[0], r, 9); rel > worst {
			worst = rel
		}
	}
	b.ReportMetric(worst, "worst-rel-t̄")
}

func BenchmarkTableEstimator(b *testing.B) {
	tables := runExperiment(b, "T3")
	// Report the model-A estimator absolute error.
	b.ReportMetric(cell(b, tables[0], 0, 4), "ĥ′-abs-err")
}

func BenchmarkTableModelCompare(b *testing.B) {
	tables := runExperiment(b, "T4")
	// Report the A/B gain gap at the largest n̄(C) (last row).
	last := tables[0].NumRows() - 1
	b.ReportMetric(cell(b, tables[0], last, 4), "|GA-GB|@nc1e4")
}

func BenchmarkTableConditions(b *testing.B) {
	tables := runExperiment(b, "T5")
	// Violations must be zero; report the sum so regressions surface.
	total := 0.0
	for r := 0; r < tables[0].NumRows(); r++ {
		total += cell(b, tables[0], r, 3) + cell(b, tables[0], r, 4)
	}
	b.ReportMetric(total, "redundancy-violations")
}

func BenchmarkTableLoadImpedance(b *testing.B) {
	tables := runExperiment(b, "T6")
	// Report the impedance ratio: C at ρ′=0.88 over C at ρ′=0.05.
	last := tables[0].NumRows() - 1
	b.ReportMetric(cell(b, tables[0], last, 2)/cell(b, tables[0], 0, 2), "C-ratio-hi/lo")
}

func BenchmarkTablePolicies(b *testing.B) {
	tables := runExperiment(b, "T7")
	// Report the paper-threshold gain at λ=30 (row 1 of panel 0).
	b.ReportMetric(cell(b, tables[0], 1, 3), "G-paper@λ30")
}

func BenchmarkTablePS(b *testing.B) {
	tables := runExperiment(b, "T8")
	// Report the worst PS relative error across loads and size dists.
	worst := 0.0
	for r := 0; r < tables[0].NumRows(); r++ {
		for _, c := range []int{4, 5} {
			if rel := cell(b, tables[0], r, c); rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst, "worst-rel-r̄")
}

func BenchmarkTableRRQuantum(b *testing.B) {
	tables := runExperiment(b, "T9")
	// Report the finest-quantum relative error vs PS (last row).
	last := tables[0].NumRows() - 1
	b.ReportMetric(cell(b, tables[0], last, 2), "rel@q0.02")
}

func BenchmarkTableMixed(b *testing.B) {
	tables := runExperiment(b, "T10")
	// Report the greedy/paper gain ratio at h′=0.3 (row 1).
	b.ReportMetric(cell(b, tables[0], 1, 7), "greedy/paper-G@h.3")
}

func BenchmarkTableQoS(b *testing.B) {
	tables := runExperiment(b, "T11")
	// Report the miss probability at deadline 0.05 for the good
	// prefetching row (row 1, column 5).
	b.ReportMetric(cell(b, tables[0], 1, 5), "P(t>.05)@p0.7")
}

func BenchmarkTableSized(b *testing.B) {
	tables := runExperiment(b, "T12")
	// Model A threshold must be identical in every row; report the
	// spread (should be 0).
	first := cell(b, tables[0], 0, 1)
	spread := 0.0
	for r := 1; r < tables[0].NumRows(); r++ {
		d := cell(b, tables[0], r, 1) - first
		if d < 0 {
			d = -d
		}
		if d > spread {
			spread = d
		}
	}
	b.ReportMetric(spread, "pthA-size-spread")
}

func BenchmarkTablePredictors(b *testing.B) {
	tables := runExperiment(b, "T13")
	// Report markov1's precision (row 0).
	b.ReportMetric(cell(b, tables[0], 0, 2), "precision-markov1")
}

func BenchmarkTableBursty(b *testing.B) {
	tables := runExperiment(b, "T14")
	// Report the MMPP/Poisson access-time inflation of the baseline row.
	b.ReportMetric(cell(b, tables[0], 0, 3), "burst-inflation")
}

// BenchmarkClosedFormEvaluate times the hot analytic path by itself:
// one full Evaluate per iteration.
func BenchmarkClosedFormEvaluate(b *testing.B) {
	par := analytic.Params{Lambda: 30, B: 50, SBar: 1, HPrime: 0.3, NC: 100}
	for i := 0; i < b.N; i++ {
		if _, err := analytic.Evaluate(analytic.ModelA{}, par, 0.5, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}
