// Webproxy: an end-to-end shoot-out of prefetch policies on a live
// prefetcher.Engine fed by a simulated browsing workload.
//
// Clients browse a 500-page site with strong link-following structure
// (first-order Markov) through one shared proxy running the public
// engine: a Markov-1 access predictor feeds candidate predictions
// through one of several prefetch policies. The paper's threshold
// policy recomputes its cutoff from live load estimates; the baselines
// do not. Watch the waste column: the load-blind policies buy their
// hits with far more speculative traffic.
//
// The second half runs the same proxy on the backend fetch fabric: the
// site is served by an origin and a slower mirror, demand fetches are
// hedged against the mirror when the origin's p95 stalls, and the idle
// watermark defers speculative traffic out of busy periods — each link
// reporting its own ρ̂′.
//
// Run:
//
//	go run ./examples/webproxy            # λ=30: moderate load
//	go run ./examples/webproxy -lambda 42 # push the link harder
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/prefetcher"
	"repro/prefetcher/fetch"
)

func main() {
	lambda := flag.Float64("lambda", 30, "aggregate request rate λ")
	requests := flag.Int("requests", 20000, "requests to drive through each engine")
	flag.Parse()

	policies := []struct {
		name string
		pol  prefetcher.Policy
	}{
		{"none", prefetcher.NoPrefetch()},
		{"paper-threshold(A)", prefetcher.AdaptiveThreshold(prefetcher.ModelA())},
		{"greedy-threshold(A)", prefetcher.GreedyThreshold(prefetcher.ModelA())},
		{"static(θ=0.05)", prefetcher.StaticThreshold(0.05)},
		{"static(θ=0.5)", prefetcher.StaticThreshold(0.5)},
		{"top2", prefetcher.TopK(2)},
	}

	tb := stats.NewTable(
		fmt.Sprintf("web proxy, λ=%g, b=50: live-engine policy comparison (%d requests)",
			*lambda, *requests),
		"policy", "hit ratio", "ρ̂′", "p̂_th", "n̄(F)", "issued", "used", "wasted", "accuracy")
	for _, pc := range policies {
		st, err := drive(pc.pol, *lambda, *requests)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(pc.name,
			fmt.Sprintf("%.4f", st.HitRatio()),
			fmt.Sprintf("%.3f", st.RhoPrime),
			fmt.Sprintf("%.3f", st.Threshold),
			fmt.Sprintf("%.3f", st.NF),
			fmt.Sprintf("%d", st.PrefetchIssued),
			fmt.Sprintf("%d", st.PrefetchUsed),
			fmt.Sprintf("%d", st.PrefetchWasted),
			fmt.Sprintf("%.3f", st.Accuracy()))
	}
	tb.AddNote("the paper's threshold adapts its cutoff to ρ̂′ while static/top-k do not; at high λ the load-blind policies keep speculating into a saturated link")
	fmt.Print(tb.Text())

	if err := driveFabric(); err != nil {
		log.Fatal(err)
	}
}

// originBackend simulates one origin link in wall time: a fixed
// round-trip latency per fetch, cancelled promptly through ctx.
type originBackend struct{ latency time.Duration }

func (b originBackend) Fetch(ctx context.Context, id fetch.ID) (fetch.Item, error) {
	t := time.NewTimer(b.latency)
	defer t.Stop()
	select {
	case <-t.C:
		return fetch.Item{ID: id, Size: 1}, nil
	case <-ctx.Done():
		return fetch.Item{}, ctx.Err()
	}
}

// driveFabric runs the proxy on a two-backend fetch fabric: origin +
// slower mirror, hedged demand fetches, and the idle watermark
// deferring speculative traffic out of busy periods.
func driveFabric() error {
	eng, err := prefetcher.New(nil,
		prefetcher.WithBackends(
			fetch.Backend{Name: "origin", Fetcher: originBackend{500 * time.Microsecond}, Bandwidth: 120},
			fetch.Backend{Name: "mirror", Fetcher: originBackend{2 * time.Millisecond}, Bandwidth: 60},
		),
		prefetcher.WithRouting(fetch.RouteLatency),
		prefetcher.WithHedging(fetch.Hedging{}), // hedge delay from the origin's live p95
		prefetcher.WithIdleWatermark(0.6),
		prefetcher.WithBandwidth(180), // aggregate, for the global estimate
		prefetcher.WithCache(prefetcher.NewLRUCache(80)),
		prefetcher.WithPolicy(prefetcher.StaticThreshold(0.05)),
		prefetcher.WithMaxPrefetch(2),
		prefetcher.WithWorkers(4),
	)
	if err != nil {
		return err
	}
	defer eng.Close()

	// Browse in bursts with idle gaps, in wall time: the busy halves
	// push the origin's ρ̂ over the watermark (speculation is parked),
	// the gaps let it decay (the parked candidates dispatch).
	src := rng.New(11)
	site := workload.NewMarkov(workload.MarkovConfig{
		N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, src)
	ctx := context.Background()
	for burst := 0; burst < 6; burst++ {
		for i := 0; i < 300; i++ {
			if _, err := eng.Get(ctx, prefetcher.ID(site.Next())); err != nil {
				return err
			}
		}
		time.Sleep(30 * time.Millisecond) // idle period: the gate reopens
	}
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := eng.Quiesce(qctx); err != nil {
		return err
	}

	st := eng.Stats()
	fmt.Printf("\ntwo-backend fetch fabric (origin + mirror, hedged, idle watermark 0.6):\n")
	fmt.Printf("  requests=%d hit=%.3f prefetch[issued=%d used=%d deferred=%d]\n",
		st.Requests, st.HitRatio(), st.PrefetchIssued, st.PrefetchUsed, st.PrefetchDeferred)
	for _, b := range st.Backends {
		fmt.Printf("  %-7s ρ̂′=%.3f ρ̂=%.3f demand=%d spec=%d hedges won/launched=%d/%d deferred=%d released=%d\n",
			b.Name, b.RhoPrime, b.Rho, b.Demand, b.Speculative,
			b.HedgesWon, b.HedgesLaunched, b.Deferred, b.Released)
	}
	fmt.Println("→ each link carries its own ρ̂′, the mirror absorbs hedged tails, and speculation waits for idle periods")
	return nil
}

// drive runs one engine over the synthetic browsing workload and
// returns its final stats.
func drive(pol prefetcher.Policy, lambda float64, requests int) (prefetcher.Stats, error) {
	fetch := prefetcher.FetcherFunc(func(ctx context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1}, nil
	})
	clock := prefetcher.NewManualClock(time.Unix(0, 0))
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(50),
		prefetcher.WithCache(prefetcher.NewLRUCache(80)),
		prefetcher.WithPredictor(prefetcher.NewMarkovPredictor()),
		prefetcher.WithPolicy(pol),
		prefetcher.WithClock(clock),
		prefetcher.WithMaxPrefetch(2),
		prefetcher.WithWorkers(4),
	)
	if err != nil {
		return prefetcher.Stats{}, err
	}
	defer eng.Close()

	src := rng.New(7)
	site := workload.NewMarkov(workload.MarkovConfig{
		N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, src)
	inter := rng.Exponential{Rate: lambda}

	ctx := context.Background()
	for i := 0; i < requests; i++ {
		clock.AdvanceSeconds(inter.Sample(src))
		if _, err := eng.Get(ctx, prefetcher.ID(site.Next())); err != nil {
			return prefetcher.Stats{}, err
		}
		// Drain speculation each step so every policy gets the same
		// zero-latency prefetch semantics the closed-form model assumes.
		if err := eng.Quiesce(ctx); err != nil {
			return prefetcher.Stats{}, err
		}
	}
	return eng.Stats(), nil
}
