// Webproxy: an end-to-end shoot-out of prefetch policies on a simulated
// multi-user web proxy.
//
// Four clients browse a 500-page site with strong link-following
// structure (first-order Markov) behind one shared 50-unit/s link. Each
// client runs a Markov-1 access predictor; the candidate predictions go
// through one of several prefetch policies. The paper's threshold policy
// recomputes its cutoff from live load estimates, the baselines do not.
//
// Run:
//
//	go run ./examples/webproxy            # λ=30: moderate load
//	go run ./examples/webproxy -lambda 42 # push the link harder
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analytic"
	"repro/internal/predict"
	"repro/internal/prefetch"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	lambda := flag.Float64("lambda", 30, "aggregate request rate λ")
	requests := flag.Int("requests", 60000, "requests to simulate")
	flag.Parse()

	mkConfig := func(pol prefetch.Policy) sim.SystemConfig {
		return sim.SystemConfig{
			Users:     4,
			Lambda:    *lambda,
			Bandwidth: 50,
			Catalog:   workload.NewUniformCatalog(500, 1),
			NewSource: func(u int, src *rng.Source) workload.Source {
				return workload.NewMarkov(workload.MarkovConfig{
					N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
				}, src)
			},
			NewPredictor:  func() predict.Predictor { return predict.NewMarkov1() },
			Policy:        pol,
			CacheCapacity: 80,
			MaxPrefetch:   2,
			Requests:      *requests,
			Warmup:        *requests / 4,
			Seed:          7,
		}
	}

	base, err := sim.RunSystem(mkConfig(prefetch.None{}))
	if err != nil {
		log.Fatal(err)
	}

	tb := stats.NewTable(
		fmt.Sprintf("web proxy, λ=%g, b=50: policy comparison (baseline t̄′=%.5f)",
			*lambda, base.AccessTime),
		"policy", "hit ratio", "t̄", "G vs none", "ρ", "n̄(F)", "accuracy")
	for _, pol := range []prefetch.Policy{
		prefetch.None{},
		prefetch.Threshold{Model: analytic.ModelA{}},
		prefetch.Static{Theta: 0.05},
		prefetch.Static{Theta: 0.5},
		prefetch.TopK{K: 2},
	} {
		res, err := sim.RunSystem(mkConfig(pol))
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRowValues(pol.Name(), res.HitRatio, res.AccessTime,
			base.AccessTime-res.AccessTime, res.Utilisation,
			res.NFObserved, res.Accuracy())
	}
	tb.AddNote("G > 0 means faster than demand fetching; the paper's threshold adapts its cutoff to ρ̂′ while static/top-k do not")
	fmt.Print(tb.Text())
}
