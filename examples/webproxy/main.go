// Webproxy: an end-to-end shoot-out of prefetch policies on a live
// prefetcher.Engine fed by a simulated browsing workload.
//
// Clients browse a 500-page site with strong link-following structure
// (first-order Markov) through one shared proxy running the public
// engine: a Markov-1 access predictor feeds candidate predictions
// through one of several prefetch policies. The paper's threshold
// policy recomputes its cutoff from live load estimates; the baselines
// do not. Watch the waste column: the load-blind policies buy their
// hits with far more speculative traffic.
//
// Run:
//
//	go run ./examples/webproxy            # λ=30: moderate load
//	go run ./examples/webproxy -lambda 42 # push the link harder
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/prefetcher"
)

func main() {
	lambda := flag.Float64("lambda", 30, "aggregate request rate λ")
	requests := flag.Int("requests", 20000, "requests to drive through each engine")
	flag.Parse()

	policies := []struct {
		name string
		pol  prefetcher.Policy
	}{
		{"none", prefetcher.NoPrefetch()},
		{"paper-threshold(A)", prefetcher.AdaptiveThreshold(prefetcher.ModelA())},
		{"greedy-threshold(A)", prefetcher.GreedyThreshold(prefetcher.ModelA())},
		{"static(θ=0.05)", prefetcher.StaticThreshold(0.05)},
		{"static(θ=0.5)", prefetcher.StaticThreshold(0.5)},
		{"top2", prefetcher.TopK(2)},
	}

	tb := stats.NewTable(
		fmt.Sprintf("web proxy, λ=%g, b=50: live-engine policy comparison (%d requests)",
			*lambda, *requests),
		"policy", "hit ratio", "ρ̂′", "p̂_th", "n̄(F)", "issued", "used", "wasted", "accuracy")
	for _, pc := range policies {
		st, err := drive(pc.pol, *lambda, *requests)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(pc.name,
			fmt.Sprintf("%.4f", st.HitRatio()),
			fmt.Sprintf("%.3f", st.RhoPrime),
			fmt.Sprintf("%.3f", st.Threshold),
			fmt.Sprintf("%.3f", st.NF),
			fmt.Sprintf("%d", st.PrefetchIssued),
			fmt.Sprintf("%d", st.PrefetchUsed),
			fmt.Sprintf("%d", st.PrefetchWasted),
			fmt.Sprintf("%.3f", st.Accuracy()))
	}
	tb.AddNote("the paper's threshold adapts its cutoff to ρ̂′ while static/top-k do not; at high λ the load-blind policies keep speculating into a saturated link")
	fmt.Print(tb.Text())
}

// drive runs one engine over the synthetic browsing workload and
// returns its final stats.
func drive(pol prefetcher.Policy, lambda float64, requests int) (prefetcher.Stats, error) {
	fetch := prefetcher.FetcherFunc(func(ctx context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1}, nil
	})
	clock := prefetcher.NewManualClock(time.Unix(0, 0))
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(50),
		prefetcher.WithCache(prefetcher.NewLRUCache(80)),
		prefetcher.WithPredictor(prefetcher.NewMarkovPredictor()),
		prefetcher.WithPolicy(pol),
		prefetcher.WithClock(clock),
		prefetcher.WithMaxPrefetch(2),
		prefetcher.WithWorkers(4),
	)
	if err != nil {
		return prefetcher.Stats{}, err
	}
	defer eng.Close()

	src := rng.New(7)
	site := workload.NewMarkov(workload.MarkovConfig{
		N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, src)
	inter := rng.Exponential{Rate: lambda}

	ctx := context.Background()
	for i := 0; i < requests; i++ {
		clock.AdvanceSeconds(inter.Sample(src))
		if _, err := eng.Get(ctx, prefetcher.ID(site.Next())); err != nil {
			return prefetcher.Stats{}, err
		}
		// Drain speculation each step so every policy gets the same
		// zero-latency prefetch semantics the closed-form model assumes.
		if err := eng.Quiesce(ctx); err != nil {
			return prefetcher.Stats{}, err
		}
	}
	return eng.Stats(), nil
}
