// Webproxy: an end-to-end shoot-out of prefetch policies on a live
// prefetcher.Engine fed by a simulated browsing workload.
//
// Clients browse a 500-page site with strong link-following structure
// (first-order Markov) through one shared proxy running the public
// engine: a Markov-1 access predictor feeds candidate predictions
// through one of several prefetch policies. The paper's threshold
// policy recomputes its cutoff from live load estimates; the baselines
// do not. Watch the waste column: the load-blind policies buy their
// hits with far more speculative traffic.
//
// The second half runs the same proxy on the backend fetch fabric over
// real HTTP: the site is served by two live in-process HTTP origins (a
// fast one and a slower mirror) through the httpfetch adapter, demand
// fetches are hedged against the mirror when the origin's p95 stalls,
// speculative candidates coalesce into framed /batch requests, and the
// idle watermark defers speculative traffic out of busy periods — each
// link reporting its own ρ̂′.
//
// Run:
//
//	go run ./examples/webproxy            # λ=30: moderate load
//	go run ./examples/webproxy -lambda 42 # push the link harder
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/prefetcher"
	"repro/prefetcher/fetch"
	"repro/prefetcher/fetch/httpfetch"
)

func main() {
	lambda := flag.Float64("lambda", 30, "aggregate request rate λ")
	requests := flag.Int("requests", 20000, "requests to drive through each engine")
	flag.Parse()

	policies := []struct {
		name string
		pol  prefetcher.Policy
	}{
		{"none", prefetcher.NoPrefetch()},
		{"paper-threshold(A)", prefetcher.AdaptiveThreshold(prefetcher.ModelA())},
		{"greedy-threshold(A)", prefetcher.GreedyThreshold(prefetcher.ModelA())},
		{"static(θ=0.05)", prefetcher.StaticThreshold(0.05)},
		{"static(θ=0.5)", prefetcher.StaticThreshold(0.5)},
		{"top2", prefetcher.TopK(2)},
	}

	tb := stats.NewTable(
		fmt.Sprintf("web proxy, λ=%g, b=50: live-engine policy comparison (%d requests)",
			*lambda, *requests),
		"policy", "hit ratio", "ρ̂′", "p̂_th", "n̄(F)", "issued", "used", "wasted", "accuracy")
	for _, pc := range policies {
		st, err := drive(pc.pol, *lambda, *requests)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(pc.name,
			fmt.Sprintf("%.4f", st.HitRatio()),
			fmt.Sprintf("%.3f", st.RhoPrime),
			fmt.Sprintf("%.3f", st.Threshold),
			fmt.Sprintf("%.3f", st.NF),
			fmt.Sprintf("%d", st.PrefetchIssued),
			fmt.Sprintf("%d", st.PrefetchUsed),
			fmt.Sprintf("%d", st.PrefetchWasted),
			fmt.Sprintf("%.3f", st.Accuracy()))
	}
	tb.AddNote("the paper's threshold adapts its cutoff to ρ̂′ while static/top-k do not; at high λ the load-blind policies keep speculating into a saturated link")
	fmt.Print(tb.Text())

	if err := driveFabric(); err != nil {
		log.Fatal(err)
	}
}

// pageBytes is the size every simulated page weighs; backend
// bandwidths below are in the same bytes-per-second units.
const pageBytes = 64

// newSite starts a live in-process HTTP origin serving the site: a
// fixed round-trip latency per request (cancelled promptly when the
// client gives up — hedge losers release the handler), deterministic
// pageBytes-sized payloads on /obj/{id}, and the framed httpfetch
// batch wire on /batch.
func newSite(latency time.Duration) *httptest.Server {
	page := func(id int64) []byte {
		unit := strconv.FormatInt(id, 10) + "."
		b := make([]byte, pageBytes)
		for i := range b {
			b[i] = unit[i%len(unit)]
		}
		return b
	}
	wait := func(r *http.Request) bool {
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-r.Context().Done():
			return false
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/obj/", func(w http.ResponseWriter, r *http.Request) {
		if !wait(r) {
			return
		}
		id, err := strconv.ParseInt(strings.TrimPrefix(r.URL.Path, "/obj/"), 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		w.Write(page(id))
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if !wait(r) {
			return
		}
		ids, err := httpfetch.ParseIDs(r.URL.Query().Get("ids"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, id := range ids {
			if err := httpfetch.WriteBatchItem(w, id, page(int64(id))); err != nil {
				return
			}
		}
	})
	return httptest.NewServer(mux)
}

// driveFabric runs the proxy on a two-backend fetch fabric over live
// HTTP: origin + slower mirror behind the httpfetch adapter, hedged
// demand fetches, per-path attempt timeouts, and the idle watermark
// deferring speculative traffic out of busy periods.
func driveFabric() error {
	origin := newSite(500 * time.Microsecond)
	defer origin.Close()
	mirror := newSite(2 * time.Millisecond)
	defer mirror.Close()

	originC, err := httpfetch.New(httpfetch.Config{BaseURL: origin.URL, BatchPath: "/batch"})
	if err != nil {
		return err
	}
	mirrorC, err := httpfetch.New(httpfetch.Config{BaseURL: mirror.URL, BatchPath: "/batch"})
	if err != nil {
		return err
	}

	eng, err := prefetcher.New(nil,
		prefetcher.WithBackends(
			// Demand attempts get a generous per-attempt budget (a stuck
			// connection fails over instead of stalling the client);
			// speculative traffic a much tighter one (an overdue prefetch
			// is better abandoned than left occupying the link).
			fetch.Backend{Name: "origin", Fetcher: originC, Bandwidth: 40 * pageBytes,
				DemandTimeout: 2 * time.Second, SpeculativeTimeout: 500 * time.Millisecond},
			fetch.Backend{Name: "mirror", Fetcher: mirrorC, Bandwidth: 20 * pageBytes,
				DemandTimeout: 2 * time.Second, SpeculativeTimeout: 500 * time.Millisecond},
		),
		prefetcher.WithRouting(fetch.RouteLatency),
		prefetcher.WithHedging(fetch.Hedging{}), // hedge delay from the origin's live p95
		prefetcher.WithIdleWatermark(0.6),
		prefetcher.WithBandwidth(60*pageBytes), // aggregate, for the global estimate
		prefetcher.WithCache(prefetcher.NewLRUCache(80)),
		prefetcher.WithPolicy(prefetcher.StaticThreshold(0.05)),
		prefetcher.WithMaxPrefetch(2),
		prefetcher.WithWorkers(4),
	)
	if err != nil {
		return err
	}
	defer eng.Close()

	// Browse in bursts with idle gaps, in wall time: the busy halves
	// push the origin's ρ̂ over the watermark (speculation is parked),
	// the gaps let it decay (the parked candidates dispatch).
	src := rng.New(11)
	site := workload.NewMarkov(workload.MarkovConfig{
		N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, src)
	ctx := context.Background()
	for burst := 0; burst < 6; burst++ {
		for i := 0; i < 300; i++ {
			if _, err := eng.Get(ctx, prefetcher.ID(site.Next())); err != nil {
				return err
			}
		}
		time.Sleep(200 * time.Millisecond) // idle period: the gate reopens
	}
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := eng.Quiesce(qctx); err != nil {
		return err
	}

	st := eng.Stats()
	fmt.Printf("\ntwo-backend fetch fabric over live HTTP (origin + mirror, hedged, idle watermark 0.6):\n")
	fmt.Printf("  requests=%d hit=%.3f prefetch[issued=%d used=%d deferred=%d]\n",
		st.Requests, st.HitRatio(), st.PrefetchIssued, st.PrefetchUsed, st.PrefetchDeferred)
	for _, b := range st.Backends {
		fmt.Printf("  %-7s ρ̂′=%.3f ρ̂=%.3f demand=%d spec=%d hedges won/launched=%d/%d deferred=%d released=%d\n",
			b.Name, b.RhoPrime, b.Rho, b.Demand, b.Speculative,
			b.HedgesWon, b.HedgesLaunched, b.Deferred, b.Released)
	}
	fmt.Println("→ each link carries its own ρ̂′, the mirror absorbs hedged tails, and speculation waits for idle periods")
	return nil
}

// drive runs one engine over the synthetic browsing workload and
// returns its final stats.
func drive(pol prefetcher.Policy, lambda float64, requests int) (prefetcher.Stats, error) {
	fetch := prefetcher.FetcherFunc(func(ctx context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1}, nil
	})
	clock := prefetcher.NewManualClock(time.Unix(0, 0))
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(50),
		prefetcher.WithCache(prefetcher.NewLRUCache(80)),
		prefetcher.WithPredictor(prefetcher.NewMarkovPredictor()),
		prefetcher.WithPolicy(pol),
		prefetcher.WithClock(clock),
		prefetcher.WithMaxPrefetch(2),
		prefetcher.WithWorkers(4),
	)
	if err != nil {
		return prefetcher.Stats{}, err
	}
	defer eng.Close()

	src := rng.New(7)
	site := workload.NewMarkov(workload.MarkovConfig{
		N: 500, Fanout: 2, Decay: 0.15, Restart: 0.03,
	}, src)
	inter := rng.Exponential{Rate: lambda}

	ctx := context.Background()
	for i := 0; i < requests; i++ {
		clock.AdvanceSeconds(inter.Sample(src))
		if _, err := eng.Get(ctx, prefetcher.ID(site.Next())); err != nil {
			return prefetcher.Stats{}, err
		}
		// Drain speculation each step so every policy gets the same
		// zero-latency prefetch semantics the closed-form model assumes.
		if err := eng.Quiesce(ctx); err != nil {
			return prefetcher.Stats{}, err
		}
	}
	return eng.Stats(), nil
}
