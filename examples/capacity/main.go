// Capacity: provisioning a proxy with prefetching in mind.
//
// An operator asks: given my user population's request rate and my
// predictor's accuracy profile, how much bandwidth do I need before
// speculative prefetching starts paying — and how much performance does
// each bandwidth increment buy? This example sweeps λ and b through the
// closed-form model and prints a provisioning table, including the
// size-aware view (thumbnails vs videos) from the heterogeneous-size
// extension.
//
// Run:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"repro/internal/stats"
	"repro/prefetcher"
)

func main() {
	const (
		hPrime = 0.35 // cache hit ratio without prefetching
		sbar   = 1.0  // mean item size
		pGood  = 0.75 // the predictor's typical confident prediction
		nF     = 0.4  // prefetches per request the policy would issue
	)

	tb := stats.NewTable(
		fmt.Sprintf("provisioning sweep (h′=%.2f, candidate p=%.2f, n̄(F)=%.1f)", hPrime, pGood, nF),
		"λ", "b", "ρ′", "p_th", "prefetch?", "t̄′ (no PF)", "t̄ (PF)", "speedup", "C")
	for _, lambda := range []float64{10, 20, 30} {
		for _, b := range []float64{20, 35, 50, 80} {
			par := prefetcher.PlanParams{Lambda: lambda, Bandwidth: b, MeanSize: sbar, HPrime: hPrime}
			planner, err := prefetcher.NewPlanner(prefetcher.ModelA(), par)
			if err != nil {
				log.Fatal(err)
			}
			if par.RhoPrime() >= 1 {
				tb.AddRow(fmt.Sprintf("%g", lambda), fmt.Sprintf("%g", b),
					"≥1", "—", "—", "overloaded", "—", "—", "—")
				continue
			}
			pth, err := planner.Threshold()
			if err != nil {
				log.Fatal(err)
			}
			ok, _ := planner.ShouldPrefetch(pGood)
			tPrime, err := planner.AccessTimeNoPrefetch()
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				tb.AddRow(fmt.Sprintf("%g", lambda), fmt.Sprintf("%g", b),
					fmt.Sprintf("%.3f", par.RhoPrime()), fmt.Sprintf("%.3f", pth),
					"no", fmt.Sprintf("%.5f", tPrime), "—", "—", "—")
				continue
			}
			e, err := planner.Evaluate(nF, pGood)
			if err != nil {
				log.Fatal(err)
			}
			tb.AddRow(fmt.Sprintf("%g", lambda), fmt.Sprintf("%g", b),
				fmt.Sprintf("%.3f", par.RhoPrime()), fmt.Sprintf("%.3f", pth),
				"yes", fmt.Sprintf("%.5f", e.TBarPrime), fmt.Sprintf("%.5f", e.TBar),
				fmt.Sprintf("%.2f×", e.TBarPrime/e.TBar), fmt.Sprintf("%.5f", e.C))
		}
	}
	tb.AddNote("prefetching flips on once b clears f′λs̄/p = %.1f·λ; past that point more bandwidth keeps improving both t̄′ and the prefetching speedup", (1-hPrime)*sbar/pGood)
	fmt.Print(tb.Text())

	// The size-aware view: the decision is the same for every object
	// size under model A, but the stakes differ.
	fmt.Println("\nsize-aware view (λ=20, b=50): threshold is size-independent, impact is not")
	par := prefetcher.PlanParams{Lambda: 20, Bandwidth: 50, MeanSize: sbar, HPrime: hPrime}
	sizedPlanner, err := prefetcher.NewPlanner(prefetcher.ModelA(), par)
	if err != nil {
		log.Fatal(err)
	}
	for _, size := range []float64{0.1, 1, 5} {
		pth, err := sizedPlanner.ThresholdSized(size)
		if err != nil {
			log.Fatal(err)
		}
		// n̄(F)=0.1 keeps the absorbed retrieval mass Σ n̄(F)·p·s within
		// the baseline miss pool f′·s̄ for the largest size.
		e, err := sizedPlanner.EvaluateSized(
			[]prefetcher.SizedClass{{NF: 0.1, Prob: pGood, Size: size}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  size %4.1f: p_th = %.3f   G = %.6f   C = %.6f\n", size, pth, e.G, e.C)
	}
	fmt.Println("→ prefetch decisions need no size information under model A; capacity planning does")
}
