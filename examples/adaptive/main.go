// Adaptive: the online estimation loop — Section 4 of the paper — in
// action, through the public engine. The engine watches the live
// request stream while prefetching is running, estimates λ, s̄ and
// (with the tagged-cache algorithm) the hypothetical no-prefetch hit
// ratio h′, and keeps the prefetch threshold p_th = ρ̂′ current as the
// workload shifts through three phases: quiet browsing, a traffic
// surge, then a calm period with a warmed-up cache.
//
// Watch the same p=0.5 candidate flip from "prefetch" to "skip" and
// back as the measured load moves — the behaviour that distinguishes
// the paper's rule from any fixed threshold.
//
// Run:
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/rng"
	"repro/prefetcher"
)

// phase describes one workload regime.
type phase struct {
	name     string
	lambda   float64 // request rate
	locality float64 // probability a request re-hits the recent set
	requests int
}

func main() {
	fetch := prefetcher.FetcherFunc(func(ctx context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1}, nil
	})
	clock := prefetcher.NewManualClock(time.Unix(0, 0))
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(50),
		prefetcher.WithCache(prefetcher.NewLRUCache(200)),
		prefetcher.WithClock(clock),
		prefetcher.WithEWMAAlpha(0.05),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	src := rng.New(11)
	ctx := context.Background()

	phases := []phase{
		{"quiet start (λ=10, cold cache)", 10, 0.2, 1500},
		{"traffic surge (λ=40)", 40, 0.2, 4000},
		{"calm, warmed cache (λ=15, high locality)", 15, 0.8, 4000},
	}

	nextID := prefetcher.ID(0)
	recent := make([]prefetcher.ID, 0, 256)
	for _, ph := range phases {
		inter := rng.Exponential{Rate: ph.lambda}
		for i := 0; i < ph.requests; i++ {
			clock.AdvanceSeconds(inter.Sample(src))

			// Synthesise the request: with probability `locality` revisit
			// a recent item, otherwise fetch something new.
			var id prefetcher.ID
			if len(recent) > 0 && rng.Bernoulli(src, ph.locality) {
				id = recent[src.Intn(len(recent))]
			} else {
				id = nextID
				nextID++
			}
			if _, err := eng.Get(ctx, id); err != nil {
				log.Fatal(err)
			}
			// Drain speculation each step so the printed counters are
			// deterministic run to run.
			if err := eng.Quiesce(ctx); err != nil {
				log.Fatal(err)
			}
			if len(recent) < cap(recent) {
				recent = append(recent, id)
			} else {
				recent[src.Intn(len(recent))] = id
			}
		}

		st := eng.Stats()
		decision := "SKIP    "
		if 0.5 > st.Threshold {
			decision = "PREFETCH"
		}
		fmt.Printf("%-42s  λ̂=%5.1f  ĥ′=%.2f  ρ̂′=%.2f  p_th=%.2f → p=0.5: %s\n",
			ph.name, st.Lambda, st.HPrime, st.RhoPrime, st.Threshold, decision)
	}

	st := eng.Stats()
	fmt.Printf("\nengine totals: %v\n", st)
	fmt.Println("\nthe candidate's probability never changed — only the network conditions did;")
	fmt.Println("a static threshold tuned for any one phase misbehaves in the others (Section 4)")
}
