// Adaptive: the online estimation loop — Section 4 of the paper — in
// action. A client-side Advisor watches the live request stream while
// prefetching is running, estimates λ, s̄ and (with the tagged-cache
// algorithm) the hypothetical no-prefetch hit ratio h′, and keeps the
// prefetch threshold p_th = ρ̂′ current as the workload shifts through
// three phases: quiet browsing, a traffic surge, then a calm period with
// a warmed-up cache.
//
// Watch the same p=0.5 candidate flip from "prefetch" to "skip" and
// back as the measured load moves — the behaviour that distinguishes the
// paper's rule from any fixed threshold.
//
// Run:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/rng"
)

// phase describes one workload regime.
type phase struct {
	name     string
	lambda   float64 // request rate
	locality float64 // probability a request re-hits the recent set
	requests int
}

func main() {
	advisor, err := core.NewAdvisor(50, analytic.ModelA{}, 0, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	store := cache.NewStore(200, cache.NewLRU())
	store.OnEvict(advisor.OnEvict)
	src := rng.New(11)

	candidate := []predict.Prediction{{Item: 999999, Prob: 0.5}}

	phases := []phase{
		{"quiet start (λ=10, cold cache)", 10, 0.2, 1500},
		{"traffic surge (λ=40)", 40, 0.2, 4000},
		{"calm, warmed cache (λ=15, high locality)", 15, 0.8, 4000},
	}

	now := 0.0
	nextID := cache.ID(0)
	recent := make([]cache.ID, 0, 256)
	for _, ph := range phases {
		inter := rng.Exponential{Rate: ph.lambda}
		for i := 0; i < ph.requests; i++ {
			now += inter.Sample(src)
			advisor.OnRequest(now, 1)

			// Synthesise the request: with probability `locality` revisit
			// a recent item, otherwise fetch something new.
			var id cache.ID
			if len(recent) > 0 && rng.Bernoulli(src, ph.locality) {
				id = recent[src.Intn(len(recent))]
			} else {
				id = nextID
				nextID++
			}
			if store.Access(id) {
				advisor.OnCacheHit(id)
			} else {
				store.Admit(id)
				advisor.OnRemoteFetch(id, true)
			}
			if len(recent) < cap(recent) {
				recent = append(recent, id)
			} else {
				recent[src.Intn(len(recent))] = id
			}
		}

		snap := advisor.Snapshot()
		sel := advisor.Filter(candidate)
		decision := "SKIP    "
		if len(sel) > 0 {
			decision = "PREFETCH"
		}
		fmt.Printf("%-42s  λ̂=%5.1f  ĥ′=%.2f  ρ̂′=%.2f  p_th=%.2f → p=0.5: %s\n",
			ph.name, snap.Lambda, snap.HPrime, snap.RhoPrime,
			advisor.Threshold(), decision)
	}

	fmt.Println("\nthe candidate's probability never changed — only the network conditions did;")
	fmt.Println("a static threshold tuned for any one phase misbehaves in the others (Section 4)")
}
