// Quickstart: the paper's decision rule in five minutes, through the
// public prefetcher package.
//
// You operate a proxy serving λ=30 requests/s of s̄=1-unit items over a
// b=50 link, with a client-cache hit ratio of h′=0.3. Your access model
// just predicted a handful of candidate items. Which are worth
// prefetching, and what do you gain? And what does wiring the same rule
// into a live engine look like?
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/prefetcher"
)

func main() {
	par := prefetcher.PlanParams{
		Lambda:    30, // aggregate request rate
		Bandwidth: 50, // shared bandwidth
		MeanSize:  1,  // mean item size
		HPrime:    0.3,
	}
	planner, err := prefetcher.NewPlanner(prefetcher.ModelA(), par)
	if err != nil {
		log.Fatal(err)
	}

	pth, err := planner.Threshold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no-prefetch utilisation ρ′ = %.2f\n", par.RhoPrime())
	fmt.Printf("prefetch threshold p_th    = %.2f (model A: p_th = ρ′, eq. 13)\n\n", pth)

	// The paper's rule: prefetch exclusively items with p > p_th.
	candidates := []struct {
		name string
		prob float64
	}{
		{"index.html of a followed link", 0.85},
		{"stylesheet referenced by it", 0.60},
		{"a related article", 0.45},
		{"a rarely-followed footer link", 0.10},
	}
	fmt.Println("candidate                        p      decision")
	for _, c := range candidates {
		ok, err := planner.ShouldPrefetch(c.prob)
		if err != nil {
			log.Fatal(err)
		}
		decision := "skip  (p ≤ p_th: would *increase* mean access time)"
		if ok {
			decision = "PREFETCH"
		}
		fmt.Printf("%-32s %.2f   %s\n", c.name, c.prob, decision)
	}

	// What does prefetching the good candidates buy? Evaluate the
	// steady state for n̄(F)=0.5 items per request at p=0.85.
	e, err := planner.Evaluate(0.5, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprefetching n̄(F)=0.5 items/request at p=0.85:\n")
	fmt.Printf("  hit ratio    h:  %.3f → %.3f\n", par.HPrime, e.H)
	fmt.Printf("  access time  t̄:  %.5f → %.5f (G = %.5f, eq. 11)\n", e.TBarPrime, e.TBar, e.G)
	fmt.Printf("  utilisation  ρ:  %.3f → %.3f\n", par.RhoPrime(), e.Rho)
	fmt.Printf("  excess cost  C:  %.5f extra retrieval time per request (eq. 27)\n", e.C)

	// The same prefetch below the threshold backfires.
	bad, err := planner.Evaluate(0.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe same n̄(F) at p=0.30 (below threshold): G = %.5f — slower than no prefetch\n", bad.G)

	// The same rule, live: an Engine estimates ρ′ and h′ online and
	// applies the threshold to every prediction — here over a toy
	// origin and a perfectly repetitive access pattern.
	fetch := prefetcher.FetcherFunc(func(ctx context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1, Data: fmt.Sprintf("page %d", id)}, nil
	})
	// A manual clock stands in for real traffic spacing: requests land
	// 1/30 s apart, so the engine's λ̂ converges to the λ=30 above.
	clock := prefetcher.NewManualClock(time.Unix(0, 0))
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(50),
		prefetcher.WithCache(prefetcher.NewLRUCache(2)),
		prefetcher.WithClock(clock),
		prefetcher.WithWorkers(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	for i := 0; i < 60; i++ {
		clock.AdvanceSeconds(1.0 / 30)
		if _, err := eng.Get(ctx, prefetcher.ID(1+i%3)); err != nil {
			log.Fatal(err)
		}
		eng.Quiesce(ctx)
	}
	st := eng.Stats()
	fmt.Printf("\nlive engine on a 1→2→3 loop through a 2-item cache:\n  %v\n", st)
	fmt.Printf("  a 2-item LRU cannot hold the 3-cycle, yet speculation lifts the hit ratio to %.2f\n",
		st.HitRatio())
}
