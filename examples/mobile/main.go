// Mobile: speculative prefetching over a wireless link — the low-
// bandwidth regime the authors' earlier work (WOWMOM '98) targeted and
// the conclusion flags for QoS of multimedia access.
//
// The threshold p_th = f′λs̄/b is inversely proportional to bandwidth:
// over a fat link almost any prediction is worth prefetching; over a
// thin one only near-certain items qualify, and below a critical
// bandwidth prefetching should be disabled outright (p_th ≥ 1). This
// example sweeps bandwidth and shows the decision flipping, plus the
// load-impedance effect: prefetching during a busy period costs a
// multiple of what the same prefetch costs when idle.
//
// The closing section runs the conclusion live: a thin wireless link
// behind the engine's fetch fabric with WithIdleWatermark — during a
// busy burst the admitted prefetches are parked instead of competing
// with demand traffic, and they dispatch in the idle gap that follows.
//
// Run:
//
//	go run ./examples/mobile
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/stats"
	"repro/prefetcher"
	"repro/prefetcher/fetch"
)

func main() {
	const (
		lambda = 12  // requests/s from the handheld's apps
		sbar   = 1   // mean object size (normalised)
		hPrime = 0.4 // cache hit ratio without prefetching
		pGood  = 0.8 // predictor confidence for the next object
	)

	tb := stats.NewTable(
		"wireless link: threshold and gain vs bandwidth (λ=12, s̄=1, h′=0.4, candidate p=0.8)",
		"b", "ρ′", "p_th", "prefetch p=0.8?", "G at n̄(F)=0.5", "C at n̄(F)=0.5")
	for _, b := range []float64{8, 10, 12, 16, 24, 48, 96} {
		par := prefetcher.PlanParams{Lambda: lambda, Bandwidth: b, MeanSize: sbar, HPrime: hPrime}
		planner, err := prefetcher.NewPlanner(prefetcher.ModelA(), par)
		if err != nil {
			log.Fatal(err)
		}
		pth, err := planner.Threshold()
		if err != nil {
			log.Fatal(err)
		}
		decision := "no"
		gCell, cCell := "—", "—"
		if ok, _ := planner.ShouldPrefetch(pGood); ok {
			decision = "yes"
			e, err := planner.Evaluate(0.5, pGood)
			if err == nil {
				gCell = fmt.Sprintf("%.5f", e.G)
				cCell = fmt.Sprintf("%.5f", e.C)
			}
		}
		tb.AddRow(
			fmt.Sprintf("%g", b),
			fmt.Sprintf("%.3f", par.RhoPrime()),
			fmt.Sprintf("%.3f", min(pth, 1)),
			decision, gCell, cCell)
	}
	tb.AddNote("below b≈9 even a p=0.8 prediction is not worth fetching speculatively; the gain grows with spare bandwidth")
	fmt.Print(tb.Text())

	// Load impedance: the same prefetch during idle vs busy periods.
	fmt.Println("\nload impedance (eq. 27): one prefetched item (Δρ = 0.1), varying background load")
	for _, rhoPrime := range []float64{0.1, 0.4, 0.7, 0.85} {
		c, err := prefetcher.ExcessCost(lambda, rhoPrime+0.1, rhoPrime)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  background ρ′=%.2f → C = %.5f\n", rhoPrime, c)
	}
	fmt.Println("→ schedule speculative transfers into idle periods; the same bytes cost several times more under load")

	if err := idleGateDemo(); err != nil {
		log.Fatal(err)
	}
}

// idleGateDemo drives a burst of app requests over a thin wireless
// link gated by WithIdleWatermark, then idles: the parked prefetches
// dispatch only once the link's ρ̂ decays below the watermark.
func idleGateDemo() error {
	wireless := fetch.FetcherFunc(func(ctx context.Context, id fetch.ID) (fetch.Item, error) {
		t := time.NewTimer(300 * time.Microsecond) // thin-link round trip
		defer t.Stop()
		select {
		case <-t.C:
			return fetch.Item{ID: id, Size: 1}, nil
		case <-ctx.Done():
			return fetch.Item{}, ctx.Err()
		}
	})
	eng, err := prefetcher.New(nil,
		prefetcher.WithBackends(fetch.Backend{Name: "wireless", Fetcher: wireless, Bandwidth: 60}),
		prefetcher.WithIdleWatermark(0.5),
		prefetcher.WithBandwidth(60),
		prefetcher.WithCache(prefetcher.NewLRUCache(8)), // a handheld's cache is small
		prefetcher.WithPolicy(prefetcher.StaticThreshold(0.1)),
		prefetcher.WithMaxPrefetch(1),
	)
	if err != nil {
		return err
	}
	defer eng.Close()

	ctx := context.Background()
	// Busy burst: sequential app reads far above the link's capacity.
	for i := 0; i < 400; i++ {
		if _, err := eng.Get(ctx, prefetcher.ID(i%40)); err != nil {
			return err
		}
	}
	busy := eng.Stats()
	// Idle period: ρ̂ decays below the watermark and the gate releases.
	time.Sleep(80 * time.Millisecond)
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := eng.Quiesce(qctx); err != nil {
		return err
	}
	idle := eng.Stats()

	fmt.Printf("\nidle-watermark gate on the wireless link (watermark ρ̂=0.5):\n")
	b, a := busy.Backends[0], idle.Backends[0]
	fmt.Printf("  during the burst:  ρ̂=%.3f deferred=%d released=%d speculative=%d\n",
		b.Rho, b.Deferred, b.Released, b.Speculative)
	fmt.Printf("  after idling:      ρ̂=%.3f deferred=%d released=%d speculative=%d\n",
		a.Rho, a.Deferred, a.Released, a.Speculative)
	fmt.Println("→ the prefetches the burst admitted were parked, then dispatched in the idle period — eq. 27's cheap slot")
	return nil
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
