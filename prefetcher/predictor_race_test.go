package prefetcher

import (
	"context"
	"sync"
	"testing"
)

// seqPredictor is an external (non-built-in) Predictor with deliberately
// unsynchronised state: a transition map and a current-state field with
// no locking at all. The engine must serialise every call on its
// compatibility mutex — under -race this test fails loudly if any
// Observe/Predict pair ever overlaps.
type seqPredictor struct {
	counts map[ID]map[ID]int
	cur    ID
	seen   bool

	observes int
	predicts int
}

func newSeqPredictor() *seqPredictor {
	return &seqPredictor{counts: make(map[ID]map[ID]int)}
}

func (p *seqPredictor) Observe(id ID) {
	p.observes++
	if p.seen {
		row := p.counts[p.cur]
		if row == nil {
			row = make(map[ID]int)
			p.counts[p.cur] = row
		}
		row[id]++
	}
	p.cur = id
	p.seen = true
}

func (p *seqPredictor) Predict() []Prediction {
	p.predicts++
	row := p.counts[p.cur]
	if len(row) == 0 {
		return nil
	}
	total := 0
	for _, c := range row {
		total += c
	}
	best, bestC := ID(0), 0
	for id, c := range row {
		if c > bestC || (c == bestC && id < best) {
			best, bestC = id, c
		}
	}
	return []Prediction{{ID: best, Prob: float64(bestC) / float64(total)}}
}

func (p *seqPredictor) Name() string { return "external-seq" }

// topPredictor extends seqPredictor with the public TopPredictor
// interface and records which entry point the engine used.
type topPredictor struct {
	seqPredictor
	topCalls int
}

func (p *topPredictor) PredictTop(k int) []Prediction {
	p.topCalls++
	ps := p.seqPredictor.Predict()
	p.predicts-- // internal reuse, not an engine Predict dispatch
	if k < len(ps) {
		ps = ps[:k]
	}
	return ps
}

// concurrentProbe is an external ConcurrentPredictor: internally locked
// (so genuinely safe) and recording that it was driven without the
// engine's mutex is not directly observable — what is observable is
// Stats.PredictorLockFree and a clean -race run.
type concurrentProbe struct {
	mu  sync.Mutex
	seq *seqPredictor
}

func (p *concurrentProbe) Observe(id ID) {
	p.mu.Lock()
	p.seq.Observe(id)
	p.mu.Unlock()
}

func (p *concurrentProbe) Predict() []Prediction {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq.Predict()
}

func (p *concurrentProbe) Name() string { return "external-concurrent" }

func (p *concurrentProbe) ConcurrentSafe() {}

// driveEngine floods eng with overlapping demand traffic from several
// goroutines and waits for speculation to drain.
func driveEngine(t *testing.T, eng *Engine) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	const workers = 8
	const iters = 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := eng.Get(ctx, ID((w*31+i)%200)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestExternalPredictorCompatibilityPath exercises the public-Predictor
// round trip under -race: a plain external predictor with no locking of
// its own must be safe behind the engine's compatibility mutex, and the
// engine must report it as not lock-free.
func TestExternalPredictorCompatibilityPath(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	pred := newSeqPredictor()
	eng, err := New(fetcher,
		WithPredictor(pred),
		WithPolicy(StaticThreshold(0.1)),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(64) }),
		WithWorkers(4),
		WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	driveEngine(t, eng)

	st := eng.Stats()
	if st.PredictorLockFree {
		t.Fatal("external plain predictor must run on the mutex path")
	}
	if st.Predictor != "external-seq" {
		t.Fatalf("Stats.Predictor = %q, want external-seq", st.Predictor)
	}
	if pred.observes != int(st.Requests) {
		t.Fatalf("observes = %d, want one per request (%d)", pred.observes, st.Requests)
	}
	if pred.predicts == 0 {
		t.Fatal("Predict was never dispatched")
	}
	if st.PrefetchIssued == 0 {
		t.Fatal("external predictions never produced a prefetch")
	}
}

// TestExternalTopPredictorFastPath checks the bounded-prefix dispatch
// for external predictors: when the plugin implements the public
// TopPredictor, the hot path must call PredictTop (never the full
// Predict), mirroring the internal ipredTop fast path in
// observeAndPredictLocked.
func TestExternalTopPredictorFastPath(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	pred := &topPredictor{seqPredictor: *newSeqPredictor()}
	eng, err := New(fetcher,
		WithPredictor(pred),
		WithPolicy(StaticThreshold(0.1)),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(64) }),
		WithWorkers(4),
		WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	driveEngine(t, eng)

	st := eng.Stats()
	if st.PredictorLockFree {
		t.Fatal("a TopPredictor without the concurrency marker stays on the mutex path")
	}
	if pred.topCalls == 0 {
		t.Fatal("PredictTop was never dispatched")
	}
	if pred.predicts != 0 {
		t.Fatalf("full Predict dispatched %d times; the engine must prefer PredictTop", pred.predicts)
	}
	if st.PrefetchIssued == 0 {
		t.Fatal("top-k predictions never produced a prefetch")
	}
}

// TestExternalConcurrentPredictorLockFree: an external predictor
// carrying the ConcurrentPredictor marker is driven with no engine
// serialisation at all — the -race run checks the engine adds none, and
// Stats must report the lock-free path.
func TestExternalConcurrentPredictorLockFree(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	pred := &concurrentProbe{seq: newSeqPredictor()}
	eng, err := New(fetcher,
		WithPredictor(pred),
		WithPolicy(StaticThreshold(0.1)),
		WithShards(8),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(32) }),
		WithWorkers(4),
		WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	driveEngine(t, eng)

	st := eng.Stats()
	if !st.PredictorLockFree {
		t.Fatal("ConcurrentPredictor marker must select the lock-free path")
	}
	if pred.seq.observes != int(st.Requests) {
		t.Fatalf("observes = %d, want %d", pred.seq.observes, st.Requests)
	}
}

// TestBuiltinPredictorPaths pins which built-ins run lock-free: every
// constructor satisfies ConcurrentPredictor (LZ78, the last holdout,
// joined with the CAS-insertion trie), and the adapter preserves the
// marker for use outside an Engine too.
func TestBuiltinPredictorPaths(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	cases := []struct {
		name     string
		pred     Predictor
		lockFree bool
	}{
		{"markov", NewMarkovPredictor(), true},
		{"popularity", NewPopularityPredictor(8), true},
		{"ppm", NewPPMPredictor(2), true},
		{"depgraph", NewDependencyGraphPredictor(3), true},
		{"lz78", NewLZPredictor(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := tc.pred.(ConcurrentPredictor); ok != tc.lockFree {
				t.Fatalf("public marker = %v, want %v", ok, tc.lockFree)
			}
			eng, err := New(fetcher, WithBandwidth(100), WithPredictor(tc.pred))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Get(context.Background(), 1); err != nil {
				t.Fatal(err)
			}
			if got := eng.Stats().PredictorLockFree; got != tc.lockFree {
				t.Fatalf("PredictorLockFree = %v, want %v", got, tc.lockFree)
			}
		})
	}
}
