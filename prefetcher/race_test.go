package prefetcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentGets floods the engine with demand traffic from many
// goroutines over a shared key space while prefetching runs, then
// closes the engine mid-traffic. Run with -race this exercises every
// lock in the facade and the internal controller/estimator stack.
func TestConcurrentGets(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		if id%97 == 0 {
			return Item{}, errors.New("origin hiccup")
		}
		return Item{ID: id, Size: 1 + float64(id%3), Data: fmt.Sprintf("v%d", id)}, nil
	})
	var events sync.Map // EventType → *counter, exercised concurrently
	eng, err := New(fetcher,
		WithBandwidth(200),
		WithCache(NewSLRUCache(256, 128)),
		WithPredictor(NewMarkovPredictor()),
		WithPolicy(AdaptiveThreshold(ModelB())),
		WithWorkers(8),
		WithQueueDepth(32),
		WithMaxPrefetch(3),
		WithEventHook(func(ev Event) {
			v, _ := events.LoadOrStore(ev.Type, new(int))
			_ = v
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	const workers = 12
	const iters = 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Sequential runs with worker-specific offsets: enough
				// overlap for shared in-flight fetches, enough structure
				// for the Markov predictor to fire.
				id := ID(w*50 + i%60)
				cctx := ctx
				if i%17 == 0 {
					var cancel context.CancelFunc
					cctx, cancel = context.WithTimeout(ctx, time.Millisecond)
					defer cancel()
				}
				_, err := eng.Get(cctx, id)
				_ = err // errors (hiccups, timeouts, ErrClosed) are expected
				if i%31 == 0 {
					_ = eng.Stats()
					_ = eng.Threshold()
				}
			}
		}(w)
	}
	wg.Wait()

	st := eng.Stats()
	if st.Requests == 0 || st.Hits == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.HPrime < 0 || st.HPrime > 1 {
		t.Fatalf("ĥ′ = %v out of range", st.HPrime)
	}

	// Close while late speculative fetches may still be in flight, then
	// confirm the engine refuses further traffic.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Get(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v", err)
	}
	// Close is idempotent.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSameKey makes every goroutine hammer the same cold key
// so the in-flight dedup path is contended directly.
func TestConcurrentSameKey(t *testing.T) {
	var mu sync.Mutex
	fetches := 0
	gate := make(chan struct{})
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		<-gate
		mu.Lock()
		fetches++
		mu.Unlock()
		return Item{ID: id, Size: 1, Data: "x"}, nil
	})
	eng, err := New(fetcher, WithBandwidth(100), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	const callers = 16
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.Get(ctx, 42)
		}(i)
	}
	// Let the callers pile up on the single in-flight fetch, then open
	// the origin.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	st := eng.Stats()
	// One demand fetch; the other 15 callers joined it.
	mu.Lock()
	got := fetches
	mu.Unlock()
	if got != 1 {
		t.Fatalf("origin fetches = %d, want 1 (joiners must dedup)", got)
	}
	// Every caller but the fetcher either joined the in-flight fetch or
	// (if it started late) hit the freshly-filled cache.
	if st.Joins+st.Hits != callers-1 {
		t.Fatalf("joins=%d hits=%d, want joins+hits=%d", st.Joins, st.Hits, callers-1)
	}
	if st.Joins == 0 {
		t.Fatalf("no caller joined the in-flight fetch: %+v", st)
	}
}
