package prefetcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestConcurrentGets floods the engine with demand traffic from many
// goroutines over a shared key space while prefetching runs, then
// closes the engine mid-traffic. Run with -race this exercises every
// lock in the facade and the internal controller/estimator stack.
func TestConcurrentGets(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		if id%97 == 0 {
			return Item{}, errors.New("origin hiccup")
		}
		return Item{ID: id, Size: 1 + float64(id%3), Data: fmt.Sprintf("v%d", id)}, nil
	})
	var events sync.Map // EventType → *counter, exercised concurrently
	eng, err := New(fetcher,
		WithBandwidth(200),
		WithCache(NewSLRUCache(256, 128)),
		WithPredictor(NewMarkovPredictor()),
		WithPolicy(AdaptiveThreshold(ModelB())),
		WithWorkers(8),
		WithQueueDepth(32),
		WithMaxPrefetch(3),
		WithEventHook(func(ev Event) {
			v, _ := events.LoadOrStore(ev.Type, new(int))
			_ = v
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	const workers = 12
	const iters = 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Sequential runs with worker-specific offsets: enough
				// overlap for shared in-flight fetches, enough structure
				// for the Markov predictor to fire.
				id := ID(w*50 + i%60)
				cctx := ctx
				if i%17 == 0 {
					var cancel context.CancelFunc
					cctx, cancel = context.WithTimeout(ctx, time.Millisecond)
					defer cancel()
				}
				_, err := eng.Get(cctx, id)
				_ = err // errors (hiccups, timeouts, ErrClosed) are expected
				if i%31 == 0 {
					_ = eng.Stats()
					_ = eng.Threshold()
				}
			}
		}(w)
	}
	wg.Wait()

	st := eng.Stats()
	if st.Requests == 0 || st.Hits == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.HPrime < 0 || st.HPrime > 1 {
		t.Fatalf("ĥ′ = %v out of range", st.HPrime)
	}

	// Close while late speculative fetches may still be in flight, then
	// confirm the engine refuses further traffic.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Get(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v", err)
	}
	// Close is idempotent.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSameKey makes every goroutine hammer the same cold key
// so the in-flight dedup path is contended directly.
func TestConcurrentSameKey(t *testing.T) {
	var mu sync.Mutex
	fetches := 0
	gate := make(chan struct{})
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		<-gate
		mu.Lock()
		fetches++
		mu.Unlock()
		return Item{ID: id, Size: 1, Data: "x"}, nil
	})
	eng, err := New(fetcher, WithBandwidth(100), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	const callers = 16
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.Get(ctx, 42)
		}(i)
	}
	// Let the callers pile up on the single in-flight fetch, then open
	// the origin.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	st := eng.Stats()
	// One demand fetch; the other 15 callers joined it.
	mu.Lock()
	got := fetches
	mu.Unlock()
	if got != 1 {
		t.Fatalf("origin fetches = %d, want 1 (joiners must dedup)", got)
	}
	// Every caller but the fetcher either joined the in-flight fetch or
	// (if it started late) hit the freshly-filled cache.
	if st.Joins+st.Hits != callers-1 {
		t.Fatalf("joins=%d hits=%d, want joins+hits=%d", st.Joins, st.Hits, callers-1)
	}
	if st.Joins == 0 {
		t.Fatalf("no caller joined the in-flight fetch: %+v", st)
	}
}

// TestConcurrentShardedLifecycle drives demand traffic, Quiesce, Stats
// and Threshold across shard boundaries while the engine is closed
// mid-flight. Under -race this exercises the per-shard mutexes, the
// shared controller's atomics, the estimator stripes, the quiesce
// accounting and the close barrier together.
func TestConcurrentShardedLifecycle(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		if id%89 == 0 {
			return Item{}, errors.New("origin hiccup")
		}
		return Item{ID: id, Size: 1 + float64(id%5), Data: int64(id)}, nil
	})
	eng, err := New(fetcher,
		WithBandwidth(500),
		WithShards(8),
		WithCacheFactory(func(i, n int) Cache { return NewSLRUCache(64, 32) }),
		WithPolicy(AdaptiveThreshold(ModelB())),
		WithWorkers(4),
		WithQueueDepth(32),
		WithMaxPrefetch(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Shards; got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	const getters = 10
	const iters = 300
	for w := 0; w < getters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Stride walks that cross shard boundaries on every
				// request, with overlap between goroutines for dedup.
				id := ID((w*37 + i*11) % 500)
				_, err := eng.Get(ctx, id)
				_ = err // hiccups and ErrClosed are expected
				if i%23 == 0 {
					_ = eng.Stats()
					_ = eng.Threshold()
				}
			}
		}(w)
	}
	// Quiescers run concurrently with traffic and the close below.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qctx, cancel := context.WithTimeout(ctx, time.Millisecond)
				_ = eng.Quiesce(qctx)
				cancel()
			}
		}()
	}
	// Close mid-traffic from yet another goroutine.
	closeErr := make(chan error, 1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		closeErr <- eng.Close()
	}()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}

	if _, err := eng.Get(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// After close the quiesce accounting must be drained: Quiesce
	// returns immediately.
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Requests == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Fatalf("hits+misses = %d+%d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	if st.HPrime < 0 || st.HPrime > 1 {
		t.Fatalf("ĥ′ = %v out of range", st.HPrime)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight fetches leaked past Close: %+v", st)
	}
}
