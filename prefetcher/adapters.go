package prefetcher

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/predict"
)

// --- Predictor adapters over internal/predict ---------------------------

// predictorAdapter lifts an internal predictor to the public interface.
type predictorAdapter struct {
	p predict.Predictor
}

func (a predictorAdapter) Observe(id ID) { a.p.Observe(cache.ID(id)) }

func (a predictorAdapter) Name() string { return a.p.Name() }

func (a predictorAdapter) Predict() []Prediction {
	ps := a.p.Predict()
	if len(ps) == 0 {
		return nil
	}
	out := make([]Prediction, len(ps))
	for i, p := range ps {
		out[i] = Prediction{ID: ID(p.Item), Prob: p.Prob}
	}
	return out
}

// NewMarkovPredictor returns a first-order Markov access model (counts
// of prev→next transitions) — the default predictor.
func NewMarkovPredictor() Predictor { return predictorAdapter{predict.NewMarkov1()} }

// NewLZPredictor returns the Vitter–Krishnan LZ78 predictor: the
// request stream is parsed into a phrase trie whose current node
// conditions the next-access distribution.
func NewLZPredictor() Predictor { return predictorAdapter{predict.NewLZ78()} }

// NewPPMPredictor returns an order-k prediction-by-partial-matching
// model (k >= 1) with escape to shorter contexts.
func NewPPMPredictor(k int) Predictor { return predictorAdapter{predict.NewPPM(k)} }

// NewDependencyGraphPredictor returns the Padmanabhan–Mogul dependency
// graph with lookahead window w (w >= 1).
func NewDependencyGraphPredictor(w int) Predictor {
	return predictorAdapter{predict.NewDependencyGraph(w)}
}

// NewPopularityPredictor returns a global-frequency predictor reporting
// the topK most popular items (topK <= 0 means all).
func NewPopularityPredictor(topK int) Predictor {
	return predictorAdapter{predict.NewPopularity(topK)}
}

// --- Cache adapters over internal/cache ---------------------------------

// storeCache pairs the internal residency store (capacity + replacement
// policy + hit accounting) with a payload map.
type storeCache struct {
	store   *cache.Store
	values  map[ID]any
	onEvict func(ID)
}

func newStoreCache(capacity int, policy cache.Policy) *storeCache {
	c := &storeCache{
		store:  cache.NewStore(capacity, policy),
		values: make(map[ID]any, capacity),
	}
	c.store.OnEvict(func(id cache.ID) {
		delete(c.values, ID(id))
		if c.onEvict != nil {
			c.onEvict(ID(id))
		}
	})
	return c
}

func (c *storeCache) Get(id ID) (any, bool) {
	if !c.store.Access(cache.ID(id)) {
		return nil, false
	}
	return c.values[id], true
}

func (c *storeCache) Put(id ID, value any) {
	c.values[id] = value
	c.store.Admit(cache.ID(id))
}

func (c *storeCache) Contains(id ID) bool { return c.store.Contains(cache.ID(id)) }

func (c *storeCache) Len() int { return c.store.Len() }

func (c *storeCache) OnEvict(fn func(ID)) { c.onEvict = fn }

// NewLRUCache returns a least-recently-used cache holding at most
// capacity items. It panics if capacity < 1.
func NewLRUCache(capacity int) Cache { return newStoreCache(capacity, cache.NewLRU()) }

// NewSLRUCache returns a segmented-LRU cache: new entries start on
// probation and are promoted on re-reference, so speculative prefetches
// that never get used churn through probation without displacing the
// protected working set. protectedCap bounds the protected segment
// (capacity/2 is a reasonable default). It panics if capacity < 1 or
// protectedCap < 1.
func NewSLRUCache(capacity, protectedCap int) Cache {
	return newStoreCache(capacity, cache.NewSLRU(protectedCap))
}

// NewFIFOCache returns a first-in-first-out cache of the given capacity.
func NewFIFOCache(capacity int) Cache { return newStoreCache(capacity, cache.NewFIFO()) }

// NewCacheWithPolicy returns a cache of the given capacity using a
// replacement policy selected by name: "lru", "lfu", "fifo" or "clock".
func NewCacheWithPolicy(capacity int, policy string) (Cache, error) {
	p, err := cache.NewPolicy(policy)
	if err != nil {
		return nil, fmt.Errorf("prefetcher: %w", err)
	}
	return newStoreCache(capacity, p), nil
}

// --- Clocks -------------------------------------------------------------

// systemClock is the default wall-clock time source.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// ManualClock is a Clock whose time only moves when told to — for
// deterministic tests and trace replay. It is safe for concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a manual clock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceSeconds moves the clock forward by s seconds (a convenience
// for simulations whose inter-arrival times are float64 seconds).
func (c *ManualClock) AdvanceSeconds(s float64) {
	c.Advance(time.Duration(s * float64(time.Second)))
}
