package prefetcher

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/predict"
)

// --- Predictor adapters over internal/predict ---------------------------

// internalPredictor is how the engine unwraps built-in predictors at
// construction: it talks to the internal model directly, so the wrapped
// model's TopPredictor and ConcurrentPredictor capabilities survive the
// public round trip with no per-call conversion.
type internalPredictor interface {
	internal() predict.Predictor
}

// predictorAdapter lifts an internal predictor to the public interface.
// The public methods exist for callers that use a built-in predictor
// outside an Engine; the engine itself goes through internal().
// staging pools the internal-type buffer PredictTopInto converts out
// of, so the public Into path honours its zero-allocation contract.
type predictorAdapter struct {
	p       predict.Predictor
	staging *sync.Pool // *[]predict.Prediction
}

func (a predictorAdapter) internal() predict.Predictor { return a.p }

func (a predictorAdapter) Observe(id ID) { a.p.Observe(cache.ID(id)) }

func (a predictorAdapter) Name() string { return a.p.Name() }

func (a predictorAdapter) Predict() []Prediction {
	return publicPredictions(a.p.Predict())
}

// PredictTop implements the public TopPredictor when the wrapped model
// supports bounded top-k prediction, falling back to the Predict
// prefix otherwise.
func (a predictorAdapter) PredictTop(k int) []Prediction {
	if k <= 0 {
		return nil
	}
	if tp, ok := a.p.(predict.TopPredictor); ok {
		return publicPredictions(tp.PredictTop(k))
	}
	ps := a.Predict()
	if k < len(ps) {
		ps = ps[:k]
	}
	if len(ps) == 0 {
		return nil
	}
	return ps
}

// PredictTopInto implements the public TopIntoPredictor: the top-k
// candidates are appended to dst. When the wrapped model supports the
// internal Into form the conversion stages through a pooled buffer, so
// the call is allocation-free in steady state; the engine itself never
// takes this route for built-ins (it unwraps to the internal model),
// so this exists for callers using a built-in predictor outside an
// Engine.
//
//prefetch:hotpath
func (a predictorAdapter) PredictTopInto(dst []Prediction, k int) []Prediction {
	if k <= 0 {
		return nil
	}
	var ps []predict.Prediction
	var buf *[]predict.Prediction
	if tp, ok := a.p.(predict.TopIntoPredictor); ok {
		buf = a.staging.Get().(*[]predict.Prediction)
		ps = tp.PredictTopInto((*buf)[:0], k)
	} else if tp, ok := a.p.(predict.TopPredictor); ok {
		ps = tp.PredictTop(k)
	} else {
		ps = a.p.Predict()
		if k < len(ps) {
			ps = ps[:k]
		}
	}
	out := dst[:0]
	for _, p := range ps {
		out = append(out, Prediction{ID: ID(p.Item), Prob: p.Prob})
	}
	if buf != nil {
		a.staging.Put(buf)
	}
	return out
}

// concurrentAdapter is the adapter for internally concurrent models: it
// additionally carries the public ConcurrentPredictor marker, so a
// built-in concurrent predictor type-asserts correctly outside an
// Engine too.
type concurrentAdapter struct {
	predictorAdapter
}

// ConcurrentSafe implements ConcurrentPredictor.
func (concurrentAdapter) ConcurrentSafe() {}

// adaptPredictor wraps an internal predictor in the adapter matching
// its concurrency contract.
func adaptPredictor(p predict.Predictor) Predictor {
	staging := &sync.Pool{New: func() any {
		s := make([]predict.Prediction, 0, 16)
		return &s
	}}
	if _, ok := p.(predict.ConcurrentPredictor); ok {
		return concurrentAdapter{predictorAdapter{p, staging}}
	}
	return predictorAdapter{p, staging}
}

// publicPredictions converts internal predictions to the public type.
func publicPredictions(ps []predict.Prediction) []Prediction {
	if len(ps) == 0 {
		return nil
	}
	out := make([]Prediction, len(ps))
	for i, p := range ps {
		out[i] = Prediction{ID: ID(p.Item), Prob: p.Prob}
	}
	return out
}

// NewMarkovPredictor returns a first-order Markov access model (counts
// of prev→next transitions) — the default predictor. It satisfies the
// ConcurrentPredictor contract: transition rows are striped with atomic
// counts and the current state is an atomic swap chain, so the engine
// runs it lock-free.
func NewMarkovPredictor() Predictor { return adaptPredictor(predict.NewConcurrentMarkov1()) }

// NewLZPredictor returns the Vitter–Krishnan LZ78 predictor: the
// request stream is parsed into a phrase trie whose current node
// conditions the next-access distribution. Concurrent: the parse
// position is an atomic swap chain (so every observation extends one
// global parse) and the trie grows by CAS child insertion, so the
// engine runs it lock-free like the other built-ins.
func NewLZPredictor() Predictor { return adaptPredictor(predict.NewConcurrentLZ78()) }

// NewPPMPredictor returns an order-k prediction-by-partial-matching
// model (k >= 1) with escape to shorter contexts. Concurrent: context
// tables are striped, the bounded history sits behind a short mutex.
func NewPPMPredictor(k int) Predictor { return adaptPredictor(predict.NewConcurrentPPM(k)) }

// NewDependencyGraphPredictor returns the Padmanabhan–Mogul dependency
// graph with lookahead window w (w >= 1). Concurrent: the edge table is
// striped with atomic counts, the lookahead window sits behind a short
// mutex.
func NewDependencyGraphPredictor(w int) Predictor {
	return adaptPredictor(predict.NewConcurrentDependencyGraph(w))
}

// NewPopularityPredictor returns a global-frequency predictor reporting
// the topK most popular items (topK <= 0 means all). Concurrent: counts
// live in a lock-free map of atomic counters.
func NewPopularityPredictor(topK int) Predictor {
	return adaptPredictor(predict.NewConcurrentPopularity(topK))
}

// --- Cache adapters over internal/cache ---------------------------------

// storeCache pairs the internal residency store (capacity + replacement
// policy + hit accounting) with a payload map.
type storeCache struct {
	store   *cache.Store
	values  map[ID]any
	onEvict func(ID)
}

func newStoreCache(capacity int, policy cache.Policy) *storeCache {
	c := &storeCache{
		store:  cache.NewStore(capacity, policy),
		values: make(map[ID]any, capacity),
	}
	c.store.OnEvict(func(id cache.ID) {
		delete(c.values, ID(id))
		if c.onEvict != nil {
			c.onEvict(ID(id))
		}
	})
	return c
}

func (c *storeCache) Get(id ID) (any, bool) {
	if !c.store.Access(cache.ID(id)) {
		return nil, false
	}
	return c.values[id], true
}

func (c *storeCache) Put(id ID, value any) {
	c.values[id] = value
	c.store.Admit(cache.ID(id))
}

func (c *storeCache) Contains(id ID) bool { return c.store.Contains(cache.ID(id)) }

func (c *storeCache) Len() int { return c.store.Len() }

func (c *storeCache) OnEvict(fn func(ID)) { c.onEvict = fn }

// NewLRUCache returns a least-recently-used cache holding at most
// capacity items. It panics if capacity < 1.
func NewLRUCache(capacity int) Cache { return newStoreCache(capacity, cache.NewLRU()) }

// NewSLRUCache returns a segmented-LRU cache: new entries start on
// probation and are promoted on re-reference, so speculative prefetches
// that never get used churn through probation without displacing the
// protected working set. protectedCap bounds the protected segment
// (capacity/2 is a reasonable default). It panics if capacity < 1 or
// protectedCap < 1.
func NewSLRUCache(capacity, protectedCap int) Cache {
	return newStoreCache(capacity, cache.NewSLRU(protectedCap))
}

// NewFIFOCache returns a first-in-first-out cache of the given capacity.
func NewFIFOCache(capacity int) Cache { return newStoreCache(capacity, cache.NewFIFO()) }

// NewCacheWithPolicy returns a cache of the given capacity using a
// replacement policy selected by name: "lru", "lfu", "fifo" or "clock".
func NewCacheWithPolicy(capacity int, policy string) (Cache, error) {
	p, err := cache.NewPolicy(policy)
	if err != nil {
		return nil, fmt.Errorf("prefetcher: %w", err)
	}
	return newStoreCache(capacity, p), nil
}

// --- Clocks -------------------------------------------------------------

// systemClock is the default wall-clock time source.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// ManualClock is a Clock whose time only moves when told to — for
// deterministic tests and trace replay. It is safe for concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a manual clock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceSeconds moves the clock forward by s seconds (a convenience
// for simulations whose inter-arrival times are float64 seconds).
func (c *ManualClock) AdvanceSeconds(s float64) {
	c.Advance(time.Duration(s * float64(time.Second)))
}
