package prefetcher

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/predict"
)

// BenchmarkEngineGet drives concurrent demand traffic through engines
// with different shard counts. CI runs it with -benchtime=1x as a smoke
// test so the sharded hot path stays exercised; locally, -benchtime=1s
// with -cpu 1,4,8 shows how sharding trades off against parallelism.
func BenchmarkEngineGet(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchEngineGet(b, shards)
		})
	}
}

func benchEngineGet(b *testing.B, shards int) {
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	eng, err := New(fetch,
		WithBandwidth(1e6),
		WithShards(shards),
		WithCacheFactory(func(i, n int) Cache {
			per := 256 / n
			if per < 2 {
				per = 2
			}
			return NewSLRUCache(per, (per+1)/2)
		}),
		WithWorkers(4),
		WithMaxPrefetch(2),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine sequential walks with distinct offsets: enough
		// key overlap for in-flight dedup, enough structure for the
		// Markov predictor to produce candidates.
		off := seq.Add(1) * 257
		i := int64(0)
		for pb.Next() {
			id := ID((off + i) % 2000)
			if i%7 == 0 {
				id = ID(off % 2000) // revisit: exercises the hit path
			}
			if _, err := eng.Get(ctx, id); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	st := eng.Stats()
	if st.Requests == 0 {
		b.Fatal("no traffic recorded")
	}
}

// BenchmarkGetHit measures the cache-hit fast path: every request is
// resident, and every predicted candidate is resident too, so the
// whole Get — pooled prediction buffer, one short critical section,
// atomic counters, estimator/controller folds, dedup'd dispatch — must
// run without allocating. CI asserts the same property as a hard test
// via TestGetHitAllocFree.
func BenchmarkGetHit(b *testing.B) {
	eng, ids := newHitEngine(b)
	defer eng.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Get(ctx, ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetMultiHit measures the batched counterpart of
// BenchmarkGetHit: an all-hit fan-out-8 session through GetMultiInto —
// one gather across shards, one linearised observation sequence, one
// speculative plan — with the caller reusing its result buffer. CI
// asserts the 0 allocs/op property as a hard test via
// TestGetMultiAllocFree; this benchmark tracks the per-session cost
// against fan-out × BenchmarkGetHit.
func BenchmarkGetMultiHit(b *testing.B) {
	eng, ids := newHitEngine(b)
	defer eng.Close()
	ctx := context.Background()
	const fanout = 8
	session := make([]ID, fanout)
	dst := make([]Item, 0, fanout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range session {
			session[k] = ids[(i+k)%len(ids)]
		}
		var err error
		dst, err = eng.GetMultiInto(ctx, session, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// newHitEngine builds a single-shard engine whose whole catalog is
// resident (and whose Markov rows predict only resident successors), so
// driving it sequentially exercises the hit path exclusively.
func newHitEngine(tb testing.TB) (*Engine, []ID) {
	tb.Helper()
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	const items = 64
	eng, err := New(fetch,
		WithBandwidth(1e6),
		WithShards(1),
		WithCache(NewLRUCache(4*items)),
		WithWorkers(1),
		WithMaxPrefetch(2),
	)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]ID, items)
	for i := range ids {
		ids[i] = ID(i)
	}
	// Two warm passes: the first faults everything in, the second walks
	// the same cycle so every Markov successor is itself resident.
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			if _, err := eng.Get(ctx, id); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := eng.Quiesce(ctx); err != nil {
		tb.Fatal(err)
	}
	return eng, ids
}

// BenchmarkGetMiss measures the demand-miss path in steady state:
// every request misses a small cache (NoPrefetch isolates the miss
// machinery from speculation), so each Get pays flight registration,
// the origin fetch, cache admission and an eviction. The pooled
// flights and recycled cache nodes keep this near allocation-free too.
func BenchmarkGetMiss(b *testing.B) {
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	eng, err := New(fetch,
		WithBandwidth(1e6),
		WithShards(1),
		WithCache(NewLRUCache(64)),
		WithPolicy(NoPrefetch()),
		WithWorkers(1),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	// A strided walk over an id space far larger than the cache: every
	// id recurs (so the access model reaches steady state instead of
	// growing forever) but is evicted long before its revisit — every
	// request misses.
	const space = 8192
	missID := func(i int) ID { return ID((i * 97) % space) }
	// Warm the maps, the model and the pools past their growth phase.
	for i := 0; i < 2*space; i++ {
		if _, err := eng.Get(ctx, missID(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Get(ctx, missID(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictTop measures the predictor hot path on its own: the
// coupled observe+predict the engine issues per request, appending into
// a reused buffer — the pooled PredictTopInto path.
func BenchmarkPredictTop(b *testing.B) {
	m := predict.NewConcurrentMarkov1()
	const items = 256
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < items; i++ {
			m.Observe(cache.ID(i))
		}
	}
	buf := make([]predict.Prediction, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.ObserveAndPredictTopInto(cache.ID(i%items), 2, buf[:0])
	}
	_ = buf
}
