package prefetcher

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkEngineGet drives concurrent demand traffic through engines
// with different shard counts. CI runs it with -benchtime=1x as a smoke
// test so the sharded hot path stays exercised; locally, -benchtime=1s
// with -cpu 1,4,8 shows how sharding trades off against parallelism.
func BenchmarkEngineGet(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchEngineGet(b, shards)
		})
	}
}

func benchEngineGet(b *testing.B, shards int) {
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	eng, err := New(fetch,
		WithBandwidth(1e6),
		WithShards(shards),
		WithCacheFactory(func(i, n int) Cache {
			per := 256 / n
			if per < 2 {
				per = 2
			}
			return NewSLRUCache(per, (per+1)/2)
		}),
		WithWorkers(4),
		WithMaxPrefetch(2),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine sequential walks with distinct offsets: enough
		// key overlap for in-flight dedup, enough structure for the
		// Markov predictor to produce candidates.
		off := seq.Add(1) * 257
		i := int64(0)
		for pb.Next() {
			id := ID((off + i) % 2000)
			if i%7 == 0 {
				id = ID(off % 2000) // revisit: exercises the hit path
			}
			if _, err := eng.Get(ctx, id); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	st := eng.Stats()
	if st.Requests == 0 {
		b.Fatal("no traffic recorded")
	}
}
