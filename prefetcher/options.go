package prefetcher

import (
	"fmt"
	"math"
	"time"

	"repro/prefetcher/fetch"
)

// Option configures an Engine at construction.
type Option func(*config) error

type config struct {
	predictor    Predictor
	cache        Cache
	cacheFactory func(shard, shards int) Cache
	clock        Clock
	policy       Policy
	bandwidth    float64
	nc           float64
	alpha        float64
	shards       int // 0 = derive from GOMAXPROCS (or 1 with WithCache)
	workers      int
	queueDepth   int
	maxPrefetch  int
	hook         func(Event)

	// Demand-dedup merge window (0 = off, see WithDemandCoalescing).
	mergeWindow time.Duration
	mergeMax    int

	// Backend fetch fabric (nil/zero = plain single-fetcher engine).
	backends      []fetch.Backend
	routing       fetch.Routing
	hedging       *fetch.Hedging
	idleWatermark float64
	breaker       *fetch.Breaker
}

// defaultCacheCapacity is the total capacity of the default LRU cache,
// split evenly across shards.
const defaultCacheCapacity = 1024

func defaultConfig() *config {
	return &config{
		clock:       systemClock{},
		policy:      AdaptiveThreshold(ModelA()),
		workers:     4,
		queueDepth:  64,
		maxPrefetch: 4,
	}
}

// WithPredictor sets the access model (default: NewMarkovPredictor).
// The engine inspects the predictor once, at New: if it implements
// ConcurrentPredictor (as every built-in constructor does),
// Observe/Predict run lock-free from all shards
// at once; otherwise every call is serialised on a compatibility mutex
// and prediction becomes the throughput ceiling however many shards
// the engine has. If it implements TopPredictor, the hot path asks for
// only the top WithMaxPrefetch candidates instead of the full sorted
// distribution. Stats.PredictorLockFree reports which path was chosen.
func WithPredictor(p Predictor) Option {
	return func(c *config) error {
		if p == nil {
			return fmt.Errorf("prefetcher: nil predictor")
		}
		c.predictor = p
		return nil
	}
}

// WithCache sets the client-side store (default: a 1024-item LRU split
// across shards). A single Cache instance can only serve a single-shard
// engine: combining WithCache with WithShards(n > 1) is a construction
// error, and without WithShards a supplied cache pins the shard count to
// one. Sharded engines wanting a custom cache use WithCacheFactory. A
// prewarmed cache (entries present before New) is served as-is; hits on
// entries the engine never fetched report size 1, the same default the
// fetch path applies.
func WithCache(s Cache) Option {
	return func(c *config) error {
		if s == nil {
			return fmt.Errorf("prefetcher: nil cache")
		}
		c.cache = s
		return nil
	}
}

// WithCacheFactory sets a per-shard cache constructor: fn is called once
// per shard with the shard index and total shard count, and must return
// a fresh Cache each time (shards never share an instance — each cache
// is guarded by its shard's lock). Size per-shard capacities as
// total/shards. Mutually exclusive with WithCache.
func WithCacheFactory(fn func(shard, shards int) Cache) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("prefetcher: nil cache factory")
		}
		c.cacheFactory = fn
		return nil
	}
}

// WithShards sets how many partitions the engine's keyed hot-path state
// (cache, in-flight dedup, size/used accounting) is split into; n is
// rounded up to the next power of two. More shards means demand traffic
// on disjoint keys contends less on the engine's locks; the adaptive
// policy is unaffected because its estimates (λ̂, ŝ̄, ĥ′, ρ̂′, n̄(F))
// are aggregated globally in the shared controller. The default derives
// from GOMAXPROCS, or 1 when WithCache supplies a single cache
// instance.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("prefetcher: shard count %d must be >= 1", n)
		}
		c.shards = n
		return nil
	}
}

// WithClock sets the time source (default: the wall clock).
func WithClock(clk Clock) Option {
	return func(c *config) error {
		if clk == nil {
			return fmt.Errorf("prefetcher: nil clock")
		}
		c.clock = clk
		return nil
	}
}

// WithPolicy sets the prefetch policy (default:
// AdaptiveThreshold(ModelA()), which requires WithBandwidth).
func WithPolicy(p Policy) Option {
	return func(c *config) error {
		if !p.valid() {
			return fmt.Errorf("prefetcher: zero Policy; use a constructor such as AdaptiveThreshold")
		}
		c.policy = p
		return nil
	}
}

// WithBandwidth sets the link bandwidth b, in the same units per second
// as item sizes. It anchors the utilisation estimate ρ̂′ = (1−ĥ′)λ̂ŝ̄/b
// and is required by the adaptive policies (AdaptiveThreshold,
// GreedyThreshold).
func WithBandwidth(b float64) Option {
	return func(c *config) error {
		if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("prefetcher: bandwidth %v must be positive and finite", b)
		}
		c.bandwidth = b
		return nil
	}
}

// WithCacheOccupancy fixes the steady-state cache occupancy n̄(C) used
// by the model-B displacement term. By default the engine uses the live
// resident count, which is correct once the cache has warmed up.
func WithCacheOccupancy(nc float64) Option {
	return func(c *config) error {
		if nc < 0 || math.IsNaN(nc) {
			return fmt.Errorf("prefetcher: cache occupancy %v must be non-negative", nc)
		}
		c.nc = nc
		return nil
	}
}

// WithEWMAAlpha sets the estimator's EWMA weight for new observations,
// in (0,1] (default 0.05: slow, stable adaptation).
func WithEWMAAlpha(a float64) Option {
	return func(c *config) error {
		if a <= 0 || a > 1 || math.IsNaN(a) {
			return fmt.Errorf("prefetcher: EWMA weight %v must be in (0,1]", a)
		}
		c.alpha = a
		return nil
	}
}

// WithWorkers sets the size of the speculative-fetch worker pool
// (default 4). Demand fetches run on the caller's goroutine and are not
// limited by the pool.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("prefetcher: worker count %d must be >= 1", n)
		}
		c.workers = n
		return nil
	}
}

// WithQueueDepth bounds the speculative-fetch queue (default 64). When
// the queue is full further prefetches are dropped — and counted — so a
// slow origin cannot pile up unbounded speculative work.
func WithQueueDepth(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("prefetcher: queue depth %d must be >= 1", n)
		}
		c.queueDepth = n
		return nil
	}
}

// WithMaxPrefetch caps how many items may be prefetched per request
// (default 4). 0 disables speculation entirely while keeping the online
// estimators running.
func WithMaxPrefetch(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("prefetcher: max prefetch %d must be >= 0", n)
		}
		c.maxPrefetch = n
		return nil
	}
}

// WithEventHook registers a callback observing engine events (hits,
// misses, prefetch dispatch/completion/drops). The hook is called
// synchronously from the hot path after the engine's locks are released
// — concurrently from however many goroutines drive Get, and never
// under the predictor's compatibility mutex — so it must be fast,
// goroutine-safe, and must not call back into the engine's Get.
func WithEventHook(fn func(Event)) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("prefetcher: nil event hook")
		}
		c.hook = fn
		return nil
	}
}

// WithDemandCoalescing enables the demand-dedup merge window on the
// batched demand path (off by default): a GetMulti session's misses
// wait up to window for overlapping concurrent sessions, and
// everything accumulated travels to each backend as coalesced
// FetchBatch calls of at most maxBatch keys. The window is led by the
// first contributing session on its own goroutine — no background
// timer goroutine exists to leak — so every session's misses pay up to
// one window of extra latency in exchange for fewer, larger origin
// calls; size the window well below the origin round trip it saves.
// Merged sessions keep per-key partial-failure semantics, and
// singleton Gets still join the merged flights (they are never
// delayed by the window themselves). Sessions folded into another
// session's window are counted in Stats.MergedSessions.
func WithDemandCoalescing(window time.Duration, maxBatch int) Option {
	return func(c *config) error {
		if window <= 0 {
			return fmt.Errorf("prefetcher: demand-coalescing window %v must be positive", window)
		}
		if maxBatch < 2 {
			return fmt.Errorf("prefetcher: demand-coalescing max batch %d must be >= 2", maxBatch)
		}
		c.mergeWindow = window
		c.mergeMax = maxBatch
		return nil
	}
}

// WithBackends replaces the single origin Fetcher with a multi-backend
// fetch fabric: demand and speculative fetches are routed across the
// named backends (static weights under fetch.RouteWeighted, estimated
// latency under fetch.RouteLatency — see WithRouting), a failed demand
// fetch fails over to the next backend, speculative candidates routed
// to one batch-capable backend are coalesced into a single FetchBatch
// call, and each link's latency, bandwidth and utilisation are
// estimated separately — the admission threshold is then evaluated
// against the ρ̂′ of the link each candidate would actually use, not
// the global average. Pass nil as New's fetcher when using backends
// (supplying both is a construction error). Per-backend stats appear
// in Stats.Backends.
func WithBackends(backends ...fetch.Backend) Option {
	return func(c *config) error {
		if len(backends) == 0 {
			return fmt.Errorf("prefetcher: WithBackends needs at least one backend")
		}
		c.backends = append([]fetch.Backend(nil), backends...)
		return nil
	}
}

// WithRouting selects how the fetch fabric spreads ids across backends
// (default fetch.RouteWeighted). Only meaningful with WithBackends.
func WithRouting(r fetch.Routing) Option {
	return func(c *config) error {
		if r != fetch.RouteWeighted && r != fetch.RouteLatency {
			return fmt.Errorf("prefetcher: unknown routing strategy %d", r)
		}
		c.routing = r
		return nil
	}
}

// WithHedging enables hedged retries on the demand path: when the
// preferred backend has not answered within the hedge delay (derived
// from that backend's observed p95 latency unless h.Delay is set), the
// next backend in route order is raced against it; the first success
// wins and the loser is cancelled through its context. Failed attempts
// fail over with h.Backoff between retries. With a single backend (or
// a plain fetcher, which the engine wraps as one backend named
// "origin") hedging degrades to sequential retries when h.MaxAttempts
// exceeds one.
func WithHedging(h fetch.Hedging) Option {
	return func(c *config) error {
		if h.Delay < 0 || h.MaxAttempts < 0 || h.Backoff < 0 || h.P95Multiple < 0 {
			return fmt.Errorf("prefetcher: negative hedging parameter %+v", h)
		}
		c.hedging = &h
		return nil
	}
}

// WithBreaker trips a per-backend circuit breaker on persistently
// failing backends: b.Threshold consecutive failures (default 5) open
// the breaker, after which routing steers new candidates away from the
// backend and fetches already routed there fail fast; once b.Cooldown
// (default 1s) has elapsed the breaker half-opens and exactly one probe
// fetch decides — success closes it, failure re-opens it and restarts
// the cooldown. Demand traffic fails over to the remaining healthy
// backends as usual, and only fails fast (fetch.ErrBreakerOpen) when
// every backend's breaker is open. Without WithBackends the engine
// wraps its fetcher as the single backend "origin", so the breaker
// turns a dead origin into immediate errors instead of pile-ups.
// Per-backend state appears in Stats.Backends (BreakerState,
// BreakerOpens).
func WithBreaker(b fetch.Breaker) Option {
	return func(c *config) error {
		if b.Threshold < 0 || b.Cooldown < 0 {
			return fmt.Errorf("prefetcher: negative breaker parameter %+v", b)
		}
		c.breaker = &b
		return nil
	}
}

// WithIdleWatermark schedules speculative dispatch into idle periods —
// the paper's load-impedance result made operational: a speculative
// fetch routed to a backend whose total utilisation ρ̂ sits at or
// above the watermark is parked in that backend's queue and dispatched
// only once the link idles below it. Demand fetches are never gated.
// w is the ρ̂ cutoff in (0,1]; parked and released candidates are
// counted in Stats.Backends (Deferred/Released) and
// Stats.PrefetchDeferred. Without WithBackends the engine wraps its
// fetcher as the single backend "origin" so the gate still applies.
func WithIdleWatermark(w float64) Option {
	return func(c *config) error {
		if w <= 0 || w > 1 || math.IsNaN(w) {
			return fmt.Errorf("prefetcher: idle watermark %v must be in (0,1]", w)
		}
		c.idleWatermark = w
		return nil
	}
}

// validate applies defaults and cross-checks the assembled config.
func (c *config) validate() error {
	if c.predictor == nil {
		c.predictor = NewMarkovPredictor()
	}
	if c.cache != nil && c.cacheFactory != nil {
		return fmt.Errorf("prefetcher: WithCache and WithCacheFactory are mutually exclusive")
	}
	if c.shards == 0 {
		if c.cache != nil {
			c.shards = 1 // a single supplied instance cannot be partitioned
		} else {
			c.shards = defaultShards()
		}
	} else {
		c.shards = nextPow2(c.shards)
	}
	if c.cache != nil && c.shards > 1 {
		return fmt.Errorf("prefetcher: WithCache supplies a single instance but WithShards(%d) needs one cache per shard; use WithCacheFactory or WithShards(1)", c.shards)
	}
	if c.routing != fetch.RouteWeighted && len(c.backends) == 0 && c.hedging == nil && c.idleWatermark == 0 && c.breaker == nil {
		// Without a fetch fabric there is nothing to route; dropping
		// the option silently would let the caller believe latency
		// routing is active.
		return fmt.Errorf("prefetcher: WithRouting requires WithBackends")
	}
	if c.policy.adaptive && c.bandwidth == 0 {
		return fmt.Errorf("prefetcher: policy %s adapts to load and requires WithBandwidth", c.policy.Name())
	}
	if c.bandwidth == 0 {
		// Static policies never consult ρ̂′, but the controller still
		// needs a positive bandwidth to normalise against.
		c.bandwidth = 1
	}
	return nil
}
