package prefetcher

import (
	"repro/internal/analytic"
	"repro/internal/core"
)

// PlanParams are the known operating-point parameters for offline
// capacity planning (the engine estimates these online instead).
type PlanParams struct {
	// Lambda is the aggregate request rate λ (requests/s).
	Lambda float64
	// Bandwidth is the shared link bandwidth b (size units/s).
	Bandwidth float64
	// MeanSize is the mean item size s̄.
	MeanSize float64
	// HPrime is the cache hit ratio h′ without prefetching.
	HPrime float64
	// NC is the steady cache occupancy n̄(C) in items (models B/AB
	// only; leave 0 for model A).
	NC float64
}

func (p PlanParams) analytic() analytic.Params {
	return analytic.Params{
		Lambda: p.Lambda,
		B:      p.Bandwidth,
		SBar:   p.MeanSize,
		HPrime: p.HPrime,
		NC:     p.NC,
	}
}

// RhoPrime returns the no-prefetch utilisation ρ′ = (1−h′)λs̄/b.
func (p PlanParams) RhoPrime() float64 { return p.analytic().RhoPrime() }

// Eval is the full steady-state picture for one prefetching operating
// point (equations 5–27 of the paper).
type Eval struct {
	// H is the hit ratio with prefetching.
	H float64
	// Rho is the link utilisation with prefetching.
	Rho float64
	// RBar is the mean retrieval time with prefetching.
	RBar float64
	// TBar is the mean access time with prefetching; TBarPrime the
	// no-prefetch access time t̄′.
	TBar, TBarPrime float64
	// G is the access improvement t̄′ − t̄ (positive = prefetching
	// pays).
	G float64
	// C is the excess retrieval cost the prefetch traffic imposes on
	// every request (eq. 27).
	C float64
}

func fromAnalytic(e analytic.Eval) Eval {
	return Eval{H: e.H, Rho: e.Rho, RBar: e.RBar, TBar: e.TBar,
		TBarPrime: e.TBarPrime, G: e.G, C: e.C}
}

// SizedClass describes one heterogeneous-size prefetch class for
// EvaluateSized: nF items of probability Prob and size Size per
// request.
type SizedClass struct {
	NF, Prob, Size float64
}

// Planner answers capacity-planning questions offline from known
// parameters: what is the threshold, what gain does a policy buy, what
// does it cost in network load.
type Planner struct {
	p     *core.Planner
	model Model
}

// NewPlanner validates the parameters and returns a Planner for the
// given interaction model.
func NewPlanner(m Model, par PlanParams) (*Planner, error) {
	p, err := core.NewPlanner(m.analytic(), par.analytic())
	if err != nil {
		return nil, err
	}
	return &Planner{p: p, model: m}, nil
}

// Threshold returns p_th: prefetch exactly the items whose access
// probability exceeds this value (eq. 13 / 21).
func (p *Planner) Threshold() (float64, error) { return p.p.Threshold() }

// ShouldPrefetch reports whether an item with the given access
// probability is worth prefetching — the paper's decision rule.
func (p *Planner) ShouldPrefetch(prob float64) (bool, error) {
	return p.p.ShouldPrefetch(prob)
}

// Evaluate returns the steady state for prefetching nF items of
// probability prob per request.
func (p *Planner) Evaluate(nF, prob float64) (Eval, error) {
	e, err := p.p.Evaluate(nF, prob)
	if err != nil {
		return Eval{}, err
	}
	return fromAnalytic(e), nil
}

// AccessTimeNoPrefetch returns the demand-fetch baseline access time
// t̄′ (eq. 5).
func (p *Planner) AccessTimeNoPrefetch() (float64, error) {
	return p.p.Params().AccessTimeNoPrefetch()
}

// MaxPrefetchable returns max(np) = f′/p (eq. 6), the consistency
// bound on how many items can carry probability ≥ prob.
func (p *Planner) MaxPrefetchable(prob float64) float64 {
	return p.p.MaxPrefetchable(prob)
}

// ThresholdSized returns the size-aware threshold for items of the
// given size (the heterogeneous-size extension; under model A the
// threshold is size-independent).
func (p *Planner) ThresholdSized(size float64) (float64, error) {
	return analytic.ThresholdSized(p.model.analytic(), p.p.Params(), size)
}

// EvaluateSized returns the steady state when prefetching a mix of
// size classes.
func (p *Planner) EvaluateSized(classes []SizedClass) (Eval, error) {
	cs := make([]analytic.SizedClass, len(classes))
	for i, c := range classes {
		cs[i] = analytic.SizedClass{NF: c.NF, P: c.Prob, Size: c.Size}
	}
	e, err := analytic.EvaluateSized(p.model.analytic(), p.p.Params(), cs)
	if err != nil {
		return Eval{}, err
	}
	return fromAnalytic(e), nil
}

// ExcessCost returns C (eq. 27): the extra retrieval time per request
// induced by raising utilisation from rhoPrime to rho at request rate
// lambda — the paper's load-impedance result, usable standalone for
// "what does this transfer cost right now" questions.
func ExcessCost(lambda, rho, rhoPrime float64) (float64, error) {
	return analytic.ExcessCost(lambda, rho, rhoPrime)
}
