package prefetcher

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
)

// counter is an atomic counter padded out to its own cache line, so
// adjacent counters bumped from different goroutines never false-share.
// The per-shard counters below are counter values: a bump is one atomic
// add that needs no shard mutex, which keeps accounting off the shard's
// critical sections entirely and makes Stats a wait-free snapshot.
//
//prefetch:cacheline
type counter struct {
	atomic.Int64
	_ [56]byte // 64-byte line minus the 8-byte count
}

// shard is one partition of the engine's keyed hot-path state. Every ID
// maps to exactly one shard (shardFor), and everything guarded by mu —
// the cache, the in-flight table, the size and unused-prefetch maps —
// is only ever touched while holding that shard's mutex, so requests
// for keys in different shards never contend. The counters are padded
// atomics bumped outside the mutex: a Get's critical section is just
// the cache/in-flight/size-map touches. The estimates that must stay
// globally consistent (λ̂, ŝ̄, ĥ′, n̄(F) and hence the threshold) live
// outside the shards, in the engine's shared prefetch.Controller, whose
// counters are contention-safe atomics.
//
// Lock ordering: a goroutine holds at most one shard mutex at a time.
// While holding it, it may take the estimator's stripe locks and the
// engine's quiesce lock (shard → stripe, shard → qmu); nothing ever
// takes a shard mutex while holding either of those, so the order is
// acyclic. The shard's cache eviction callback runs synchronously from
// Put — i.e. under this shard's mutex — and only touches this shard's
// state, which is what makes per-shard caches (rather than one shared
// instance) load-bearing for deadlock freedom.
type shard struct {
	mu sync.Mutex

	cache Cache
	// bcache is cache when it additionally implements ByteCache (the
	// slab-backed byte store does), nil otherwise; the GetBytes fast
	// path type-asserts once at construction instead of per request.
	bcache   ByteCache
	inflight map[ID]*flight
	// sizes remembers the last fetched size of each resident item so
	// hits can report it without refetching.
	sizes map[ID]float64
	// unused marks resident prefetched items not yet consumed by a
	// demand request — the basis of the used/wasted accounting.
	unused map[ID]struct{}

	// Hot-path counters: cache-line-padded atomics, bumped without the
	// shard mutex and summed wait-free by Stats. Each request bumps
	// requests before its outcome counter (hits or misses), and Stats
	// reads the outcome counters before requests, so the aggregate
	// invariants (Hits+Misses ≤ Requests, ratios ≤ 1) hold in every
	// mid-flight snapshot; quiesced snapshots are exact.
	requests, hits, misses, joins                                                 counter
	prefetchIssued, prefetchUsed, prefetchWasted, prefetchDropped, prefetchErrors counter
	// inflightN mirrors len(inflight) (updated under mu alongside the
	// map) so Stats can report in-flight fetches without the lock.
	inflightN counter
}

// shardMapHint pre-sizes the per-shard maps so the first requests do
// not pay incremental map growth: the in-flight table stays small (it
// is bounded by concurrent fetches per shard), while sizes/unused grow
// toward the shard's cache capacity and reach steady state quickly.
const shardMapHint = 64

func newShard(c Cache) *shard {
	bc, _ := c.(ByteCache)
	return &shard{
		cache:    c,
		bcache:   bc,
		inflight: make(map[ID]*flight, shardMapHint),
		sizes:    make(map[ID]float64, shardMapHint),
		unused:   make(map[ID]struct{}, shardMapHint),
	}
}

// consumeUnusedLocked clears id's prefetched-but-unused marker,
// reporting whether it was set — the caller charges prefetchUsed after
// releasing the lock. Called with sh.mu held.
//
//prefetch:hotpath
func (sh *shard) consumeUnusedLocked(id ID) bool {
	if _, ok := sh.unused[id]; ok {
		delete(sh.unused, id)
		return true
	}
	return false
}

// shardFor routes an id to its owning shard. The multiplicative hash
// (Fibonacci hashing) spreads the dense sequential ids that interned key
// spaces produce; taking the top bits keeps the map uniform for any
// power-of-two shard count. With one shard the shift is 64 and the index
// is always 0.
//
//prefetch:hotpath
func (e *Engine) shardFor(id ID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return e.shards[h>>e.shardShift]
}

// nextPow2 rounds n up to the next power of two (n >= 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// defaultShards derives the default shard count from GOMAXPROCS: the
// smallest power of two covering the available parallelism, capped so a
// huge machine does not fragment the default cache into slivers.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return nextPow2(n)
}

// putCache inserts data under id in the shard's cache and keeps the
// engine's live resident count in step: +1 when the id is newly
// admitted, and every eviction — whether triggered by this Put or by
// any other cache call — is debited by the shard's eviction callback
// (onEvict), so the counter stays correct for any Cache that reports
// its evictions. Called with sh.mu held.
//
//prefetch:hotpath
func (e *Engine) putCache(sh *shard, id ID, data any) {
	fresh := !sh.cache.Contains(id)
	sh.cache.Put(id, data)
	if fresh {
		e.residents.Add(1)
	}
}

// residentSize returns the recorded size of a resident item, defaulting
// to 1 — the same default the fetch paths apply — for entries the engine
// never fetched itself, e.g. items already present in a user-supplied
// prewarmed cache. The fallback is memoised so ŝ̄ and repeated hits see
// a consistent value. Called with sh.mu held.
//
//prefetch:hotpath
func (sh *shard) residentSize(id ID) float64 {
	size, ok := sh.sizes[id]
	if !ok {
		size = 1
		sh.sizes[id] = size
	}
	return size
}

// onEvict wires one shard's cache eviction stream into the engine: the
// live resident count is debited, the Section-4 estimator forgets the
// tag, the size memo is dropped, and a prefetched-but-never-used entry
// is charged as wasted. The callback runs synchronously from whichever
// cache call evicts — always under this shard's mutex, since every
// cache call happens there.
func (e *Engine) onEvict(sh *shard) func(ID) {
	return func(id ID) {
		e.residents.Add(-1)
		e.ctrl.Estimator().OnEvict(cache.ID(id))
		delete(sh.sizes, id)
		if _, ok := sh.unused[id]; ok {
			delete(sh.unused, id)
			sh.prefetchWasted.Add(1)
		}
	}
}
