package prefetcher

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/predict"
	"repro/prefetcher/fetch"
)

// TestGetHitAllocFree pins the PR's headline property as a regression
// test: a cache hit — including its prediction, accounting and dedup'd
// speculative planning — allocates nothing.
func TestGetHitAllocFree(t *testing.T) {
	eng, ids := newHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := eng.Get(ctx, ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("cache-hit Get allocated %v times per call; want 0", allocs)
	}
}

// TestGetMultiAllocFree pins the batched demand path's headline
// property: an all-hit GetMultiInto session — the gather across
// shards, the linearised predictor observation sequence, per-key
// accounting and the session's one speculative plan — allocates
// nothing when the caller reuses its result buffer.
func TestGetMultiAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool Puts by design; pooled steady state is unreachable (CI runs this gate without -race)")
	}
	eng, ids := newHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	const fanout = 8
	session := make([]ID, fanout)
	dst := make([]Item, 0, fanout)
	fill := func(base int) {
		for k := range session {
			session[k] = ids[(base+k)%len(ids)]
		}
	}
	// Warm passes grow the pooled session scratch to the fan-out.
	for w := 0; w < 2; w++ {
		fill(w)
		var err error
		if dst, err = eng.GetMultiInto(ctx, session, dst[:0]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		fill(i)
		var err error
		dst, err = eng.GetMultiInto(ctx, session, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("all-hit GetMultiInto allocated %v times per session; want 0", allocs)
	}
}

// TestFabricBatchDispatchAllocFree pins the routed-speculation
// counterpart of TestGetHitAllocFree: with a multi-backend,
// batch-capable fabric, a steady-state cache hit — prediction, backend
// partitioning, per-link admission, the global-cap trim and the pooled
// batch-job dispatch (dedup finds every candidate resident and returns
// the job to the pool) — allocates nothing. This is the gate the
// routeScratch/batchJob pools exist for.
func TestFabricBatchDispatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool Puts by design; pooled steady state is unreachable (CI runs this gate without -race)")
	}
	eng, err := New(nil,
		WithBackends(
			fetch.Backend{Name: "a", Fetcher: &batchBackend{}},
			fetch.Backend{Name: "b", Fetcher: &batchBackend{}},
		),
		WithBandwidth(1e6),
		WithShards(1),
		WithCache(NewLRUCache(4*64)),
		WithWorkers(1),
		WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	ids := make([]ID, 64)
	for i := range ids {
		ids[i] = ID(i)
	}
	// Two warm passes: the first faults everything in, the second walks
	// the same cycle so every predicted successor is itself resident.
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			if _, err := eng.Get(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := eng.Get(ctx, ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("routed cache-hit Get allocated %v times per call; want 0", allocs)
	}
}

// TestPredictTopIntoAllocFree asserts the pooled prediction path for
// every concurrent model whose hot path is allocation-free by design
// (PPM is exempt: its escape blend inherently builds per-call maps).
func TestPredictTopIntoAllocFree(t *testing.T) {
	models := map[string]predict.CoupledPredictor{
		"markov1":    predict.NewConcurrentMarkov1(),
		"popularity": predict.NewConcurrentPopularity(16),
		"lz78":       predict.NewConcurrentLZ78(),
		"depgraph":   predict.NewConcurrentDependencyGraph(2),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			const items = 64
			for pass := 0; pass < 3; pass++ {
				for i := 0; i < items; i++ {
					m.ObserveAndPredictTop(cache.ID(i), 0)
				}
			}
			buf := make([]predict.Prediction, 0, 8)
			i := 0
			allocs := testing.AllocsPerRun(500, func() {
				buf = m.ObserveAndPredictTopInto(cache.ID(i%items), 2, buf[:0])
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s: ObserveAndPredictTopInto allocated %v times per call; want 0", name, allocs)
			}
		})
	}
}

// TestPredictTopIntoMatchesPredictTop pins the Into contract: for every
// concurrent model, PredictTopInto appends exactly PredictTop(k) (which
// the existing property tests tie to Predict()[:k]).
func TestPredictTopIntoMatchesPredictTop(t *testing.T) {
	models := map[string]predict.ConcurrentPredictor{
		"markov1":    predict.NewConcurrentMarkov1(),
		"popularity": predict.NewConcurrentPopularity(16),
		"lz78":       predict.NewConcurrentLZ78(),
		"depgraph":   predict.NewConcurrentDependencyGraph(3),
		"ppm":        predict.NewConcurrentPPM(2),
	}
	seq := []int{1, 2, 3, 1, 2, 4, 1, 3, 2, 2, 5, 1, 2, 3, 4, 5, 1, 2}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			buf := make([]predict.Prediction, 0, 8)
			for _, id := range seq {
				m.Observe(cache.ID(id))
				for k := 1; k <= 4; k++ {
					want := m.PredictTop(k)
					got := m.PredictTopInto(buf[:0], k)
					if len(got) != len(want) {
						t.Fatalf("%s: PredictTopInto(k=%d) returned %d candidates, PredictTop %d", name, k, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: PredictTopInto(k=%d)[%d] = %+v, PredictTop = %+v", name, k, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestStatsWaitFreeMatchesEventLog drives concurrent load while a
// dedicated goroutine hammers Stats — the wait-free snapshot must stay
// internally consistent mid-flight (ratios in [0,1], outcome counters
// never exceeding requests) and, once traffic quiesces, must equal the
// independently tallied event log exactly, which is the locked
// aggregation the padded atomic counters replaced.
func TestStatsWaitFreeMatchesEventLog(t *testing.T) {
	var tally struct {
		hits, misses, joins                   atomic.Int64
		issued, done, dropped, errors, defer_ atomic.Int64
	}
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 2}, nil
	})
	eng, err := New(fetcher,
		WithBandwidth(1e6),
		WithShards(4),
		WithCacheFactory(func(i, n int) Cache { return NewSLRUCache(64, 32) }),
		WithWorkers(4),
		WithMaxPrefetch(2),
		WithEventHook(func(ev Event) {
			switch ev.Type {
			case EventHit:
				tally.hits.Add(1)
			case EventMiss:
				tally.misses.Add(1)
			case EventJoin:
				tally.joins.Add(1)
			case EventPrefetchIssued:
				tally.issued.Add(1)
			case EventPrefetchDone:
				tally.done.Add(1)
			case EventPrefetchDropped:
				tally.dropped.Add(1)
			case EventPrefetchError:
				tally.errors.Add(1)
			case EventPrefetchDeferred:
				tally.defer_.Add(1)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const (
		clients  = 8
		requests = 2000
	)
	ctx := context.Background()
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := eng.Stats()
			if st.Hits+st.Misses > st.Requests {
				t.Errorf("mid-flight snapshot broke the outcome invariant: hits=%d misses=%d requests=%d",
					st.Hits, st.Misses, st.Requests)
				return
			}
			if r := st.HitRatio(); r < 0 || r > 1 {
				t.Errorf("mid-flight hit ratio %v outside [0,1]", r)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				id := ID((c*31 + i) % 512)
				if _, err := eng.Get(ctx, id); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if want := int64(clients * requests); st.Requests != want {
		t.Fatalf("requests = %d, want %d", st.Requests, want)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Fatalf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	if got, want := st.Hits, tally.hits.Load(); got != want {
		t.Fatalf("Stats.Hits = %d, event log counted %d", got, want)
	}
	// EventMiss is only emitted by the fetching request; joiners and
	// requests served by a concurrent fill count as misses without one.
	if got, want := st.Misses, tally.misses.Load(); got < want {
		t.Fatalf("Stats.Misses = %d < %d EventMiss emissions", got, want)
	}
	if got, want := st.Joins, tally.joins.Load(); got > want {
		t.Fatalf("Stats.Joins = %d > %d EventJoin emissions (joins count once per request)", got, want)
	}
	if got, want := st.PrefetchIssued, tally.issued.Load(); got != want {
		t.Fatalf("Stats.PrefetchIssued = %d, event log counted %d", got, want)
	}
	if got, want := st.PrefetchDropped, tally.dropped.Load(); got != want {
		t.Fatalf("Stats.PrefetchDropped = %d, event log counted %d", got, want)
	}
	if got, want := st.PrefetchErrors, tally.errors.Load(); got != want {
		t.Fatalf("Stats.PrefetchErrors = %d, event log counted %d", got, want)
	}
	if done := tally.done.Load(); st.PrefetchIssued != done {
		t.Fatalf("issued %d prefetches but %d completed after quiesce", st.PrefetchIssued, done)
	}
	if st.PrefetchUsed+st.PrefetchWasted > st.PrefetchIssued {
		t.Fatalf("used %d + wasted %d > issued %d", st.PrefetchUsed, st.PrefetchWasted, st.PrefetchIssued)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", st.InFlight)
	}
}
