// Package prefetcher is the public face of the reproduction: a
// concurrency-safe, context-aware speculative prefetch engine built
// around the paper's adaptive threshold rule — prefetch exclusively the
// items whose access probability exceeds p_th = ρ′ (interaction model
// A) or ρ′ + h′/n̄(C) (model B), where both quantities are estimated
// online while prefetching runs (the Section-4 tagged-cache algorithm).
//
// The Engine wires four small pluggable interfaces together:
//
//	Fetcher   — retrieves items from the origin (yours to implement)
//	Predictor — online access model (Markov-1, LZ78, PPM, … provided)
//	Cache     — bounded client-side store (LRU, SLRU, … provided)
//	Clock     — time source (wall clock by default, manual for tests)
//
// Construction uses functional options:
//
//	eng, err := prefetcher.New(fetcher,
//		prefetcher.WithBandwidth(50),
//		prefetcher.WithCache(prefetcher.NewLRUCache(1024)),
//		prefetcher.WithPredictor(prefetcher.NewMarkovPredictor()),
//		prefetcher.WithWorkers(8),
//	)
//
// The hot path is Get: it records the request with the online
// estimator, serves the item from cache or fetches it on demand, then
// dispatches speculative fetches for every above-threshold prediction
// through a bounded worker pool. A demand Get for an item whose
// speculative fetch is already in flight joins that fetch instead of
// refetching. Stats returns a snapshot of the live estimates (ĥ′,
// ρ̂′, p̂_th) and the prefetch hit/waste counters.
//
// Correlated lookups go through GetMulti / GetMultiInto, the batched
// demand path: the session's keys are grouped by shard so each shard
// lock is taken once, hits are served and in-flight fetches joined per
// key, and the remaining misses are coalesced into one BatchFetcher
// demand batch per backend (degrading to per-key fetches when the
// backend cannot batch or returns a malformed reply). Results align
// index-for-index with the requested ids; failures are per key — a
// *MultiError carries one KeyError per failed id while successful keys
// are still filled in, and duplicate ids within a session are fetched
// once. The predictor observes the session in request order exactly as
// the equivalent Get loop would, with one speculative plan issued from
// the session's last key. WithDemandCoalescing opens a short merge
// window in which misses from concurrent sessions bound for the same
// backend share one batch — off by default; the first contributing
// session leads the window on its own goroutine, so the option adds no
// background goroutine and Close/Quiesce cannot strand a window.
// Stats.MultiGets, Stats.BatchedKeys and Stats.MergedSessions account
// for the path.
//
// # Byte views and buffer ownership
//
// Payload-oriented callers use the byte path: GetBytes appends the
// item's []byte payload to a caller-owned dst buffer and returns the
// extended slice, GetBytesLen probes the stored length without copying
// a body, and GetMultiBytes packs a whole session into one buffer with
// a ByteRange per key. The ownership contract is strict and symmetric:
//
//   - The engine never retains dst or any slice derived from it. What
//     GetBytes returns is the caller's buffer, safe to reuse, pool, or
//     mutate freely — the copy happened under the shard lock, so the
//     bytes cannot be torn by a concurrent eviction or overwrite.
//   - The caller, in turn, never receives a view into the engine's
//     storage. There is no zero-copy read through the public API —
//     internal arena views (slab.View) die inside the shard critical
//     section; by the time GetBytes returns, the payload has been
//     copied out. Callers must not assume otherwise and must not
//     retain slices handed to a Fetcher's Item.Data after returning
//     it: once an item is admitted, the storage layer owns that copy.
//
// The byte path serves items whose Data is []byte; an item holding any
// other payload type fails with ErrNotBytes after full hit accounting
// (use Get for mixed-type workloads). With a pooled dst the whole path
// — hit classification, copy, accounting, speculative planning — is
// allocation-free in steady state, gated by TestGetBytesAllocFree.
//
// By default payloads live in the boxed per-shard cache. For large
// resident sets, WithCacheFactory can mount repro/prefetcher/bytestore
// instead: a pointer-free slab arena (repro/internal/slab) that packs
// payloads into large segments and indexes them through flat integer
// tables, so the garbage collector scans O(#segments) words instead of
// O(#entries) boxed values. Byte-budgeted eviction happens by segment
// rotation with per-id callbacks that keep the engine's size and waste
// accounting exact; the entry-count policy layer (LRU/SLRU/clock/…)
// keeps driving recency eviction on top.
//
// Internally the keyed state — cache, in-flight dedup, size and
// used/wasted accounting — is partitioned across power-of-two shards
// (WithShards, default GOMAXPROCS-derived), each behind its own mutex,
// so concurrent Gets on disjoint keys do not contend. The adaptive
// policy's estimates stay global: one shared controller aggregates λ̂,
// ŝ̄, ĥ′ and n̄(F) with atomic counters, so Threshold and Stats report
// one globally consistent operating point at any shard count.
//
// The access model is shared across shards but is not a serialisation
// point: a predictor implementing ConcurrentPredictor (every built-in
// constructor) is called lock-free from all shards at once — internally
// it linearises the request stream (an atomic swap chain for Markov and
// the LZ78 parse, a short history mutex for PPM and the dependency
// graph) so cross-shard transitions are still learned, while its count
// tables are striped and atomic (the LZ78 trie grows by CAS child
// insertion). A plain Predictor plugin
// instead runs under a compatibility mutex, one call at a time, and
// caps throughput however many shards the engine has;
// Stats.PredictorLockFree reports which path is active. Predictors
// implementing TopPredictor serve the hot path with PredictTop(k) — the
// bounded prefix the policies can actually admit — instead of the full
// sorted distribution, and the TopIntoPredictor form appends into a
// pooled per-request buffer.
//
// The demand hot path is allocation-free in steady state: prediction
// candidates land in pooled buffers, in-flight fetches are pooled
// flight objects whose completion channels are recycled when no joiner
// forced a close, and the per-shard counters are cache-line-padded
// atomics bumped outside the shard mutexes — which also makes Stats a
// wait-free snapshot: it reads no locks, never stalls a Get, and is
// exact whenever traffic quiesces.
//
// The origin side can be a single Fetcher or a backend fetch fabric
// (package repro/prefetcher/fetch, assembled with WithBackends): named
// backends with static-weight or estimated-latency routing, failover
// and hedged retries on the demand path (WithHedging — the next
// backend is raced once the preferred one overruns its p95-derived
// hedge delay, the loser cancelled via context), and batch coalescing
// of adjacent speculative candidates for backends implementing
// BatchFetcher. Each backend link carries its own latency, bandwidth
// and utilisation estimators, and the admission threshold for a
// candidate is evaluated against the ρ̂′ of the link its fetch would
// actually use. WithIdleWatermark adds the paper's load-impedance
// result as a dispatch rule: speculative fetches for a link whose ρ̂
// sits above the watermark are parked and dispatched only in that
// link's idle periods (demand fetches are never gated). WithBreaker
// trips persistently failing backends open — routing steers around
// them, fetches already routed there fail fast, and a half-open probe
// after the cooldown re-admits a healed backend. Per-backend counters,
// link estimates and breaker state appear in Stats.Backends. Each
// fetch.Backend can additionally bound its attempts: DemandTimeout
// caps every demand attempt (each hedge, retry and demand batch gets
// its own budget under the caller's context, so a stuck connection
// becomes a failover) and SpeculativeTimeout independently caps
// speculative fetches and batches.
//
// # Backend adapters
//
// Two real-backend adapters satisfy the fabric's Fetcher/BatchFetcher
// contract out of the box. Package repro/prefetcher/fetch/httpfetch
// maps ids onto GET requests against an HTTP origin over a pooled,
// HTTP/2-capable transport, with bounded single-allocation body
// reads, and batches either through a framed wire endpoint or bounded
// parallel fan-out; repro/prefetcher/fetch/fsfetch maps ids onto
// bounded whole-file reads under a root directory. An adapter must
// honour ctx cancellation promptly (hedge losers and expired attempt
// budgets cancel through it), be safe for concurrent use from demand,
// hedge and speculative-worker goroutines at once, and return one
// Item per requested id in request order from FetchBatch — a short,
// misordered or failed batch fails whole, which the demand path then
// degrades to per-key fallback fetches. Command cmd/prefetchd wires
// these adapters into a runnable caching-proxy daemon.
//
// # Invariants
//
// The package maintains a set of concurrency and allocation invariants
// that the repo's own static analyzers (cmd/prefetchvet, built from
// internal/lint) enforce on every build:
//
//   - Hot-path functions are annotated //prefetch:hotpath and must not
//     allocate — neither directly nor through any same-package callee.
//     Buffers on these paths are caller-supplied or drawn from a
//     sync.Pool; deliberate cold-branch allocations carry a
//     //lint:allow hotpathalloc waiver with a reason (hotpathalloc).
//   - No blocking operation runs while a shard mutex is held, and
//     every shard-mutex Lock pairs with an Unlock on all exit paths;
//     the queue push in finishEnqueue happens under a shard lock via
//     non-blocking select precisely to respect this (lockscope).
//   - The per-shard counter block is annotated //prefetch:cacheline
//     and pads to whole 64-byte cache lines, so two shards' atomics
//     never share a line; 64-bit atomic fields stay 8-aligned even on
//     32-bit layouts (atomicalign).
//   - Pooled objects — flights, prediction buffers, route scratch,
//     batch jobs — are returned to their pool on every path and never
//     touched after the Put; ownership transfers (a batch job pushed
//     to the worker queue) are documented at the transfer point
//     (poolhygiene).
//   - Library code never mints context.Background()/TODO(): contexts
//     flow in from the caller, and the engine's own lifecycle root is
//     created once in New and cancelled in Close (ctxflow).
//
// Four package-level dataflow analyzers guard the cross-function
// concurrency contracts on top of those lexical rules:
//
//   - Lock order is acyclic (lockorder). The only compound edge the
//     tree permits is shard.mu → Engine.qmu: a shard may push a
//     speculative candidate onto the engine's queue while holding its
//     own mutex. Everything else — estimator stripes, the controller's
//     history mutex, the fabric's queue and backend-state locks, the
//     demand-merge window's demandMerger.mu — is a
//     leaf: no code acquires any lock while holding one of them, and no
//     code acquires a shard mutex while holding any other lock. The
//     batch path observes the same order by construction: gatherMulti
//     holds at most one shard mutex at a time (keys are grouped so each
//     shard's classification completes before the next lock), and batch
//     completion re-locks each key's shard individually. Lock
//     handoffs (serveResident unlocking the shard mutex its caller
//     took) are modelled, not waived.
//   - A field accessed through sync/atomic is atomic everywhere
//     (atomicmix). Ownership per hot struct: the per-shard counter
//     block, the controller's EWMA and rate words, and the fabric's
//     per-backend in-flight/latency words are atomic-only — no plain
//     access, no lock. Fields that a struct's mutex serialises are
//     plain-only. The one sanctioned mix — a plain reset of an
//     atomic-written word inside a section that holds the struct's
//     write lock and has excluded all atomic writers — carries a
//     //lint:allow atomicmix waiver naming that lock.
//   - Every goroutine has a lifecycle tie (goroutinelife): workers are
//     WaitGroup-accounted, drainers select on a close barrier or
//     ctx.Done(), hedged fetches run under a deferred-cancel context.
//     Close reaps them all; the lifecycle tests assert the reap with
//     testutil.ExpectNoLeaks.
//   - Channel ownership is single-writer (chanlife): nothing sends on
//     a channel another function may close, and library-code sends are
//     never unconditional — each runs in a select with an escape arm
//     or on a channel whose buffer provably bounds it.
//
// For offline capacity planning — what threshold, what gain, what
// cost, from known parameters instead of live estimates — use Planner.
package prefetcher
