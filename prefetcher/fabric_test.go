package prefetcher

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/prefetcher/fetch"
)

// okBackend answers immediately with size-1 items.
type okBackend struct {
	calls atomic.Int64
}

func (b *okBackend) Fetch(ctx context.Context, id fetch.ID) (fetch.Item, error) {
	b.calls.Add(1)
	return fetch.Item{ID: id, Size: 1}, nil
}

// downBackend always errors.
type downBackend struct {
	calls atomic.Int64
}

func (b *downBackend) Fetch(ctx context.Context, id fetch.ID) (fetch.Item, error) {
	b.calls.Add(1)
	return fetch.Item{}, errors.New("backend down")
}

// hangBackend blocks until its context is cancelled, counting entries
// and observed cancellations.
type hangBackend struct {
	entered   atomic.Int64
	cancelled atomic.Int64
}

func (b *hangBackend) Fetch(ctx context.Context, id fetch.ID) (fetch.Item, error) {
	b.entered.Add(1)
	<-ctx.Done()
	b.cancelled.Add(1)
	return fetch.Item{}, ctx.Err()
}

// batchBackend supports FetchBatch and records batch shapes.
type batchBackend struct {
	okBackend
	batches atomic.Int64
	items   atomic.Int64
}

func (b *batchBackend) FetchBatch(ctx context.Context, ids []fetch.ID) ([]fetch.Item, error) {
	b.batches.Add(1)
	b.items.Add(int64(len(ids)))
	out := make([]fetch.Item, len(ids))
	for i, id := range ids {
		out[i] = fetch.Item{ID: id, Size: 1}
	}
	return out, nil
}

func TestWithBackendsValidation(t *testing.T) {
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1}, nil
	})
	ok := fetch.Backend{Name: "a", Fetcher: &okBackend{}}
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) without backends must error")
	}
	if _, err := New(fetcher, WithBackends(ok)); err == nil {
		t.Fatal("both a fetcher and WithBackends must error")
	}
	if _, err := New(nil, WithBackends()); err == nil {
		t.Fatal("WithBackends() with no backends must error")
	}
	if _, err := New(nil, WithBackends(ok), WithIdleWatermark(2)); err == nil {
		t.Fatal("out-of-range watermark must error")
	}
	if _, err := New(nil, WithBackends(ok), WithHedging(fetch.Hedging{MaxAttempts: -1})); err == nil {
		t.Fatal("negative hedging must error")
	}
	if _, err := New(nil, WithBackends(ok), WithRouting(fetch.Routing(99))); err == nil {
		t.Fatal("unknown routing must error")
	}
	if _, err := New(fetcher, WithBandwidth(100), WithRouting(fetch.RouteLatency)); err == nil {
		t.Fatal("WithRouting without a fetch fabric must error, not be silently dropped")
	}
	eng, err := New(nil, WithBackends(ok), WithBandwidth(100))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Get(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if len(st.Backends) != 1 || st.Backends[0].Name != "a" || st.Backends[0].Demand != 1 {
		t.Fatalf("Stats.Backends = %+v", st.Backends)
	}
}

func TestSingleFetcherWrappedForIdleGate(t *testing.T) {
	var calls atomic.Int64
	fetcher := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		calls.Add(1)
		return Item{ID: id, Size: 1}, nil
	})
	eng, err := New(fetcher, WithBandwidth(100), WithIdleWatermark(0.9))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Get(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if len(st.Backends) != 1 || st.Backends[0].Name != "origin" {
		t.Fatalf("plain fetcher must be wrapped as the origin backend: %+v", st.Backends)
	}
	if calls.Load() == 0 {
		t.Fatal("wrapped fetcher never called")
	}
}

// TestBackendFailoverUnderLoad drives concurrent demand traffic at a
// fabric whose preferred backend is down: every Get must succeed via
// failover, under -race.
func TestBackendFailoverUnderLoad(t *testing.T) {
	bad := &downBackend{}
	good := &okBackend{}
	eng, err := New(nil,
		WithBandwidth(1e6),
		WithBackends(
			fetch.Backend{Name: "bad", Fetcher: bad, Weight: 1e9},
			fetch.Backend{Name: "good", Fetcher: good, Weight: 1e-9},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := eng.Get(ctx, ID(g*1000+i%50)); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := eng.Stats()
	if len(st.Backends) != 2 {
		t.Fatalf("backends = %+v", st.Backends)
	}
	if st.Backends[0].Errors == 0 {
		t.Fatal("the down backend was never tried (routing weight should prefer it)")
	}
	if st.Backends[1].Retries == 0 {
		t.Fatal("no failover retries recorded on the good backend")
	}
}

// TestCloseCancelsHedgedSpeculativeFetches checks the lifecycle
// promise: speculative fetches hung inside backends are cancelled
// promptly by Close, every backend invocation observes its context
// ending, and no goroutine leaks.
func TestCloseCancelsHedgedSpeculativeFetches(t *testing.T) {
	testutil.ExpectNoLeaks(t)

	hangA := &hangBackend{}
	hangB := &hangBackend{}
	eng, err := New(nil,
		WithBandwidth(1e6),
		WithPolicy(StaticThreshold(0)),
		WithHedging(fetch.Hedging{Delay: time.Millisecond}),
		WithBackends(
			fetch.Backend{Name: "a", Fetcher: hangA},
			fetch.Backend{Name: "b", Fetcher: hangB},
		),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Demand Gets run under a caller context we cancel; their hedged
	// attempts hang in the backends until then. A couple of sequential
	// requests also plant predictions so speculative fetches hang too.
	ctx, cancelGets := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_, err := eng.Get(ctx, ID(i%2)) // tight loop: 0,1,0 → predictions exist
				if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrClosed) {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	// Wait until fetches are actually hanging inside the backends.
	deadline := time.Now().Add(2 * time.Second)
	for hangA.entered.Load()+hangB.entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no backend fetch ever started")
		}
		time.Sleep(time.Millisecond)
	}

	cancelGets() // demand fetches (and their hedges) unblock via the caller ctx
	wg.Wait()
	start := time.Now()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with hung speculative fetches", elapsed)
	}

	// Every backend entry must have observed its cancellation…
	deadline = time.Now().Add(2 * time.Second)
	for {
		entered := hangA.entered.Load() + hangB.entered.Load()
		cancelled := hangA.cancelled.Load() + hangB.cancelled.Load()
		if entered == cancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d backend fetches entered, only %d saw cancellation", entered, cancelled)
		}
		time.Sleep(time.Millisecond)
	}
	// …and the goroutine count must settle back to the ExpectNoLeaks
	// baseline (workers, drainers, hedge goroutines all gone) — checked
	// exactly, with no slack, when the test ends.
}

// TestPerBackendRhoPrimeDistinct pins the tentpole estimate: each link
// reports its own ρ̂′, reflecting the demand traffic routed to it.
func TestPerBackendRhoPrimeDistinct(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	eng, err := New(nil,
		WithBandwidth(1e6),
		WithClock(clock),
		WithEWMAAlpha(0.5),
		WithPolicy(NoPrefetch()),
		WithBackends(
			// Same capacity, 4:1 routing weight: the heavy link must
			// end up with the higher demand utilisation.
			fetch.Backend{Name: "heavy", Fetcher: &okBackend{}, Weight: 4, Bandwidth: 1000},
			fetch.Backend{Name: "light", Fetcher: &okBackend{}, Weight: 1, Bandwidth: 1000},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	for i := 0; i < 2000; i++ {
		clock.AdvanceSeconds(0.001)
		if _, err := eng.Get(ctx, ID(i)); err != nil { // unique ids: all misses
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if len(st.Backends) != 2 {
		t.Fatalf("backends = %+v", st.Backends)
	}
	heavy, light := st.Backends[0], st.Backends[1]
	if heavy.Demand <= light.Demand {
		t.Fatalf("weighted routing: heavy=%d light=%d demand fetches", heavy.Demand, light.Demand)
	}
	if heavy.RhoPrime <= 0 || light.RhoPrime <= 0 {
		t.Fatalf("both links need a live ρ̂′: heavy=%v light=%v", heavy.RhoPrime, light.RhoPrime)
	}
	if heavy.RhoPrime <= light.RhoPrime {
		t.Fatalf("ρ̂′ must differ with the load: heavy=%v light=%v", heavy.RhoPrime, light.RhoPrime)
	}
}

// TestIdleWatermarkDefersAndReleases drives the engine into a busy
// period on a thin link, sees admitted candidates parked instead of
// dispatched, then idles the link and sees them released and fetched.
func TestIdleWatermarkDefersAndReleases(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	backend := &okBackend{}
	eng, err := New(nil,
		WithBandwidth(1e6),
		WithClock(clock),
		WithEWMAAlpha(0.5),
		WithPolicy(StaticThreshold(0)), // admit every prediction: the gate does the load control
		WithIdleWatermark(0.5),
		// A 4-item cache keeps predicted candidates evictable, so
		// released ids are still worth fetching when the link idles.
		WithCache(NewLRUCache(4)),
		WithBackends(fetch.Backend{Name: "thin", Fetcher: backend, Bandwidth: 10}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	// Alternate a two-page loop (so the Markov model always has
	// predictions) with fresh ids (so demand misses keep the link
	// saturated): 200 fetches/s of size 1 against b=10 pins ρ̂ at 1.
	for i := 0; i < 200; i++ {
		clock.AdvanceSeconds(0.01)
		if _, err := eng.Get(ctx, ID(i%2)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Get(ctx, ID(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.PrefetchDeferred == 0 {
		t.Fatalf("no candidates deferred under saturation: %+v", st.Backends[0])
	}
	if st.Backends[0].Speculative != 0 {
		t.Fatalf("speculative traffic dispatched through a saturated gate: %+v", st.Backends[0])
	}

	// Idle period: with the clock advancing and no demand traffic, ρ̂
	// decays and the drainer (bounded wall-time polls) releases parked
	// candidates, which now dispatch as speculative fetches.
	deadline := time.Now().Add(5 * time.Second)
	for {
		clock.AdvanceSeconds(10)
		st = eng.Stats()
		if st.Backends[0].Released > 0 && st.Backends[0].Speculative > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parked candidates never released and fetched: %+v", st.Backends[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
	qctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := eng.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}
}

// TestEngineBatchesAdjacentCandidates checks that several candidates
// admitted for one batch-capable backend travel as one FetchBatch call.
func TestEngineBatchesAdjacentCandidates(t *testing.T) {
	backend := &batchBackend{}
	eng, err := New(nil,
		WithBandwidth(1e6),
		WithPolicy(TopK(2)),
		WithMaxPrefetch(2),
		// A 1-item cache: the trained successor pages are evicted by
		// the time page 1 recurs, so both candidates need fetching.
		WithCache(NewLRUCache(1)),
		WithBackends(fetch.Backend{Name: "batched", Fetcher: backend}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	// 1→2 and 1→3 transitions make two predictions for page 1.
	for _, id := range []ID{1, 2, 1, 3, 1} {
		if _, err := eng.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
		if err := eng.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Backends[0].BatchCalls == 0 {
		t.Fatalf("no batch calls despite a batch-capable backend: %+v", st.Backends[0])
	}
	if backend.items.Load() < 2 {
		t.Fatalf("batched %d items, want >= 2", backend.items.Load())
	}
}

// TestFabricEngineLifecycleRace hammers Get/Stats/Quiesce across
// shards while backends hedge and the gate defers, then closes — the
// -race lifecycle test for the fabric path.
func TestFabricEngineLifecycleRace(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	eng, err := New(nil,
		WithBandwidth(1e6),
		WithShards(4),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(64) }),
		WithPolicy(StaticThreshold(0)),
		WithHedging(fetch.Hedging{Delay: 500 * time.Microsecond}),
		WithIdleWatermark(0.8),
		WithRouting(fetch.RouteLatency),
		WithBackends(
			fetch.Backend{Name: "a", Fetcher: &okBackend{}, Bandwidth: 1e5},
			fetch.Backend{Name: "b", Fetcher: &batchBackend{}, Bandwidth: 1e5},
		),
	)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				id := ID((g*37 + i) % 200)
				if _, err := eng.Get(ctx, id); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("Get: %v", err)
					return
				}
				if i%50 == 0 {
					_ = eng.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	_ = eng.Quiesce(qctx)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent, and closed-engine fetches fail cleanly.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Get(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v", err)
	}
}

// TestEngineBreakerFailsFastAndRecovers wires WithBreaker around a
// single failing origin: once the breaker trips, demand Gets fail fast
// with fetch.ErrBreakerOpen instead of hammering the dead origin, the
// state is visible in Stats.Backends, and a healed origin is re-admitted
// by the half-open probe after the cooldown.
func TestEngineBreakerFailsFastAndRecovers(t *testing.T) {
	var broken atomic.Bool
	var calls atomic.Int64
	broken.Store(true)
	origin := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		calls.Add(1)
		if broken.Load() {
			return Item{}, errors.New("origin down")
		}
		return Item{ID: id, Size: 1}, nil
	})
	clk := NewManualClock(time.Unix(0, 0))
	eng, err := New(origin,
		WithBandwidth(1e6),
		WithShards(1),
		WithClock(clk),
		WithBreaker(fetch.Breaker{Threshold: 3, Cooldown: time.Second}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := eng.Get(ctx, ID(i)); err == nil {
			t.Fatalf("Get %d succeeded against a broken origin", i)
		}
	}
	st := eng.Stats()
	if len(st.Backends) != 1 || st.Backends[0].BreakerState != "open" {
		t.Fatalf("breaker not open after threshold failures: %+v", st.Backends)
	}
	if st.Backends[0].BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.Backends[0].BreakerOpens)
	}

	// Tripped: Gets fail fast without reaching the origin.
	before := calls.Load()
	if _, err := eng.Get(ctx, 100); !errors.Is(err, fetch.ErrBreakerOpen) {
		t.Fatalf("Get while open = %v, want fetch.ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a demand fetch reach the origin")
	}

	// Origin heals; after the cooldown the probe closes the breaker and
	// traffic flows again.
	broken.Store(false)
	clk.Advance(2 * time.Second)
	if _, err := eng.Get(ctx, 101); err != nil {
		t.Fatalf("probe Get after heal: %v", err)
	}
	if st := eng.Stats(); st.Backends[0].BreakerState != "closed" {
		t.Fatalf("breaker = %q after successful probe, want closed", st.Backends[0].BreakerState)
	}
	if _, err := eng.Get(ctx, 102); err != nil {
		t.Fatal(err)
	}
}
