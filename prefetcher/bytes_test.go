package prefetcher

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// bytePayload is the deterministic per-id payload the byte-path tests
// fetch and verify against.
func bytePayload(id ID, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(id)*17 + i*3 + 1)
	}
	return b
}

// newByteHitEngine mirrors newHitEngine with []byte payloads: the
// whole catalog resident, Markov successors resident, so sequential
// walks hit exclusively.
func newByteHitEngine(tb testing.TB, extra ...Option) (*Engine, []ID) {
	tb.Helper()
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1, Data: bytePayload(id, 64+int(id)%64)}, nil
	})
	const items = 64
	opts := append([]Option{
		WithBandwidth(1e6),
		WithShards(1),
		WithCache(NewLRUCache(4 * items)),
		WithWorkers(1),
		WithMaxPrefetch(2),
	}, extra...)
	eng, err := New(fetch, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]ID, items)
	for i := range ids {
		ids[i] = ID(i)
	}
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			if _, err := eng.Get(ctx, id); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := eng.Quiesce(ctx); err != nil {
		tb.Fatal(err)
	}
	return eng, ids
}

// TestGetBytesServesHitsAndMisses pins the byte path's contract on a
// boxed cache: misses demand-fetch and append, hits append under the
// shard lock, dst accumulates, and the accounting matches Get's.
func TestGetBytesServesHitsAndMisses(t *testing.T) {
	eng, ids := newByteHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	dst := make([]byte, 0, 256)
	for _, id := range ids {
		out, err := eng.GetBytes(ctx, id, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		if want := bytePayload(id, 64+int(id)%64); !bytes.Equal(out, want) {
			t.Fatalf("GetBytes(%d) = %x, want %x", id, out, want)
		}
	}
	// Accumulation: two hits into one buffer, back to back.
	out, err := eng.GetBytes(ctx, ids[0], dst[:0])
	if err != nil {
		t.Fatal(err)
	}
	n0 := len(out)
	out, err = eng.GetBytes(ctx, ids[1], out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:n0], bytePayload(ids[0], 64+int(ids[0])%64)) ||
		!bytes.Equal(out[n0:], bytePayload(ids[1], 64+int(ids[1])%64)) {
		t.Fatal("GetBytes did not append to the caller's buffer")
	}
	// A genuinely new id is a demand miss served through e.get.
	st0 := eng.Stats()
	fresh := ID(9000)
	out, err = eng.GetBytes(ctx, fresh, dst[:0])
	if err != nil {
		t.Fatal(err)
	}
	if want := bytePayload(fresh, 64+int(fresh)%64); !bytes.Equal(out, want) {
		t.Fatalf("GetBytes miss payload mismatch")
	}
	if st := eng.Stats(); st.Misses != st0.Misses+1 {
		t.Fatalf("miss not accounted: %d -> %d", st0.Misses, st.Misses)
	}
}

func TestGetBytesLen(t *testing.T) {
	eng, ids := newByteHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	for _, id := range ids {
		n, err := eng.GetBytesLen(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if want := 64 + int(id)%64; n != want {
			t.Fatalf("GetBytesLen(%d) = %d, want %d", id, n, want)
		}
	}
	// A miss demand-fetches and reports the fetched length.
	n, err := eng.GetBytesLen(ctx, 9001)
	if err != nil {
		t.Fatal(err)
	}
	if want := 64 + 9001%64; n != want {
		t.Fatalf("GetBytesLen miss = %d, want %d", n, want)
	}
}

// TestGetBytesNotBytes pins the non-byte payload semantics: the item
// stays cached and Get-servable, the byte path reports ErrNotBytes,
// and the hit accounting is not double-counted.
func TestGetBytesNotBytes(t *testing.T) {
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1, Data: fmt.Sprintf("val-%d", id)}, nil
	})
	eng, err := New(fetch,
		WithBandwidth(1e6), WithShards(1),
		WithCache(NewLRUCache(64)), WithWorkers(1), WithMaxPrefetch(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	// Miss path: the fetched payload is not bytes.
	if _, err := eng.GetBytes(ctx, 1, nil); !errors.Is(err, ErrNotBytes) {
		t.Fatalf("GetBytes miss on non-byte payload: err = %v, want ErrNotBytes", err)
	}
	st0 := eng.Stats()
	// Hit path: resident non-byte payload declines the fast path and is
	// served (and counted) once by the boxed machinery.
	if _, err := eng.GetBytes(ctx, 1, nil); !errors.Is(err, ErrNotBytes) {
		t.Fatalf("GetBytes hit on non-byte payload: err = %v, want ErrNotBytes", err)
	}
	if _, err := eng.GetBytesLen(ctx, 1); !errors.Is(err, ErrNotBytes) {
		t.Fatalf("GetBytesLen on non-byte payload: err = %v, want ErrNotBytes", err)
	}
	st := eng.Stats()
	if hits := st.Hits - st0.Hits; hits != 2 {
		t.Fatalf("non-byte hits counted %d times over two requests, want 2", hits)
	}
	// The ordinary path still serves it.
	it, err := eng.Get(ctx, 1)
	if err != nil || it.Data.(string) != "val-1" {
		t.Fatalf("Get after byte refusals = %+v, %v", it, err)
	}
}

// TestGetMultiBytes pins the session byte path on a boxed cache: mixed
// hits and misses pack back to back into buf with index-aligned
// ranges.
func TestGetMultiBytes(t *testing.T) {
	eng, ids := newByteHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	session := []ID{ids[3], 7001, ids[5], ids[3], 7002} // hits, misses, duplicate
	buf := make([]byte, 0, 1024)
	ranges := make([]ByteRange, 0, len(session))
	buf, ranges, err := eng.GetMultiBytes(ctx, session, buf, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != len(session) {
		t.Fatalf("got %d ranges for %d ids", len(ranges), len(session))
	}
	for i, id := range session {
		r := ranges[i]
		if r.Off < 0 || r.Off+r.Len > len(buf) {
			t.Fatalf("range %d out of bounds: %+v (buf %d)", i, r, len(buf))
		}
		want := bytePayload(id, 64+int(id)%64)
		if got := buf[r.Off : r.Off+r.Len]; !bytes.Equal(got, want) {
			t.Fatalf("session[%d]=%d payload mismatch", i, id)
		}
	}
}

// TestGetMultiBytesPartialFailure pins per-key failure semantics:
// failed keys get {-1,-1} ranges and KeyErrors while the rest of the
// session is served.
func TestGetMultiBytesPartialFailure(t *testing.T) {
	fetchErr := errors.New("origin down")
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		if id >= 100 {
			return Item{}, fetchErr
		}
		return Item{ID: id, Size: 1, Data: bytePayload(id, 32)}, nil
	})
	eng, err := New(fetch,
		WithBandwidth(1e6), WithShards(2),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(64) }),
		WithWorkers(1), WithMaxPrefetch(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	session := []ID{1, 100, 2, 101}
	buf, ranges, err := eng.GetMultiBytes(ctx, session, nil, nil)
	var merr *MultiError
	if !errors.As(err, &merr) {
		t.Fatalf("err = %v, want *MultiError", err)
	}
	if len(merr.Errors) != 2 {
		t.Fatalf("%d key errors, want 2", len(merr.Errors))
	}
	for _, ke := range merr.Errors {
		if !errors.Is(ke, fetchErr) {
			t.Fatalf("key error %v does not wrap the origin error", ke)
		}
	}
	for i, id := range session {
		r := ranges[i]
		if id >= 100 {
			if r.Off != -1 || r.Len != -1 {
				t.Fatalf("failed key %d range = %+v, want {-1,-1}", id, r)
			}
			continue
		}
		if !bytes.Equal(buf[r.Off:r.Off+r.Len], bytePayload(id, 32)) {
			t.Fatalf("served key %d payload mismatch", id)
		}
	}
	// Non-byte payloads fail per key with ErrNotBytes.
	strFetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1, Data: "str"}, nil
	})
	eng2, err := New(strFetch,
		WithBandwidth(1e6), WithShards(1),
		WithCache(NewLRUCache(16)), WithWorkers(1), WithMaxPrefetch(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	// Twice: once via the miss assembly, once via the resident-hit path.
	for pass := 0; pass < 2; pass++ {
		_, ranges, err := eng2.GetMultiBytes(ctx, []ID{1, 2}, nil, nil)
		if !errors.As(err, &merr) {
			t.Fatalf("pass %d: err = %v, want *MultiError", pass, err)
		}
		for i, r := range ranges {
			if r.Off != -1 || r.Len != -1 {
				t.Fatalf("pass %d: non-byte key %d range = %+v", pass, i, r)
			}
		}
		for _, ke := range merr.Errors {
			if !errors.Is(ke, ErrNotBytes) {
				t.Fatalf("pass %d: key error %v, want ErrNotBytes", pass, ke)
			}
		}
	}
}

func TestGetBytesClosedAndCancelled(t *testing.T) {
	eng, ids := newByteHitEngine(t)
	ctx := context.Background()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.GetBytes(cctx, ids[0], nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled GetBytes err = %v", err)
	}
	if _, _, err := eng.GetMultiBytes(cctx, ids[:2], nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled GetMultiBytes err = %v", err)
	}
	eng.Close()
	if _, err := eng.GetBytes(ctx, ids[0], nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed GetBytes err = %v", err)
	}
	if _, err := eng.GetBytesLen(ctx, ids[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed GetBytesLen err = %v", err)
	}
	if _, _, err := eng.GetMultiBytes(ctx, ids[:2], nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed GetMultiBytes err = %v", err)
	}
}

// TestGetBytesAllocFree extends the PR 5 gate to the byte path: a
// boxed-cache hit through GetBytes — prediction, accounting, planning
// and the payload append into a reused buffer — allocates nothing.
// (The slab-backed equivalent is gated in prefetcher/bytestore.)
func TestGetBytesAllocFree(t *testing.T) {
	eng, ids := newByteHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	dst := make([]byte, 0, 256)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		dst, err = eng.GetBytes(ctx, ids[i%len(ids)], dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("cache-hit GetBytes allocated %v times per call; want 0", allocs)
	}
}

// TestGetMultiBytesAllocFree: an all-hit byte session with reused
// buffers allocates nothing.
func TestGetMultiBytesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool Puts by design; pooled steady state is unreachable (CI runs this gate without -race)")
	}
	eng, ids := newByteHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	const fanout = 8
	session := make([]ID, fanout)
	buf := make([]byte, 0, 4096)
	ranges := make([]ByteRange, 0, fanout)
	fill := func(base int) {
		for k := range session {
			session[k] = ids[(base+k)%len(ids)]
		}
	}
	for w := 0; w < 2; w++ {
		fill(w)
		var err error
		if buf, ranges, err = eng.GetMultiBytes(ctx, session, buf, ranges); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		fill(i)
		var err error
		buf, ranges, err = eng.GetMultiBytes(ctx, session, buf, ranges)
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("all-hit GetMultiBytes allocated %v times per session; want 0", allocs)
	}
}

// TestGetBytesConcurrent races byte readers against demand-driven
// eviction churn on a small boxed cache: every returned payload must be
// internally consistent (the copy is taken under the shard lock, so a
// concurrent eviction must never yield torn bytes).
func TestGetBytesConcurrent(t *testing.T) {
	fetch := FetcherFunc(func(ctx context.Context, id ID) (Item, error) {
		return Item{ID: id, Size: 1, Data: bytePayload(id, 64+int(id)%64)}, nil
	})
	eng, err := New(fetch,
		WithBandwidth(1e6), WithShards(4),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(16) }),
		WithWorkers(2), WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dst := make([]byte, 0, 256)
			ranges := make([]ByteRange, 0, 4)
			session := make([]ID, 4)
			for i := 0; i < 400; i++ {
				id := ID((c*37 + i) % 200) // far beyond the cache: constant churn
				var err error
				dst, err = eng.GetBytes(ctx, id, dst[:0])
				if err != nil {
					t.Error(err)
					return
				}
				if want := bytePayload(id, 64+int(id)%64); !bytes.Equal(dst, want) {
					t.Errorf("torn GetBytes payload for %d", id)
					return
				}
				for k := range session {
					session[k] = ID((c*37 + i + k) % 200)
				}
				var buf []byte
				buf, ranges, err = eng.GetMultiBytes(ctx, session, dst[:0], ranges)
				if err != nil {
					t.Error(err)
					return
				}
				dst = buf
				for k, id := range session {
					r := ranges[k]
					if want := bytePayload(id, 64+int(id)%64); !bytes.Equal(buf[r.Off:r.Off+r.Len], want) {
						t.Errorf("torn GetMultiBytes payload for %d", id)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
}
