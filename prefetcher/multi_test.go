package prefetcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/prefetcher/fetch"
)

// countingFetcher counts per-id Fetch calls and, when batchOK is set,
// implements BatchFetcher with per-batch call counting. Safe for
// concurrent use.
type countingFetcher struct {
	mu         sync.Mutex
	perID      map[ID]int
	batchCalls int
	batchOK    bool
	// failBatch makes every FetchBatch error (the engine must degrade
	// to per-key fetches); failID fails singleton fetches for one id.
	failBatch bool
	failID    ID
	failErr   error
	delay     time.Duration
}

func newCountingFetcher(batchOK bool) *countingFetcher {
	return &countingFetcher{perID: map[ID]int{}, batchOK: batchOK, failID: -1}
}

func (c *countingFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return Item{}, ctx.Err()
		}
	}
	c.mu.Lock()
	c.perID[id]++
	c.mu.Unlock()
	if id == c.failID {
		return Item{}, c.failErr
	}
	return Item{ID: id, Size: 2, Data: fmt.Sprintf("item-%d", id)}, nil
}

func (c *countingFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	if !c.batchOK {
		return nil, errors.New("no batch support")
	}
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.mu.Lock()
	c.batchCalls++
	fail := c.failBatch
	if !fail {
		for _, id := range ids {
			c.perID[id]++
		}
	}
	c.mu.Unlock()
	if fail {
		return nil, errors.New("batch refused")
	}
	out := make([]Item, len(ids))
	for i, id := range ids {
		out[i] = Item{ID: id, Size: 2, Data: fmt.Sprintf("item-%d", id)}
	}
	return out, nil
}

func (c *countingFetcher) count(id ID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perID[id]
}

func (c *countingFetcher) batches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batchCalls
}

func newMultiEngine(t *testing.T, f Fetcher, extra ...Option) *Engine {
	t.Helper()
	opts := append([]Option{
		WithBandwidth(1e6),
		WithShards(4),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(256) }),
		WithWorkers(1),
		WithPolicy(NoPrefetch()),
	}, extra...)
	eng, err := New(f, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestGetMultiBasic covers the session fundamentals: index-aligned
// results across hits, misses and intra-session duplicates, coalesced
// batch dispatch on a batch-capable fetcher, and the session counters.
func TestGetMultiBasic(t *testing.T) {
	cf := newCountingFetcher(true)
	eng := newMultiEngine(t, cf)
	defer eng.Close()
	ctx := context.Background()

	// Warm two keys so the session mixes hits and misses.
	for _, id := range []ID{1, 2} {
		if _, err := eng.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	ids := []ID{1, 10, 2, 11, 12, 10} // two hits, three misses, one duplicate
	items, err := eng.GetMulti(ctx, ids)
	if err != nil {
		t.Fatalf("GetMulti: %v", err)
	}
	if len(items) != len(ids) {
		t.Fatalf("got %d items for %d ids", len(items), len(ids))
	}
	for i, id := range ids {
		if items[i].ID != id {
			t.Fatalf("items[%d].ID = %d, want %d (results must be index-aligned)", i, items[i].ID, id)
		}
		if items[i].Data != fmt.Sprintf("item-%d", id) {
			t.Fatalf("items[%d] has wrong payload %v", i, items[i].Data)
		}
	}
	for _, id := range ids {
		if n := cf.count(id); n > 1 {
			t.Fatalf("id %d fetched %d times; the session must dedup internally", id, n)
		}
	}
	st := eng.Stats()
	if st.MultiGets != 1 {
		t.Fatalf("Stats.MultiGets = %d, want 1", st.MultiGets)
	}
	if st.BatchedKeys != 3 {
		t.Fatalf("Stats.BatchedKeys = %d, want 3 (misses 10,11,12 in one batch)", st.BatchedKeys)
	}
	if st.Requests != 2+int64(len(ids)) {
		t.Fatalf("Stats.Requests = %d, want %d (each session key counts)", st.Requests, 2+len(ids))
	}
	if cf.batches() != 1 {
		t.Fatalf("FetchBatch called %d times, want 1", cf.batches())
	}

	// The whole session is now resident: an all-hit pass.
	items2, err := eng.GetMulti(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	st2 := eng.Stats()
	if st2.Hits-st.Hits != int64(len(ids)) {
		t.Fatalf("all-hit session added %d hits, want %d", st2.Hits-st.Hits, len(ids))
	}
	for i := range items2 {
		if items2[i].ID != ids[i] {
			t.Fatalf("all-hit items misaligned at %d", i)
		}
	}
}

// TestGetMultiEdgeCases: empty sessions, closed engines and dead
// contexts fail fast without touching counters.
func TestGetMultiEdgeCases(t *testing.T) {
	cf := newCountingFetcher(true)
	eng := newMultiEngine(t, cf)
	ctx := context.Background()

	if items, err := eng.GetMulti(ctx, nil); err != nil || items != nil {
		t.Fatalf("empty session: got (%v, %v), want (nil, nil)", items, err)
	}
	dst := make([]Item, 5, 8)
	out, err := eng.GetMultiInto(ctx, nil, dst)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty Into session: got (%v, %v), want truncated dst", out, err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.GetMulti(cctx, []ID{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: err = %v, want context.Canceled", err)
	}
	eng.Close()
	if _, err := eng.GetMulti(ctx, []ID{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine: err = %v, want ErrClosed", err)
	}
}

// TestGetMultiPartialFailure pins the per-key failure contract on both
// batch shapes: a poisoned key fails alone (its session siblings are
// served), and a refused batch degrades to per-key fallbacks instead
// of failing the session.
func TestGetMultiPartialFailure(t *testing.T) {
	wantErr := errors.New("origin rejected")

	t.Run("poisoned-key", func(t *testing.T) {
		cf := newCountingFetcher(false) // no batch: per-key path
		cf.failID, cf.failErr = 11, wantErr
		eng := newMultiEngine(t, cf)
		defer eng.Close()
		ids := []ID{10, 11, 12}
		items, err := eng.GetMulti(context.Background(), ids)
		var me *MultiError
		if !errors.As(err, &me) {
			t.Fatalf("err = %v, want *MultiError", err)
		}
		if len(me.Errors) != 1 || me.Errors[0].ID != 11 || me.Errors[0].Index != 1 {
			t.Fatalf("MultiError = %+v, want exactly key 11 at index 1", me.Errors)
		}
		if !errors.Is(err, wantErr) {
			t.Fatalf("errors.Is cannot reach the per-key cause through %v", err)
		}
		if items[0].ID != 10 || items[2].ID != 12 {
			t.Fatalf("healthy keys not served: %+v", items)
		}
		if items[1] != (Item{}) {
			t.Fatalf("failed key's Item = %+v, want zero", items[1])
		}
	})

	t.Run("batch-refused-falls-back", func(t *testing.T) {
		cf := newCountingFetcher(true)
		cf.failBatch = true
		cf.failID, cf.failErr = 11, wantErr
		eng := newMultiEngine(t, cf)
		defer eng.Close()
		ids := []ID{10, 11, 12}
		items, err := eng.GetMulti(context.Background(), ids)
		var me *MultiError
		if !errors.As(err, &me) {
			t.Fatalf("err = %v, want *MultiError (batch failure must not fail healthy keys)", err)
		}
		if len(me.Errors) != 1 || me.Errors[0].ID != 11 {
			t.Fatalf("MultiError = %+v, want exactly key 11", me.Errors)
		}
		for _, i := range []int{0, 2} {
			if items[i].ID != ids[i] {
				t.Fatalf("fallback did not serve key %d: %+v", ids[i], items[i])
			}
			if n := cf.count(ids[i]); n != 1 {
				t.Fatalf("key %d fetched %d times via fallback, want 1", ids[i], n)
			}
		}
	})
}

// TestGetMultiVsSingletonRace drives GetMulti sessions against
// concurrent singleton Gets over overlapping keys under -race: every
// key must be fetched at most once (sessions and singletons join the
// same flights) and every returned item must be the right one.
func TestGetMultiVsSingletonRace(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	cf := newCountingFetcher(true)
	eng := newMultiEngine(t, cf, WithQueueDepth(256))
	defer eng.Close()
	ctx := context.Background()

	const (
		goroutines = 8
		rounds     = 50
		keys       = 64 // well under the per-shard cache capacity: nothing evicts
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := make([]ID, 0, 8)
			dst := make([]Item, 0, 8)
			for r := 0; r < rounds; r++ {
				base := ID((g*13 + r*7) % keys)
				if g%2 == 0 {
					session = session[:0]
					for k := 0; k < 8; k++ {
						session = append(session, (base+ID(k))%keys)
					}
					items, err := eng.GetMultiInto(ctx, session, dst[:0])
					if err != nil {
						t.Errorf("GetMulti: %v", err)
						return
					}
					for i := range items {
						if items[i].ID != session[i] {
							t.Errorf("session item %d: got id %d want %d", i, items[i].ID, session[i])
							return
						}
					}
				} else {
					if it, err := eng.Get(ctx, base); err != nil || it.ID != base {
						t.Errorf("Get(%d) = (%+v, %v)", base, it, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for id := ID(0); id < keys; id++ {
		if n := cf.count(id); n > 1 {
			t.Fatalf("key %d fetched %d times; overlapping sessions/singletons must share one flight", id, n)
		}
	}
	st := eng.Stats()
	if st.Hits+st.Misses != st.Requests {
		t.Fatalf("hits %d + misses %d != requests %d after quiesce", st.Hits, st.Misses, st.Requests)
	}
}

// TestGetMultiMergeWindow exercises WithDemandCoalescing end to end:
// concurrent sessions contributing inside one window are merged into
// shared backend batches with per-key completion, nothing double-
// fetches, and the merged-session counter moves.
func TestGetMultiMergeWindow(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	cf := newCountingFetcher(true)
	eng := newMultiEngine(t, cf, WithDemandCoalescing(150*time.Millisecond, 8))
	defer eng.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	start := make(chan struct{})
	sessions := [][]ID{{10, 11, 12, 13}, {20, 21, 22, 23}}
	for _, ids := range sessions {
		wg.Add(1)
		go func(ids []ID) {
			defer wg.Done()
			<-start
			items, err := eng.GetMulti(ctx, ids)
			if err != nil {
				t.Errorf("GetMulti(%v): %v", ids, err)
				return
			}
			for i := range items {
				if items[i].ID != ids[i] {
					t.Errorf("merged session served wrong item at %d: %+v", i, items[i])
					return
				}
			}
		}(ids)
	}
	close(start)
	wg.Wait()
	for _, ids := range sessions {
		for _, id := range ids {
			if n := cf.count(id); n != 1 {
				t.Fatalf("key %d fetched %d times through the merge window, want 1", id, n)
			}
		}
	}
	// Both sessions raced into the window: either one led and one was
	// merged (a single 8-key batch) or they led successive windows. The
	// merge machinery must never fetch more batches than sessions.
	if b := cf.batches(); b < 1 || b > len(sessions) {
		t.Fatalf("merge window dispatched %d batches for %d sessions", b, len(sessions))
	}
	if st := eng.Stats(); st.MergedSessions > int64(len(sessions)-1) {
		t.Fatalf("Stats.MergedSessions = %d with %d sessions", st.MergedSessions, len(sessions))
	}
}

// TestGetMultiCloseDuringMergeWindow opens a merge window and closes
// the engine while the leader is still waiting in it: the leader must
// wake on the engine's lifecycle context, every session key must get a
// definite outcome, and no goroutine may leak.
func TestGetMultiCloseDuringMergeWindow(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	cf := newCountingFetcher(true)
	eng := newMultiEngine(t, cf, WithDemandCoalescing(30*time.Second, 64))
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		// The window is far longer than the test: without the close
		// wake-up this session would hang until the timer fired.
		_, err := eng.GetMulti(ctx, []ID{10, 11, 12})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the leader enter its window
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// The leader drains its window on close; the fetches themselves
		// still run (demand fetches complete under their callers'
		// contexts), so success and per-key ErrClosed are both sound.
		var me *MultiError
		if err != nil && !errors.As(err, &me) && !errors.Is(err, ErrClosed) {
			t.Fatalf("session after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetMulti still blocked in the merge window after Close")
	}
}

// TestGetMultiQuiesceDuringMergeWindow: Quiesce waits only speculative
// work, so an open merge window (demand work) must not block it.
func TestGetMultiQuiesceDuringMergeWindow(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	cf := newCountingFetcher(true)
	eng := newMultiEngine(t, cf, WithDemandCoalescing(300*time.Millisecond, 64))
	defer eng.Close()
	ctx := context.Background()

	released := make(chan struct{})
	go func() {
		defer close(released)
		if _, err := eng.GetMulti(ctx, []ID{10, 11}); err != nil {
			t.Errorf("GetMulti: %v", err)
		}
	}()
	time.Sleep(30 * time.Millisecond) // leader is now waiting in the window
	qctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := eng.Quiesce(qctx); err != nil {
		t.Fatalf("Quiesce blocked on an open merge window: %v", err)
	}
	<-released
}

// recordingPredictor is a plain (mutex-path) predictor that records
// the observation stream it sees.
type recordingPredictor struct {
	mu  sync.Mutex
	obs []ID
}

func (p *recordingPredictor) Observe(id ID) {
	p.mu.Lock()
	p.obs = append(p.obs, id)
	p.mu.Unlock()
}
func (p *recordingPredictor) Predict() []Prediction { return nil }
func (p *recordingPredictor) Name() string          { return "recording" }
func (p *recordingPredictor) stream() []ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ID(nil), p.obs...)
}

// TestGetMultiSequentialEquivalence pins the accounting contract: a
// GetMulti session feeds the predictor exactly the observation
// sequence N singleton Gets would have — same ids, same order, one
// observation per key — so Markov chain conservation holds.
func TestGetMultiSequentialEquivalence(t *testing.T) {
	ids := []ID{5, 9, 5, 12, 3, 9, 7, 1}
	streams := make([][]ID, 2)
	for mode := 0; mode < 2; mode++ {
		rec := &recordingPredictor{}
		cf := newCountingFetcher(true)
		eng := newMultiEngine(t, cf, WithPredictor(rec))
		ctx := context.Background()
		if mode == 0 {
			if _, err := eng.GetMulti(ctx, ids); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, id := range ids {
				if _, err := eng.Get(ctx, id); err != nil {
					t.Fatal(err)
				}
			}
		}
		eng.Close()
		streams[mode] = rec.stream()
	}
	if len(streams[0]) != len(streams[1]) {
		t.Fatalf("GetMulti observed %d ids, %d singleton Gets observed %d",
			len(streams[0]), len(ids), len(streams[1]))
	}
	for i := range streams[0] {
		if streams[0][i] != streams[1][i] {
			t.Fatalf("observation %d: GetMulti saw %d, singleton Gets saw %d", i, streams[0][i], streams[1][i])
		}
	}
}

// TestGetMultiFabricPartialFailure runs the session against a
// multi-backend fabric where one backend refuses batches: the fabric's
// demand-batch fallback must serve every key per-key and the session
// must stay whole.
func TestGetMultiFabricPartialFailure(t *testing.T) {
	var calls atomic.Int64
	mk := func(name string) FetcherFunc {
		return func(ctx context.Context, id ID) (Item, error) {
			calls.Add(1)
			return Item{ID: id, Size: 1, Data: name}, nil
		}
	}
	eng, err := New(nil,
		WithBackends(
			fetch.Backend{Name: "a", Fetcher: adaptFetcher(mk("a"))},
			fetch.Backend{Name: "b", Fetcher: adaptFetcher(mk("b"))},
		),
		WithBandwidth(1e6),
		WithShards(2),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(128) }),
		WithWorkers(1),
		WithPolicy(NoPrefetch()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ids := []ID{1, 2, 3, 4, 5, 6, 7, 8}
	items, err := eng.GetMulti(context.Background(), ids)
	if err != nil {
		t.Fatalf("GetMulti across fabric: %v", err)
	}
	for i := range items {
		if items[i].ID != ids[i] {
			t.Fatalf("fabric session misaligned at %d: %+v", i, items[i])
		}
	}
	if got := calls.Load(); got != int64(len(ids)) {
		t.Fatalf("%d backend fetches for %d keys (no batch support: one each)", got, len(ids))
	}
}
