package prefetcher

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// memFetcher is an in-memory origin with per-fetch accounting and an
// optional gate that holds fetches open until released.
type memFetcher struct {
	mu      sync.Mutex
	fetches map[ID]int
	gate    chan struct{} // non-nil: Fetch blocks until closed or ctx done
	fail    map[ID]error
}

func newMemFetcher() *memFetcher {
	return &memFetcher{fetches: make(map[ID]int), fail: make(map[ID]error)}
}

func (m *memFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	m.mu.Lock()
	gate := m.gate
	m.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return Item{}, ctx.Err()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fail[id]; err != nil {
		return Item{}, err
	}
	m.fetches[id]++
	return Item{ID: id, Size: 1, Data: fmt.Sprintf("item-%d", id)}, nil
}

func (m *memFetcher) count(id ID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fetches[id]
}

func TestOptionValidation(t *testing.T) {
	fetcher := newMemFetcher()
	tests := []struct {
		name    string
		fetcher Fetcher
		opts    []Option
		wantErr string
	}{
		{"nil fetcher", nil, nil, "nil fetcher"},
		{"adaptive policy needs bandwidth", fetcher, nil, "requires WithBandwidth"},
		{"negative bandwidth", fetcher, []Option{WithBandwidth(-1)}, "must be positive"},
		{"zero workers", fetcher, []Option{WithBandwidth(50), WithWorkers(0)}, ">= 1"},
		{"negative max prefetch", fetcher, []Option{WithBandwidth(50), WithMaxPrefetch(-1)}, ">= 0"},
		{"bad alpha", fetcher, []Option{WithBandwidth(50), WithEWMAAlpha(1.5)}, "(0,1]"},
		{"zero queue", fetcher, []Option{WithBandwidth(50), WithQueueDepth(0)}, ">= 1"},
		{"nil predictor", fetcher, []Option{WithBandwidth(50), WithPredictor(nil)}, "nil predictor"},
		{"nil cache", fetcher, []Option{WithBandwidth(50), WithCache(nil)}, "nil cache"},
		{"nil clock", fetcher, []Option{WithBandwidth(50), WithClock(nil)}, "nil clock"},
		{"zero policy", fetcher, []Option{WithBandwidth(50), WithPolicy(Policy{})}, "zero Policy"},
		{"negative occupancy", fetcher, []Option{WithBandwidth(50), WithCacheOccupancy(-3)}, "non-negative"},
		{"nil hook", fetcher, []Option{WithBandwidth(50), WithEventHook(nil)}, "nil event hook"},
		{"ok default", fetcher, []Option{WithBandwidth(50)}, ""},
		{"ok static without bandwidth", fetcher, []Option{WithPolicy(StaticThreshold(0.5))}, ""},
		{"ok full", fetcher, []Option{
			WithBandwidth(50), WithWorkers(2), WithMaxPrefetch(3),
			WithCache(NewSLRUCache(64, 32)), WithPredictor(NewPPMPredictor(2)),
			WithPolicy(GreedyThreshold(ModelB())), WithCacheOccupancy(64),
			WithEWMAAlpha(0.1), WithQueueDepth(8),
			WithClock(NewManualClock(time.Unix(0, 0))),
		}, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := New(tc.fetcher, tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				eng.Close()
				return
			}
			if err == nil {
				eng.Close()
				t.Fatalf("New succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestHitMissAndStats(t *testing.T) {
	fetcher := newMemFetcher()
	clock := NewManualClock(time.Unix(0, 0))
	eng, err := New(fetcher,
		WithBandwidth(50),
		WithClock(clock),
		WithPolicy(NoPrefetch()),
		WithCache(NewLRUCache(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	// First access misses and demand-fetches.
	it, err := eng.Get(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if it.Data != "item-1" || it.ID != 1 {
		t.Fatalf("got %+v", it)
	}
	if n := fetcher.count(1); n != 1 {
		t.Fatalf("fetches = %d, want 1", n)
	}
	// Second access hits.
	clock.AdvanceSeconds(0.1)
	if _, err := eng.Get(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if n := fetcher.count(1); n != 1 {
		t.Fatalf("hit refetched: fetches = %d, want 1", n)
	}

	st := eng.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheLen != 1 {
		t.Fatalf("cache len = %d, want 1", st.CacheLen)
	}
	// One hit out of two accesses → ĥ′ = 0.5 under the tagged scheme
	// (no prefetching ran, so ĥ′ equals the true hit ratio).
	if st.HPrime != 0.5 {
		t.Fatalf("ĥ′ = %v, want 0.5", st.HPrime)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", st.HitRatio())
	}
}

// TestSpeculativePrefetch drives a perfectly predictable cyclic stream
// through a cache too small to hold the cycle, and checks the engine
// prefetches the successor ahead of each demand request.
func TestSpeculativePrefetch(t *testing.T) {
	fetcher := newMemFetcher()
	clock := NewManualClock(time.Unix(0, 0))
	eng, err := New(fetcher,
		WithBandwidth(1e6), // fat link: threshold ≈ 0, everything qualifies
		WithClock(clock),
		// Capacity 2 cannot hold the 3-cycle: without prefetching every
		// access would miss; with it the successor is staged just in time.
		WithCache(NewLRUCache(2)),
		WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	// Cycle 1→2→3→1→… so the Markov predictor becomes certain.
	for i := 0; i < 60; i++ {
		id := ID(1 + i%3)
		clock.AdvanceSeconds(0.05)
		if _, err := eng.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
		if err := eng.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.PrefetchIssued == 0 {
		t.Fatalf("no prefetches issued: %+v", st)
	}
	if st.PrefetchUsed == 0 {
		t.Fatalf("no prefetches used: %+v", st)
	}
	if acc := st.Accuracy(); acc < 0.5 {
		t.Fatalf("accuracy = %v, want >= 0.5 on a deterministic stream", acc)
	}
}

// TestJoinDeterministic forces the join path: the prefetch for item 2
// is held open on a gate while a demand Get(2) arrives.
func TestJoinDeterministic(t *testing.T) {
	fetcher := newMemFetcher()
	eng, err := New(fetcher,
		WithBandwidth(1e6),
		WithCache(NewLRUCache(4)),
		WithWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	// Train 1→2, then flush both out of the tiny cache.
	for i := 0; i < 8; i++ {
		eng.Get(ctx, 1)
		eng.Get(ctx, 2)
		eng.Quiesce(ctx)
	}
	for i := 50; i < 60; i++ {
		eng.Get(ctx, ID(i))
	}
	eng.Quiesce(ctx)

	// Gate the origin: the next fetches block.
	gate := make(chan struct{})
	fetcher.mu.Lock()
	fetcher.gate = gate
	fetcher.mu.Unlock()

	// Get(1) blocks on its demand fetch; run it in the background.
	g1 := make(chan error, 1)
	go func() { _, err := eng.Get(ctx, 1); g1 <- err }()
	waitUntil(t, func() bool { return eng.Stats().InFlight >= 1 })

	// Release the gate only for the demand fetch of 1: swap in a fresh
	// gate before unblocking so the follow-up prefetch of 2 blocks.
	gate2 := make(chan struct{})
	fetcher.mu.Lock()
	fetcher.gate = gate2
	fetcher.mu.Unlock()
	close(gate)
	if err := <-g1; err != nil {
		t.Fatal(err)
	}
	// The prefetch of 2 is now queued/blocked on gate2.
	waitUntil(t, func() bool { return eng.Stats().PrefetchIssued >= 1 })

	// Demand Get(2) must join, not refetch.
	g2 := make(chan Item, 1)
	g2err := make(chan error, 1)
	go func() {
		it, err := eng.Get(ctx, 2)
		g2 <- it
		g2err <- err
	}()
	waitUntil(t, func() bool { return eng.Stats().Joins >= 1 })
	before := fetcher.count(2)
	close(gate2) // let the prefetch finish; the joiner consumes it

	it := <-g2
	if err := <-g2err; err != nil {
		t.Fatal(err)
	}
	if it.Data != "item-2" {
		t.Fatalf("joined item = %+v", it)
	}
	if got := fetcher.count(2); got != before+1 {
		t.Fatalf("origin fetches of 2 = %d, want %d (join must not refetch)", got, before+1)
	}
	st := eng.Stats()
	if st.Joins == 0 || st.PrefetchUsed == 0 {
		t.Fatalf("join accounting: %+v", st)
	}
}

// TestContextCancellation covers a caller abandoning a join mid-flight
// and Close cancelling speculative fetches.
func TestContextCancellation(t *testing.T) {
	fetcher := newMemFetcher()
	gate := make(chan struct{})
	fetcher.gate = gate
	eng, err := New(fetcher,
		WithBandwidth(1e6),
		WithCache(NewLRUCache(4)),
		WithWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}

	// A Get whose own context is already cancelled returns immediately.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Get(cctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// A Get blocked on a gated demand fetch aborts when its context
	// does.
	cctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := eng.Get(cctx2, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}

	// Close cancels the engine context; the gated speculative fetch (if
	// any) and workers exit promptly.
	doneClose := make(chan struct{})
	go func() { eng.Close(); close(doneClose) }()
	select {
	case <-doneClose:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return with a gated origin")
	}
	if _, err := eng.Get(context.Background(), 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Get err = %v, want ErrClosed", err)
	}
	close(gate)
}

// TestPrefetchError confirms a failing speculative fetch is counted and
// does not poison the demand path.
func TestPrefetchError(t *testing.T) {
	fetcher := newMemFetcher()
	fetcher.fail[2] = errors.New("origin down")
	eng, err := New(fetcher,
		WithBandwidth(1e6),
		WithCache(NewLRUCache(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		eng.Get(ctx, 1)
		// Let the speculative fetch of 2 run — and fail — before the
		// origin is repaired for the demand fetch.
		eng.Quiesce(ctx)
		fetcher.mu.Lock()
		delete(fetcher.fail, 2)
		fetcher.mu.Unlock()
		if _, err := eng.Get(ctx, 2); err != nil {
			t.Fatal(err)
		}
		eng.Quiesce(ctx)
		fetcher.mu.Lock()
		fetcher.fail[2] = errors.New("origin down")
		fetcher.mu.Unlock()
		// Push both out of cache so the next round misses again.
		for j := 50; j < 60; j++ {
			eng.Get(ctx, ID(j))
		}
		eng.Quiesce(ctx)
	}
	st := eng.Stats()
	if st.PrefetchErrors == 0 {
		t.Fatalf("expected speculative failures to be counted: %+v", st)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

// TestFailedFetchAccounting pins the bugfix for λ̂ divergence: a demand
// fetch that errors must still record the arrival with the controller,
// so the controller's request count and rate estimate track
// Stats.Requests even when the origin is failing.
func TestFailedFetchAccounting(t *testing.T) {
	fetcher := newMemFetcher()
	fetcher.fail[7] = errors.New("origin down")
	clock := NewManualClock(time.Unix(0, 0))
	eng, err := New(fetcher,
		WithBandwidth(50),
		WithClock(clock),
		WithPolicy(NoPrefetch()),
		WithCache(NewLRUCache(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	// A mix of failing and succeeding requests at a steady 10/s.
	for i := 0; i < 20; i++ {
		clock.AdvanceSeconds(0.1)
		id := ID(7) // permanent origin failure
		if i%2 == 1 {
			id = ID(i) // fresh id, succeeds
		}
		_, err := eng.Get(ctx, id)
		if id == 7 && err == nil {
			t.Fatal("expected origin failure")
		}
		if id != 7 && err != nil {
			t.Fatal(err)
		}
	}

	st := eng.Stats()
	if st.Requests != 20 {
		t.Fatalf("requests = %d, want 20", st.Requests)
	}
	if got := eng.ctrl.Requests(); got != st.Requests {
		t.Fatalf("controller recorded %d arrivals, Stats.Requests = %d — failed fetches lost", got, st.Requests)
	}
	// All 20 arrivals were evenly spaced, so λ̂ must estimate ~10/s; had
	// the failing half been dropped the estimate would sit near 5/s.
	if lam := st.Lambda; lam < 9 || lam > 11 {
		t.Fatalf("λ̂ = %v under 50%% origin failures, want ~10", lam)
	}
}

// TestPrewarmedCacheSize pins the bugfix for hits on entries the engine
// never fetched: a user-supplied cache already holding items must serve
// them with the fetch-path default size 1, not 0, and feed ŝ̄.
func TestPrewarmedCacheSize(t *testing.T) {
	warm := NewLRUCache(8)
	warm.Put(5, "warm-payload")
	fetcher := newMemFetcher()
	clock := NewManualClock(time.Unix(0, 0))
	eng, err := New(fetcher,
		WithBandwidth(50),
		WithClock(clock),
		WithPolicy(NoPrefetch()),
		WithCache(warm),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	clock.AdvanceSeconds(0.1)
	it, err := eng.Get(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if it.Data != "warm-payload" {
		t.Fatalf("item = %+v, want prewarmed payload", it)
	}
	if it.Size != 1 {
		t.Fatalf("prewarmed hit served Size = %v, want fallback 1", it.Size)
	}
	st := eng.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want a pure hit", st)
	}
	if st.MeanSize != 1 {
		t.Fatalf("ŝ̄ = %v, want 1 — prewarmed hits must not starve the size estimate", st.MeanSize)
	}
	if st.CacheLen != 1 {
		t.Fatalf("CacheLen = %d, want 1 (prewarmed resident counted)", st.CacheLen)
	}
	// Repeat hits see the same memoised size.
	clock.AdvanceSeconds(0.1)
	if it, err := eng.Get(ctx, 5); err != nil || it.Size != 1 {
		t.Fatalf("second prewarmed hit = %+v, %v", it, err)
	}
}

// TestShardOptions covers the WithShards/WithCache/WithCacheFactory
// interaction rules and the power-of-two rounding.
func TestShardOptions(t *testing.T) {
	fetcher := newMemFetcher()
	ctx := context.Background()

	// WithShards rounds up to the next power of two.
	eng, err := New(fetcher, WithBandwidth(50), WithShards(3),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(16) }))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Shards; got != 4 {
		t.Fatalf("WithShards(3) → %d shards, want 4", got)
	}
	eng.Close()

	// A single supplied cache pins the engine to one shard.
	eng, err = New(fetcher, WithBandwidth(50), WithCache(NewLRUCache(16)))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Shards; got != 1 {
		t.Fatalf("WithCache → %d shards, want 1", got)
	}
	eng.Close()

	// WithCache + WithShards(>1) is a construction error.
	if _, err := New(fetcher, WithBandwidth(50), WithCache(NewLRUCache(16)), WithShards(4)); err == nil {
		t.Fatal("WithCache+WithShards(4) succeeded, want error")
	}
	// WithCache and WithCacheFactory are mutually exclusive.
	if _, err := New(fetcher, WithBandwidth(50), WithCache(NewLRUCache(16)),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(16) })); err == nil {
		t.Fatal("WithCache+WithCacheFactory succeeded, want error")
	}
	// A factory returning nil is rejected.
	if _, err := New(fetcher, WithBandwidth(50), WithShards(2),
		WithCacheFactory(func(i, n int) Cache { return nil })); err == nil {
		t.Fatal("nil-returning factory succeeded, want error")
	}
	// A factory returning one shared instance for every shard is a data
	// race waiting to happen and is rejected.
	shared := NewLRUCache(16)
	if _, err := New(fetcher, WithBandwidth(50), WithShards(2),
		WithCacheFactory(func(i, n int) Cache { return shared })); err == nil {
		t.Fatal("instance-sharing factory succeeded, want error")
	}
	// WithShards(0) is invalid.
	if _, err := New(fetcher, WithBandwidth(50), WithShards(0)); err == nil {
		t.Fatal("WithShards(0) succeeded, want error")
	}

	// Traffic over a wide key space actually lands on every shard, and
	// aggregate Stats account for all of it.
	eng, err = New(fetcher, WithBandwidth(50), WithShards(4), WithPolicy(NoPrefetch()),
		WithCacheFactory(func(i, n int) Cache { return NewLRUCache(64) }))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const n = 256
	for i := 0; i < n; i++ {
		if _, err := eng.Get(ctx, ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Requests != n || st.Misses != n {
		t.Fatalf("aggregate stats lost traffic: %+v", st)
	}
	for i, sh := range eng.shards {
		if sh.requests.Load() == 0 {
			t.Fatalf("shard %d received no traffic over %d sequential ids", i, n)
		}
	}
}
