package bytestore

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/prefetcher"
)

// newSlabHitEngine builds an engine whose cache is a slab Store sized
// so the whole 64-id catalog stays resident, then warms it until
// sequential walks hit exclusively — the slab mirror of the prefetcher
// package's newHitEngine.
func newSlabHitEngine(tb testing.TB) (*prefetcher.Engine, []prefetcher.ID) {
	tb.Helper()
	factory, err := Factory(Config{CapacityBytes: 1 << 20, MaxEntries: 4 * 64})
	if err != nil {
		tb.Fatal(err)
	}
	fetch := prefetcher.FetcherFunc(func(_ context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1, Data: val(id, 64+int(id)%64)}, nil
	})
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(1e6),
		prefetcher.WithShards(1),
		prefetcher.WithCacheFactory(factory),
		prefetcher.WithWorkers(1),
		prefetcher.WithMaxPrefetch(2),
	)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]prefetcher.ID, 64)
	for i := range ids {
		ids[i] = prefetcher.ID(i)
	}
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			if _, err := eng.Get(ctx, id); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := eng.Quiesce(ctx); err != nil {
		tb.Fatal(err)
	}
	return eng, ids
}

// TestEngineGetBytesRoundTrip pins the engine→bytestore byte path:
// slab-resident hits are copied out through ByteCache with payloads
// intact.
func TestEngineGetBytesRoundTrip(t *testing.T) {
	eng, ids := newSlabHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	dst := make([]byte, 0, 256)
	for _, id := range ids {
		var err error
		dst, err = eng.GetBytes(ctx, id, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		if want := val(id, 64+int(id)%64); !bytes.Equal(dst, want) {
			t.Fatalf("GetBytes(%d) mismatch", id)
		}
		n, err := eng.GetBytesLen(ctx, id)
		if err != nil || n != 64+int(id)%64 {
			t.Fatalf("GetBytesLen(%d) = %d, %v", id, n, err)
		}
	}
	st := eng.Stats()
	if st.Hits == 0 {
		t.Fatal("no hits through the slab byte path")
	}
}

// TestSlabGetBytesAllocFree is the tentpole's allocation gate: a
// slab-backed cache hit through Engine.GetBytes — slab lookup, copy
// into a reused buffer, accounting, planning — allocates nothing.
func TestSlabGetBytesAllocFree(t *testing.T) {
	eng, ids := newSlabHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	dst := make([]byte, 0, 256)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		dst, err = eng.GetBytes(ctx, ids[i%len(ids)], dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("slab-hit GetBytes allocated %v times per call; want 0", allocs)
	}
}

// TestSlabGetMultiBytesAllocFree: an all-hit byte session over the slab
// store with reused buffers allocates nothing.
func TestSlabGetMultiBytesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool Puts by design; pooled steady state is unreachable (CI runs this gate without -race)")
	}
	eng, ids := newSlabHitEngine(t)
	defer eng.Close()
	ctx := context.Background()
	const fanout = 8
	session := make([]prefetcher.ID, fanout)
	buf := make([]byte, 0, 4096)
	ranges := make([]prefetcher.ByteRange, 0, fanout)
	fill := func(base int) {
		for k := range session {
			session[k] = ids[(base+k)%len(ids)]
		}
	}
	for w := 0; w < 2; w++ {
		fill(w)
		var err error
		if buf, ranges, err = eng.GetMultiBytes(ctx, session, buf, ranges); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		fill(i)
		var err error
		buf, ranges, err = eng.GetMultiBytes(ctx, session, buf, ranges)
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("all-hit slab GetMultiBytes allocated %v times per session; want 0", allocs)
	}
}

// TestEngineOversizedPayloadBytePath is the regression test for
// overflow-resident byte hits: a []byte payload larger than a slab
// segment lives in the store's boxed overflow map, and every byte
// entry point — GetBytes, GetBytesLen and GetMultiBytes — must serve
// it as a normal byte hit once cached (pass 1, after the pass-0 miss
// populated the cache), not fail it with ErrNotBytes. Before the fix
// the multi path did exactly that, so a prefetchd /batch of a cached
// object larger than segment_bytes 502'd on every request after the
// first.
func TestEngineOversizedPayloadBytePath(t *testing.T) {
	factory, err := Factory(Config{CapacityBytes: 64 << 10, MaxEntries: 32, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	size := func(id prefetcher.ID) int {
		if id%2 == 0 {
			return 4 << 10 // > segment: boxed overflow
		}
		return 64 // fits the arena
	}
	fetch := prefetcher.FetcherFunc(func(_ context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1, Data: val(id, size(id))}, nil
	})
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(1e6),
		prefetcher.WithShards(1),
		prefetcher.WithCacheFactory(factory),
		prefetcher.WithWorkers(1),
		prefetcher.WithMaxPrefetch(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	session := []prefetcher.ID{2, 1, 4} // oversized, slab-sized, oversized
	for pass := 0; pass < 2; pass++ {
		buf, ranges, err := eng.GetMultiBytes(ctx, session, nil, nil)
		if err != nil {
			t.Fatalf("pass %d: GetMultiBytes: %v", pass, err)
		}
		for i, id := range session {
			r := ranges[i]
			if r.Off < 0 {
				t.Fatalf("pass %d: id %d failed (range %+v)", pass, id, r)
			}
			if !bytes.Equal(buf[r.Off:r.Off+r.Len], val(id, size(id))) {
				t.Fatalf("pass %d: id %d payload mismatch", pass, id)
			}
		}
		out, err := eng.GetBytes(ctx, 2, nil)
		if err != nil || !bytes.Equal(out, val(2, 4<<10)) {
			t.Fatalf("pass %d: GetBytes oversized = %d bytes, %v", pass, len(out), err)
		}
		n, err := eng.GetBytesLen(ctx, 2)
		if err != nil || n != 4<<10 {
			t.Fatalf("pass %d: GetBytesLen oversized = %d, %v", pass, n, err)
		}
	}
	if st := eng.Stats(); st.Hits == 0 {
		t.Fatalf("no hits recorded across the overflow byte path (stats %+v)", st)
	}
}

// TestConcurrentSlabAccess races byte readers on a deliberately tiny
// slab store so every reader also drives policy evictions and segment
// rotations in other readers' shards. Run under -race this pins the
// per-shard locking discipline (the slab view is only touched under the
// shard lock) and eviction-during-read safety: a payload the engine
// returns must be complete and correct even when its slab entry was
// rotated away concurrently.
func TestConcurrentSlabAccess(t *testing.T) {
	factory, err := Factory(Config{CapacityBytes: 16 << 10, MaxEntries: 64, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fetch := prefetcher.FetcherFunc(func(_ context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1, Data: val(id, 64+int(id)%128)}, nil
	})
	eng, err := prefetcher.New(fetch,
		prefetcher.WithBandwidth(1e6),
		prefetcher.WithShards(4),
		prefetcher.WithCacheFactory(factory),
		prefetcher.WithWorkers(2),
		prefetcher.WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dst := make([]byte, 0, 512)
			session := make([]prefetcher.ID, 4)
			ranges := make([]prefetcher.ByteRange, 0, 4)
			for i := 0; i < 300; i++ {
				// 500 ids over a 64-entry budget: constant churn.
				id := prefetcher.ID((c*61 + i) % 500)
				var err error
				dst, err = eng.GetBytes(ctx, id, dst[:0])
				if err != nil {
					t.Error(err)
					return
				}
				if want := val(id, 64+int(id)%128); !bytes.Equal(dst, want) {
					t.Errorf("torn slab payload for %d", id)
					return
				}
				for k := range session {
					session[k] = prefetcher.ID((c*61 + i + k*7) % 500)
				}
				dst, ranges, err = eng.GetMultiBytes(ctx, session, dst[:0], ranges)
				if err != nil {
					t.Error(err)
					return
				}
				for k, id := range session {
					r := ranges[k]
					if want := val(id, 64+int(id)%128); !bytes.Equal(dst[r.Off:r.Off+r.Len], want) {
						t.Errorf("torn multi slab payload for %d", id)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CacheLen > 64 {
		t.Fatalf("CacheLen = %d exceeds the 64-entry budget", st.CacheLen)
	}
}
