package bytestore

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/prefetcher"
)

func val(id prefetcher.ID, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(id)*13 + i)
	}
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := New(Config{CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for id := prefetcher.ID(0); id < 64; id++ {
		s.Put(id, val(id, 100))
	}
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
	for id := prefetcher.ID(0); id < 64; id++ {
		v, ok := s.Get(id)
		if !ok || !bytes.Equal(v.([]byte), val(id, 100)) {
			t.Fatalf("Get(%d) = %v,%t", id, v, ok)
		}
		got, ok := s.GetBytes(id, nil)
		if !ok || !bytes.Equal(got, val(id, 100)) {
			t.Fatalf("GetBytes(%d) mismatch", id)
		}
		n, ok := s.BytesLen(id)
		if !ok || n != 100 {
			t.Fatalf("BytesLen(%d) = %d,%t", id, n, ok)
		}
	}
	if _, ok := s.Get(999); ok {
		t.Fatal("Get(999) hit")
	}
	if _, ok := s.GetBytes(999, nil); ok {
		t.Fatal("GetBytes(999) hit")
	}
}

// TestPolicyEvictionReported pins the count-bound stream: admitting
// past MaxEntries must evict through the policy, drop the slab payload
// and report each victim exactly once.
func TestPolicyEvictionReported(t *testing.T) {
	s, err := New(Config{CapacityBytes: 1 << 20, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	evicted := map[prefetcher.ID]int{}
	s.OnEvict(func(id prefetcher.ID) { evicted[id]++ })
	for id := prefetcher.ID(0); id < 50; id++ {
		s.Put(id, val(id, 32))
	}
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16", s.Len())
	}
	if len(evicted) != 50-16 {
		t.Fatalf("%d victims reported, want %d", len(evicted), 50-16)
	}
	for id, n := range evicted {
		if n != 1 {
			t.Fatalf("id %d reported %d times", id, n)
		}
		if _, ok := s.GetBytes(id, nil); ok {
			t.Fatalf("victim %d still byte-resident", id)
		}
		if s.Contains(id) {
			t.Fatalf("victim %d still resident", id)
		}
	}
}

// TestRotationEvictionReported pins the byte-bound stream: a byte
// budget far below the entry budget forces segment rotation, whose
// victims must leave the policy layer and be reported.
func TestRotationEvictionReported(t *testing.T) {
	s, err := New(Config{CapacityBytes: 2048, SegmentBytes: 512, MaxEntries: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	live := map[prefetcher.ID]bool{}
	s.OnEvict(func(id prefetcher.ID) {
		if !live[id] {
			t.Fatalf("reported victim %d was not live", id)
		}
		delete(live, id)
	})
	for id := prefetcher.ID(0); id < 200; id++ {
		s.Put(id, val(id, 64))
		live[id] = true
	}
	if s.SlabStats().Rotations == 0 {
		t.Fatal("no rotations on an over-budget fill")
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(live))
	}
	for id := range live {
		got, ok := s.GetBytes(id, nil)
		if !ok || !bytes.Equal(got, val(id, 64)) {
			t.Fatalf("survivor %d corrupt or missing", id)
		}
	}
}

// TestOverflowValues pins the fallback: non-[]byte and oversized
// payloads are still resident (Put never drops), served through Get,
// and declined by the byte path.
func TestOverflowValues(t *testing.T) {
	s, err := New(Config{CapacityBytes: 4096, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(1, "not bytes")
	s.Put(2, make([]byte, 1024)) // > segment: boxed
	if !s.Contains(1) || !s.Contains(2) {
		t.Fatal("overflow values not resident")
	}
	if v, ok := s.Get(1); !ok || v.(string) != "not bytes" {
		t.Fatalf("Get(1) = %v,%t", v, ok)
	}
	if v, ok := s.Get(2); !ok || len(v.([]byte)) != 1024 {
		t.Fatalf("Get(2) = %v,%t", v, ok)
	}
	if _, ok := s.GetBytes(1, nil); ok {
		t.Fatal("GetBytes served a non-byte payload")
	}
	if _, ok := s.BytesLen(2); ok {
		t.Fatal("BytesLen served an oversized boxed payload")
	}
	// Shape changes move the payload between stores without duplicating.
	s.Put(1, val(1, 10))
	if got, ok := s.GetBytes(1, nil); !ok || !bytes.Equal(got, val(1, 10)) {
		t.Fatal("byte payload after shape change not in slab")
	}
	s.Put(1, "boxed again")
	if _, ok := s.GetBytes(1, nil); ok {
		t.Fatal("stale slab payload survived shape change back to boxed")
	}
	if v, ok := s.Get(1); !ok || v.(string) != "boxed again" {
		t.Fatalf("Get(1) after shape change = %v,%t", v, ok)
	}
}

// TestOverflowByteBudget pins the overflow map's memory bound:
// oversized payloads bypass the arena but are charged against
// CapacityBytes, evicting policy victims instead of accumulating
// MaxEntries full-size boxed values.
func TestOverflowByteBudget(t *testing.T) {
	const capacity = 8 << 10
	s, err := New(Config{CapacityBytes: capacity, MaxEntries: 1024, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	evicted := 0
	s.OnEvict(func(prefetcher.ID) { evicted++ })
	const payload = 2 << 10 // > segment: every Put lands in overflow
	for id := prefetcher.ID(0); id < 64; id++ {
		s.Put(id, val(id, payload))
	}
	if s.overflowBytes > capacity {
		t.Fatalf("overflowBytes = %d exceeds CapacityBytes %d", s.overflowBytes, capacity)
	}
	if want := capacity / payload; s.Len() != want || evicted != 64-want {
		t.Fatalf("Len/evicted = %d/%d, want %d/%d", s.Len(), evicted, want, 64-want)
	}
	// Survivors still serve byte-for-byte through the boxed path.
	for id := prefetcher.ID(60); id < 64; id++ {
		v, ok := s.Get(id)
		if !ok || !bytes.Equal(v.([]byte), val(id, payload)) {
			t.Fatalf("survivor %d corrupt or missing", id)
		}
	}
	// Overwriting an overflow entry must not double-charge the budget.
	before := s.overflowBytes
	s.Put(63, val(63, payload))
	if s.overflowBytes != before {
		t.Fatalf("overwrite changed overflowBytes %d -> %d", before, s.overflowBytes)
	}
	// A shape change back to the slab debits the overflow charge.
	s.Put(63, val(63, 64))
	if s.overflowBytes != before-payload {
		t.Fatalf("shape change left overflowBytes = %d, want %d", s.overflowBytes, before-payload)
	}
	// One payload larger than the whole budget is still admitted — Put
	// never drops — and the next overflow Put reclaims it.
	huge := val(999, 2*capacity)
	s.Put(999, huge)
	if v, ok := s.Get(999); !ok || !bytes.Equal(v.([]byte), huge) {
		t.Fatal("over-budget payload not resident")
	}
	s.Put(1000, val(1000, payload))
	if s.Contains(999) {
		t.Fatal("over-budget payload survived the next overflow Put")
	}
	if s.overflowBytes > capacity {
		t.Fatalf("overflowBytes = %d after reclaim, want <= %d", s.overflowBytes, capacity)
	}
}

// TestGetBytesAppends pins the dst contract the multi-gather relies on.
func TestGetBytesAppends(t *testing.T) {
	s, err := New(Config{CapacityBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(1, []byte("aa"))
	s.Put(2, []byte("bb"))
	buf := []byte("x")
	buf, _ = s.GetBytes(1, buf)
	buf, _ = s.GetBytes(2, buf)
	if string(buf) != "xaabb" {
		t.Fatalf("accumulated = %q", buf)
	}
}

func TestPolicies(t *testing.T) {
	for _, pol := range []string{"", "lru", "slru", "lfu", "fifo", "clock"} {
		t.Run("pol="+pol, func(t *testing.T) {
			s, err := New(Config{CapacityBytes: 1 << 16, MaxEntries: 8, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			for id := prefetcher.ID(0); id < 20; id++ {
				s.Put(id, val(id, 16))
			}
			if s.Len() != 8 {
				t.Fatalf("Len = %d, want 8", s.Len())
			}
		})
	}
	if _, err := New(Config{CapacityBytes: 1024, Policy: "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero CapacityBytes accepted")
	}
}

func TestFactory(t *testing.T) {
	fn, err := Factory(Config{CapacityBytes: 1 << 20, MaxEntries: 64, Policy: "slru"})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	for i := 0; i < shards; i++ {
		c := fn(i, shards)
		st, ok := c.(*Store)
		if !ok {
			t.Fatalf("factory returned %T", c)
		}
		for id := prefetcher.ID(0); id < 100; id++ {
			st.Put(id, val(id, 8))
		}
		if st.Len() != 16 { // 64 entries ceil-split 4 ways
			t.Fatalf("shard %d Len = %d, want 16", i, st.Len())
		}
	}
	if _, err := Factory(Config{CapacityBytes: 0}); err == nil {
		t.Fatal("factory accepted zero capacity")
	}
	if _, err := Factory(Config{CapacityBytes: 1024, Policy: "nope"}); err == nil {
		t.Fatal("factory accepted bad policy")
	}
}

// TestEngineIntegration runs the store under a real engine: the
// eviction streams must keep the engine's resident accounting exact,
// and a churned workload must end with Stats' invariants intact.
func TestEngineIntegration(t *testing.T) {
	factory, err := Factory(Config{CapacityBytes: 64 << 10, MaxEntries: 128, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fetcher := prefetcher.FetcherFunc(func(_ context.Context, id prefetcher.ID) (prefetcher.Item, error) {
		return prefetcher.Item{ID: id, Size: 1, Data: val(id, 64+int(id)%128)}, nil
	})
	eng, err := prefetcher.New(fetcher,
		prefetcher.WithBandwidth(1e6),
		prefetcher.WithShards(4),
		prefetcher.WithCacheFactory(factory),
		prefetcher.WithWorkers(2),
		prefetcher.WithMaxPrefetch(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	get := func(id prefetcher.ID) {
		it, err := eng.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		want := val(id, 64+int(id)%128)
		if !bytes.Equal(it.Data.([]byte), want) {
			t.Fatalf("Get(%d) payload mismatch", id)
		}
	}
	// Churn phase: a scan far past both budgets drives policy and
	// rotation evictions through the engine's accounting.
	for i := 0; i < 5000; i++ {
		get(prefetcher.ID(i % 700))
	}
	// Hot phase: a working set inside the entry budget must serve hits.
	for i := 0; i < 500; i++ {
		get(prefetcher.ID(i % 40))
	}
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Hits == 0 {
		t.Fatal("no hits through the slab store")
	}
	if st.CacheLen < 0 || st.CacheLen > 128 {
		t.Fatalf("CacheLen = %d outside [0,128] — eviction streams diverged", st.CacheLen)
	}
	if st.PrefetchUsed+st.PrefetchWasted > st.PrefetchIssued {
		t.Fatalf("used %d + wasted %d > issued %d", st.PrefetchUsed, st.PrefetchWasted, st.PrefetchIssued)
	}
}

func TestFactoryShardSplitNames(t *testing.T) {
	for shards := 1; shards <= 8; shards *= 2 {
		t.Run(fmt.Sprint(shards), func(t *testing.T) {
			fn, err := Factory(Config{CapacityBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if c := fn(0, shards); c == nil {
				t.Fatal("nil cache from factory")
			}
		})
	}
}
