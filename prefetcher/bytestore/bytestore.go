// Package bytestore provides the slab-backed prefetcher.Cache: payload
// bytes live in internal/slab's pointer-free segment arena while
// residency, the replacement policy (LRU/SLRU/LFU/FIFO/clock) and hit
// accounting stay in internal/cache.Store — so the engine's estimator
// and policy layers behave exactly as they do over the boxed caches,
// but the garbage collector no longer scans one pointer per cached
// value. A Store implements prefetcher.ByteCache, which is what lets
// Engine.GetBytes/GetMultiBytes serve hits by copying straight from
// the arena into a caller-owned buffer: no interface boxing, no
// per-hit allocation.
//
// Two eviction streams feed the one OnEvict callback the engine
// installs: the policy layer's count-bound victims (an Admit past
// capacity), and the slab's byte-bound rotation victims (the write
// cursor reclaiming the oldest segment). Both remove the entry from
// the other layer before reporting it, so the store's residency,
// payload and the engine's ĥ′/used/wasted accounting never diverge.
//
// Values that cannot live in the arena — payloads larger than a
// segment, or non-[]byte Data — fall back to a boxed overflow map so
// Cache.Put never silently drops (the engine's resident accounting
// assumes an admitted entry is resident). They miss GetBytes/BytesLen
// and are served through the compatibility Get path instead — the
// engine's byte paths fall back to it under the same shard lock, so an
// oversized []byte is still a byte hit. Overflow []byte usage is
// charged against CapacityBytes (see Config).
//
// A Store is not goroutine-safe; the engine gives each shard its own
// instance (use Factory with prefetcher.WithCacheFactory) and
// serialises calls under the shard lock.
package bytestore

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/slab"
	"repro/prefetcher"
)

// Config sizes one Store (per shard — Factory splits a global budget).
type Config struct {
	// CapacityBytes bounds the arena's memory. Required. Oversized
	// []byte payloads (larger than a segment) bypass the arena into the
	// boxed overflow map but are charged against the same budget: a Put
	// that would push overflow bytes past CapacityBytes first evicts
	// policy victims. Worst case the store holds CapacityBytes of arena
	// plus CapacityBytes of overflow, plus one payload beyond that when
	// a single value exceeds the whole budget (Put never drops the
	// entry being inserted). Non-[]byte overflow values have no
	// measurable size and are bounded only by MaxEntries.
	CapacityBytes int
	// MaxEntries bounds the resident count (the policy layer's
	// capacity). Defaults to CapacityBytes/64, at least 16.
	MaxEntries int
	// SegmentBytes is the arena segment size; 0 means the slab default
	// (1 MiB).
	SegmentBytes int
	// Policy selects replacement: "lru" (default), "slru", "lfu",
	// "fifo" or "clock".
	Policy string
}

// Store is the slab-backed cache. Construct with New or Factory.
type Store struct {
	store         *cache.Store
	slab          *slab.Store
	overflow      map[prefetcher.ID]boxed
	overflowBytes int
	capacityBytes int
	onEvict       func(prefetcher.ID)
}

// boxed is one overflow entry: the value plus the byte size it charges
// against CapacityBytes (0 for non-[]byte values, whose footprint the
// store cannot measure).
type boxed struct {
	val  any
	size int
}

var (
	_ prefetcher.Cache     = (*Store)(nil)
	_ prefetcher.ByteCache = (*Store)(nil)
)

// newPolicy resolves a policy name, mapping the empty string to LRU
// and sizing SLRU's protected segment to half the entry budget.
func newPolicy(name string, maxEntries int) (cache.Policy, error) {
	switch name {
	case "", "lru":
		return cache.NewLRU(), nil
	case "slru":
		protected := maxEntries / 2
		if protected < 1 {
			protected = 1
		}
		return cache.NewSLRU(protected), nil
	default:
		return cache.NewPolicy(name)
	}
}

// New builds one Store from cfg.
func New(cfg Config) (*Store, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, errors.New("bytestore: CapacityBytes must be > 0")
	}
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = cfg.CapacityBytes / 64
		if maxEntries < 16 {
			maxEntries = 16
		}
	}
	policy, err := newPolicy(cfg.Policy, maxEntries)
	if err != nil {
		return nil, fmt.Errorf("bytestore: %w", err)
	}
	s := &Store{
		store:         cache.NewStore(maxEntries, policy),
		slab:          slab.New(cfg.CapacityBytes, cfg.SegmentBytes),
		overflow:      make(map[prefetcher.ID]boxed),
		capacityBytes: cfg.CapacityBytes,
	}
	// Count-bound (policy) evictions: drop the payload wherever it
	// lives, then report. Fires from store.Admit and from the overflow
	// byte-budget loop, i.e. from Put.
	s.store.OnEvict(func(id cache.ID) {
		s.slab.Delete(int64(id))
		s.dropOverflow(prefetcher.ID(id))
		if s.onEvict != nil {
			s.onEvict(prefetcher.ID(id))
		}
	})
	// Byte-bound (rotation) evictions: drop residency — Remove is the
	// no-callback form, the report below is the only one — then
	// forward. Fires from slab.Put, i.e. from Put.
	s.slab.OnEvict(func(id int64) {
		s.store.Remove(cache.ID(id))
		if s.onEvict != nil {
			s.onEvict(prefetcher.ID(id))
		}
	})
	return s, nil
}

// Factory validates cfg once and returns a prefetcher.WithCacheFactory
// function producing one Store per shard, with the byte and entry
// budgets ceil-split across the shard count.
func Factory(cfg Config) (func(shard, shards int) prefetcher.Cache, error) {
	if _, err := New(probeConfig(cfg)); err != nil {
		return nil, err
	}
	return func(_, shards int) prefetcher.Cache {
		per := cfg
		per.CapacityBytes = ceilDiv(cfg.CapacityBytes, shards)
		if cfg.MaxEntries > 0 {
			per.MaxEntries = ceilDiv(cfg.MaxEntries, shards)
		}
		s, err := New(per)
		if err != nil {
			// Unreachable: the probe validated the config and the
			// per-shard split only shrinks positive budgets.
			panic(err)
		}
		return s
	}, nil
}

// probeConfig is the throwaway validation config: tiny budgets so the
// probe Store costs nothing, same policy so name errors surface.
func probeConfig(cfg Config) Config {
	if cfg.CapacityBytes > 0 {
		cfg.CapacityBytes = 1024
	}
	cfg.MaxEntries = 16
	cfg.SegmentBytes = 1024
	return cfg
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Get implements prefetcher.Cache. For slab-resident values it copies
// the payload into a fresh slice — the boxing compatibility path, which
// allocates per hit; byte-path callers (the engine's GetBytes and
// GetMultiBytes) use GetBytes instead.
func (s *Store) Get(id prefetcher.ID) (any, bool) {
	if !s.store.Access(cache.ID(id)) {
		return nil, false
	}
	if e, ok := s.overflow[id]; ok {
		return e.val, true
	}
	b, ok := s.slab.Get(int64(id), nil)
	if !ok {
		// Resident per the policy layer but in neither payload store —
		// the sync invariant makes this unreachable.
		return nil, false
	}
	return b, true
}

// GetBytes implements prefetcher.ByteCache: a slab hit is appended to
// dst with no boxing and no allocation beyond dst's own growth.
//
//prefetch:hotpath
func (s *Store) GetBytes(id prefetcher.ID, dst []byte) ([]byte, bool) {
	out, ok := s.slab.Get(int64(id), dst)
	if !ok {
		return dst, false
	}
	s.store.Access(cache.ID(id))
	return out, true
}

// BytesLen implements prefetcher.ByteCache.
//
//prefetch:hotpath
func (s *Store) BytesLen(id prefetcher.ID) (int, bool) {
	n, ok := s.slab.BytesLen(int64(id))
	if !ok {
		return 0, false
	}
	s.store.Access(cache.ID(id))
	return n, true
}

// Put implements prefetcher.Cache. []byte payloads that fit a segment
// go to the arena; everything else goes to the boxed overflow map, so
// an admitted entry is always resident whatever its payload shape.
// Overflow bytes bypass the arena's budget, so they are charged
// against CapacityBytes here: victims are evicted through the policy
// layer until the incoming payload fits (see Config.CapacityBytes for
// the worst-case bound).
func (s *Store) Put(id prefetcher.ID, value any) {
	if b, ok := value.([]byte); ok && s.slab.Fits(len(b)) {
		s.dropOverflow(id) // shape change: previous value may be boxed
		s.slab.Put(int64(id), b)
		s.store.Admit(cache.ID(id))
		return
	}
	size := 0
	if b, ok := value.([]byte); ok {
		size = len(b)
	}
	// Clear id's previous incarnation before making room (Remove is the
	// no-callback form — an overwrite is not an eviction), so the budget
	// loop can never choose the entry being inserted as its victim and
	// Put never silently drops.
	s.store.Remove(cache.ID(id))
	s.slab.Delete(int64(id))
	s.dropOverflow(id)
	for s.overflowBytes+size > s.capacityBytes && s.store.Len() > 0 {
		s.store.EvictVictim()
	}
	s.overflow[id] = boxed{val: value, size: size}
	s.overflowBytes += size
	s.store.Admit(cache.ID(id))
}

// dropOverflow removes id's boxed entry, if any, debiting its charge
// against the overflow byte budget.
func (s *Store) dropOverflow(id prefetcher.ID) {
	if e, ok := s.overflow[id]; ok {
		s.overflowBytes -= e.size
		delete(s.overflow, id)
	}
}

// Contains implements prefetcher.Cache (a peek: no recency refresh).
func (s *Store) Contains(id prefetcher.ID) bool { return s.store.Contains(cache.ID(id)) }

// Len implements prefetcher.Cache.
func (s *Store) Len() int { return s.store.Len() }

// OnEvict implements prefetcher.Cache. The callback receives victims
// of both eviction streams — policy and segment rotation.
func (s *Store) OnEvict(fn func(prefetcher.ID)) { s.onEvict = fn }

// SlabStats exposes the arena's occupancy/churn counters.
func (s *Store) SlabStats() slab.Stats { return s.slab.Stats() }
