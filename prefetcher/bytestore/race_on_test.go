//go:build race

package bytestore

// raceEnabled reports whether this test binary was built with the race
// detector. Alloc gates that depend on sync.Pool reuse skip under it:
// the race runtime deliberately drops a fraction of Pool.Put calls, so
// pooled steady state is unreachable by design.
const raceEnabled = true
