package prefetcher

import (
	"math"
	"testing"
)

func TestPlannerThresholds(t *testing.T) {
	par := PlanParams{Lambda: 30, Bandwidth: 50, MeanSize: 1, HPrime: 0.3, NC: 100}

	tests := []struct {
		name  string
		model Model
		want  float64 // p_th
	}{
		// Model A: p_th = ρ′ = (1−h′)λs̄/b = 0.7·30/50 = 0.42.
		{"model A", ModelA(), 0.42},
		// Model B adds h′/n̄(C) = 0.3/100.
		{"model B", ModelB(), 0.42 + 0.003},
		// AB at α=0.5 adds half the displacement.
		{"model AB", ModelAB(0.5), 0.42 + 0.0015},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPlanner(tc.model, par)
			if err != nil {
				t.Fatal(err)
			}
			pth, err := p.Threshold()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pth-tc.want) > 1e-12 {
				t.Fatalf("p_th = %v, want %v", pth, tc.want)
			}
			ok, err := p.ShouldPrefetch(tc.want + 0.01)
			if err != nil || !ok {
				t.Fatalf("ShouldPrefetch(just above) = %v, %v", ok, err)
			}
			ok, err = p.ShouldPrefetch(tc.want - 0.01)
			if err != nil || ok {
				t.Fatalf("ShouldPrefetch(just below) = %v, %v", ok, err)
			}
		})
	}
}

func TestPlannerEvaluateAndErrors(t *testing.T) {
	par := PlanParams{Lambda: 30, Bandwidth: 50, MeanSize: 1, HPrime: 0.3}
	p, err := NewPlanner(ModelA(), par)
	if err != nil {
		t.Fatal(err)
	}

	// Above-threshold prefetching improves the access time (G > 0).
	e, err := p.Evaluate(0.5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if e.G <= 0 {
		t.Fatalf("G = %v, want > 0 for p above threshold", e.G)
	}
	if e.TBarPrime-e.TBar != e.G {
		t.Fatalf("G inconsistent: t̄′−t̄ = %v, G = %v", e.TBarPrime-e.TBar, e.G)
	}
	// Below-threshold prefetching backfires (G < 0).
	bad, err := p.Evaluate(0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if bad.G >= 0 {
		t.Fatalf("G = %v, want < 0 for p below threshold", bad.G)
	}

	// Invalid parameters surface at construction.
	if _, err := NewPlanner(ModelA(), PlanParams{Lambda: -1, Bandwidth: 50, MeanSize: 1}); err == nil {
		t.Fatal("negative λ accepted")
	}
	// Model B without n̄(C) is a construction-time error too.
	if _, err := NewPlanner(ModelB(), par); err == nil {
		t.Fatal("model B without n̄(C) accepted")
	}

	// The standalone load-impedance helper matches the paper's shape:
	// the same Δρ costs more on a busier link.
	cLow, err := ExcessCost(30, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cHigh, err := ExcessCost(30, 0.9, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cHigh <= cLow {
		t.Fatalf("excess cost not load-impeded: low=%v high=%v", cLow, cHigh)
	}
}

func TestPlannerSized(t *testing.T) {
	par := PlanParams{Lambda: 20, Bandwidth: 50, MeanSize: 1, HPrime: 0.35}
	p, err := NewPlanner(ModelA(), par)
	if err != nil {
		t.Fatal(err)
	}
	// Under model A the threshold is size-independent.
	small, err := p.ThresholdSized(0.1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := p.ThresholdSized(5)
	if err != nil {
		t.Fatal(err)
	}
	if small != large {
		t.Fatalf("model-A sized thresholds differ: %v vs %v", small, large)
	}
	e, err := p.EvaluateSized([]SizedClass{{NF: 0.1, Prob: 0.75, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.G <= 0 {
		t.Fatalf("sized G = %v, want > 0", e.G)
	}
}
