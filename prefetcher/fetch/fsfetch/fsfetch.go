// Package fsfetch adapts a directory tree — a local disk cache, an
// NFS mount, a FUSE-mounted object store — to the fetch fabric's
// Fetcher and BatchFetcher interfaces. Each ID maps to one file under
// a root directory through a printf-style pattern, and a fetch is a
// bounded whole-file read returning the raw []byte payload.
//
// The adapter is deliberately synchronous: filesystem reads have no
// cancellable wire to hang on, so ctx is honoured at the boundaries —
// checked before each file is opened and between the files of a batch
// — which keeps hedge losers and expired per-attempt budgets from
// queueing further disk work while letting an in-progress read of one
// file run to completion (they are short; the bound caps them).
//
// Reads are single-allocation: the file is stat'd first and its
// payload read with one make + io.ReadFull, the same zero-copy shape
// the HTTP adapter uses for Content-Length-bearing replies.
package fsfetch

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"context"

	"repro/prefetcher/fetch"
)

// DefaultMaxFileBytes bounds a single object read when
// Config.MaxFileBytes is 0.
const DefaultMaxFileBytes = 64 << 20

// ErrTooLarge reports a file whose size exceeds the configured bound.
var ErrTooLarge = errors.New("fsfetch: file exceeds the configured size bound")

// Config describes one filesystem-backed object store.
type Config struct {
	// Root is the directory all object paths resolve under. Required;
	// it must exist and be a directory when New runs.
	Root string
	// Pattern maps an ID to a path relative to Root via fmt.Sprintf
	// with exactly one %d verb (e.g. "objects/%d.bin" or the default
	// "%d"). The expansion must stay inside Root — patterns that
	// escape via ".." are rejected per fetch.
	Pattern string
	// MaxFileBytes bounds each object read (0 means
	// DefaultMaxFileBytes). Files larger than the bound fail with
	// ErrTooLarge rather than truncating silently.
	MaxFileBytes int64
}

// Store is a filesystem-backed fetch.Fetcher / fetch.BatchFetcher.
// It is stateless beyond its configuration and safe for concurrent
// use.
type Store struct {
	root    string
	pattern string
	maxFile int64
}

// New validates cfg and returns a Store. The root must exist so that
// misconfiguration surfaces at wiring time, not as per-key fetch
// errors deep inside a running engine.
func New(cfg Config) (*Store, error) {
	if cfg.Root == "" {
		return nil, errors.New("fsfetch: Config.Root is required")
	}
	info, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("fsfetch: root: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("fsfetch: root %q is not a directory", cfg.Root)
	}
	pattern := cfg.Pattern
	if pattern == "" {
		pattern = "%d"
	}
	if strings.Count(pattern, "%") != 1 || !strings.Contains(pattern, "%d") {
		return nil, fmt.Errorf("fsfetch: Pattern %q must contain exactly one %%d verb", cfg.Pattern)
	}
	if cfg.MaxFileBytes < 0 {
		return nil, errors.New("fsfetch: MaxFileBytes must be >= 0")
	}
	maxFile := cfg.MaxFileBytes
	if maxFile == 0 {
		maxFile = DefaultMaxFileBytes
	}
	return &Store{
		root:    filepath.Clean(cfg.Root),
		pattern: pattern,
		maxFile: maxFile,
	}, nil
}

// path resolves id to its absolute path, refusing expansions that
// escape the root.
func (s *Store) path(id fetch.ID) (string, error) {
	rel := fmt.Sprintf(s.pattern, int64(id))
	p := filepath.Join(s.root, rel)
	if p != s.root && !strings.HasPrefix(p, s.root+string(filepath.Separator)) {
		return "", fmt.Errorf("fsfetch: id %d resolves outside the root", id)
	}
	return p, nil
}

// Fetch implements fetch.Fetcher: one bounded whole-file read. A
// missing file surfaces as fs.ErrNotExist (wrapped), so callers can
// errors.Is for it.
func (s *Store) Fetch(ctx context.Context, id fetch.ID) (fetch.Item, error) {
	if err := ctx.Err(); err != nil {
		return fetch.Item{}, err
	}
	p, err := s.path(id)
	if err != nil {
		return fetch.Item{}, err
	}
	data, err := s.readBounded(p)
	if err != nil {
		return fetch.Item{}, err
	}
	return fetch.Item{ID: id, Size: float64(len(data)), Data: data}, nil
}

// FetchBatch implements fetch.BatchFetcher: the ids are read
// sequentially (one spindle, one pass), with ctx consulted between
// files so an abandoned batch stops issuing reads. Any failed read
// fails the whole batch, per the BatchFetcher contract; the fabric's
// demand path degrades to per-key fallbacks from there.
func (s *Store) FetchBatch(ctx context.Context, ids []fetch.ID) ([]fetch.Item, error) {
	out := make([]fetch.Item, len(ids))
	for i, id := range ids {
		item, err := s.Fetch(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("fsfetch: batch id %d: %w", id, err)
		}
		out[i] = item
	}
	return out, nil
}

// readBounded reads one file with a single payload allocation.
func (s *Store) readBounded(p string) ([]byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("fsfetch: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("fsfetch: %w", err)
	}
	if info.Mode()&fs.ModeType != 0 {
		return nil, fmt.Errorf("fsfetch: %q is not a regular file", p)
	}
	n := info.Size()
	if n > s.maxFile {
		return nil, fmt.Errorf("%w: %q is %d bytes (max %d)", ErrTooLarge, p, n, s.maxFile)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("fsfetch: reading %q: %w", p, err)
	}
	return data, nil
}
