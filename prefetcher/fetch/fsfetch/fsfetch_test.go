package fsfetch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/prefetcher/fetch"
)

// newStore builds a Store over a temp dir pre-populated with objects
// for the given ids under the default "%d" pattern.
func newStore(t *testing.T, cfg Config, ids ...int64) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	for _, id := range ids {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprint(id)), payload(id), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Root = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func payload(id int64) []byte {
	return []byte(fmt.Sprintf("fs-object-%d", id))
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Root: "/definitely/not/a/real/dir"}); err == nil {
		t.Error("missing root accepted")
	}
	file := filepath.Join(t.TempDir(), "f")
	os.WriteFile(file, nil, 0o644)
	if _, err := New(Config{Root: file}); err == nil {
		t.Error("file root accepted")
	}
	dir := t.TempDir()
	for _, bad := range []string{"noverb", "%s", "%d-%d"} {
		if _, err := New(Config{Root: dir, Pattern: bad}); err == nil {
			t.Errorf("pattern %q accepted", bad)
		}
	}
	if _, err := New(Config{Root: dir, MaxFileBytes: -1}); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestFetch(t *testing.T) {
	s, _ := newStore(t, Config{}, 7)
	item, err := s.Fetch(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	want := payload(7)
	if !bytes.Equal(item.Data.([]byte), want) {
		t.Fatalf("payload %q, want %q", item.Data, want)
	}
	if item.ID != 7 || item.Size != float64(len(want)) {
		t.Fatalf("id/size = %d/%v", item.ID, item.Size)
	}
}

func TestFetchMissing(t *testing.T) {
	s, _ := newStore(t, Config{})
	if _, err := s.Fetch(context.Background(), 99); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestFetchBound(t *testing.T) {
	s, _ := newStore(t, Config{MaxFileBytes: 4}, 1)
	if _, err := s.Fetch(context.Background(), 1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestFetchPattern(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "objects"), 0o755)
	os.WriteFile(filepath.Join(dir, "objects", "5.bin"), payload(5), 0o644)
	s, err := New(Config{Root: dir, Pattern: "objects/%d.bin"})
	if err != nil {
		t.Fatal(err)
	}
	item, err := s.Fetch(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Data.([]byte), payload(5)) {
		t.Fatalf("payload %q", item.Data)
	}
}

func TestFetchCancelled(t *testing.T) {
	s, _ := newStore(t, Config{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Fetch(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestFetchBatch(t *testing.T) {
	s, _ := newStore(t, Config{}, 1, 2, 3)
	items, err := s.FetchBatch(context.Background(), []fetch.ID{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []fetch.ID{3, 1, 2}
	for i, it := range items {
		if it.ID != want[i] || !bytes.Equal(it.Data.([]byte), payload(int64(want[i]))) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	// One missing id fails the whole batch (fabric degrades per-key).
	if _, err := s.FetchBatch(context.Background(), []fetch.ID{1, 42}); err == nil {
		t.Fatal("missing id did not fail the batch")
	}
}

// The adapter behind a fabric: demand and speculative batch paths over
// real files.
func TestStoreBehindFabric(t *testing.T) {
	s, _ := newStore(t, Config{}, 10, 11, 12)
	f, err := fetch.New(fetch.Config{Backends: []fetch.Backend{
		{Name: "disk", Fetcher: s},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	item, err := f.Fetch(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Data.([]byte), payload(10)) {
		t.Fatalf("payload %q", item.Data)
	}
	items, err := f.FetchSpeculativeBatch(context.Background(), 0, []fetch.ID{11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("%d items, want 2", len(items))
	}
	st := f.Stats(0)
	if st[0].Demand != 1 || st[0].Speculative != 2 || st[0].BatchCalls != 1 {
		t.Fatalf("stats = %+v", st[0])
	}
}
