package fetch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// instantFetcher returns items immediately with the given size.
type instantFetcher struct {
	size  float64
	calls atomic.Int64
}

func (f *instantFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	f.calls.Add(1)
	return Item{ID: id, Size: f.size}, nil
}

// slowFetcher blocks for its delay (or until ctx is cancelled) before
// answering; it records how many invocations saw a cancellation.
type slowFetcher struct {
	delay     time.Duration
	calls     atomic.Int64
	cancelled atomic.Int64
}

func (f *slowFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	f.calls.Add(1)
	select {
	case <-time.After(f.delay):
		return Item{ID: id, Size: 1}, nil
	case <-ctx.Done():
		f.cancelled.Add(1)
		return Item{}, ctx.Err()
	}
}

// failingFetcher always errors.
type failingFetcher struct {
	calls atomic.Int64
}

func (f *failingFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	f.calls.Add(1)
	return Item{}, errors.New("origin down")
}

// batchFetcher implements BatchFetcher and records batch shapes.
type batchFetcher struct {
	instantFetcher
	batches atomic.Int64
	items   atomic.Int64
}

func (f *batchFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	f.batches.Add(1)
	f.items.Add(int64(len(ids)))
	out := make([]Item, len(ids))
	for i, id := range ids {
		out[i] = Item{ID: id, Size: 1}
	}
	return out, nil
}

func newTestFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestNewValidation(t *testing.T) {
	good := Backend{Name: "a", Fetcher: &instantFetcher{size: 1}}
	cases := []Config{
		{},
		{Backends: []Backend{{Name: "a"}}},
		{Backends: []Backend{{Fetcher: good.Fetcher}}},
		{Backends: []Backend{good, good}},
		{Backends: []Backend{good}, IdleWatermark: 2},
		{Backends: []Backend{good}, IdleWatermark: math.NaN()},
		{Backends: []Backend{good}, DeferDepth: -1},
		{Backends: []Backend{good}, Hedging: &Hedging{Delay: -time.Second}},
		{Backends: []Backend{{Name: "a", Fetcher: good.Fetcher, Weight: -1}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
}

func TestWeightedRoutingSplitsByWeight(t *testing.T) {
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "heavy", Fetcher: &instantFetcher{size: 1}, Weight: 3},
		{Name: "light", Fetcher: &instantFetcher{size: 1}, Weight: 1},
	}})
	counts := [2]int{}
	for id := ID(0); id < 4000; id++ {
		counts[f.Route(id)]++
	}
	frac := float64(counts[0]) / 4000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("heavy backend got %.3f of ids, want ≈ 0.75", frac)
	}
	// Affinity: the same id always routes the same way.
	for id := ID(0); id < 100; id++ {
		if f.Route(id) != f.Route(id) {
			t.Fatalf("id %d route is unstable", id)
		}
	}
}

func TestLatencyRoutingPrefersFastBackend(t *testing.T) {
	fast := &slowFetcher{delay: 1 * time.Millisecond}
	slow := &slowFetcher{delay: 20 * time.Millisecond}
	f := newTestFabric(t, Config{
		Routing: RouteLatency,
		Backends: []Backend{
			{Name: "slow", Fetcher: slow},
			{Name: "fast", Fetcher: fast},
		},
	})
	ctx := context.Background()
	// Unmeasured backends are explored first; seed both with samples.
	for i := 0; i < 4; i++ {
		if _, err := f.FetchSpeculative(ctx, 0, ID(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.FetchSpeculative(ctx, 1, ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for id := ID(100); id < 120; id++ {
		if got := f.Route(id); got != 1 {
			t.Fatalf("id %d routed to %q, want the fast backend", id, f.Name(got))
		}
	}
}

func TestFailoverOnError(t *testing.T) {
	bad := &failingFetcher{}
	good := &instantFetcher{size: 1}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "bad", Fetcher: bad, Weight: 100}, // routing prefers the failing link
		{Name: "good", Fetcher: good, Weight: 1e-9},
	}})
	item, err := f.Fetch(context.Background(), 7)
	if err != nil {
		t.Fatalf("Fetch must fail over: %v", err)
	}
	if item.ID != 7 {
		t.Fatalf("item = %+v, want id 7", item)
	}
	st := f.Stats(0)
	if st[0].Errors != 1 || st[1].Retries != 1 {
		t.Fatalf("stats = %+v, want one error on bad and one retry on good", st)
	}
	// Every backend failing surfaces the last error.
	f2 := newTestFabric(t, Config{Backends: []Backend{
		{Name: "b1", Fetcher: &failingFetcher{}},
		{Name: "b2", Fetcher: &failingFetcher{}},
	}})
	if _, err := f2.Fetch(context.Background(), 1); err == nil {
		t.Fatal("Fetch with all backends failing must error")
	}
}

func TestHedgeRacesSecondBackendAndCancelsLoser(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	slow := &slowFetcher{delay: 500 * time.Millisecond}
	fast := &slowFetcher{delay: 1 * time.Millisecond}
	f := newTestFabric(t, Config{
		Hedging: &Hedging{Delay: 5 * time.Millisecond},
		Backends: []Backend{
			{Name: "slow", Fetcher: slow, Weight: 1e9}, // rendezvous pins the primary
			{Name: "fast", Fetcher: fast, Weight: 1e-9},
		},
	})
	start := time.Now()
	item, err := f.Fetch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if item.ID != 3 {
		t.Fatalf("item = %+v", item)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("hedged fetch took %v, the hedge should have won long before the slow primary", elapsed)
	}
	st := f.Stats(0)
	if st[1].HedgesLaunched != 1 || st[1].HedgesWon != 1 {
		t.Fatalf("fast backend stats = %+v, want one hedge launched and won", st[1])
	}
	// The slow loser must observe the cancellation promptly.
	deadline := time.Now().Add(2 * time.Second)
	for slow.cancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loser fetch was never cancelled")
		}
		time.Sleep(time.Millisecond)
	}
	if st[0].Errors != 0 {
		t.Fatalf("cancelled loser counted as an error: %+v", st[0])
	}
}

func TestHedgeDelayDerivedFromP95(t *testing.T) {
	slow := &slowFetcher{delay: 30 * time.Millisecond}
	fast := &slowFetcher{delay: time.Millisecond}
	f := newTestFabric(t, Config{
		// p95-derived delay, halved so the hedge launches (and its
		// 1ms backend finishes) well before the ~30ms primary does.
		Hedging: &Hedging{P95Multiple: 0.5},
		Backends: []Backend{
			{Name: "slow", Fetcher: slow, Weight: 1e9},
			{Name: "fast", Fetcher: fast, Weight: 1e-9},
		},
	})
	ctx := context.Background()
	// First fetch: no p95 estimate yet, so no hedge can be armed.
	if _, err := f.Fetch(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(0); st[1].HedgesLaunched != 0 {
		t.Fatalf("hedge launched with no p95 estimate: %+v", st[1])
	}
	// Once the primary has a p95, the hedge arms and wins.
	if _, err := f.Fetch(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(0); st[1].HedgesLaunched != 1 || st[1].HedgesWon != 1 {
		t.Fatalf("stats after p95 hedge = %+v", st[1])
	}
}

// flakyFetcher fails its first call, then succeeds; it tracks the
// maximum concurrent invocations it ever saw.
type flakyFetcher struct {
	calls   atomic.Int64
	active  atomic.Int64
	maxSeen atomic.Int64
}

func (f *flakyFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	n := f.active.Add(1)
	defer f.active.Add(-1)
	for {
		max := f.maxSeen.Load()
		if n <= max || f.maxSeen.CompareAndSwap(max, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond) // wide enough for a duplicate to overlap
	if f.calls.Add(1) == 1 {
		return Item{}, errors.New("transient")
	}
	return Item{ID: id, Size: 1}, nil
}

// TestSingleBackendHedgingDegradesToSequentialRetries pins the
// WithHedging contract for one backend: retries, never a concurrent
// duplicate racing the same link.
func TestSingleBackendHedgingDegradesToSequentialRetries(t *testing.T) {
	flaky := &flakyFetcher{}
	f := newTestFabric(t, Config{
		Hedging:  &Hedging{Delay: 100 * time.Microsecond, MaxAttempts: 2},
		Backends: []Backend{{Name: "only", Fetcher: flaky}},
	})
	item, err := f.Fetch(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if item.ID != 5 {
		t.Fatalf("item = %+v", item)
	}
	st := f.Stats(0)
	if st[0].Retries != 1 || st[0].HedgesLaunched != 0 {
		t.Fatalf("stats = %+v, want one sequential retry and no hedges", st[0])
	}
	if got := flaky.maxSeen.Load(); got != 1 {
		t.Fatalf("backend saw %d concurrent fetches, want strictly sequential", got)
	}
}

func TestFetchSpeculativeBatchCoalesces(t *testing.T) {
	bf := &batchFetcher{}
	single := &instantFetcher{size: 1}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "batch", Fetcher: bf},
		{Name: "single", Fetcher: single},
	}})
	ctx := context.Background()
	items, err := f.FetchSpeculativeBatch(ctx, 0, []ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || items[2].ID != 3 {
		t.Fatalf("items = %+v", items)
	}
	if bf.batches.Load() != 1 || bf.items.Load() != 3 {
		t.Fatalf("batch fetcher saw %d calls / %d items, want 1/3", bf.batches.Load(), bf.items.Load())
	}
	if !f.BatchCapable(0) || f.BatchCapable(1) {
		t.Fatal("BatchCapable misreports")
	}
	// A non-batch backend falls back to sequential singles.
	if _, err := f.FetchSpeculativeBatch(ctx, 1, []ID{4, 5}); err != nil {
		t.Fatal(err)
	}
	if single.calls.Load() != 2 {
		t.Fatalf("single backend saw %d calls, want 2", single.calls.Load())
	}
	st := f.Stats(0)
	if st[0].BatchCalls != 1 || st[0].BatchedItems != 3 || st[0].Speculative != 3 {
		t.Fatalf("batch backend stats = %+v", st[0])
	}
}

// shortBatchFetcher violates the one-item-per-id contract.
type shortBatchFetcher struct{ instantFetcher }

func (f *shortBatchFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	return []Item{{ID: ids[0], Size: 1}}, nil
}

func TestFetchSpeculativeBatchRejectsShortReply(t *testing.T) {
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "short", Fetcher: &shortBatchFetcher{}},
	}})
	if _, err := f.FetchSpeculativeBatch(context.Background(), 0, []ID{1, 2}); err == nil {
		t.Fatal("short batch reply must error")
	}
}

// manualNow is a hand-advanced time source for gate tests.
type manualNow struct {
	mu  sync.Mutex
	now float64
}

func (m *manualNow) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

func (m *manualNow) Advance(s float64) {
	m.mu.Lock()
	m.now += s
	m.mu.Unlock()
}

func TestIdleGateDefersAndReleases(t *testing.T) {
	clk := &manualNow{}
	var mu sync.Mutex
	var released []ID
	f := newTestFabric(t, Config{
		Backends:      []Backend{{Name: "origin", Fetcher: &instantFetcher{size: 1}, Bandwidth: 10}},
		IdleWatermark: 0.5,
		Alpha:         0.5,
		Now:           clk.Now,
		OnRelease: func(backend int, ids []ID) {
			mu.Lock()
			released = append(released, ids...)
			mu.Unlock()
		},
	})
	// Saturate the link: 100 size-1 fetches/s against b=10.
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := f.FetchSpeculative(ctx, 0, ID(i)); err != nil {
			t.Fatal(err)
		}
		clk.Advance(0.01)
	}
	if !f.Busy(0) {
		t.Fatalf("link must be busy: ρ̂ = %v", f.Link(0).Rho(clk.Now()))
	}
	if n := len(f.Defer(0, 100, 101, 102)); n != 3 {
		t.Fatalf("Defer parked %d, want 3", n)
	}
	if n := len(f.Defer(0, 101, 103)); n != 1 {
		t.Fatalf("Defer re-parked a duplicate: parked %d, want 1 (103 only)", n)
	}
	if f.Pending(0) == 0 {
		t.Fatal("no candidates pending after Defer")
	}
	// While the link stays busy nothing is released.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	n := len(released)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("%d candidates released while the link was busy", n)
	}
	// An idle period lets ρ̂ decay below the watermark; the drainer
	// (polling in wall time, bounded by maxGateWait) must release.
	clk.Advance(10)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n = len(released)
		mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/4 candidates released after the link idled", n)
		}
		time.Sleep(time.Millisecond)
	}
	st := f.Stats(clk.Now())
	if st[0].Deferred != 4 || st[0].Released != 4 || st[0].Pending != 0 {
		t.Fatalf("gate stats = %+v", st[0])
	}
}

func TestIdleGateQueueBoundsAndCloseSheds(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	clk := &manualNow{}
	f := newTestFabric(t, Config{
		Backends:      []Backend{{Name: "origin", Fetcher: &instantFetcher{size: 1}, Bandwidth: 1}},
		IdleWatermark: 0.5,
		DeferDepth:    2,
		Alpha:         0.5,
		Now:           clk.Now,
		OnRelease:     func(int, []ID) {},
	})
	// Keep the link saturated so nothing drains mid-test.
	for i := 0; i < 50; i++ {
		f.Link(0).RecordSpeculative(clk.Now())
		f.Link(0).RecordSpeculativeSize(5)
		clk.Advance(0.001)
	}
	if got := len(f.Defer(0, 1, 2, 3, 4)); got != 2 {
		t.Fatalf("Defer parked %d, want the depth-2 bound", got)
	}
	st := f.Stats(clk.Now())
	if st[0].Deferred != 2 || st[0].DeferredDropped != 2 {
		t.Fatalf("stats = %+v, want 2 parked and 2 shed", st[0])
	}
	f.Close()
	st = f.Stats(clk.Now())
	if st[0].DeferredDropped != 4 || st[0].Pending != 0 {
		t.Fatalf("after Close: %+v, want parked candidates shed", st[0])
	}
	if _, err := f.Fetch(context.Background(), 9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fetch after Close = %v, want ErrClosed", err)
	}
}

func TestFetchRespectsCallerContext(t *testing.T) {
	testutil.ExpectNoLeaks(t)
	slow := &slowFetcher{delay: time.Minute}
	f := newTestFabric(t, Config{Backends: []Backend{{Name: "slow", Fetcher: slow}}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := f.Fetch(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Fetch did not honour the caller context promptly")
	}
}

func TestFabricConcurrentUse(t *testing.T) {
	backends := []Backend{
		{Name: "a", Fetcher: &instantFetcher{size: 1}, Weight: 2},
		{Name: "b", Fetcher: &batchFetcher{}, Weight: 1},
		{Name: "c", Fetcher: &slowFetcher{delay: 100 * time.Microsecond}},
	}
	f := newTestFabric(t, Config{
		Backends:      backends,
		Hedging:       &Hedging{Delay: time.Millisecond},
		IdleWatermark: 0.9,
		OnRelease:     func(int, []ID) {},
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ID(g*1000 + i)
				switch i % 4 {
				case 0:
					if _, err := f.Fetch(ctx, id); err != nil {
						t.Errorf("Fetch: %v", err)
						return
					}
				case 1:
					b := f.Route(id)
					if _, err := f.FetchSpeculative(ctx, b, id); err != nil {
						t.Errorf("FetchSpeculative: %v", err)
						return
					}
				case 2:
					b := f.Route(id)
					if _, err := f.FetchSpeculativeBatch(ctx, b, []ID{id, id + 1}); err != nil {
						t.Errorf("FetchSpeculativeBatch: %v", err)
						return
					}
				default:
					if f.Busy(0) {
						f.Defer(0, id)
					}
					_ = f.Stats(0)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for i, st := range f.Stats(0) {
		total += st.Demand + st.Speculative
		if st.Rho < 0 || st.Rho > 1 || st.RhoPrime < 0 || st.RhoPrime > 1 {
			t.Fatalf("backend %d utilisation out of range: %+v", i, st)
		}
	}
	if total == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestRoutingString(t *testing.T) {
	if fmt.Sprint(RouteWeighted) != "weighted" || fmt.Sprint(RouteLatency) != "latency" {
		t.Fatal("Routing.String misnames strategies")
	}
}

// --- demand batch path ---------------------------------------------------

// misorderedBatchFetcher answers batches with the ids reversed,
// violating the request-order half of the FetchBatch contract.
type misorderedBatchFetcher struct{ instantFetcher }

func (f *misorderedBatchFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	out := make([]Item, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = Item{ID: id, Size: 1}
	}
	return out, nil
}

// pickyBatchFetcher refuses every batch call outright; its singleton
// path works except for the one poisoned id — the shape that exercises
// per-key partial failure through the fallback.
type pickyBatchFetcher struct {
	bad   ID
	calls atomic.Int64
}

func (f *pickyBatchFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	f.calls.Add(1)
	if id == f.bad {
		return Item{}, errors.New("poisoned id")
	}
	return Item{ID: id, Size: 1}, nil
}

func (f *pickyBatchFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	return nil, errors.New("batch refused")
}

func demandBatch(f *Fabric, backend int, ids []ID) ([]Item, []error) {
	out := make([]Item, len(ids))
	errs := make([]error, len(ids))
	f.FetchDemandBatch(context.Background(), backend, ids, out, errs)
	return out, errs
}

func TestFetchDemandBatchCoalesces(t *testing.T) {
	bf := &batchFetcher{}
	f := newTestFabric(t, Config{Backends: []Backend{{Name: "batch", Fetcher: bf}}})
	ids := []ID{7, 3, 9}
	out, errs := demandBatch(f, 0, ids)
	for i, id := range ids {
		if errs[i] != nil || out[i].ID != id {
			t.Fatalf("key %d: item=%+v err=%v", i, out[i], errs[i])
		}
	}
	if bf.batches.Load() != 1 || bf.items.Load() != 3 {
		t.Fatalf("backend saw %d calls / %d items, want 1/3", bf.batches.Load(), bf.items.Load())
	}
	if bf.calls.Load() != 0 {
		t.Fatalf("singleton path saw %d calls, want 0", bf.calls.Load())
	}
	st := f.Stats(0)[0]
	if st.DemandBatchCalls != 1 || st.DemandBatchedItems != 3 || st.Demand != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BatchCalls != 0 || st.Speculative != 0 {
		t.Fatalf("demand batch leaked into speculative counters: %+v", st)
	}
}

func TestFetchDemandBatchSingleKeyAndNoBatchSupport(t *testing.T) {
	plain := &instantFetcher{size: 1}
	bf := &batchFetcher{}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "batch", Fetcher: bf},
		{Name: "plain", Fetcher: plain},
	}})
	// One key never pays the batch machinery.
	if out, errs := demandBatch(f, 0, []ID{42}); errs[0] != nil || out[0].ID != 42 {
		t.Fatalf("single key: %+v %v", out, errs)
	}
	if bf.batches.Load() != 0 {
		t.Fatal("single-key demand batch must not call FetchBatch")
	}
	// A backend without batch support serves key by key.
	// (Routing may fail the keys over to the batch backend's singleton
	// path; only the per-key outcome is contractual.)
	ids := []ID{1, 2}
	out, errs := demandBatch(f, 1, ids)
	for i, id := range ids {
		if errs[i] != nil || out[i].ID != id {
			t.Fatalf("key %d: item=%+v err=%v", i, out[i], errs[i])
		}
	}
}

func TestFetchDemandBatchShortReplyFallsBack(t *testing.T) {
	sf := &shortBatchFetcher{}
	f := newTestFabric(t, Config{Backends: []Backend{{Name: "short", Fetcher: sf}}})
	ids := []ID{1, 2, 3}
	out, errs := demandBatch(f, 0, ids)
	for i, id := range ids {
		if errs[i] != nil || out[i].ID != id {
			t.Fatalf("key %d must be served by the per-key fallback: item=%+v err=%v", i, out[i], errs[i])
		}
	}
	if sf.calls.Load() != int64(len(ids)) {
		t.Fatalf("fallback made %d singleton fetches, want %d", sf.calls.Load(), len(ids))
	}
}

func TestFetchDemandBatchMisorderedReplyFallsBack(t *testing.T) {
	mf := &misorderedBatchFetcher{}
	f := newTestFabric(t, Config{Backends: []Backend{{Name: "misordered", Fetcher: mf}}})
	ids := []ID{5, 6}
	out, errs := demandBatch(f, 0, ids)
	for i, id := range ids {
		if errs[i] != nil || out[i].ID != id {
			t.Fatalf("key %d: item=%+v err=%v", i, out[i], errs[i])
		}
	}
	if mf.calls.Load() != int64(len(ids)) {
		t.Fatalf("fallback made %d singleton fetches, want %d", mf.calls.Load(), len(ids))
	}
}

func TestFetchDemandBatchPartialFailure(t *testing.T) {
	pf := &pickyBatchFetcher{bad: 2}
	f := newTestFabric(t, Config{Backends: []Backend{{Name: "picky", Fetcher: pf}}})
	ids := []ID{1, 2, 3}
	out, errs := demandBatch(f, 0, ids)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good keys failed: %v %v", errs[0], errs[2])
	}
	if out[0].ID != 1 || out[2].ID != 3 {
		t.Fatalf("good keys misdelivered: %+v", out)
	}
	if errs[1] == nil {
		t.Fatal("poisoned key must keep its own error")
	}
}

func TestFetchDemandBatchClosedAndDeadContext(t *testing.T) {
	bf := &batchFetcher{}
	f, err := New(Config{Backends: []Backend{{Name: "batch", Fetcher: bf}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := make([]Item, 2)
	errs := make([]error, 2)
	// A dead context on the fallback path fails the keys without
	// dispatching them. (The batch path itself hands ctx to the
	// backend, which decides.)
	f.FetchDemandBatch(ctx, 0, []ID{1}, out[:1], errs[:1])
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("dead ctx: err = %v", errs[0])
	}
	f.Close()
	f.FetchDemandBatch(context.Background(), 0, []ID{1, 2}, out, errs)
	for i := range errs {
		if !errors.Is(errs[i], ErrClosed) {
			t.Fatalf("key %d after Close: err = %v", i, errs[i])
		}
	}
}
