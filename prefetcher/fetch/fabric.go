package fetch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/prefetch"
)

// ErrClosed is returned by fetches issued after Close.
var ErrClosed = errors.New("fetch: fabric closed")

// ErrBreakerOpen fails a fetch fast instead of dispatching it to a
// backend whose circuit breaker is open (or, for demand fetches, when
// every backend's breaker is open and none is due a half-open probe).
var ErrBreakerOpen = errors.New("fetch: circuit breaker open")

// releaseBurst bounds how many parked candidates one gate release
// hands back at a time, so the drainer re-reads ρ̂ between bursts
// instead of dumping a long queue onto a link that just went idle.
const releaseBurst = 8

// maxGateWait caps the drainer's sleep between ρ̂ re-checks. The wait
// is normally computed exactly from the link's decay (Link.IdleWait),
// but that computation is in *estimator* time — a caller driving the
// fabric from a manual clock would otherwise sleep forever in wall
// time.
const maxGateWait = 5 * time.Millisecond

// minGateWait keeps the drainer from spinning when the computed decay
// wait rounds to ~zero while ρ̂ still reads above the watermark.
const minGateWait = 100 * time.Microsecond

// Config assembles a Fabric. Backends is the only required field.
type Config struct {
	// Backends are the named links; at least one, names distinct.
	Backends []Backend
	// Routing selects the spread strategy (default RouteWeighted).
	Routing Routing
	// Hedging enables hedged retries on the demand path; nil disables
	// hedging (failover on error still happens).
	Hedging *Hedging
	// IdleWatermark gates speculative dispatch: a speculative fetch
	// routed to a backend whose ρ̂ is at or above the watermark is
	// parked and released only when the link idles below it. 0
	// disables the gate.
	IdleWatermark float64
	// Breaker enables per-backend circuit breaking; nil disables it.
	Breaker *Breaker
	// DeferDepth bounds each backend's parked-candidate queue
	// (default 256); candidates beyond it are shed and counted.
	DeferDepth int
	// Alpha is the EWMA weight for the link and latency estimators
	// (default 0.05, matching the engine's controller).
	Alpha float64
	// Now supplies time in seconds for the link estimators. Defaults
	// to the wall clock measured from construction. The engine injects
	// its own clock so link estimates share the controller's timeline.
	Now func() float64
	// OnRelease, when set, receives parked speculative candidates the
	// idle gate releases, called from a drainer goroutine. The engine
	// uses it to re-enter released candidates into its dispatch path.
	// When nil, released candidates are fetched by the fabric itself
	// (fire-and-forget warms nothing — standalone users almost always
	// want the callback).
	OnRelease func(backend int, ids []ID)
}

// backendState is one backend plus everything the fabric tracks for
// it.
type backendState struct {
	idx   int
	cfg   Backend
	batch BatchFetcher // non-nil when cfg.Fetcher supports batching
	link  *prefetch.Link
	est   *estimator
	seed  uint64 // rendezvous-hash seed derived from the name

	demand       atomic.Int64
	speculative  atomic.Int64
	errorsN      atomic.Int64
	batchCalls   atomic.Int64
	batchedItems atomic.Int64
	// Demand-batch traffic (FetchDemandBatch) is counted apart from the
	// speculative coalescing above: the two paths have different
	// failure semantics and the split is what BENCH_session measures.
	demandBatchCalls   atomic.Int64
	demandBatchedItems atomic.Int64
	hedgesLaunched     atomic.Int64
	hedgesWon          atomic.Int64
	retries            atomic.Int64
	deferredN          atomic.Int64
	released           atomic.Int64
	deferDropped       atomic.Int64

	// Circuit-breaker state (unused when no Breaker is configured):
	// consecutive non-cancelled failures, the tri-state breaker, when it
	// last opened (float64 bits, fabric time) and how often it tripped.
	consecFails atomic.Int64
	brState     atomic.Int32
	brOpenedAt  atomic.Uint64
	brOpens     atomic.Int64

	mu        sync.Mutex
	parked    []ID
	parkedSet map[ID]struct{} // dedup: ids currently in parked
	poke      chan struct{}   // wakes the drainer when candidates park
}

// Fabric routes fetches across the configured backends. All methods
// are safe for concurrent use. Create one with New and release its
// drainer goroutines with Close.
type Fabric struct {
	backends  []*backendState
	routing   Routing
	hedging   *Hedging
	watermark float64
	deferCap  int
	// breaker is the validated circuit-breaker config (thresh in
	// failures, cooldown in fabric-time seconds); nil when disabled.
	breaker *struct {
		threshold int64
		cooldown  float64
	}
	nowf      func() float64
	onRelease func(backend int, ids []ID)

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	// baseCtx is cancelled at Close; it bounds the fetches the fabric
	// runs on its own behalf (standalone gate releases).
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New validates cfg and assembles a Fabric, starting one idle-gate
// drainer goroutine per backend when a watermark is configured.
func New(cfg Config) (*Fabric, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("fetch: no backends")
	}
	if cfg.IdleWatermark < 0 || cfg.IdleWatermark > 1 || math.IsNaN(cfg.IdleWatermark) {
		return nil, fmt.Errorf("fetch: idle watermark %v must be in [0,1]", cfg.IdleWatermark)
	}
	if cfg.Hedging != nil {
		if cfg.Hedging.Delay < 0 || cfg.Hedging.MaxAttempts < 0 || cfg.Hedging.Backoff < 0 || cfg.Hedging.P95Multiple < 0 {
			return nil, fmt.Errorf("fetch: negative hedging parameter")
		}
	}
	deferCap := cfg.DeferDepth
	if deferCap == 0 {
		deferCap = 256
	}
	if deferCap < 1 {
		return nil, fmt.Errorf("fetch: defer depth %d must be >= 1", cfg.DeferDepth)
	}
	nowf := cfg.Now
	if nowf == nil {
		epoch := time.Now()
		nowf = func() float64 { return time.Since(epoch).Seconds() }
	}
	f := &Fabric{
		routing:   cfg.Routing,
		hedging:   cfg.Hedging,
		watermark: cfg.IdleWatermark,
		deferCap:  deferCap,
		nowf:      nowf,
		onRelease: cfg.OnRelease,
		done:      make(chan struct{}),
	}
	if cfg.Breaker != nil {
		if cfg.Breaker.Threshold < 0 || cfg.Breaker.Cooldown < 0 {
			return nil, fmt.Errorf("fetch: negative breaker parameter %+v", *cfg.Breaker)
		}
		thresh := int64(cfg.Breaker.Threshold)
		if thresh == 0 {
			thresh = 5
		}
		cooldown := cfg.Breaker.Cooldown.Seconds()
		if cooldown == 0 {
			cooldown = 1
		}
		f.breaker = &struct {
			threshold int64
			cooldown  float64
		}{threshold: thresh, cooldown: cooldown}
	}
	//lint:allow ctxflow fabric-owned lifecycle root, cancelled in Close
	f.baseCtx, f.baseCancel = context.WithCancel(context.Background())
	seen := make(map[string]bool, len(cfg.Backends))
	for i, b := range cfg.Backends {
		if b.Fetcher == nil {
			return nil, fmt.Errorf("fetch: backend %d (%q) has a nil fetcher", i, b.Name)
		}
		if b.Name == "" {
			return nil, fmt.Errorf("fetch: backend %d has no name", i)
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("fetch: duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Weight < 0 || math.IsNaN(b.Weight) || b.Bandwidth < 0 || math.IsNaN(b.Bandwidth) {
			return nil, fmt.Errorf("fetch: backend %q has a negative weight or bandwidth", b.Name)
		}
		if b.DemandTimeout < 0 || b.SpeculativeTimeout < 0 {
			return nil, fmt.Errorf("fetch: backend %q has a negative timeout", b.Name)
		}
		if b.Weight == 0 {
			b.Weight = 1
		}
		bs := &backendState{
			idx:       i,
			cfg:       b,
			link:      prefetch.NewLink(b.Bandwidth, cfg.Alpha),
			est:       newEstimator(cfg.Alpha),
			seed:      nameSeed(b.Name),
			parkedSet: make(map[ID]struct{}),
			poke:      make(chan struct{}, 1),
		}
		bs.batch, _ = b.Fetcher.(BatchFetcher)
		f.backends = append(f.backends, bs)
	}
	if f.watermark > 0 {
		for _, bs := range f.backends {
			f.wg.Add(1)
			go f.drain(bs)
		}
	}
	return f, nil
}

// NumBackends returns how many backends the fabric routes across.
func (f *Fabric) NumBackends() int { return len(f.backends) }

// Name returns backend i's configured name.
func (f *Fabric) Name(i int) string { return f.backends[i].cfg.Name }

// BatchCapable reports whether backend i's fetcher supports FetchBatch.
func (f *Fabric) BatchCapable(i int) bool { return f.backends[i].batch != nil }

// Link exposes backend i's utilisation estimator, so the engine's
// controller can evaluate the admission threshold against that link's
// ρ̂′ (Controller.StateForLink).
func (f *Fabric) Link(i int) *prefetch.Link { return f.backends[i].link }

// --- circuit breaker -----------------------------------------------------

// routable reports, without side effects, whether backend b should
// receive new traffic: its breaker is closed, or open long enough that
// a half-open probe is due. Routing and planning use this to steer
// candidates away from tripped backends.
func (f *Fabric) routable(b *backendState) bool {
	if f.breaker == nil {
		return true
	}
	switch b.brState.Load() {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false // the probe is out; wait for its verdict
	default:
		opened := math.Float64frombits(b.brOpenedAt.Load())
		return f.nowf()-opened >= f.breaker.cooldown
	}
}

// acquire claims the right to dispatch one fetch to backend b: always
// granted while the breaker is closed; when it is open and the cooldown
// has elapsed, exactly one caller wins the transition to half-open and
// carries the probe — probe reports that ownership, and the attempt's
// outcome (not global state) decides the breaker's verdict in
// breakerFailure/breakerCancelled. Callers that are refused skip the
// backend.
func (f *Fabric) acquire(b *backendState) (granted, probe bool) {
	if f.breaker == nil {
		return true, false
	}
	switch b.brState.Load() {
	case breakerClosed:
		return true, false
	case breakerHalfOpen:
		return false, false
	default:
		opened := math.Float64frombits(b.brOpenedAt.Load())
		if f.nowf()-opened < f.breaker.cooldown {
			return false, false
		}
		won := b.brState.CompareAndSwap(breakerOpen, breakerHalfOpen)
		return won, won
	}
}

// breakerSuccess records a successful fetch: the failure run ends and,
// when this attempt carried the half-open probe, the breaker closes.
// A straggler's success (an attempt launched before the trip) must not
// re-close an open breaker — recovery goes through the documented
// cooldown-then-probe discipline, same as failures and cancellations.
func (f *Fabric) breakerSuccess(b *backendState, probe bool) {
	if f.breaker == nil {
		return
	}
	b.consecFails.Store(0)
	if probe {
		b.brState.CompareAndSwap(breakerHalfOpen, breakerClosed)
	}
}

// breakerFailure records a failed fetch. A failed half-open probe
// re-opens the breaker immediately (only the attempt that carries the
// probe may do this — a straggler launched before the trip must not
// decide the probe's verdict); otherwise a closed breaker opens once
// the consecutive failure run reaches the threshold.
func (f *Fabric) breakerFailure(b *backendState, probe bool) {
	if f.breaker == nil {
		return
	}
	n := b.consecFails.Add(1)
	if probe {
		if b.brState.CompareAndSwap(breakerHalfOpen, breakerOpen) {
			b.brOpenedAt.Store(math.Float64bits(f.nowf()))
			b.brOpens.Add(1)
		}
		return
	}
	if b.brState.Load() == breakerClosed && n >= f.breaker.threshold {
		if b.brState.CompareAndSwap(breakerClosed, breakerOpen) {
			b.brOpenedAt.Store(math.Float64bits(f.nowf()))
			b.brOpens.Add(1)
		}
	}
}

// breakerCancelled handles an attempt that was cancelled (hedge loser,
// caller gave up): it is neither success nor failure, but when it
// carried the half-open probe the slot must not stay wedged — the
// breaker returns to open with a fresh cooldown, and the next elapsed
// cooldown grants a new probe.
func (f *Fabric) breakerCancelled(b *backendState, probe bool) {
	if f.breaker == nil || !probe {
		return
	}
	if b.brState.CompareAndSwap(breakerHalfOpen, breakerOpen) {
		b.brOpenedAt.Store(math.Float64bits(f.nowf()))
	}
}

// breakerState names backend b's current breaker state for stats.
func (f *Fabric) breakerState(b *backendState) string {
	if f.breaker == nil {
		return ""
	}
	switch b.brState.Load() {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// --- routing -------------------------------------------------------------

// nameSeed hashes a backend name to a stable rendezvous seed (FNV-1a).
func nameSeed(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is a splitmix64 round — the per-(id, backend) hash behind
// rendezvous routing.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// score returns backend b's routing score for id — lower is better.
func (f *Fabric) score(b *backendState, id ID) float64 {
	switch f.routing {
	case RouteLatency:
		lat := b.est.latency()
		if lat == 0 {
			return -1 // unmeasured: try it before any measured backend
		}
		return lat / b.cfg.Weight
	default:
		// Weighted rendezvous: u uniform in (0,1), score −ln(u)/w is
		// exponential with rate w; the minimum lands on backend i with
		// probability w_i/Σw, stably per id.
		u := (float64(mix(uint64(id)^b.seed)>>11) + 1) / (1 << 53)
		return -math.Log(u) / b.cfg.Weight
	}
}

// Route returns the backend the fabric would dispatch id to right now.
// Backends whose circuit breaker is open (and not yet due a probe) are
// skipped as long as any routable backend remains; with every breaker
// tripped the pure score order decides, and the dispatch itself fails
// fast.
func (f *Fabric) Route(id ID) int {
	if len(f.backends) == 1 {
		return 0
	}
	best := -1
	var bestScore float64
	for i, b := range f.backends {
		if !f.routable(b) {
			continue
		}
		if s := f.score(b, id); best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	bestScore = f.score(f.backends[0], id)
	for i := 1; i < len(f.backends); i++ {
		if s := f.score(f.backends[i], id); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// routeOrder returns all backends for id in preference order — the
// hedge/failover sequence. Backends with a tripped breaker sort after
// every routable one (score order within each class), so failover
// naturally prefers healthy links but can still reach a tripped one as
// the last resort.
func (f *Fabric) routeOrder(id ID) []int {
	n := len(f.backends)
	order := make([]int, n)
	if n == 1 {
		return order
	}
	scores := make([]float64, n)
	tripped := make([]bool, n)
	for i, b := range f.backends {
		order[i] = i
		scores[i] = f.score(b, id)
		tripped[i] = !f.routable(b)
	}
	before := func(a, b int) bool {
		if tripped[a] != tripped[b] {
			return tripped[b]
		}
		return scores[a] < scores[b]
	}
	// Insertion sort: n is the backend count, single digits.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && before(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// --- per-attempt timeouts ------------------------------------------------

// nopCancel is the shared no-op returned when a backend has no timeout
// configured, so every dispatch site can defer the cancel uniformly.
func nopCancel() {}

// attemptCtx layers one backend's per-attempt timeout under ctx: with
// d > 0 the attempt gets its own deadline (a timed-out attempt reads as
// a failure — it feeds failover and the breaker, unlike a caller
// cancellation); with d == 0 ctx passes through untouched. The returned
// cancel must be called when the attempt finishes so the timer is
// released.
func attemptCtx(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, nopCancel
	}
	return context.WithTimeout(ctx, d)
}

// --- demand path: hedged, failing-over fetch -----------------------------

type attemptResult struct {
	item   Item
	err    error
	idx    int
	hedged bool
}

// hedgeDelay returns how long to wait before racing a hedge after an
// attempt on backend idx, or -1 when no hedge should be armed (no
// hedging configured, or no p95 estimate yet to derive the delay
// from).
func (f *Fabric) hedgeDelay(idx int) time.Duration {
	h := f.hedging
	if h == nil {
		return -1
	}
	if h.Delay > 0 {
		return h.Delay
	}
	p95 := f.backends[idx].est.p95Latency()
	if p95 <= 0 {
		return -1
	}
	mult := h.P95Multiple
	if mult == 0 {
		mult = 1
	}
	return time.Duration(p95 * mult * float64(time.Second))
}

// maxAttempts returns the attempt budget for one demand fetch.
func (f *Fabric) maxAttempts() int {
	if f.hedging != nil && f.hedging.MaxAttempts > 0 {
		return f.hedging.MaxAttempts
	}
	return len(f.backends)
}

// observe folds one finished attempt into backend b's estimators.
// Cancelled losers are neither latency samples nor errors.
func (f *Fabric) observe(b *backendState, start float64, item Item, err error, demand, probe bool) {
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			b.errorsN.Add(1)
			f.breakerFailure(b, probe)
		} else {
			// Neither a success nor a failure — but a cancelled
			// half-open probe must release its slot.
			f.breakerCancelled(b, probe)
		}
		return
	}
	f.breakerSuccess(b, probe)
	lat := f.nowf() - start
	size := item.Size
	if size <= 0 {
		size = 1
	}
	b.est.observe(lat, size)
	if b.cfg.Bandwidth == 0 {
		if bw := b.est.bandwidth(); bw > 0 {
			b.link.SetBandwidth(bw)
		}
	}
	if demand {
		b.link.RecordDemandSize(size)
	} else {
		b.link.RecordSpeculativeSize(size)
	}
}

// Fetch serves one demand fetch: the id is routed to its preferred
// backend; if hedging is configured, a second backend is raced after
// the primary's p95-derived hedge delay; a failed attempt fails over
// to the next backend (with backoff) until the attempt budget is
// spent. The first success wins and the losers are cancelled through
// their context. Without hedging the failover is purely sequential —
// no goroutine, channel or context allocation on the demand hot path.
func (f *Fabric) Fetch(ctx context.Context, id ID) (Item, error) {
	if f.closed.Load() {
		return Item{}, ErrClosed
	}
	if f.hedging == nil {
		// One attempt per backend, no backoff.
		return f.fetchSequential(ctx, id, 0, 0)
	}
	if len(f.backends) == 1 {
		// A hedge against the only backend would just be a concurrent
		// duplicate on the same link; degrade to sequential retries
		// with backoff, as WithHedging documents.
		return f.fetchSequential(ctx, id, f.maxAttempts(), f.hedging.Backoff)
	}
	attempts := f.maxAttempts()
	if attempts == 1 {
		// A single attempt can neither hedge nor retry: skip the
		// goroutine/channel/context machinery entirely.
		return f.fetchSequential(ctx, id, 1, 0)
	}
	order := f.routeOrder(id)

	// One shared cancellable context covers every attempt: when Fetch
	// returns, the deferred cancel reaps whichever losers still run.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, attempts) // buffered: losers never block
	launched, outstanding := 0, 0
	// launch dispatches the next attempt slot whose backend's breaker
	// admits it, reporting whether anything was actually launched —
	// slots on tripped backends are consumed and skipped.
	launch := func(hedged, retry bool) bool {
		for launched < attempts {
			b := f.backends[order[launched%len(order)]]
			launched++
			granted, probe := f.acquire(b)
			if !granted {
				continue
			}
			outstanding++
			b.demand.Add(1)
			if hedged {
				b.hedgesLaunched.Add(1)
			}
			if retry {
				b.retries.Add(1)
			}
			b.link.RecordDemand(f.nowf())
			start := f.nowf()
			go func() {
				actx, acancel := attemptCtx(wctx, b.cfg.DemandTimeout)
				item, err := b.cfg.Fetcher.Fetch(actx, id)
				acancel()
				f.observe(b, start, item, err, true, probe)
				results <- attemptResult{item: item, err: err, idx: b.idx, hedged: hedged}
			}()
			return true
		}
		return false
	}

	if !launch(false, false) {
		return Item{}, ErrBreakerOpen
	}
	var hedgeC <-chan time.Time
	if launched < attempts {
		if d := f.hedgeDelay(order[0]); d >= 0 {
			hedgeC = time.After(d)
		}
	}

	var lastErr error
	nretries := 0
	for {
		select {
		case <-ctx.Done():
			return Item{}, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if launched < attempts {
				launch(true, false)
			}
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedged {
					f.backends[r.idx].hedgesWon.Add(1)
				}
				return r.item, nil
			}
			if ctx.Err() != nil {
				return Item{}, ctx.Err()
			}
			lastErr = r.err
			if launched < attempts {
				if f.hedging.Backoff > 0 {
					// The backoff still listens for the other
					// outstanding attempts: a hedge succeeding
					// mid-backoff wins immediately instead of idling
					// unread while a needless retry launches.
					timer := time.NewTimer(f.hedging.Backoff << nretries)
				backoff:
					for {
						select {
						case <-timer.C:
							break backoff
						case r2 := <-results:
							outstanding--
							if r2.err == nil {
								timer.Stop()
								if r2.hedged {
									f.backends[r2.idx].hedgesWon.Add(1)
								}
								return r2.item, nil
							}
							lastErr = r2.err
						case <-ctx.Done():
							timer.Stop()
							return Item{}, ctx.Err()
						}
					}
				}
				nretries++
				if !launch(false, true) && outstanding == 0 {
					return Item{}, lastErr
				}
			} else if outstanding == 0 {
				return Item{}, lastErr
			}
		}
	}
}

// fetchSequential is the goroutine-free demand path: try backends in
// route order on the caller's goroutine (wrapping around when attempts
// exceeds the backend count) until one succeeds or the budget is
// spent, backing off — doubling per retry — between failed attempts.
// attempts <= 0 means one attempt per backend.
func (f *Fabric) fetchSequential(ctx context.Context, id ID, attempts int, backoff time.Duration) (Item, error) {
	var order []int
	if len(f.backends) > 1 {
		order = f.routeOrder(id)
	} else {
		order = []int{0}
	}
	if attempts <= 0 {
		attempts = len(order)
	}
	var lastErr error
	attempted := 0
	for n := 0; n < attempts; n++ {
		b := f.backends[order[n%len(order)]]
		granted, probe := f.acquire(b)
		if !granted {
			continue // breaker open: skip the slot, keep failing over
		}
		b.demand.Add(1)
		if attempted > 0 {
			b.retries.Add(1)
		}
		attempted++
		b.link.RecordDemand(f.nowf())
		start := f.nowf()
		actx, acancel := attemptCtx(ctx, b.cfg.DemandTimeout)
		item, err := b.cfg.Fetcher.Fetch(actx, id)
		acancel()
		f.observe(b, start, item, err, true, probe)
		if err == nil {
			return item, nil
		}
		if ctx.Err() != nil {
			return Item{}, ctx.Err()
		}
		lastErr = err
		if backoff > 0 && n+1 < attempts {
			t := time.NewTimer(backoff << n)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Item{}, ctx.Err()
			}
		}
	}
	if attempted == 0 {
		return Item{}, ErrBreakerOpen
	}
	return Item{}, lastErr
}

// --- demand batch path ---------------------------------------------------

// FetchDemandBatch dispatches one session's misses routed to a single
// backend as one demand-priority FetchBatch call, filling the
// caller-supplied out and errs slices (len(ids) each, index-aligned
// with ids) so the engine's batched demand path allocates nothing. The
// semantics are per-key: errs[i] reports key i's outcome, and one bad
// key never fails the batch.
//
// Unlike the speculative batch, a batch-level problem — the backend
// erroring the whole call, or violating the FetchBatch contract with a
// short or misordered reply — degrades to per-key fallback fetches
// through the full demand path (failover, hedging, breaker), not to a
// batch-wide error: demand keys have a caller waiting on each of them.
// Backends without batch support, single-key batches and batches
// refused by the breaker take the per-key path directly.
func (f *Fabric) FetchDemandBatch(ctx context.Context, backend int, ids []ID, out []Item, errs []error) {
	if f.closed.Load() {
		for i := range ids {
			out[i], errs[i] = Item{}, ErrClosed
		}
		return
	}
	b := f.backends[backend]
	if b.batch == nil || len(ids) < 2 {
		f.demandFallback(ctx, ids, out, errs)
		return
	}
	granted, probe := f.acquire(b)
	if !granted {
		// The routed backend's breaker is open: the per-key demand path
		// fails over across the remaining backends (or fails fast when
		// every breaker is open), exactly as a singleton fetch would.
		f.demandFallback(ctx, ids, out, errs)
		return
	}
	b.demand.Add(int64(len(ids)))
	b.demandBatchCalls.Add(1)
	b.demandBatchedItems.Add(int64(len(ids)))
	// One link dispatch for the whole batch: the coalesced keys travel
	// in one backend round trip, which is the point of the demand batch.
	b.link.RecordDemand(f.nowf())
	start := f.nowf()
	actx, acancel := attemptCtx(ctx, b.cfg.DemandTimeout)
	items, err := b.batch.FetchBatch(actx, ids)
	acancel()
	if err == nil {
		if len(items) != len(ids) {
			err = fmt.Errorf("fetch: backend %q returned %d items for a %d-id demand batch", b.cfg.Name, len(items), len(ids))
		} else {
			for i, it := range items {
				if it.ID != ids[i] {
					err = fmt.Errorf("fetch: backend %q returned id %d at position %d of a demand batch (want %d)", b.cfg.Name, it.ID, i, ids[i])
					break
				}
			}
		}
	}
	var total Item
	if err == nil {
		for _, it := range items {
			size := it.Size
			if size <= 0 {
				size = 1
			}
			total.Size += size
		}
	}
	f.observe(b, start, total, err, true, probe)
	if err != nil {
		// Batch failure or contract violation: degrade to per-key
		// fallback fetches so one bad reply cannot fail the session.
		f.demandFallback(ctx, ids, out, errs)
		return
	}
	copy(out, items)
	for i := range ids {
		errs[i] = nil
	}
}

// demandFallback serves a demand batch key by key through the full
// demand path (routing, failover, hedging, breaker), recording each
// key's own outcome. A dead context fails the remaining keys without
// dispatching them.
func (f *Fabric) demandFallback(ctx context.Context, ids []ID, out []Item, errs []error) {
	for i, id := range ids {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(ids); j++ {
				out[j], errs[j] = Item{}, err
			}
			return
		}
		out[i], errs[i] = f.Fetch(ctx, id)
	}
}

// --- speculative path ----------------------------------------------------

// FetchSpeculative runs one speculative fetch on the given backend
// (already chosen by Route at planning time). Speculative fetches are
// single-attempt — no hedge, no failover: a lost prefetch costs
// nothing a demand fetch won't recover later, and doubling speculative
// traffic is exactly what the paper warns against.
func (f *Fabric) FetchSpeculative(ctx context.Context, backend int, id ID) (Item, error) {
	if f.closed.Load() {
		return Item{}, ErrClosed
	}
	b := f.backends[backend]
	granted, probe := f.acquire(b)
	if !granted {
		// The breaker tripped after this candidate was routed (or
		// every backend is open): fail fast rather than queue
		// speculative work against a dead origin.
		return Item{}, ErrBreakerOpen
	}
	b.speculative.Add(1)
	b.link.RecordSpeculative(f.nowf())
	start := f.nowf()
	actx, acancel := attemptCtx(ctx, b.cfg.SpeculativeTimeout)
	item, err := b.cfg.Fetcher.Fetch(actx, id)
	acancel()
	f.observe(b, start, item, err, false, probe)
	return item, err
}

// FetchSpeculativeBatch dispatches several speculative candidates to
// one backend as a single FetchBatch call when the backend supports
// it, falling back to sequential single fetches otherwise. On success
// the returned slice has exactly one Item per id, in id order; an
// error fails the whole batch.
func (f *Fabric) FetchSpeculativeBatch(ctx context.Context, backend int, ids []ID) ([]Item, error) {
	if f.closed.Load() {
		return nil, ErrClosed
	}
	b := f.backends[backend]
	if b.batch == nil || len(ids) == 1 {
		items := make([]Item, len(ids))
		for i, id := range ids {
			item, err := f.FetchSpeculative(ctx, backend, id)
			if err != nil {
				return nil, err
			}
			items[i] = item
		}
		return items, nil
	}
	granted, probe := f.acquire(b)
	if !granted {
		return nil, ErrBreakerOpen
	}
	b.speculative.Add(int64(len(ids)))
	b.batchCalls.Add(1)
	b.batchedItems.Add(int64(len(ids)))
	// One link dispatch for the whole batch: the items travel in one
	// backend round trip, which is the point of coalescing.
	b.link.RecordSpeculative(f.nowf())
	start := f.nowf()
	actx, acancel := attemptCtx(ctx, b.cfg.SpeculativeTimeout)
	items, err := b.batch.FetchBatch(actx, ids)
	acancel()
	if err == nil && len(items) != len(ids) {
		err = fmt.Errorf("fetch: backend %q returned %d items for a %d-id batch", b.cfg.Name, len(items), len(ids))
	}
	var total Item
	if err == nil {
		for _, it := range items {
			size := it.Size
			if size <= 0 {
				size = 1
			}
			total.Size += size
		}
	}
	f.observe(b, start, total, err, false, probe)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// --- idle-period dispatch gate -------------------------------------------

// Busy reports whether backend i's link currently sits at or above the
// idle watermark — i.e. whether a speculative candidate routed there
// should be parked instead of dispatched. Always false when no
// watermark is configured.
func (f *Fabric) Busy(i int) bool {
	if f.watermark <= 0 {
		return false
	}
	return f.backends[i].link.Rho(f.nowf()) >= f.watermark
}

// Defer parks speculative candidates for backend i until its link
// idles below the watermark. An id already parked is skipped silently
// (bursty traffic re-admits the same hot candidates every request, and
// duplicates would both inflate the Deferred count and crowd genuinely
// new work out of the bounded queue); candidates beyond the queue
// depth are shed and counted. Returns the ids actually parked.
func (f *Fabric) Defer(i int, ids ...ID) []ID {
	b := f.backends[i]
	var parked []ID
	b.mu.Lock()
	for _, id := range ids {
		if _, dup := b.parkedSet[id]; dup {
			continue
		}
		if len(b.parked) >= f.deferCap {
			b.deferDropped.Add(1)
			continue
		}
		b.parked = append(b.parked, id)
		b.parkedSet[id] = struct{}{}
		b.deferredN.Add(1)
		parked = append(parked, id)
	}
	b.mu.Unlock()
	if len(parked) > 0 {
		select {
		case b.poke <- struct{}{}:
		default:
		}
	}
	return parked
}

// Pending returns how many speculative candidates are currently parked
// for backend i.
func (f *Fabric) Pending(i int) int {
	b := f.backends[i]
	b.mu.Lock()
	n := len(b.parked)
	b.mu.Unlock()
	return n
}

// gateWait returns how long the drainer should sleep before re-reading
// backend b's ρ̂, using the link's exact decay time clamped into
// [minGateWait, maxGateWait].
func (f *Fabric) gateWait(b *backendState) time.Duration {
	wait := time.Duration(b.link.IdleWait(f.nowf(), f.watermark) * float64(time.Second))
	if wait > maxGateWait {
		return maxGateWait
	}
	if wait < minGateWait {
		return minGateWait
	}
	return wait
}

// drain is backend b's idle-gate goroutine: it sleeps until candidates
// park, then releases them in bursts whenever the link's ρ̂ sits below
// the watermark, re-checking between bursts so a release that re-busies
// the link pauses the queue again.
func (f *Fabric) drain(b *backendState) {
	defer f.wg.Done()
	for {
		select {
		case <-f.done:
			return
		case <-b.poke:
		}
		for {
			b.mu.Lock()
			n := len(b.parked)
			b.mu.Unlock()
			if n == 0 {
				break
			}
			if b.link.Rho(f.nowf()) >= f.watermark {
				select {
				case <-f.done:
					return
				case <-time.After(f.gateWait(b)):
				}
				continue
			}
			b.mu.Lock()
			take := len(b.parked)
			if take > releaseBurst {
				take = releaseBurst
			}
			ids := make([]ID, take)
			copy(ids, b.parked[:take])
			for _, id := range ids {
				delete(b.parkedSet, id)
			}
			rest := copy(b.parked, b.parked[take:])
			b.parked = b.parked[:rest]
			b.mu.Unlock()
			if take == 0 {
				break
			}
			b.released.Add(int64(take))
			f.release(b.idx, ids)
		}
	}
}

// release hands a burst of parked candidates back for dispatch: to the
// OnRelease callback when configured (the engine's path), else fetched
// directly — under the fabric's own context, cancelled at Close — so a
// standalone fabric still warms whatever its caller observes through
// the backend.
func (f *Fabric) release(backend int, ids []ID) {
	if f.onRelease != nil {
		f.onRelease(backend, ids)
		return
	}
	if f.backends[backend].batch != nil && len(ids) > 1 {
		// Batch-capable: one call, all-or-nothing by contract.
		_, _ = f.FetchSpeculativeBatch(f.baseCtx, backend, ids)
		return
	}
	// Sequential fallback is best-effort per id: one transient failure
	// must not silently swallow the rest of the burst (each error is
	// counted by the estimator either way).
	for _, id := range ids {
		if f.baseCtx.Err() != nil {
			return
		}
		_, _ = f.FetchSpeculative(f.baseCtx, backend, id)
	}
}

// --- stats and lifecycle -------------------------------------------------

// Stats snapshots every backend's counters and link estimates as of
// time now (in the fabric's time base; the engine passes its own
// clock reading so engine and fabric stats share a timeline).
func (f *Fabric) Stats(now float64) []BackendStats {
	out := make([]BackendStats, len(f.backends))
	for i, b := range f.backends {
		b.mu.Lock()
		pending := len(b.parked)
		b.mu.Unlock()
		out[i] = BackendStats{
			Name:               b.cfg.Name,
			Demand:             b.demand.Load(),
			Speculative:        b.speculative.Load(),
			Errors:             b.errorsN.Load(),
			BatchCalls:         b.batchCalls.Load(),
			BatchedItems:       b.batchedItems.Load(),
			DemandBatchCalls:   b.demandBatchCalls.Load(),
			DemandBatchedItems: b.demandBatchedItems.Load(),
			HedgesLaunched:     b.hedgesLaunched.Load(),
			HedgesWon:          b.hedgesWon.Load(),
			Retries:            b.retries.Load(),
			Deferred:           b.deferredN.Load(),
			Released:           b.released.Load(),
			DeferredDropped:    b.deferDropped.Load(),
			Pending:            pending,
			LatencySeconds:     b.est.latency(),
			LatencyP95Seconds:  b.est.p95Latency(),
			Bandwidth:          b.link.Bandwidth(),
			Rho:                b.link.Rho(now),
			RhoPrime:           b.link.RhoPrime(now),
			BreakerState:       f.breakerState(b),
			BreakerOpens:       b.brOpens.Load(),
		}
	}
	return out
}

// Close stops the idle-gate drainers and sheds whatever candidates
// are still parked (counted as DeferredDropped). In-flight fetches are
// not cancelled here — they run under their callers' contexts, which
// the engine cancels on its own Close. Close is idempotent.
func (f *Fabric) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	close(f.done)
	f.baseCancel()
	f.wg.Wait()
	for _, b := range f.backends {
		b.mu.Lock()
		b.deferDropped.Add(int64(len(b.parked)))
		b.parked = nil
		b.parkedSet = make(map[ID]struct{})
		b.mu.Unlock()
	}
	return nil
}
