package fetch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// breakerFetcher fails while broken is set.
type breakerFetcher struct {
	broken atomic.Bool
	calls  atomic.Int64
}

var errOrigin = errors.New("origin down")

func (f *breakerFetcher) Fetch(ctx context.Context, id ID) (Item, error) {
	f.calls.Add(1)
	if f.broken.Load() {
		return Item{}, errOrigin
	}
	return Item{ID: id, Size: 1}, nil
}

func newBreakerFabric(t *testing.T, now *manualNow, backends ...Backend) *Fabric {
	t.Helper()
	f, err := New(Config{
		Backends: backends,
		Breaker:  &Breaker{Threshold: 3, Cooldown: time.Second},
		Now:      now.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestBreakerOpensAndRoutesAround trips one of two backends and checks
// that routing and demand traffic steer around it while it is open.
func TestBreakerOpensAndRoutesAround(t *testing.T) {
	now := &manualNow{}
	bad, good := &breakerFetcher{}, &breakerFetcher{}
	bad.broken.Store(true)
	f := newBreakerFabric(t, now,
		Backend{Name: "bad", Fetcher: bad, Weight: 100, Bandwidth: 100},
		Backend{Name: "good", Fetcher: good, Weight: 1, Bandwidth: 100},
	)
	ctx := context.Background()

	// Drive demand until the heavy (preferred) backend trips. Failover
	// means every Fetch still succeeds via the good backend.
	for i := 0; i < 10; i++ {
		if _, err := f.Fetch(ctx, ID(i)); err != nil {
			t.Fatalf("fetch %d failed despite healthy failover backend: %v", i, err)
		}
	}
	st := f.Stats(now.Now())
	if st[0].BreakerState != "open" {
		t.Fatalf("bad backend breaker = %q after %d errors (threshold 3), want open; stats %+v",
			st[0].BreakerState, st[0].Errors, st[0])
	}
	if st[0].BreakerOpens == 0 {
		t.Fatal("BreakerOpens not counted")
	}
	if st[1].BreakerState != "closed" {
		t.Fatalf("good backend breaker = %q, want closed", st[1].BreakerState)
	}

	// While open, routing must not send new ids to the tripped backend
	// even though its weight dominates.
	for i := 100; i < 120; i++ {
		if b := f.Route(ID(i)); b != 1 {
			t.Fatalf("Route(%d) = %d while backend 0 is open", i, b)
		}
	}
	badCalls := bad.calls.Load()
	for i := 200; i < 210; i++ {
		if _, err := f.Fetch(ctx, ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := bad.calls.Load(); got != badCalls {
		t.Fatalf("open backend still received %d demand fetches", got-badCalls)
	}
}

// TestBreakerHalfOpenProbe checks the open → half-open → closed cycle:
// after the cooldown exactly one probe goes through, and its success
// re-admits the backend.
func TestBreakerHalfOpenProbe(t *testing.T) {
	now := &manualNow{}
	bad := &breakerFetcher{}
	bad.broken.Store(true)
	f := newBreakerFabric(t, now,
		Backend{Name: "solo", Fetcher: bad, Bandwidth: 100},
	)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(ctx, ID(i)); !errors.Is(err, errOrigin) {
			t.Fatalf("fetch %d: err = %v, want origin error", i, err)
		}
	}
	if st := f.Stats(now.Now()); st[0].BreakerState != "open" {
		t.Fatalf("breaker = %q after threshold failures, want open", st[0].BreakerState)
	}

	// Open and before cooldown: fail fast without touching the origin.
	calls := bad.calls.Load()
	if _, err := f.Fetch(ctx, 10); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if bad.calls.Load() != calls {
		t.Fatal("open breaker let a fetch through before the cooldown")
	}

	// Cooldown elapses while the origin is still down: the probe goes
	// through, fails, and re-opens the breaker.
	now.Advance(1.5)
	if _, err := f.Fetch(ctx, 11); !errors.Is(err, errOrigin) {
		t.Fatalf("probe err = %v, want origin error", err)
	}
	if st := f.Stats(now.Now()); st[0].BreakerState != "open" || st[0].BreakerOpens != 2 {
		t.Fatalf("after failed probe: state %q opens %d, want open/2", st[0].BreakerState, st[0].BreakerOpens)
	}

	// Origin heals; next cooldown's probe succeeds and closes the
	// breaker for good.
	bad.broken.Store(false)
	now.Advance(1.5)
	if _, err := f.Fetch(ctx, 12); err != nil {
		t.Fatalf("healed probe failed: %v", err)
	}
	if st := f.Stats(now.Now()); st[0].BreakerState != "closed" {
		t.Fatalf("after successful probe: state %q, want closed", st[0].BreakerState)
	}
	for i := 20; i < 25; i++ {
		if _, err := f.Fetch(ctx, ID(i)); err != nil {
			t.Fatalf("fetch %d after close: %v", i, err)
		}
	}
}

// TestBreakerSpeculativeFailsFast pins the speculative path: a
// candidate routed to a tripped backend is dropped with ErrBreakerOpen
// instead of queueing against the dead origin, and batches behave the
// same.
func TestBreakerSpeculativeFailsFast(t *testing.T) {
	now := &manualNow{}
	bad := &breakerFetcher{}
	bad.broken.Store(true)
	f := newBreakerFabric(t, now,
		Backend{Name: "solo", Fetcher: bad, Bandwidth: 100},
	)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		f.FetchSpeculative(ctx, 0, ID(i)) //nolint:errcheck // driving the breaker open
	}
	calls := bad.calls.Load()
	if _, err := f.FetchSpeculative(ctx, 0, 10); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("speculative err = %v, want ErrBreakerOpen", err)
	}
	if _, err := f.FetchSpeculativeBatch(ctx, 0, []ID{11, 12}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("speculative batch err = %v, want ErrBreakerOpen", err)
	}
	if bad.calls.Load() != calls {
		t.Fatal("open breaker let speculative fetches through")
	}
}

// TestBreakerHalfOpenSingleProbe checks that concurrent callers racing
// an elapsed cooldown admit exactly one probe.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	now := &manualNow{}
	bad := &breakerFetcher{}
	bad.broken.Store(true)
	f := newBreakerFabric(t, now,
		Backend{Name: "solo", Fetcher: bad, Bandwidth: 100},
	)
	for i := 0; i < 3; i++ {
		f.FetchSpeculative(context.Background(), 0, ID(i)) //nolint:errcheck
	}
	now.Advance(2)
	grantedN, probes := 0, 0
	for i := 0; i < 16; i++ {
		granted, probe := f.acquire(f.backends[0])
		if granted {
			grantedN++
		}
		if probe {
			probes++
		}
	}
	if grantedN != 1 || probes != 1 {
		t.Fatalf("granted=%d probes=%d after one cooldown, want exactly 1/1", grantedN, probes)
	}
}

// TestBreakerStragglerCancellationKeepsProbe pins the probe-ownership
// rule: a cancelled attempt that did NOT carry the half-open probe (a
// straggler launched before the trip, a hedge loser) must not demote
// the half-open state or restart the cooldown — only the probe's own
// outcome decides.
func TestBreakerStragglerCancellationKeepsProbe(t *testing.T) {
	now := &manualNow{}
	bad := &breakerFetcher{}
	bad.broken.Store(true)
	f := newBreakerFabric(t, now,
		Backend{Name: "solo", Fetcher: bad, Bandwidth: 100},
	)
	for i := 0; i < 3; i++ {
		f.FetchSpeculative(context.Background(), 0, ID(i)) //nolint:errcheck
	}
	now.Advance(2)
	b := f.backends[0]
	if granted, probe := f.acquire(b); !granted || !probe {
		t.Fatalf("probe not granted after cooldown (granted=%t probe=%t)", granted, probe)
	}
	// A straggler's cancellation arrives while the probe is in flight.
	f.observe(b, now.Now(), Item{}, context.Canceled, true, false)
	if st := f.breakerState(b); st != "half-open" {
		t.Fatalf("straggler cancellation demoted the breaker to %q, want half-open", st)
	}
	// A straggler's *failure* must not re-open/re-arm either.
	f.observe(b, now.Now(), Item{}, errOrigin, true, false)
	if st := f.breakerState(b); st != "half-open" {
		t.Fatalf("straggler failure demoted the breaker to %q, want half-open", st)
	}
	// Nor may a straggler's *success* close the breaker — recovery goes
	// through the probe's own verdict.
	f.observe(b, now.Now(), Item{ID: 1, Size: 1}, nil, true, false)
	if st := f.breakerState(b); st != "half-open" {
		t.Fatalf("straggler success closed the breaker (%q), want half-open", st)
	}
	// The probe's own cancellation releases the slot back to open.
	f.observe(b, now.Now(), Item{}, context.Canceled, true, true)
	if st := f.breakerState(b); st != "open" {
		t.Fatalf("cancelled probe left the breaker %q, want open", st)
	}
}

// TestBreakerHalfOpenSingleProbeRace is the concurrent counterpart of
// TestBreakerHalfOpenSingleProbe, meant to run under -race: many
// goroutines race the elapsed cooldown simultaneously, and the
// breakerOpen→breakerHalfOpen CompareAndSwap in acquire must admit
// exactly one probe — every other caller is refused without tearing
// the breaker state.
func TestBreakerHalfOpenSingleProbeRace(t *testing.T) {
	now := &manualNow{}
	bad := &breakerFetcher{}
	bad.broken.Store(true)
	f := newBreakerFabric(t, now,
		Backend{Name: "solo", Fetcher: bad, Bandwidth: 100},
	)
	for i := 0; i < 3; i++ {
		f.FetchSpeculative(context.Background(), 0, ID(i)) //nolint:errcheck
	}
	if st := f.breakerState(f.backends[0]); st != "open" {
		t.Fatalf("breaker %q after threshold failures, want open", st)
	}
	now.Advance(2)

	const callers = 32
	var (
		start    sync.WaitGroup
		done     sync.WaitGroup
		gate     = make(chan struct{})
		grantedN atomic.Int64
		probes   atomic.Int64
	)
	b := f.backends[0]
	start.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer done.Done()
			start.Done()
			<-gate
			granted, probe := f.acquire(b)
			if granted {
				grantedN.Add(1)
			}
			if probe {
				probes.Add(1)
			}
			if granted != probe {
				t.Errorf("half-open grant without probe ownership (granted=%t probe=%t)", granted, probe)
			}
		}()
	}
	start.Wait()
	close(gate)
	done.Wait()
	if grantedN.Load() != 1 || probes.Load() != 1 {
		t.Fatalf("granted=%d probes=%d across %d concurrent callers, want exactly 1/1", grantedN.Load(), probes.Load(), callers)
	}
	if st := f.breakerState(b); st != "half-open" {
		t.Fatalf("breaker %q after the race, want half-open", st)
	}
	// The winning probe's verdict still decides: a success closes the
	// breaker and normal traffic resumes.
	bad.broken.Store(false)
	f.breakerSuccess(b, true)
	if st := f.breakerState(b); st != "closed" {
		t.Fatalf("probe success left the breaker %q, want closed", st)
	}
	if _, err := f.Fetch(context.Background(), 1); err != nil {
		t.Fatalf("fetch after recovery: %v", err)
	}
}
