package fetch

import (
	"sort"
	"sync"
)

// latRingSize is the sample window the p95 estimate is computed over.
// Small enough to sort cheaply, large enough that the 95th percentile
// is a real order statistic (the 61st of 64) rather than the max.
const latRingSize = 64

// latRecompute is how many new samples may accumulate before the
// cached p95 is recomputed. Hedge delays tolerate a slightly stale
// p95; resorting the ring on every fetch would not be free.
const latRecompute = 16

// estimator tracks one backend's observed fetch latency (EWMA + ring
// p95) and throughput (EWMA of size/latency — the online bandwidth
// estimate for links with no configured capacity). Guarded by one
// short mutex: it is touched once per completed fetch, never on a
// per-candidate hot path.
type estimator struct {
	mu      sync.Mutex
	ewma    float64 // smoothed latency, seconds; 0 = no sample
	ring    [latRingSize]float64
	ringLen int // samples resident in ring (≤ latRingSize)
	ringPos int // next write position
	p95     float64
	stale   int     // samples since p95 was computed
	bw      float64 // smoothed size/latency; 0 = no sample
	alpha   float64
}

func newEstimator(alpha float64) *estimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.05
	}
	return &estimator{alpha: alpha}
}

// observe folds one successful fetch: its wall latency in seconds and
// the size it delivered.
func (e *estimator) observe(latency, size float64) {
	if latency <= 0 {
		return
	}
	e.mu.Lock()
	if e.ewma == 0 {
		e.ewma = latency
	} else {
		e.ewma = (1-e.alpha)*e.ewma + e.alpha*latency
	}
	e.ring[e.ringPos] = latency
	e.ringPos = (e.ringPos + 1) % latRingSize
	if e.ringLen < latRingSize {
		e.ringLen++
	}
	e.stale++
	if size > 0 {
		if thr := size / latency; thr > 0 {
			if e.bw == 0 {
				e.bw = thr
			} else {
				e.bw = (1-e.alpha)*e.bw + e.alpha*thr
			}
		}
	}
	e.mu.Unlock()
}

// latency returns the smoothed fetch latency in seconds (0 before any
// sample).
func (e *estimator) latency() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma
}

// bandwidth returns the smoothed size/latency throughput estimate (0
// before any sized sample).
func (e *estimator) bandwidth() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bw
}

// p95Latency returns the 95th-percentile latency over the sample ring,
// recomputing lazily every latRecompute samples. 0 before any sample.
func (e *estimator) p95Latency() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ringLen == 0 {
		return 0
	}
	if e.p95 == 0 || e.stale >= latRecompute {
		buf := make([]float64, e.ringLen)
		copy(buf, e.ring[:e.ringLen])
		sort.Float64s(buf)
		idx := (len(buf) * 95) / 100
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		e.p95 = buf[idx]
		e.stale = 0
	}
	return e.p95
}
