// Package fetch is the backend fetch fabric behind the prefetch
// engine's Fetcher seam: it spreads demand and speculative fetches
// across multiple named backends, coalesces adjacent prefetch
// candidates into batch calls, races hedged retries against slow
// backends, and estimates each link's latency, bandwidth and
// utilisation separately — so the paper's admission threshold can be
// evaluated against the ρ̂′ of the link a candidate would actually
// use, and speculative dispatch can be deferred into that link's idle
// periods (the load-impedance result: the same prefetch costs a
// multiple under load of what it costs when the link is quiet).
//
// The package is deliberately self-contained: it defines its own ID,
// Item and Fetcher vocabulary (same shapes as package prefetcher's)
// so the engine can sit on top of it without an import cycle, exactly
// as the engine already converts at the internal/cache boundary. Most
// users never construct a Fabric directly — prefetcher.WithBackends
// assembles one inside the engine — but the type is usable standalone
// as a routing/hedging Fetcher for any client.
package fetch

import (
	"context"
	"time"
)

// ID identifies a fetchable item (same id space as prefetcher.ID).
type ID int64

// Item is a fetched object: its id, its size in the same units per
// second the link bandwidths are expressed in (0 is treated as 1),
// and an opaque payload.
type Item struct {
	ID   ID
	Size float64
	Data any
}

// Fetcher retrieves items from one backend. Implementations must be
// safe for concurrent use: the fabric calls Fetch from demand
// goroutines, hedge goroutines and the engine's speculative worker
// pool at once, and must honour ctx cancellation promptly — a hedged
// fetch's loser is cancelled through its context.
type Fetcher interface {
	Fetch(ctx context.Context, id ID) (Item, error)
}

// FetcherFunc adapts a plain function to the Fetcher interface.
type FetcherFunc func(ctx context.Context, id ID) (Item, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(ctx context.Context, id ID) (Item, error) { return f(ctx, id) }

// BatchFetcher is optionally implemented by a backend's Fetcher to
// coalesce several ids into one backend call. FetchBatch must return
// exactly one Item per requested id, in request order. The fabric
// batches two kinds of traffic through it: adjacent speculative
// candidates (FetchSpeculativeBatch, where an error fails the whole
// batch — a lost prefetch costs nothing) and a session's coalesced
// demand misses (FetchDemandBatch, where a batch error or a short or
// misordered reply degrades to per-key fallback fetches — demand keys
// have callers waiting on each of them). Singleton demand fetches stay
// single-item so they can be hedged and cancelled individually.
type BatchFetcher interface {
	FetchBatch(ctx context.Context, ids []ID) ([]Item, error)
}

// Backend names one origin link the fabric can fetch from.
type Backend struct {
	// Name identifies the backend in stats and reports. Backends of
	// one fabric must have distinct, non-empty names.
	Name string
	// Fetcher retrieves items from this backend. If it also implements
	// BatchFetcher, adjacent speculative candidates routed here are
	// dispatched as one FetchBatch call.
	Fetcher Fetcher
	// Weight is the backend's static routing weight (0 means 1).
	// Under RouteWeighted, ids are spread proportionally to weight;
	// under RouteLatency, the estimated latency is divided by it, so a
	// heavier backend wins ties.
	Weight float64
	// Bandwidth is the link's capacity in size units per second. 0
	// means unknown: the fabric then estimates it online from observed
	// size/latency, so ρ̂ and ρ̂′ still converge.
	Bandwidth float64
	// DemandTimeout bounds each demand attempt dispatched to this
	// backend — every hedge, retry and demand batch gets its own
	// budget, layered under the caller's context, so one stuck origin
	// connection turns into a failover instead of a stalled request.
	// 0 means no per-attempt bound (the caller's ctx still applies).
	DemandTimeout time.Duration
	// SpeculativeTimeout independently bounds each speculative fetch or
	// speculative batch dispatched to this backend. Speculative work is
	// optional by definition, so it usually deserves a much shorter
	// budget than demand traffic: a prefetch that cannot complete
	// quickly is better abandoned than left occupying the link. 0 means
	// unlimited (the engine's lifecycle context still applies).
	SpeculativeTimeout time.Duration
}

// Routing selects how the fabric spreads ids across backends.
type Routing int

const (
	// RouteWeighted spreads ids by weighted rendezvous hashing: each
	// id has a stable backend affinity, and backends receive traffic
	// proportional to their weights. The default.
	RouteWeighted Routing = iota
	// RouteLatency prefers the backend with the lowest estimated
	// latency (scaled down by its weight); backends with no latency
	// sample yet are tried first so every link gets measured.
	RouteLatency
)

// String names the routing strategy.
func (r Routing) String() string {
	switch r {
	case RouteWeighted:
		return "weighted"
	case RouteLatency:
		return "latency"
	default:
		return "routing(?)"
	}
}

// Breaker configures per-backend circuit breaking. Each backend trips
// independently: Threshold consecutive failures open its breaker, after
// which routing skips the backend and fetches dispatched to it fail
// fast with ErrBreakerOpen. Once Cooldown has elapsed the breaker
// half-opens: exactly one probe fetch is let through — a success closes
// the breaker, a failure re-opens it and restarts the cooldown. Demand
// traffic falls over to the remaining healthy backends; when every
// backend is open and none is due a probe, demand fails fast instead of
// queueing against known-dead origins.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (0 means the default 5). Any success resets the run.
	Threshold int
	// Cooldown is how long an open breaker waits before allowing a
	// half-open probe (0 means the default 1s).
	Cooldown time.Duration
}

// Breaker states, reported in BackendStats.BreakerState.
const (
	breakerClosed   int32 = iota // normal operation
	breakerOpen                  // tripped: skip until cooldown elapses
	breakerHalfOpen              // one probe in flight; its outcome decides
)

// Hedging configures hedged retries on the demand path. Failover on
// error happens regardless — hedging adds racing a second backend
// *before* the first has failed, after a per-backend delay.
type Hedging struct {
	// Delay before launching a hedge on the next backend in route
	// order. 0 derives the delay from the primary backend's observed
	// p95 latency (no hedge is launched until a p95 estimate exists).
	Delay time.Duration
	// P95Multiple scales the p95-derived delay (0 means 1). Ignored
	// when Delay is set explicitly.
	P95Multiple float64
	// MaxAttempts caps the total attempts (primary + hedges +
	// retries) per demand fetch. 0 means one attempt per backend;
	// values larger than the backend count wrap around the route
	// order, retrying backends.
	MaxAttempts int
	// Backoff is the pause before a retry that follows a *failed*
	// attempt, doubling per further retry. Hedges launch without
	// backoff — their whole point is not to wait for the failure.
	Backoff time.Duration
}

// BackendStats is a point-in-time snapshot of one backend's counters
// and link estimates.
type BackendStats struct {
	// Name is the backend's configured name.
	Name string
	// Demand counts demand fetch attempts dispatched to this backend
	// (including hedges and retries); Speculative counts speculative
	// fetches (batched items counted individually); Errors counts
	// failed attempts (cancelled hedge losers are not errors).
	Demand, Speculative, Errors int64
	// BatchCalls counts speculative FetchBatch invocations;
	// BatchedItems the items they carried. DemandBatchCalls and
	// DemandBatchedItems count the demand-priority batches
	// (FetchDemandBatch) and their coalesced keys separately — the two
	// paths have different failure semantics.
	BatchCalls, BatchedItems             int64
	DemandBatchCalls, DemandBatchedItems int64
	// HedgesLaunched counts hedge attempts raced against a slow
	// primary; HedgesWon counts the hedges that returned first.
	HedgesLaunched, HedgesWon int64
	// Retries counts failover attempts launched after an error.
	Retries int64
	// Deferred counts speculative candidates parked by the idle gate
	// because this link's ρ̂ sat above the watermark; Released counts
	// the parked candidates later dispatched in an idle period;
	// DeferredDropped counts parked candidates shed (queue full, or
	// still parked at Close). Pending is the current parked count.
	Deferred, Released, DeferredDropped int64
	Pending                             int
	// LatencySeconds is the EWMA fetch latency; LatencyP95Seconds the
	// ring-buffer p95 estimate hedge delays derive from.
	LatencySeconds, LatencyP95Seconds float64
	// Bandwidth is the link capacity in use (configured, or the online
	// size/latency estimate); Rho the link's total utilisation ρ̂ and
	// RhoPrime its demand-only utilisation ρ̂′, both at snapshot time.
	Bandwidth, Rho, RhoPrime float64
	// BreakerState is "closed", "open" or "half-open" when circuit
	// breaking is configured (empty otherwise); BreakerOpens counts how
	// many times this backend's breaker tripped.
	BreakerState string
	BreakerOpens int64
}
