package fetch

import (
	"context"
	"errors"
	"testing"
	"time"
)

// slowBatchFetcher blocks both the single and the batch path until its
// delay elapses or ctx dies.
type slowBatchFetcher struct {
	slowFetcher
}

func (f *slowBatchFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	select {
	case <-time.After(f.delay):
		out := make([]Item, len(ids))
		for i, id := range ids {
			out[i] = Item{ID: id, Size: 1}
		}
		return out, nil
	case <-ctx.Done():
		f.cancelled.Add(1)
		return nil, ctx.Err()
	}
}

// stuckBatchFetcher answers single fetches instantly but wedges every
// batch call until its context dies — the shape of an origin whose
// batch endpoint hangs while its point lookups stay healthy.
type stuckBatchFetcher struct {
	instantFetcher
}

func (f *stuckBatchFetcher) FetchBatch(ctx context.Context, ids []ID) ([]Item, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestNegativeBackendTimeoutRejected(t *testing.T) {
	_, err := New(Config{Backends: []Backend{
		{Name: "a", Fetcher: &instantFetcher{size: 1}, DemandTimeout: -time.Second},
	}})
	if err == nil {
		t.Fatal("negative DemandTimeout accepted")
	}
	_, err = New(Config{Backends: []Backend{
		{Name: "a", Fetcher: &instantFetcher{size: 1}, SpeculativeTimeout: -time.Second},
	}})
	if err == nil {
		t.Fatal("negative SpeculativeTimeout accepted")
	}
}

// A demand attempt on a backend with a DemandTimeout that expires must
// read as that attempt's failure: the sequential path fails over to the
// next backend instead of stalling on the slow one.
func TestDemandTimeoutFailsOver(t *testing.T) {
	slow := &slowFetcher{delay: 5 * time.Second}
	fast := &instantFetcher{size: 1}
	// RouteLatency tries unmeasured backends in declaration order, so
	// the slow backend is deterministically preferred first.
	f := newTestFabric(t, Config{
		Routing: RouteLatency,
		Backends: []Backend{
			{Name: "slow", Fetcher: slow, DemandTimeout: 20 * time.Millisecond},
			{Name: "fast", Fetcher: fast},
		},
	})
	start := time.Now()
	item, err := f.Fetch(context.Background(), 7)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if item.ID != 7 {
		t.Fatalf("item %v, want id 7", item)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("failover took %v; the attempt timeout did not fire", el)
	}
	st := f.Stats(f.nowf())
	if st[0].Errors != 1 {
		t.Fatalf("slow backend errors = %d, want 1 (timed-out attempt)", st[0].Errors)
	}
	if st[1].Demand != 1 || st[1].Retries != 1 {
		t.Fatalf("fast backend demand/retries = %d/%d, want 1/1", st[1].Demand, st[1].Retries)
	}
}

// With a single backend the expired demand budget surfaces to the
// caller as context.DeadlineExceeded — not as a hang.
func TestDemandTimeoutSingleBackend(t *testing.T) {
	slow := &slowFetcher{delay: 5 * time.Second}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "slow", Fetcher: slow, DemandTimeout: 15 * time.Millisecond},
	}})
	start := time.Now()
	_, err := f.Fetch(context.Background(), 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("timed-out fetch returned after %v", el)
	}
}

// The hedged (goroutine) demand path applies the same per-attempt
// budget: the primary's timeout triggers the retry, which lands on the
// healthy backend.
func TestDemandTimeoutHedgedPath(t *testing.T) {
	slow := &slowFetcher{delay: 5 * time.Second}
	fast := &instantFetcher{size: 1}
	f := newTestFabric(t, Config{
		Routing: RouteLatency,
		// A far-future hedge delay isolates the timeout: only the
		// attempt budget, not a hedge, may unblock the fetch.
		Hedging: &Hedging{Delay: time.Hour, MaxAttempts: 2},
		Backends: []Backend{
			{Name: "slow", Fetcher: slow, DemandTimeout: 20 * time.Millisecond},
			{Name: "fast", Fetcher: fast},
		},
	})
	start := time.Now()
	item, err := f.Fetch(context.Background(), 3)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if item.ID != 3 {
		t.Fatalf("item %v, want id 3", item)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("hedged retry took %v; the attempt timeout did not fire", el)
	}
	st := f.Stats(f.nowf())
	if st[0].Errors != 1 {
		t.Fatalf("slow backend errors = %d, want 1", st[0].Errors)
	}
}

// SpeculativeTimeout bounds only the speculative path: the same slow
// backend still serves an unbounded demand fetch.
func TestSpeculativeTimeoutIndependentOfDemand(t *testing.T) {
	slow := &slowFetcher{delay: 40 * time.Millisecond}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "slow", Fetcher: slow, SpeculativeTimeout: 5 * time.Millisecond},
	}})
	if _, err := f.FetchSpeculative(context.Background(), 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("speculative err = %v, want DeadlineExceeded", err)
	}
	if _, err := f.Fetch(context.Background(), 2); err != nil {
		t.Fatalf("demand fetch hit the speculative budget: %v", err)
	}
	st := f.Stats(f.nowf())
	if st[0].Errors != 1 {
		t.Fatalf("errors = %d, want exactly the speculative timeout", st[0].Errors)
	}
}

// The speculative batch path shares the speculative budget: a batch
// that cannot finish inside it fails whole, as speculative batches do.
func TestSpeculativeBatchTimeout(t *testing.T) {
	slow := &slowBatchFetcher{slowFetcher{delay: 5 * time.Second}}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "slow", Fetcher: slow, SpeculativeTimeout: 10 * time.Millisecond},
	}})
	start := time.Now()
	_, err := f.FetchSpeculativeBatch(context.Background(), 0, []ID{1, 2, 3})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("timed-out batch returned after %v", el)
	}
}

// A demand batch whose FetchBatch call exhausts the demand budget
// degrades to per-key fallback fetches — each with its own fresh
// budget — so a wedged batch endpoint costs one timeout, not the
// session.
func TestDemandBatchTimeoutFallsBackPerKey(t *testing.T) {
	b := &stuckBatchFetcher{instantFetcher{size: 1}}
	f := newTestFabric(t, Config{Backends: []Backend{
		{Name: "o", Fetcher: b, DemandTimeout: 10 * time.Millisecond},
	}})
	ids := []ID{1, 2, 3}
	out := make([]Item, len(ids))
	errs := make([]error, len(ids))
	f.FetchDemandBatch(context.Background(), 0, ids, out, errs)
	for i := range ids {
		if errs[i] != nil {
			t.Fatalf("key %d: %v (fallback should have served it)", ids[i], errs[i])
		}
		if out[i].ID != ids[i] {
			t.Fatalf("key %d: item %v", ids[i], out[i])
		}
	}
	st := f.Stats(f.nowf())
	if st[0].Errors != 1 {
		t.Fatalf("errors = %d, want 1 (the timed-out batch call)", st[0].Errors)
	}
	if st[0].DemandBatchCalls != 1 {
		t.Fatalf("demand batch calls = %d, want 1", st[0].DemandBatchCalls)
	}
}
