// Package httpfetch is the real HTTP origin adapter behind the fetch
// fabric: a Client implements fetch.Fetcher and fetch.BatchFetcher
// over a pooled, HTTP/2-capable http.Transport, so the engine's
// routing, hedging, circuit breaking and idle-watermark gating operate
// over actual network links instead of simulated ones.
//
// One Client wraps one origin (a base URL); a fabric mixes several
// origins by giving each its own Client as a fetch.Backend. The
// demand-vs-speculative budget split lives on the Backend
// (Backend.DemandTimeout / Backend.SpeculativeTimeout): the fabric
// layers the per-attempt deadline onto the context it hands the
// adapter, and the adapter's only obligation — which http.Client
// honours natively — is to abandon the request promptly when that
// context dies. That promptness is what keeps hedged losers from
// holding connections and lets the breaker see a wedged origin as fast
// failures rather than a pile-up.
//
// Object fetches are plain GETs: id 42 becomes GET {BaseURL}/obj/42
// (the path template is configurable). Response bodies are bounded by
// MaxBodyBytes and land in a single []byte sized from Content-Length
// when the origin provides one — no intermediate buffer, no copy — and
// that slice is the Item's payload as cached by the engine and served
// to hits.
//
// # The batch wire
//
// FetchBatch has two modes. Against an origin that implements the
// batch endpoint (BatchPath), the whole batch travels as ONE request —
// GET {BaseURL}{BatchPath}?ids=1,2,3 — whose response body is a framed
// record stream, one record per requested id in request order:
//
//	8 bytes  big-endian uint64  id
//	4 bytes  big-endian uint32  payload length n
//	n bytes                     payload
//
// WriteBatchItem and ReadBatch implement the two ends. cmd/prefetchd
// serves exactly this wire on its own /batch endpoint, so one
// prefetchd can front another as a cache tier. Against an origin with
// no batch endpoint, FetchBatch degrades to bounded-concurrency
// parallel GETs over the shared connection pool (MaxParallel), still
// returning one item per id in request order — the fabric's batch
// contract either way.
package httpfetch

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/prefetcher/fetch"
)

// DefaultMaxBodyBytes bounds one object's response body when Config
// leaves MaxBodyBytes zero.
const DefaultMaxBodyBytes = 16 << 20

// DefaultMaxParallel bounds fan-out batch concurrency when Config
// leaves MaxParallel zero.
const DefaultMaxParallel = 8

// Config assembles a Client. BaseURL is the only required field.
type Config struct {
	// BaseURL locates the origin, e.g. "http://origin.internal:9000".
	// Scheme must be http or https; a trailing slash is stripped.
	BaseURL string
	// Path is the single-object GET template, containing exactly one
	// %d verb the id is formatted into (default "/obj/%d").
	Path string
	// BatchPath, when non-empty, names the origin's batch endpoint:
	// FetchBatch then issues one GET {BatchPath}?ids=... expecting the
	// framed batch wire (see the package comment) instead of fanning
	// out parallel single GETs.
	BatchPath string
	// MaxBodyBytes bounds one object's payload (default
	// DefaultMaxBodyBytes); an origin reply past the bound is an error,
	// not a truncation — a truncated object served as a cache hit would
	// be silent corruption.
	MaxBodyBytes int64
	// MaxParallel bounds the concurrent GETs of a fan-out FetchBatch
	// (default DefaultMaxParallel). Ignored when BatchPath is set.
	MaxParallel int
	// Header is added to every request (Host, auth, accept-encoding).
	Header http.Header
	// Client overrides the HTTP client. Default: a client over
	// NewTransport() with no client-level timeout — attempt budgets
	// come from the fabric's per-backend DemandTimeout /
	// SpeculativeTimeout through the request context, where demand and
	// speculative traffic can be bounded differently.
	Client *http.Client
}

// NewTransport returns the pooled transport the default client uses:
// keep-alive connection reuse sized for a fabric backend (many
// concurrent demand + speculative fetches against one host), HTTP/2
// negotiated via ALPN on TLS origins.
func NewTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// StatusError reports a non-200 origin reply.
type StatusError struct {
	URL  string
	Code int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("httpfetch: GET %s: status %d", e.URL, e.Code)
}

// Client fetches objects from one HTTP origin. It implements
// fetch.Fetcher and fetch.BatchFetcher and is safe for concurrent use
// — the fabric calls it from demand goroutines, hedge goroutines and
// the speculative worker pool at once, all multiplexed over the pooled
// transport.
type Client struct {
	base        string
	path        string
	batchPath   string
	maxBody     int64
	maxParallel int
	header      http.Header
	hc          *http.Client
}

// New validates cfg and returns a Client for the origin.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("httpfetch: no base URL")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("httpfetch: base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httpfetch: base URL %q: scheme must be http or https", cfg.BaseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("httpfetch: base URL %q has no host", cfg.BaseURL)
	}
	path := cfg.Path
	if path == "" {
		path = "/obj/%d"
	}
	if strings.Count(path, "%") != 1 || !strings.Contains(path, "%d") {
		return nil, fmt.Errorf("httpfetch: path template %q must contain exactly one %%d", path)
	}
	if cfg.MaxBodyBytes < 0 || cfg.MaxParallel < 0 {
		return nil, fmt.Errorf("httpfetch: negative bound in config")
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	maxParallel := cfg.MaxParallel
	if maxParallel == 0 {
		maxParallel = DefaultMaxParallel
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Transport: NewTransport()}
	}
	return &Client{
		base:        strings.TrimRight(cfg.BaseURL, "/"),
		path:        path,
		batchPath:   cfg.BatchPath,
		maxBody:     maxBody,
		maxParallel: maxParallel,
		header:      cfg.Header,
		hc:          hc,
	}, nil
}

// get issues one GET and returns the bounded body.
func (c *Client) get(ctx context.Context, u string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range c.header {
		req.Header[k] = vs
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a bounded remainder so the connection can be reused.
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, &StatusError{URL: u, Code: resp.StatusCode}
	}
	return readBounded(resp.Body, resp.ContentLength, c.maxBody)
}

// readBounded reads at most maxBody payload bytes. With a declared
// Content-Length the payload lands in one exactly-sized allocation and
// is returned without copying; chunked replies fall back to a growing
// read capped one byte past the bound so overflow is detected, not
// truncated.
func readBounded(r io.Reader, declared, maxBody int64) ([]byte, error) {
	if declared > maxBody {
		return nil, fmt.Errorf("httpfetch: body %d bytes exceeds bound %d", declared, maxBody)
	}
	if declared >= 0 {
		buf := make([]byte, declared)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf, err := io.ReadAll(io.LimitReader(r, maxBody+1))
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) > maxBody {
		return nil, fmt.Errorf("httpfetch: body exceeds bound %d", maxBody)
	}
	return buf, nil
}

// objURL formats the single-object URL for id.
func (c *Client) objURL(id fetch.ID) string {
	return c.base + fmt.Sprintf(c.path, int64(id))
}

// Fetch implements fetch.Fetcher: one GET, body bytes as the payload,
// Size = payload length in bytes (so configure Backend.Bandwidth in
// bytes per second). Cancellation propagates through the request
// context into the transport, which aborts the dial, the in-flight
// request or the body read — whichever is current.
func (c *Client) Fetch(ctx context.Context, id fetch.ID) (fetch.Item, error) {
	u := c.objURL(id)
	data, err := c.get(ctx, u)
	if err != nil {
		return fetch.Item{}, err
	}
	return fetch.Item{ID: id, Size: float64(len(data)), Data: data}, nil
}

// FetchBatch implements fetch.BatchFetcher: one wire-framed request
// when the origin has a batch endpoint, bounded parallel GETs
// otherwise. Either way the reply is one Item per id in request order,
// and any failure fails the whole batch (the fabric's speculative
// batches accept that; its demand batches degrade to per-key
// fallback).
func (c *Client) FetchBatch(ctx context.Context, ids []fetch.ID) ([]fetch.Item, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if c.batchPath != "" {
		return c.fetchBatchWire(ctx, ids)
	}
	return c.fetchBatchFanout(ctx, ids)
}

// fetchBatchWire rides the whole batch on one request to the origin's
// batch endpoint and decodes the framed reply.
func (c *Client) fetchBatchWire(ctx context.Context, ids []fetch.ID) ([]fetch.Item, error) {
	var sb strings.Builder
	sb.WriteString(c.base)
	sb.WriteString(c.batchPath)
	sb.WriteString("?ids=")
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(int64(id), 10))
	}
	u := sb.String()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range c.header {
		req.Header[k] = vs
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, &StatusError{URL: u, Code: resp.StatusCode}
	}
	return ReadBatch(resp.Body, ids, c.maxBody)
}

// fetchBatchFanout serves the batch as parallel single GETs bounded by
// MaxParallel. The first failure cancels the stragglers — a batch that
// already failed should stop spending origin capacity.
func (c *Client) fetchBatchFanout(ctx context.Context, ids []fetch.ID) ([]fetch.Item, error) {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	items := make([]fetch.Item, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, c.maxParallel)
	var wg sync.WaitGroup
	for i := range ids {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			items[i], errs[i] = c.Fetch(wctx, ids[i])
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return items, nil
}

// --- batch wire codec ----------------------------------------------------

// batchHeaderLen is the fixed record header: 8-byte id + 4-byte length.
const batchHeaderLen = 12

// WriteBatchItem appends one framed record to w — the server half of
// the batch wire. cmd/prefetchd and cmd/originsim use it to answer
// /batch requests.
func WriteBatchItem(w io.Writer, id fetch.ID, data []byte) error {
	if int64(len(data)) > int64(^uint32(0)) {
		return fmt.Errorf("httpfetch: batch payload %d bytes exceeds the wire's uint32 length", len(data))
	}
	var hdr [batchHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(id))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadBatch decodes a framed batch reply, requiring exactly one record
// per requested id, in request order, each payload within maxBody. Any
// violation — short stream, misordered id, oversized record, trailing
// bytes — is an error: the fabric treats a broken batch reply as a
// whole-batch failure (speculative) or falls back per key (demand),
// and a lenient parse here would mask origin bugs as cache content.
func ReadBatch(r io.Reader, ids []fetch.ID, maxBody int64) ([]fetch.Item, error) {
	items := make([]fetch.Item, 0, len(ids))
	var hdr [batchHeaderLen]byte
	for i, want := range ids {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("httpfetch: batch record %d/%d: %w", i, len(ids), err)
		}
		id := fetch.ID(binary.BigEndian.Uint64(hdr[:8]))
		n := int64(binary.BigEndian.Uint32(hdr[8:]))
		if id != want {
			return nil, fmt.Errorf("httpfetch: batch record %d has id %d, want %d", i, id, want)
		}
		if n > maxBody {
			return nil, fmt.Errorf("httpfetch: batch record %d: %d bytes exceeds bound %d", i, n, maxBody)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("httpfetch: batch record %d payload: %w", i, err)
		}
		items = append(items, fetch.Item{ID: id, Size: float64(n), Data: data})
	}
	var trail [1]byte
	if _, err := r.Read(trail[:]); err != io.EOF {
		return nil, fmt.Errorf("httpfetch: trailing bytes after %d batch records", len(ids))
	}
	return items, nil
}

// ParseIDs parses a comma-separated id list ("1,2,3") — the ?ids=
// query parameter of the batch wire. Shared by the client (which
// formats it) and the servers that answer it (cmd/prefetchd,
// cmd/originsim).
func ParseIDs(s string) ([]fetch.ID, error) {
	if s == "" {
		return nil, fmt.Errorf("httpfetch: empty id list")
	}
	parts := strings.Split(s, ",")
	ids := make([]fetch.ID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("httpfetch: bad id %q: %w", p, err)
		}
		ids = append(ids, fetch.ID(n))
	}
	return ids, nil
}
