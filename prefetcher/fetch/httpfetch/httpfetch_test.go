package httpfetch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/prefetcher/fetch"
)

// testPayload is the deterministic object body the test origins serve.
func testPayload(id int64) []byte {
	return []byte(fmt.Sprintf("object-%d-payload", id))
}

// newOrigin starts an httptest origin serving /obj/{id} and /batch
// with the framed wire, counting single and batch requests.
func newOrigin(t *testing.T, singles, batches *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/obj/", func(w http.ResponseWriter, r *http.Request) {
		if singles != nil {
			singles.Add(1)
		}
		var id int64
		if _, err := fmt.Sscanf(r.URL.Path, "/obj/%d", &id); err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		w.Write(testPayload(id))
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if batches != nil {
			batches.Add(1)
		}
		ids, err := ParseIDs(r.URL.Query().Get("ids"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, id := range ids {
			if err := WriteBatchItem(w, id, testPayload(int64(id))); err != nil {
				return
			}
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                    // no base URL
		{BaseURL: "ftp://x"},                  // bad scheme
		{BaseURL: "http://"},                  // no host
		{BaseURL: "http://x", Path: "/obj"},   // no %d
		{BaseURL: "http://x", Path: "/%d/%d"}, // two verbs
		{BaseURL: "http://x", Path: "/%s"},    // wrong verb
		{BaseURL: "http://x", MaxBodyBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	if _, err := New(Config{BaseURL: "http://x:9"}); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestFetch(t *testing.T) {
	srv := newOrigin(t, nil, nil)
	c := newClient(t, Config{BaseURL: srv.URL})
	item, err := c.Fetch(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	want := testPayload(42)
	if !bytes.Equal(item.Data.([]byte), want) {
		t.Fatalf("payload %q, want %q", item.Data, want)
	}
	if item.ID != 42 || item.Size != float64(len(want)) {
		t.Fatalf("item id/size = %d/%v, want 42/%d", item.ID, item.Size, len(want))
	}
}

func TestFetchStatusError(t *testing.T) {
	srv := newOrigin(t, nil, nil)
	c := newClient(t, Config{BaseURL: srv.URL, Path: "/missing/%d"})
	_, err := c.Fetch(context.Background(), 1)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
}

func TestFetchBodyBound(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 100))
	}))
	t.Cleanup(srv.Close)
	c := newClient(t, Config{BaseURL: srv.URL, MaxBodyBytes: 64})
	if _, err := c.Fetch(context.Background(), 1); err == nil {
		t.Fatal("oversized body accepted")
	}
	// A chunked (unknown-length) oversize reply must also be refused.
	chunked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.(http.Flusher).Flush() // force chunked: no Content-Length
		w.Write(make([]byte, 100))
	}))
	t.Cleanup(chunked.Close)
	c2 := newClient(t, Config{BaseURL: chunked.URL, MaxBodyBytes: 64})
	if _, err := c2.Fetch(context.Background(), 1); err == nil {
		t.Fatal("oversized chunked body accepted")
	}
}

// Cancellation must abandon the request promptly — this is the
// property hedging and the per-attempt timeouts depend on.
func TestFetchCancelPrompt(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(release); srv.Close() })
	c := newClient(t, Config{BaseURL: srv.URL})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Fetch(ctx, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Fetch did not return after cancel")
	}
}

func TestFetchBatchWire(t *testing.T) {
	var singles, batches atomic.Int64
	srv := newOrigin(t, &singles, &batches)
	c := newClient(t, Config{BaseURL: srv.URL, BatchPath: "/batch"})
	ids := []fetch.ID{3, 1, 7}
	items, err := c.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(ids) {
		t.Fatalf("%d items, want %d", len(items), len(ids))
	}
	for i, it := range items {
		if it.ID != ids[i] || !bytes.Equal(it.Data.([]byte), testPayload(int64(ids[i]))) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	if batches.Load() != 1 || singles.Load() != 0 {
		t.Fatalf("batches/singles = %d/%d, want 1/0 (one wire request)", batches.Load(), singles.Load())
	}
}

func TestFetchBatchFanout(t *testing.T) {
	var singles atomic.Int64
	srv := newOrigin(t, &singles, nil)
	c := newClient(t, Config{BaseURL: srv.URL, MaxParallel: 2}) // no BatchPath
	ids := []fetch.ID{5, 9, 2, 8}
	items, err := c.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.ID != ids[i] || !bytes.Equal(it.Data.([]byte), testPayload(int64(ids[i]))) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	if singles.Load() != int64(len(ids)) {
		t.Fatalf("singles = %d, want %d", singles.Load(), len(ids))
	}
}

func TestFetchBatchFanoutError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/3") {
			http.Error(w, "gone", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	t.Cleanup(srv.Close)
	c := newClient(t, Config{BaseURL: srv.URL})
	if _, err := c.FetchBatch(context.Background(), []fetch.ID{1, 3, 5}); err == nil {
		t.Fatal("failed key did not fail the batch")
	}
}

// Malformed batch replies — short stream, wrong id, trailing bytes —
// must all be errors, which the fabric then degrades per its path.
func TestReadBatchContractViolations(t *testing.T) {
	good := func(ids ...fetch.ID) []byte {
		var buf bytes.Buffer
		for _, id := range ids {
			WriteBatchItem(&buf, id, testPayload(int64(id)))
		}
		return buf.Bytes()
	}
	ids := []fetch.ID{1, 2}
	if _, err := ReadBatch(bytes.NewReader(good(1, 2)), ids, 1<<20); err != nil {
		t.Fatalf("well-formed reply rejected: %v", err)
	}
	cases := map[string][]byte{
		"short":     good(1),
		"misorder":  good(2, 1),
		"trailing":  append(good(1, 2), 0),
		"truncated": good(1, 2)[:15],
	}
	for name, body := range cases {
		if _, err := ReadBatch(bytes.NewReader(body), ids, 1<<20); err == nil {
			t.Errorf("%s reply accepted", name)
		}
	}
	// Oversized record: header declares more than maxBody.
	var buf bytes.Buffer
	WriteBatchItem(&buf, 1, make([]byte, 100))
	if _, err := ReadBatch(&buf, []fetch.ID{1}, 64); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestParseIDs(t *testing.T) {
	ids, err := ParseIDs("1,22,333")
	if err != nil || len(ids) != 3 || ids[0] != 1 || ids[1] != 22 || ids[2] != 333 {
		t.Fatalf("ParseIDs = %v, %v", ids, err)
	}
	for _, bad := range []string{"", "1,,2", "x", "1,2x"} {
		if _, err := ParseIDs(bad); err == nil {
			t.Errorf("ParseIDs(%q) accepted", bad)
		}
	}
}

// The adapter behind a real fabric: routing, batching and per-backend
// stats over live HTTP, end to end.
func TestClientBehindFabric(t *testing.T) {
	var batches atomic.Int64
	srv := newOrigin(t, nil, &batches)
	c := newClient(t, Config{BaseURL: srv.URL, BatchPath: "/batch"})
	f, err := fetch.New(fetch.Config{Backends: []fetch.Backend{
		{Name: "origin", Fetcher: c, DemandTimeout: 5 * time.Second, SpeculativeTimeout: time.Second},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Fetch(context.Background(), 11); err != nil {
		t.Fatal(err)
	}
	items, err := f.FetchSpeculativeBatch(context.Background(), 0, []fetch.ID{20, 21, 22})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || batches.Load() != 1 {
		t.Fatalf("items/batches = %d/%d, want 3/1", len(items), batches.Load())
	}
	st := f.Stats(0)
	if st[0].Demand != 1 || st[0].Speculative != 3 || st[0].BatchCalls != 1 {
		t.Fatalf("stats = %+v", st[0])
	}
	if _, err := io.ReadAll(bytes.NewReader(items[0].Data.([]byte))); err != nil {
		t.Fatal(err)
	}
}
